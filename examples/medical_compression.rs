//! Lossless compression of synthetic medical studies — the application the
//! paper's hardware is meant to serve (compression for storage and retrieval
//! of medical images).
//!
//! For each modality-like workload the example:
//!
//! 1. verifies that the paper's fixed-point DWT is bit exact with every
//!    Table I filter bank,
//! 2. compresses the study with the end-to-end lossless codec and reports
//!    the achieved rate against the image entropy,
//! 3. writes one of the studies to a PGM file so it can be inspected.
//!
//! Run with `cargo run --release --example medical_compression`.

use lwc_core::prelude::*;

struct Study {
    name: &'static str,
    image: Image,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = 512;
    let studies = vec![
        Study { name: "CT head phantom", image: synth::ct_phantom(size, size, 12, 11) },
        Study { name: "MR brain-like slice", image: synth::mr_slice(size, size, 12, 22) },
        Study {
            name: "uniform noise (worst case)",
            image: synth::random_image(size, size, 12, 33),
        },
    ];

    println!("=== lossless transform check (paper Section 3) ===");
    let check = synth::random_image(128, 128, 12, 5);
    for id in FilterId::ALL {
        let report = lwc_core::verify_lossless(&check, id, 6)?;
        println!("  {id}: {report}");
        assert!(report.bit_exact);
    }

    println!("\n=== end-to-end lossless compression ===");
    let codec = LosslessCodec::new(5)?;
    for study in &studies {
        let entropy = stats::entropy_bits_per_pixel(&study.image);
        let diff_entropy = stats::first_difference_entropy(&study.image);
        let (bytes, report) = codec.compress_with_report(&study.image)?;
        let decoded = codec.decompress(&bytes)?;
        assert!(stats::bit_exact(&study.image, &decoded)?);
        println!("  {:<28} {report}", study.name);
        println!(
            "  {:<28} entropy {entropy:.2} bpp, 1st-difference entropy {diff_entropy:.2} bpp",
            ""
        );
    }

    println!("\n=== batch engine: whole study through the worker pool ===");
    // The streaming API pulls images through a bounded channel as worker
    // capacity frees up, so a long study never has to be resident at once.
    let engine = BatchCompressor::with_codec(codec, 0);
    let study: Vec<Image> = studies.iter().map(|s| s.image.clone()).collect();
    let (batch_streams, batch_report) = engine.compress_batch(&study)?;
    for (image, stream) in study.iter().zip(&batch_streams) {
        assert_eq!(stream, &codec.compress(image)?, "batch stream must match the sequential codec");
    }
    println!("  {batch_report}");
    let streamed: Vec<Vec<u8>> = engine.compress_iter(study.clone()).collect::<Result<_, _>>()?;
    assert_eq!(streamed, batch_streams);
    let restored: Vec<Image> = engine.decompress_iter(streamed).collect::<Result<_, _>>()?;
    for (original, back) in study.iter().zip(&restored) {
        assert!(stats::bit_exact(original, back)?);
    }
    println!("  streaming round trip: {} images bit exact", restored.len());

    // Persist one study for visual inspection with any PGM viewer.
    let out = std::env::temp_dir().join("lwc_ct_phantom.pgm");
    pgm::save(&studies[0].image, &out)?;
    println!("\nwrote {} for inspection", out.display());

    Ok(())
}
