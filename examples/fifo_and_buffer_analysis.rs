//! The micro-architectural analyses of Section 4: the Fig. 2 macrocycle
//! schedule, the input-buffer organization (Fig. 4 / Table IV), the FIFO
//! depth bounds (Table VI) and the sensitivity of the multiplier utilization
//! to the DRAM refresh interval.
//!
//! Run with `cargo run --release --example fifo_and_buffer_analysis`.

use lwc_core::lwc_arch::fifo::FifoBounds;
use lwc_core::lwc_arch::input_buffer::InputBufferSpec;
use lwc_core::lwc_arch::schedule::{utilization, Macrocycle, PAPER_UTILIZATION};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Fig. 2: operation schedule of one macrocycle (13-tap bank) ===\n");
    println!("normal macrocycle:\n{}", Macrocycle::normal(13));
    println!("macrocycle extended by a DRAM refresh:\n{}", Macrocycle::with_refresh(13, 6));

    println!("=== Fig. 4 / Table IV: input buffer organization (N = 512, L = 13) ===");
    let spec = InputBufferSpec::for_filter(13)?;
    println!("  {spec}");
    println!("  {:<7} {:>12} {:>9}", "scale", "row length", "#rounds");
    for (scale, row_len, rounds) in spec.table4(512, 6) {
        println!("  {scale:<7} {row_len:>12} {rounds:>9}");
    }

    println!("\n=== Table VI: FIFO depth bounds (N = 512, L = 13) ===");
    println!("  {:<7} {:>8} {:>8}", "scale", "MIN(D)", "MAX(D)");
    for b in FifoBounds::table6(512, 6, 6) {
        println!("  {:<7} {:>8} {:>8}", b.scale, b.min_depth, b.max_depth);
    }

    println!("\n=== multiplier utilization versus DRAM refresh interval ===");
    println!("  {:<28} {:>12}", "refresh every", "utilization");
    for macrocycles in [8u64, 16, 32, 48, 64, 128] {
        let u = utilization(13, macrocycles, 1, 6);
        let marker = if macrocycles == 48 { "  <- paper operating point" } else { "" };
        println!("  {:<28} {:>11.2}%{}", format!("{macrocycles} macrocycles"), u * 100.0, marker);
    }
    println!("  (the paper reports {:.2}%)", PAPER_UTILIZATION * 100.0);

    Ok(())
}
