//! Design-space exploration: how wide does the datapath really need to be,
//! and what does each choice cost in silicon?
//!
//! This extends the paper's word-length analysis (Section 3, Table II and
//! reference [16]) with an empirical sweep: for every filter bank the example
//! finds the narrowest datapath word for which the forward + inverse
//! transform is still bit exact on a random 12-bit image, and prints the
//! minimum integer parts of Table II next to it. It then shows how the
//! multiplier choice (Table V) and the word length move the datapath area.
//!
//! Run with `cargo run --release --example design_space`.

use lwc_core::lwc_dwt::lossless;
use lwc_core::lwc_wordlen::search;
use lwc_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scales = 6;
    let image = synth::random_image(128, 128, 12, 2024);

    println!("=== Table II: minimum integer part per scale (13-bit input) ===");
    println!("{:<6} s=1  s=2  s=3  s=4  s=5  s=6", "bank");
    for (id, row) in integer_bits::table2(scales) {
        let cells: Vec<String> = row.iter().map(|b| format!("{b:>3}")).collect();
        println!("{:<6} {}", id.to_string(), cells.join("  "));
    }

    println!("\n=== empirical minimum lossless word length (random 12-bit image) ===");
    println!("{:<6} {:>16} {:>22}", "bank", "min feasible word", "min lossless word");
    for id in FilterId::ALL {
        let bank = FilterBank::table1(id);
        let result = search::minimum_word_length(&bank, scales, 13, 18..=32, |_bits, plan| {
            lossless::fixed_roundtrip_with_plan(&image, &bank, plan)
                .map(|r| r.bit_exact)
                .unwrap_or(false)
        });
        let first_feasible =
            result.probes.iter().find(|(_, p)| *p != search::Probe::Infeasible).map(|&(b, _)| b);
        println!(
            "{:<6} {:>16} {:>22}",
            id.to_string(),
            first_feasible.map_or("-".into(), |b| b.to_string()),
            result.minimum_lossless_bits.map_or("none".into(), |b| b.to_string())
        );
    }
    println!("(the paper fixes the word length at 32 bits, leaving a comfortable margin)");

    println!("\n=== Table V: multiplier design points ===");
    for m in lwc_core::reproduction::table5() {
        let ok = if m.meets_clock(25.0) { "meets 25 ns clock" } else { "too slow for 25 ns" };
        println!("  {m} -> {ok}");
    }

    println!("\n=== datapath area versus word length (proposed architecture) ===");
    let memory = MemoryModel::calibrated_es2();
    for word_bits in [16u32, 24, 32, 40] {
        let multiplier =
            MultiplierModel::paper(MultiplierDesign::PipelinedWallace).scaled_to_width(word_bits);
        let words = 512 / 2 + 32 + 13;
        let area = multiplier.area_mm2 + memory.area_for_words(words, word_bits);
        let lossless = word_bits >= 29; // F6 needs 29 integer bits at scale 6
        println!(
            "  {word_bits:>2}-bit word: {area:6.2} mm2  ({})",
            if lossless { "lossless for every Table I bank" } else { "not lossless for all banks" }
        );
    }

    Ok(())
}
