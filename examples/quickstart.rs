//! Quickstart: transform a synthetic CT slice with the paper's fixed-point
//! datapath, verify the lossless round trip, and compress it with the
//! end-to-end codec.
//!
//! Run with `cargo run --release --example quickstart`.

use lwc_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 256x256, 12-bit synthetic CT slice (real data can be loaded with
    // `pgm::load`).
    let image = synth::ct_phantom(256, 256, 12, 7);
    println!("input: {image}");
    println!(
        "  entropy {:.2} bpp, first-difference entropy {:.2} bpp",
        stats::entropy_bits_per_pixel(&image),
        stats::first_difference_entropy(&image)
    );

    // --- The paper's transform: 9/7 bank, 5 scales, 32-bit fixed point. ---
    let bank = FilterBank::table1(FilterId::F1);
    let dwt = FixedDwt2d::paper_default(&bank, 5)?;
    let coefficients = dwt.forward(&image)?;

    println!("\nfixed-point DWT ({bank}, 5 scales):");
    for scale in 1..=5 {
        let frac = dwt.plan().frac_bits_for_scale(scale);
        let lsb = (frac as f64).exp2().recip();
        let detail = coefficients.subband(scale, Subband::DiagonalDetail);
        let max = detail.iter().map(|v| v.abs()).max().unwrap_or(0) as f64 * lsb;
        println!(
            "  scale {scale}: format Q{}.{}, max |diagonal detail| = {max:.1}",
            dwt.plan().int_bits_for_scale(scale),
            frac
        );
    }

    // --- The lossless criterion (Section 3 of the paper). ---
    let restored = dwt.inverse(&coefficients)?;
    let report = lwc_core::verify_lossless(&image, FilterId::F1, 5)?;
    println!("\nround trip: {report}");
    assert!(stats::bit_exact(&image, &restored)?);

    // --- End-to-end lossless compression (reversible 5/3 + Rice coding). ---
    let codec = LosslessCodec::new(5)?;
    let (bytes, compression) = codec.compress_with_report(&image)?;
    let decoded = codec.decompress(&bytes)?;
    assert!(stats::bit_exact(&image, &decoded)?);
    println!("\nlossless codec: {compression}");

    println!("\nquickstart finished: every check passed");
    Ok(())
}
