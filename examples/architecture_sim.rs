//! Simulate the proposed VLSI architecture on the paper's workload and
//! reproduce the headline numbers of the conclusions: ~99 % multiplier
//! utilization, a few images per second at 33 MHz, two orders of magnitude
//! faster than the desktop software baseline, ~11 mm² of silicon.
//!
//! Run with `cargo run --release --example architecture_sim [image_size]`
//! (default 512, the paper's workload; smaller sizes run faster).

use lwc_core::prelude::*;
use lwc_core::reproduction;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image_size: usize = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(512);

    println!("=== proposed architecture, {image_size}x{image_size} 12-bit image, F2 bank, 6 scales ===\n");

    let params = ArchParams::new(image_size, FilterId::F2, 6)?;
    let simulator = ArchSimulator::new(params)?;
    println!("configuration: {params}");
    println!("input buffer:  {}", simulator.input_buffer_spec());

    // The paper validates the datapath on random images; do the same.
    let image = synth::random_image(image_size, image_size, 12, 1998);
    let run = simulator.run(&image)?;
    println!("\n--- simulation report ---\n{}", run.report);

    // The same transform in the bit-exact software model must agree word for
    // word (the paper's own validation criterion).
    let software = FixedDwt2d::paper_default(&FilterBank::table1(FilterId::F2), 6)?;
    let reference = software.forward(&image)?;
    assert_eq!(run.decomposition.data(), reference.data());
    println!("\nfunctional check: simulator output == software implementation (bit exact)");

    // Speedup against the paper's Pentium-133 baseline and against this host.
    let pentium = SoftwareModel::pentium_133();
    let work = lwc_core::lwc_perf::macs::total_macs(image_size, 13, 13, 6);
    let hardware = HardwareModel { clock_hz: params.clock_hz() };
    let vs_pentium = ThroughputReport::new(&hardware, run.report.total_cycles(), &pentium, work);
    println!("\n--- versus the paper's desktop baseline ---\n{vs_pentium}");

    let (host_model, host_seconds) =
        SoftwareModel::measure_host(&FilterBank::table1(FilterId::F2), &image, 6)?;
    println!(
        "host reference implementation: {host_seconds:.3} s for the same transform ({host_model})"
    );

    // Silicon cost versus the prior art (Table III).
    println!("\n--- silicon area (Table III, calibrated 0.7 um model) ---");
    for row in reproduction::table3() {
        println!("  {row}");
    }

    Ok(())
}
