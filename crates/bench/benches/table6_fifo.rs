//! E-T6 — Table VI: FIFO depth bounds and the runtime FIFO model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lwc_core::lwc_arch::fifo::{FifoBounds, FifoModel};
use lwc_core::reproduction;

fn bench_table6(c: &mut Criterion) {
    let t6 = reproduction::table6();
    for b in &t6.bounds {
        eprintln!("Table VI {b}");
    }
    eprintln!("matches paper: {}", t6.matches_paper());

    c.bench_function("table6_bounds_regeneration", |b| {
        b.iter(|| std::hint::black_box(FifoBounds::table6(512, 6, 6)))
    });

    let mut group = c.benchmark_group("table6_fifo_throughput");
    for depth in [2usize, 58, 250] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut fifo = FifoModel::new(depth).unwrap();
                let mut checksum = 0i64;
                for v in 0..4096i64 {
                    if let Some(out) = fifo.push(v).unwrap() {
                        checksum ^= out;
                    }
                }
                for out in fifo.drain() {
                    checksum ^= out;
                }
                std::hint::black_box(checksum)
            })
        });
    }
    group.finish();
}

/// Shorter measurement windows than Criterion's defaults: the regenerated
/// tables are printed once regardless, and the timed kernels are stable well
/// before the default 5 s window, so the whole suite stays a few minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_table6
}
criterion_main!(benches);
