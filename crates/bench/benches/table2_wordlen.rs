//! E-T2 — Table II: the word-length analysis. Regenerates the table and
//! times the analysis plus plan construction.

use criterion::{criterion_group, criterion_main, Criterion};
use lwc_core::prelude::*;
use lwc_core::reproduction;

fn bench_table2(c: &mut Criterion) {
    let t2 = reproduction::table2();
    for (id, row) in &t2.computed {
        eprintln!("Table II {id}: {row:?}");
    }
    eprintln!("matches paper: {}", t2.matches_paper());

    c.bench_function("table2_full_regeneration", |b| {
        b.iter(|| std::hint::black_box(reproduction::table2().matches_paper()))
    });

    c.bench_function("table2_wordlength_plan_f2_6_scales", |b| {
        let bank = FilterBank::table1(FilterId::F2);
        b.iter(|| std::hint::black_box(WordLengthPlan::paper_default(&bank, 6).unwrap()))
    });

    c.bench_function("table2_error_budget_all_banks", |b| {
        let banks = FilterBank::all_table1();
        b.iter(|| {
            for bank in &banks {
                let plan = WordLengthPlan::paper_default(bank, 6).unwrap();
                std::hint::black_box(lwc_core::lwc_wordlen::error_budget::error_budget(
                    bank, &plan, 4095.0,
                ));
            }
        })
    });
}

/// Shorter measurement windows than Criterion's defaults: the regenerated
/// tables are printed once regardless, and the timed kernels are stable well
/// before the default 5 s window, so the whole suite stays a few minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_table2
}
criterion_main!(benches);
