//! E-F2 — Fig. 2: the macrocycle schedule and the utilization figure.

use criterion::{criterion_group, criterion_main, Criterion};
use lwc_core::lwc_arch::schedule::{utilization, Macrocycle};
use lwc_core::reproduction;

fn bench_fig2(c: &mut Criterion) {
    let f = reproduction::fig2();
    eprintln!(
        "Fig. 2: normal macrocycle {} cycles, refresh macrocycle {} cycles, utilization {:.2}%",
        f.normal.len(),
        f.with_refresh.len(),
        f.utilization * 100.0
    );

    c.bench_function("fig2_macrocycle_construction", |b| {
        b.iter(|| std::hint::black_box((Macrocycle::normal(13), Macrocycle::with_refresh(13, 6))))
    });

    c.bench_function("fig2_utilization_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for interval in 1..=256u64 {
                acc += utilization(13, interval, 1, 6);
            }
            std::hint::black_box(acc)
        })
    });
}

/// Shorter measurement windows than Criterion's defaults: the regenerated
/// tables are printed once regardless, and the timed kernels are stable well
/// before the default 5 s window, so the whole suite stays a few minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_fig2
}
criterion_main!(benches);
