//! E-C1 — Conclusions: cycle-accurate throughput of the proposed
//! architecture and the speedup over the desktop baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lwc_bench::bench_image;
use lwc_core::prelude::*;
use lwc_core::reproduction;

fn bench_conclusions(c: &mut Criterion) {
    // Regenerate the headline figures on a mid-size workload first.
    let conclusions = reproduction::conclusions(128).expect("128x128 configuration");
    eprintln!(
        "Conclusions (128x128 run): utilization {:.2}%, {:.2} images/s equivalent, speedup {:.0}x, area {:.1} mm2",
        conclusions.arch_report.utilization() * 100.0,
        conclusions.throughput.images_per_second,
        conclusions.throughput.speedup,
        conclusions.proposed_area_mm2
    );

    // Time the simulator itself at increasing image sizes (the 512 point is
    // the paper's workload).
    let mut group = c.benchmark_group("conclusions_architecture_simulation");
    group.sample_size(10);
    for size in [64usize, 128, 256] {
        let params = ArchParams::new(size, FilterId::F2, 6.min(size.trailing_zeros())).unwrap();
        let simulator = ArchSimulator::new(params).unwrap();
        let image = bench_image(size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &image, |b, image| {
            b.iter(|| std::hint::black_box(simulator.run(image).unwrap()))
        });
    }
    group.finish();

    // The throughput-model arithmetic is negligible but part of the harness.
    c.bench_function("conclusions_throughput_report", |b| {
        let software = SoftwareModel::pentium_133();
        let hardware = HardwareModel::paper_default();
        b.iter(|| {
            std::hint::black_box(ThroughputReport::new(
                &hardware,
                9_200_000,
                &software,
                lwc_core::lwc_perf::macs::paper_reference_macs(),
            ))
        })
    });
}

/// Shorter measurement windows than Criterion's defaults: the regenerated
/// tables are printed once regardless, and the timed kernels are stable well
/// before the default 5 s window, so the whole suite stays a few minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_conclusions
}
criterion_main!(benches);
