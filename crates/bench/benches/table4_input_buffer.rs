//! E-F4/T4 — Table IV: input-buffer organization. Regenerates the reuse
//! counts and times the occupancy model over a full 512-sample pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lwc_core::lwc_arch::input_buffer::{InputBufferModel, InputBufferSpec};
use lwc_core::reproduction;

fn bench_table4(c: &mut Criterion) {
    let t4 = reproduction::table4().expect("13-tap spec");
    eprintln!("Table IV {}", t4.spec);
    for (scale, row_len, rounds) in &t4.rounds {
        eprintln!("  scale {scale}: row {row_len}, {rounds} rounds");
    }

    c.bench_function("table4_spec_and_rounds", |b| {
        b.iter(|| {
            let spec = InputBufferSpec::for_filter(13).unwrap();
            std::hint::black_box(spec.table4(512, 6))
        })
    });

    let spec = InputBufferSpec::for_filter(13).unwrap();
    let mut group = c.benchmark_group("table4_occupancy_model");
    for row_len in [64usize, 256, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(row_len), &row_len, |b, &row_len| {
            b.iter(|| {
                let mut model = InputBufferModel::begin_pass(spec, row_len).unwrap();
                for k in 0..row_len / 2 {
                    model.access(k, -6, 6).unwrap();
                }
                std::hint::black_box((model.loads(), model.peak_occupancy()))
            })
        });
    }
    group.finish();
}

/// Shorter measurement windows than Criterion's defaults: the regenerated
/// tables are printed once regardless, and the timed kernels are stable well
/// before the default 5 s window, so the whole suite stays a few minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_table4
}
criterion_main!(benches);
