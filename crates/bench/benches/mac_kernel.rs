//! MAC-kernel microbenchmark: the chunked multi-lane
//! `MacAccumulator::mac_slice` against the scalar `mac_unchecked` chain it
//! replaced in the DWT interior fast path, plus the end-to-end fixed-point
//! 1-D analysis pass that runs on top of it. Both kernels are bit-identical
//! (property-tested in `tests/tiled_fixed_dwt.rs`); only the wall clock may
//! differ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lwc_core::lwc_dwt::{analyze_periodic_fixed, FixedStep};
use lwc_core::lwc_fixed::MacAccumulator;
use lwc_core::prelude::*;

/// Deterministic raw samples inside the paper's 32-bit dynamic range.
fn samples(n: usize) -> Vec<i64> {
    (0..n).map(|i| ((i as i64).wrapping_mul(0x9E37_79B9) % (1 << 29)) - (1 << 28)).collect()
}

fn bench_mac_kernel(c: &mut Criterion) {
    // Raw dot products at the tap counts the Table I banks actually run
    // (7/9 taps) and at a long slice where the lanes dominate.
    let mut group = c.benchmark_group("mac_dot_product");
    for len in [7usize, 9, 4096] {
        let coeffs: Vec<i64> = samples(len).iter().map(|v| v >> 6).collect();
        let xs = samples(len);
        group.bench_with_input(BenchmarkId::new("scalar_chain", len), &len, |b, _| {
            b.iter(|| {
                let mut acc = MacAccumulator::new();
                for (&cf, &x) in coeffs.iter().zip(&xs) {
                    acc.mac_unchecked(cf, x);
                }
                std::hint::black_box(acc.value())
            })
        });
        group.bench_with_input(BenchmarkId::new("mac_slice", len), &len, |b, _| {
            b.iter(|| {
                let mut acc = MacAccumulator::new();
                acc.mac_slice(&coeffs, &xs);
                std::hint::black_box(acc.value())
            })
        });
    }
    group.finish();

    // The pass the kernel lives in: one 1-D fixed-point analysis level.
    let bank = FilterBank::table1(FilterId::F1);
    let qbank = QuantizedBank::paper_default(&bank).unwrap();
    let plan = WordLengthPlan::paper_default(&bank, 6).unwrap();
    let step = FixedStep {
        in_frac_bits: plan.frac_bits_for_scale(0),
        out_frac_bits: plan.frac_bits_for_scale(1),
        coeff_frac_bits: plan.coeff_format().frac_bits(),
        word_bits: plan.word_bits(),
    };
    let signal: Vec<i64> =
        (0..4096).map(|i| ((i * i) as i64 % 4096) << plan.frac_bits_for_scale(0)).collect();
    let mut group = c.benchmark_group("fixed_analysis_pass");
    group.bench_function("analyze_4096_f1", |b| {
        b.iter(|| {
            std::hint::black_box(
                analyze_periodic_fixed(
                    &signal,
                    qbank.analysis_lowpass(),
                    qbank.analysis_highpass(),
                    step,
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mac_kernel);
criterion_main!(benches);
