//! Extension — end-to-end lossless codec throughput and compression ratios
//! on the synthetic medical workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lwc_bench::{bench_image, bench_phantom};
use lwc_core::prelude::*;

fn bench_codec(c: &mut Criterion) {
    let codec = LosslessCodec::new(5).unwrap();
    for (name, image) in [
        ("ct_phantom_256", bench_phantom(256)),
        ("mr_slice_256", synth::mr_slice(256, 256, 12, 1)),
        ("noise_256", bench_image(256)),
    ] {
        let (_bytes, report) = codec.compress_with_report(&image).unwrap();
        eprintln!("codec {name}: {report}");
    }

    let phantom = bench_phantom(256);
    let compressed = codec.compress(&phantom).unwrap();

    let mut group = c.benchmark_group("codec_256x256");
    group.sample_size(10);
    group.throughput(Throughput::Bytes((phantom.pixel_count() * 2) as u64));
    group.bench_with_input(BenchmarkId::new("compress", "ct_phantom"), &phantom, |b, image| {
        b.iter(|| std::hint::black_box(codec.compress(image).unwrap()))
    });
    group.bench_with_input(
        BenchmarkId::new("decompress", "ct_phantom"),
        &compressed,
        |b, bytes| b.iter(|| std::hint::black_box(codec.decompress(bytes).unwrap())),
    );
    group.finish();

    // The entropy-coding layer on its own.
    let detail: Vec<i32> = {
        let lifting = Lifting53::new(5).unwrap();
        lifting.forward(&phantom).unwrap().subband(1, 3)
    };
    c.bench_function("codec_rice_subband_encode", |b| {
        let subbands = lwc_core::lwc_coder::SubbandCodec::new();
        b.iter(|| {
            let mut writer = lwc_core::lwc_coder::bitio::BitWriter::new();
            subbands.encode_subband(&mut writer, &detail);
            std::hint::black_box(writer.into_bytes())
        })
    });
    c.bench_function("codec_rice_subband_decode", |b| {
        let subbands = lwc_core::lwc_coder::SubbandCodec::new();
        let mut writer = lwc_core::lwc_coder::bitio::BitWriter::new();
        subbands.encode_subband(&mut writer, &detail);
        let bytes = writer.into_bytes();
        b.iter(|| {
            let mut reader = lwc_core::lwc_coder::bitio::BitReader::new(&bytes);
            std::hint::black_box(subbands.decode_subband(&mut reader, detail.len()).unwrap())
        })
    });

    // The 1-D reversible 5/3 synthesis on its own — the interior/boundary
    // fast-path rewrite's headline kernel.
    let signal: Vec<i32> = (0..4096i64).map(|i| ((i * i) % 4096) as i32).collect();
    let (approx, det) = lwc_core::lwc_lifting::forward_53(&signal);
    c.bench_function("codec_inverse_53_synthesis_4096", |b| {
        b.iter(|| std::hint::black_box(lwc_core::lwc_lifting::inverse_53(&approx, &det)))
    });
}

/// Shorter measurement windows than Criterion's defaults: the regenerated
/// tables are printed once regardless, and the timed kernels are stable well
/// before the default 5 s window, so the whole suite stays a few minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_codec
}
criterion_main!(benches);
