//! E-EQ2 — Eq. (1)/(2): MAC counts and the software baseline. Prints the
//! regenerated numbers and times the software (f64) transform that stands in
//! for the paper's desktop measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lwc_bench::bench_image;
use lwc_core::prelude::*;
use lwc_core::reproduction;

fn bench_eq2(c: &mut Criterion) {
    let e = reproduction::eq2();
    eprintln!(
        "Eq. 2: {} MACs computed vs {:.2e} quoted; Pentium-133 model {:.1} s",
        e.total, e.paper_total, e.pentium_seconds
    );

    c.bench_function("eq2_mac_count_formula", |b| {
        b.iter(|| std::hint::black_box(lwc_core::lwc_perf::macs::total_macs(512, 13, 13, 6)))
    });

    // The "software implementation" the hardware is compared against: the
    // double-precision reference transform on this host.
    let bank = FilterBank::table1(FilterId::F2);
    let mut group = c.benchmark_group("eq2_software_reference_fdwt");
    group.sample_size(10);
    for size in [128usize, 256] {
        let image = bench_image(size);
        let scales = 6.min(image.max_scales());
        let dwt = Dwt2d::new(bank.clone(), scales).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(size), &image, |b, image| {
            b.iter(|| std::hint::black_box(dwt.forward(image).unwrap()))
        });
    }
    group.finish();

    // And the bit-exact fixed-point software model of the datapath.
    let mut group = c.benchmark_group("eq2_fixed_point_fdwt");
    group.sample_size(10);
    for size in [128usize, 256] {
        let image = bench_image(size);
        let scales = 6.min(image.max_scales());
        let hw = FixedDwt2d::paper_default(&bank, scales).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(size), &image, |b, image| {
            b.iter(|| std::hint::black_box(hw.forward(image).unwrap()))
        });
    }
    group.finish();

    // And its inverse, back to integer pixels.
    let mut group = c.benchmark_group("eq2_fixed_point_idwt");
    group.sample_size(10);
    for size in [128usize, 256] {
        let image = bench_image(size);
        let scales = 6.min(image.max_scales());
        let hw = FixedDwt2d::paper_default(&bank, scales).unwrap();
        let coeffs = hw.forward(&image).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(size), &coeffs, |b, coeffs| {
            b.iter(|| std::hint::black_box(hw.inverse(coeffs).unwrap()))
        });
    }
    group.finish();
}

/// Shorter measurement windows than Criterion's defaults: the regenerated
/// tables are printed once regardless, and the timed kernels are stable well
/// before the default 5 s window, so the whole suite stays a few minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_eq2
}
criterion_main!(benches);
