//! E-L1 — the lossless criterion: forward + inverse fixed-point DWT per
//! filter bank, verified bit exact, timed per bank.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lwc_bench::bench_image;
use lwc_core::prelude::*;

fn bench_lossless(c: &mut Criterion) {
    let image = bench_image(128);
    for id in FilterId::ALL {
        let report = lwc_core::verify_lossless(&image, id, 5).expect("roundtrip");
        eprintln!("lossless check {id}: {report}");
        assert!(report.bit_exact);
    }

    let mut group = c.benchmark_group("lossless_fixed_roundtrip_128");
    group.sample_size(10);
    for id in FilterId::ALL {
        let bank = FilterBank::table1(id);
        let hw = FixedDwt2d::paper_default(&bank, 5).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(id), &image, |b, image| {
            b.iter(|| {
                let coeffs = hw.forward(image).unwrap();
                std::hint::black_box(hw.inverse(&coeffs).unwrap())
            })
        });
    }
    group.finish();

    // The reversible-lifting baseline for comparison (same guarantee, integer
    // arithmetic only).
    let mut group = c.benchmark_group("lossless_lifting_roundtrip_128");
    group.bench_function("lifting_5_3", |b| {
        let lifting = Lifting53::new(5).unwrap();
        b.iter(|| {
            let coeffs = lifting.forward(&image).unwrap();
            std::hint::black_box(lifting.inverse(&coeffs).unwrap())
        })
    });
    group.finish();
}

/// Shorter measurement windows than Criterion's defaults: the regenerated
/// tables are printed once regardless, and the timed kernels are stable well
/// before the default 5 s window, so the whole suite stays a few minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_lossless
}
criterion_main!(benches);
