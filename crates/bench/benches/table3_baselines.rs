//! E-T3 — Table III: hardware cost of the prior architectures versus the
//! proposed one. Regenerates the table and times the cost evaluation across
//! a parameter sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use lwc_core::prelude::*;
use lwc_core::reproduction;

fn bench_table3(c: &mut Criterion) {
    for row in reproduction::table3() {
        eprintln!("Table III {row}");
    }

    c.bench_function("table3_regeneration", |b| {
        b.iter(|| std::hint::black_box(reproduction::table3()))
    });

    c.bench_function("table3_parameter_sweep", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for image_size in [256usize, 512, 1024] {
                for filter_len in [5usize, 9, 13] {
                    let p = CostParameters {
                        image_size,
                        filter_len,
                        ..CostParameters::paper_default()
                    };
                    for class in ArchitectureClass::PRIOR_ART {
                        total += ArchitectureCost::evaluate(class, p).total_area_mm2();
                    }
                    total +=
                        ArchitectureCost::evaluate(ArchitectureClass::Proposed, p).total_area_mm2();
                }
            }
            std::hint::black_box(total)
        })
    });
}

/// Shorter measurement windows than Criterion's defaults: the regenerated
/// tables are printed once regardless, and the timed kernels are stable well
/// before the default 5 s window, so the whole suite stays a few minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_table3
}
criterion_main!(benches);
