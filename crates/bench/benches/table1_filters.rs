//! E-T1 — Table I: filter-bank construction and 1-D filtering throughput for
//! each of the six banks. Regenerates the Table I metrics before timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lwc_bench::all_banks;
use lwc_core::prelude::*;
use lwc_core::reproduction;

fn bench_table1(c: &mut Criterion) {
    for row in reproduction::table1() {
        eprintln!(
            "Table I {}: L(H)={} L(H~)={} sum|h|={:.6} sum|h~|={:.6}",
            row.id,
            row.metrics.analysis_len,
            row.metrics.synthesis_len,
            row.metrics.analysis_lowpass_abs_sum,
            row.metrics.synthesis_lowpass_abs_sum
        );
    }

    let mut group = c.benchmark_group("table1_bank_construction");
    for id in FilterId::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(id), &id, |b, &id| {
            b.iter(|| {
                let bank = FilterBank::table1(id);
                std::hint::black_box(BankMetrics::of(&bank))
            });
        });
    }
    group.finish();

    let signal: Vec<f64> = lwc_bench::bench_image(512).row(0).iter().map(|&v| v as f64).collect();
    let mut group = c.benchmark_group("table1_row_analysis_512");
    for bank in all_banks() {
        group.bench_with_input(BenchmarkId::from_parameter(bank.id()), &bank, |b, bank| {
            b.iter(|| std::hint::black_box(lwc_core::lwc_dwt::analyze_periodic(&signal, bank)));
        });
    }
    group.finish();
}

/// Shorter measurement windows than Criterion's defaults: the regenerated
/// tables are printed once regardless, and the timed kernels are stable well
/// before the default 5 s window, so the whole suite stays a few minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_table1
}
criterion_main!(benches);
