//! E-T5 — Table V: the multiplier trade-off. Prints the design points and
//! times the width-scaling model plus the MAC unit itself (the component the
//! multiplier choice gates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lwc_core::prelude::*;
use lwc_core::reproduction;

fn bench_table5(c: &mut Criterion) {
    for m in reproduction::table5() {
        eprintln!("Table V {m}");
    }

    c.bench_function("table5_width_scaling_sweep", |b| {
        let base = MultiplierModel::paper(MultiplierDesign::PipelinedWallace);
        b.iter(|| {
            let mut area = 0.0;
            for width in [8u32, 16, 24, 32, 48, 64] {
                area += base.scaled_to_width(width).area_mm2;
            }
            std::hint::black_box(area)
        })
    });

    let mut group = c.benchmark_group("table5_mac_macrocycle");
    for taps in [5usize, 9, 13] {
        group.bench_with_input(BenchmarkId::from_parameter(taps), &taps, |b, &taps| {
            let coeffs: Vec<i64> = (0..taps as i64).map(|i| (i + 1) << 20).collect();
            let data: Vec<i64> = (0..taps as i64).map(|i| (i * 37 + 11) << 12).collect();
            b.iter(|| {
                let mut acc = MacAccumulator::new();
                for (&c, &d) in coeffs.iter().zip(&data) {
                    acc.mac(c, d).unwrap();
                }
                std::hint::black_box(acc.value())
            })
        });
    }
    group.finish();
}

/// Shorter measurement windows than Criterion's defaults: the regenerated
/// tables are printed once regardless, and the timed kernels are stable well
/// before the default 5 s window, so the whole suite stays a few minutes.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_table5
}
criterion_main!(benches);
