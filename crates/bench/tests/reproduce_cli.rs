//! CLI contract of the `reproduce` binary: an unknown subcommand must list
//! every available artifact (including `serve`) and exit nonzero, so a typo
//! never silently runs the wrong thing — and never exits 0 under CI.

use std::process::Command;

#[test]
fn unknown_subcommands_list_artifacts_and_exit_nonzero() {
    let output = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .arg("definitely-not-an-artifact")
        .output()
        .expect("run reproduce");
    assert!(!output.status.success(), "unknown artifact must exit nonzero");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown artifact"), "{stderr}");
    for artifact in [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "eq2",
        "fig2",
        "lossless",
        "conclusions",
        "perfjson",
        "tiled",
        "dwt-tiled",
        "dwt-line",
        "fixed-codec",
        "serve",
        "volume",
        "corpus",
        "all",
    ] {
        assert!(stderr.contains(artifact), "artifact {artifact} missing from listing:\n{stderr}");
    }
}

#[test]
fn known_fast_subcommands_exit_zero() {
    // table2 is the cheapest artifact (pure arithmetic, exact-match print).
    let output = Command::new(env!("CARGO_BIN_EXE_reproduce")).arg("table2").output().expect("run");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("matches the paper exactly: yes"), "{stdout}");
}
