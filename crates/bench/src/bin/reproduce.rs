//! Regenerates every table and figure of the paper's evaluation and prints
//! the computed values next to the published ones.
//!
//! ```text
//! cargo run --release -p lwc-bench --bin reproduce            # everything
//! cargo run --release -p lwc-bench --bin reproduce table2     # one artifact
//! cargo run --release -p lwc-bench --bin reproduce conclusions 512
//! cargo run --release -p lwc-bench --bin reproduce perfjson 128   # smoke
//! ```
//!
//! The output of a full run is recorded in `EXPERIMENTS.md`. The `perfjson`
//! artifact additionally writes `BENCH_throughput.json` — the
//! machine-readable throughput trajectory CI archives on every run so perf
//! regressions are visible across PRs (`LWC_PERF_REPS` overrides the
//! best-of-3 repetition count).

use lwc_core::prelude::*;
use lwc_core::reproduction;

/// Every artifact this binary can regenerate, in the order `all` runs the
/// paper-facing ones. Unknown subcommands print this list and exit nonzero.
const ARTIFACTS: &[(&str, &str)] = &[
    ("table1", "filter banks best suited to image compression"),
    ("table2", "minimum integer part per scale (exact-match vs the paper)"),
    ("table3", "hardware cost at lossless word lengths"),
    ("table4", "input buffer organization (Fig. 4 / Table IV)"),
    ("table5", "32x32 multiplier design points"),
    ("table6", "FIFO depth bounds"),
    ("eq2", "MAC counts and the desktop baseline"),
    ("fig2", "macrocycle operation schedule"),
    ("lossless", "fixed-point lossless criterion"),
    ("conclusions", "simulated architecture + software engines [size]"),
    ("perfjson", "throughput trajectory -> BENCH_throughput.json [size]"),
    ("tiled", "tile-parallel engine smoke [size]"),
    ("dwt-tiled", "tile-parallel fixed-point DWT vs monolithic [size]"),
    ("dwt-line", "line-based fused DWT bit-identity + streaming encode [size]"),
    ("fixed-codec", "paper-exact fixed-path codec smoke (LWCF) [size]"),
    ("serve", "loopback compression service + load generator [connections]"),
    ("volume", "volumetric 3-D engine vs per-slice 2-D coding [size]"),
    ("corpus", "real-corpus DICOM/PGM ratio-vs-PSNR harness [dir]"),
    ("all", "every paper artifact above"),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let size: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(256);

    match which {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(),
        "table4" => table4()?,
        "table5" => table5(),
        "table6" => table6(),
        "eq2" => eq2(),
        "fig2" => fig2(),
        "lossless" => lossless()?,
        "conclusions" => conclusions(size)?,
        "perfjson" => perfjson(size)?,
        "tiled" => tiled(args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4096))?,
        "dwt-tiled" => dwt_tiled(args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4096))?,
        "dwt-line" => dwt_line(args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4096))?,
        "fixed-codec" => fixed_codec(args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4096))?,
        "serve" => serve(args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4))?,
        "volume" => volume(args.get(1).and_then(|s| s.parse().ok()).unwrap_or(96))?,
        "corpus" => corpus(args.get(1).map(String::as_str))?,
        "all" => {
            table1();
            table2();
            eq2();
            table3();
            fig2();
            table4()?;
            table5();
            table6();
            lossless()?;
            conclusions(size)?;
        }
        other => {
            eprintln!("unknown artifact {other:?}; available artifacts:");
            for (name, what) in ARTIFACTS {
                eprintln!("  {name:<12} {what}");
            }
            std::process::exit(2);
        }
    }
    Ok(())
}

fn heading(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn table1() {
    heading("Table I — filter banks best suited to image compression");
    println!(
        "{:<5} {:>5} {:>6} {:>12} {:>12} {:>14} {:>16}",
        "bank", "L(H)", "L(H~)", "sum|h|", "sum|h~|", "growth/scale", "PR residual"
    );
    for row in reproduction::table1() {
        println!(
            "{:<5} {:>5} {:>6} {:>12.6} {:>12.6} {:>13.3}x {:>16.2e}",
            row.id.to_string(),
            row.metrics.analysis_len,
            row.metrics.synthesis_len,
            row.metrics.analysis_lowpass_abs_sum,
            row.metrics.synthesis_lowpass_abs_sum,
            row.metrics.growth_2d,
            row.biorthogonality.worst_error()
        );
    }
}

fn table2() {
    heading("Table II — minimum integer part b_int(s) per scale (13-bit input)");
    let t2 = reproduction::table2();
    println!("{:<5} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4}   (paper row)", "bank", 1, 2, 3, 4, 5, 6);
    for ((id, row), paper) in t2.computed.iter().zip(t2.paper.iter()) {
        let computed: Vec<String> = row.iter().map(|b| format!("{b:>4}")).collect();
        let printed: Vec<String> = paper.iter().map(|b| b.to_string()).collect();
        println!("{:<5} {}   ({})", id.to_string(), computed.join(" "), printed.join(" "));
    }
    println!("matches the paper exactly: {}", if t2.matches_paper() { "yes" } else { "NO" });
}

fn table3() {
    heading("Table III — hardware cost at lossless word lengths (L=13, S=6, N=512)");
    for row in reproduction::table3() {
        println!("{row}");
    }
    println!("(prior-art requirement formulas are reconstructions; see DESIGN.md)");
}

fn table4() -> Result<(), Box<dyn std::error::Error>> {
    heading("Fig. 4 / Table IV — input buffer organization");
    let t4 = reproduction::table4()?;
    println!("{}", t4.spec);
    println!("{:<7} {:>12} {:>9} {:>14}", "scale", "row length", "#rounds", "(paper)");
    for ((scale, row_len, rounds), paper) in t4.rounds.iter().zip(t4.paper_rounds.iter()) {
        println!("{scale:<7} {row_len:>12} {rounds:>9} {paper:>14}");
    }
    Ok(())
}

fn table5() {
    heading("Table V — 32x32 multiplier design points (0.7 um, worst case)");
    for m in reproduction::table5() {
        let verdict = if m.meets_clock(25.0) { "meets the 25 ns clock" } else { "too slow" };
        println!("{m}  -> {verdict}");
    }
}

fn table6() {
    heading("Table VI — FIFO depth bounds (N=512, L=13)");
    let t6 = reproduction::table6();
    println!("{:<7} {:>8} {:>8} {:>18}", "scale", "MIN(D)", "MAX(D)", "(paper min/max)");
    for (b, (min, max)) in t6.bounds.iter().zip(t6.paper_min.iter().zip(t6.paper_max.iter())) {
        println!("{:<7} {:>8} {:>8} {:>12}/{}", b.scale, b.min_depth, b.max_depth, min, max);
    }
    println!("matches the paper exactly: {}", if t6.matches_paper() { "yes" } else { "NO" });
}

fn eq2() {
    heading("Eq. (1)/(2) — MAC counts and the desktop baseline (N=512, L=13, S=6)");
    let e = reproduction::eq2();
    for (j, macs) in e.per_scale.iter().enumerate() {
        println!("scale {}: {:>12} MACs", j + 1, macs);
    }
    println!("total:   {:>12} MACs (paper: {:.2e})", e.total, e.paper_total);
    println!("Pentium-133 model: {:.1} s per transform (paper: 42 s)", e.pentium_seconds);
}

fn fig2() {
    heading("Fig. 2 — macrocycle operation schedule");
    let f = reproduction::fig2();
    println!("normal macrocycle ({} cycles):\n{}", f.normal.len(), f.normal);
    println!("with DRAM refresh extension ({} cycles):\n{}", f.with_refresh.len(), f.with_refresh);
    println!(
        "multiplier utilization: {:.2}% (paper: {:.2}%)",
        f.utilization * 100.0,
        f.paper_utilization * 100.0
    );
}

fn lossless() -> Result<(), Box<dyn std::error::Error>> {
    heading("Lossless criterion — fixed-point round trip on a random 12-bit image");
    for (id, exact) in reproduction::lossless_summary(128, 6)? {
        println!("{id}: {}", if exact { "bit exact" } else { "NOT bit exact" });
    }
    Ok(())
}

/// One measured mode of the throughput harness.
struct PerfMode {
    name: &'static str,
    workers: usize,
    compress_seconds: f64,
    decompress_seconds: f64,
}

/// Measures the throughput trajectory on the fixed synthetic corpus and
/// writes `BENCH_throughput.json`: raw MB/s and images/s for the sequential
/// codec, the inter-image batch engine and the per-subband parallel codec.
///
/// Every figure is a best-of-`LWC_PERF_REPS` (default 3) wall-clock
/// measurement, which is robust against preemption on shared CI runners; the
/// JSON is advisory trend data, not a gate (assertions stay behind
/// `LWC_STRICT_PERF=1` in the test suite).
fn perfjson(size: usize) -> Result<(), Box<dyn std::error::Error>> {
    heading(&format!("Throughput trajectory — BENCH_throughput.json ({size}x{size} corpus)"));
    let count = 8;
    let images = lwc_bench::perf_corpus(count, size);
    let scales = 5.min(images[0].max_scales());
    let raw_bytes: usize =
        images.iter().map(|i| (i.pixel_count() * i.bit_depth() as usize).div_ceil(8)).sum();
    let reps: u32 = std::env::var("LWC_PERF_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(3);

    let best = |run: &dyn Fn() -> Result<(), PipelineError>| -> Result<f64, PipelineError> {
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let start = std::time::Instant::now();
            run()?;
            best = best.min(start.elapsed().as_secs_f64());
        }
        Ok(best)
    };

    let sequential = LosslessCodec::new(scales)?;
    let streams: Vec<Vec<u8>> =
        images.iter().map(|i| sequential.compress(i)).collect::<Result<_, _>>()?;
    let compressed_bytes: usize = streams.iter().map(Vec::len).sum();

    let batch = BatchCompressor::with_codec(sequential, 0);
    let subband = ParallelCodec::with_codec(sequential, 0);
    let modes = [
        PerfMode {
            name: "sequential",
            workers: 1,
            compress_seconds: best(&|| {
                for image in &images {
                    std::hint::black_box(sequential.compress(image)?);
                }
                Ok(())
            })?,
            decompress_seconds: best(&|| {
                for stream in &streams {
                    std::hint::black_box(sequential.decompress(stream)?);
                }
                Ok(())
            })?,
        },
        PerfMode {
            name: "batch",
            workers: batch.workers(),
            compress_seconds: best(&|| {
                std::hint::black_box(batch.compress_batch(&images)?);
                Ok(())
            })?,
            decompress_seconds: best(&|| {
                std::hint::black_box(batch.decompress_batch(&streams)?);
                Ok(())
            })?,
        },
        PerfMode {
            name: "parallel_subband",
            workers: subband.workers(),
            compress_seconds: best(&|| {
                for image in &images {
                    std::hint::black_box(subband.compress(image)?);
                }
                Ok(())
            })?,
            decompress_seconds: best(&|| {
                for stream in &streams {
                    std::hint::black_box(subband.decompress(stream)?);
                }
                Ok(())
            })?,
        },
    ];

    let mb = raw_bytes as f64 / 1e6;
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"harness\": \"reproduce perfjson\",\n");
    json.push_str(&format!(
        "  \"corpus\": {{\"images\": {count}, \"width\": {size}, \"height\": {size}, \
         \"bit_depth\": 12, \"scales\": {scales}, \"raw_bytes\": {raw_bytes}, \
         \"compressed_bytes\": {compressed_bytes}}},\n"
    ));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"modes\": {\n");
    for (index, mode) in modes.iter().enumerate() {
        let comma = if index + 1 == modes.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{}\": {{\"workers\": {}, \"compress\": {{\"seconds\": {:.6}, \
             \"mb_per_s\": {:.3}, \"images_per_s\": {:.3}}}, \"decompress\": \
             {{\"seconds\": {:.6}, \"mb_per_s\": {:.3}, \"images_per_s\": {:.3}}}}}{comma}\n",
            mode.name,
            mode.workers,
            mode.compress_seconds,
            mb / mode.compress_seconds,
            count as f64 / mode.compress_seconds,
            mode.decompress_seconds,
            mb / mode.decompress_seconds,
            count as f64 / mode.decompress_seconds,
        ));
        println!(
            "{:<17} ({} workers): compress {:>8.1} MB/s ({:>6.1} images/s), \
             decompress {:>8.1} MB/s ({:>6.1} images/s)",
            mode.name,
            mode.workers,
            mb / mode.compress_seconds,
            count as f64 / mode.compress_seconds,
            mb / mode.decompress_seconds,
            count as f64 / mode.decompress_seconds,
        );
    }
    json.push_str("  },\n");

    // Tiled engine: one image of twice the corpus side, swept over tile
    // sizes, next to the single-threaded whole-image baseline on the same
    // image — the intra-image scaling story in one object.
    let large = 2 * size;
    let large_image = synth::ct_phantom(large, large, 12, 77);
    let large_mb = (large_image.pixel_count() * 12).div_ceil(8) as f64 / 1e6;
    let whole_seconds = best(&|| {
        std::hint::black_box(sequential.compress(&large_image)?);
        Ok(())
    })?;
    json.push_str(&format!(
        "  \"tiled\": {{\n    \"image\": {{\"width\": {large}, \"height\": {large}, \
         \"bit_depth\": 12, \"scales\": {scales}}},\n    \"whole_image_sequential\": \
         {{\"seconds\": {whole_seconds:.6}, \"mb_per_s\": {:.3}}},\n",
        large_mb / whole_seconds
    ));
    println!(
        "whole-image sequential ({large}x{large}): compress {:>8.1} MB/s",
        large_mb / whole_seconds
    );
    let tile_sizes = [64usize, 128, 256];
    for (index, &tile) in tile_sizes.iter().enumerate() {
        let engine = TiledCompressor::with_codec(sequential, tile, tile, 0)?;
        let tiles = engine.grid(large, large)?.tile_count();
        // Record the worker count the run actually used (pool clamped to the
        // tile count), not the configured pool size — small sweeps at large
        // tiles use fewer threads than the pool offers.
        let (streamed, tile_report) = engine.compress_with_report(&large_image)?;
        let used_workers = tile_report.workers;
        let compress_seconds = best(&|| {
            std::hint::black_box(engine.compress(&large_image)?);
            Ok(())
        })?;
        let decompress_seconds = best(&|| {
            std::hint::black_box(engine.decompress(&streamed)?);
            Ok(())
        })?;
        let comma = if index + 1 == tile_sizes.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"tile_{tile}\": {{\"workers\": {}, \"tiles\": {tiles}, \"compress\": \
             {{\"seconds\": {compress_seconds:.6}, \"mb_per_s\": {:.3}, \"tiles_per_s\": \
             {:.3}}}, \"decompress\": {{\"seconds\": {decompress_seconds:.6}, \"mb_per_s\": \
             {:.3}, \"tiles_per_s\": {:.3}}}}}{comma}\n",
            used_workers,
            large_mb / compress_seconds,
            tiles as f64 / compress_seconds,
            large_mb / decompress_seconds,
            tiles as f64 / decompress_seconds,
        ));
        println!(
            "tiled tile={tile:<4} ({} workers, {tiles:>3} tiles): compress {:>8.1} MB/s \
             ({:>7.1} tiles/s), decompress {:>8.1} MB/s",
            used_workers,
            large_mb / compress_seconds,
            tiles as f64 / compress_seconds,
            large_mb / decompress_seconds,
        );
    }
    json.push_str("  },\n");

    // Tile-parallel fixed-point DWT: the paper-exact datapath sharded by
    // regions, swept over tile sizes against the monolithic single-thread
    // transform on the same frame. Rates are in raw Msamples/s because the
    // transform has no compressed output.
    let bank = FilterBank::table1(FilterId::F1);
    let dwt_scales = 5u32;
    let hw = FixedDwt2d::paper_default(&bank, dwt_scales)?;
    let msamples = (large * large) as f64 / 1e6;
    let mono_forward = {
        let mut best_s = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let start = std::time::Instant::now();
            std::hint::black_box(hw.forward(&large_image)?);
            best_s = best_s.min(start.elapsed().as_secs_f64());
        }
        best_s
    };
    json.push_str(&format!(
        "  \"dwt_tiled\": {{\n    \"frame\": {{\"width\": {large}, \"height\": {large}, \
         \"bit_depth\": 12, \"scales\": {dwt_scales}, \"filter\": \"F1\"}},\n    \
         \"monolithic\": {{\"seconds\": {mono_forward:.6}, \"msamples_per_s\": {:.3}}},\n",
        msamples / mono_forward
    ));
    println!(
        "monolithic fixed DWT forward ({large}x{large}): {:>8.1} Msamples/s",
        msamples / mono_forward
    );
    for (index, &tile) in tile_sizes.iter().enumerate() {
        let engine = TiledFixedDwt2d::with_transform(hw.clone(), tile, tile, 0)?;
        let tiles = engine.grid(large, large)?.tile_count();
        let mut forward_s = f64::INFINITY;
        // As above: the report carries the worker count the sweep point
        // actually used, which the pool size alone misstates.
        let mut used_workers = engine.workers().min(tiles);
        for _ in 0..reps.max(1) {
            let (_, report) = engine.forward_with_report(&large_image)?;
            forward_s = forward_s.min(report.wall.as_secs_f64());
            used_workers = report.workers;
        }
        let coeffs = engine.forward(&large_image)?;
        let mut inverse_s = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let start = std::time::Instant::now();
            std::hint::black_box(engine.inverse(&coeffs)?);
            inverse_s = inverse_s.min(start.elapsed().as_secs_f64());
        }
        let comma = if index + 1 == tile_sizes.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"tile_{tile}\": {{\"workers\": {}, \"tiles\": {tiles}, \"forward\": \
             {{\"seconds\": {forward_s:.6}, \"msamples_per_s\": {:.3}, \"tiles_per_s\": \
             {:.3}}}, \"inverse\": {{\"seconds\": {inverse_s:.6}, \"msamples_per_s\": \
             {:.3}}}}}{comma}\n",
            used_workers,
            msamples / forward_s,
            tiles as f64 / forward_s,
            msamples / inverse_s,
        ));
        println!(
            "dwt tiled tile={tile:<4} ({} workers, {tiles:>3} tiles): forward {:>8.1} \
             Msamples/s, inverse {:>8.1} Msamples/s",
            used_workers,
            msamples / forward_s,
            msamples / inverse_s,
        );
    }
    json.push_str("  },\n");

    // Line-based fused DWT: the whole multi-scale fixed-point transform in
    // one streaming pass over the rows (O(width x levels) working set)
    // against the multi-pass monolithic transform and the tile-parallel
    // driver on the same frame, swept over decomposition depth. One pass
    // over memory instead of one per scale is the locality win this section
    // quantifies.
    let line_side = (16 * size).min(4096);
    let line_frame = synth::ct_phantom(line_side, line_side, 12, 99);
    let line_view = line_frame.view();
    let line_msamples = (line_side * line_side) as f64 / 1e6;
    let line_tile = 256.min(line_side);
    json.push_str(&format!(
        "  \"dwt_line\": {{\n    \"frame\": {{\"width\": {line_side}, \"height\": \
         {line_side}, \"bit_depth\": 12, \"filter\": \"F1\"}},\n    \"tiled_tile\": \
         {line_tile},\n"
    ));
    for line_scales in 1..=5u32 {
        let hw_n = FixedDwt2d::paper_default(&bank, line_scales)?;
        // The fused engine's contract is streaming: coefficient rows flow to
        // a consumer (e.g. the row-streaming encoder) as they are produced,
        // so `fused_line` times exactly that — push_row/finish into a sink.
        // `fused_materialized` additionally scatters every row into a
        // frame-sized Mallat buffer, the apples-to-apples layout of
        // `multi_pass`; the gap between the two is the cost of building the
        // 128 MB coefficient frame the streaming consumer never needs.
        let mut fused_s = f64::INFINITY;
        let mut materialized_s = f64::INFINITY;
        let mut multi_s = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let start = std::time::Instant::now();
            let mut engine = LineFixedDwt::new(&hw_n, line_side, line_side)?;
            let mut sink = |c: FixedCoeffRow<'_>| {
                std::hint::black_box(c.samples.last());
            };
            for y in 0..line_side {
                engine.push_row(line_view.row(y), &mut sink)?;
            }
            engine.finish(&mut sink)?;
            fused_s = fused_s.min(start.elapsed().as_secs_f64());
            let start = std::time::Instant::now();
            std::hint::black_box(LineFixedDwt::forward_view(&hw_n, &line_view)?);
            materialized_s = materialized_s.min(start.elapsed().as_secs_f64());
            let start = std::time::Instant::now();
            std::hint::black_box(hw_n.forward(&line_frame)?);
            multi_s = multi_s.min(start.elapsed().as_secs_f64());
        }
        let line_tiled = TiledFixedDwt2d::with_transform(hw_n, line_tile, line_tile, 0)?;
        let mut tiled_s = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let (_, report) = line_tiled.forward_with_report(&line_frame)?;
            tiled_s = tiled_s.min(report.wall.as_secs_f64());
        }
        let comma = if line_scales == 5 { "" } else { "," };
        json.push_str(&format!(
            "    \"scales_{line_scales}\": {{\"fused_line\": {{\"seconds\": {fused_s:.6}, \
             \"msamples_per_s\": {:.3}}}, \"fused_materialized\": {{\"seconds\": \
             {materialized_s:.6}, \"msamples_per_s\": {:.3}}}, \"multi_pass\": \
             {{\"seconds\": {multi_s:.6}, \"msamples_per_s\": {:.3}}}, \"tiled\": \
             {{\"seconds\": {tiled_s:.6}, \"msamples_per_s\": {:.3}}}, \
             \"fused_speedup_vs_multi_pass\": {:.3}}}{comma}\n",
            line_msamples / fused_s,
            line_msamples / materialized_s,
            line_msamples / multi_s,
            line_msamples / tiled_s,
            multi_s / fused_s,
        ));
        println!(
            "dwt line {line_scales} scale(s) ({line_side}x{line_side}): fused {:>8.1} \
             Msamples/s (materialized {:>8.1}), multi-pass {:>8.1} Msamples/s, tiled \
             {:>8.1} Msamples/s (fused {:>5.2}x multi-pass)",
            line_msamples / fused_s,
            line_msamples / materialized_s,
            line_msamples / multi_s,
            line_msamples / tiled_s,
            multi_s / fused_s,
        );
    }
    json.push_str("  },\n");

    // Fixed-path codec: the paper-exact datapath plus its Rice entropy back
    // end, end to end into an LWCF container on the same large frame. The
    // lifting codec's ratio on that frame sits next to it so the expansion
    // of the lossless fixed path stays quantified, not hidden.
    let fixed = TiledFixedCompressor::with_dwt(TiledFixedDwt2d::with_transform(
        hw.clone(),
        128.min(large),
        128.min(large),
        0,
    )?);
    let fixed_stream = Codec::compress(&fixed, &large_image)?;
    let fixed_compress = best(&|| {
        std::hint::black_box(Codec::compress(&fixed, &large_image)?);
        Ok(())
    })?;
    let fixed_decompress = best(&|| {
        std::hint::black_box(Codec::decompress(&fixed, &fixed_stream)?);
        Ok(())
    })?;
    let large_raw = (large_image.pixel_count() * 12).div_ceil(8);
    let lifting_len = sequential.compress(&large_image)?.len();
    json.push_str(&format!(
        "  \"fixed_codec\": {{\"filter\": \"F1\", \"scales\": {dwt_scales}, \"tile\": {}, \
         \"workers\": {}, \"raw_bytes\": {large_raw}, \"compressed_bytes\": {}, \
         \"ratio\": {:.4}, \"lifting_ratio\": {:.4}, \"compress\": {{\"seconds\": \
         {fixed_compress:.6}, \"mb_per_s\": {:.3}}}, \"decompress\": {{\"seconds\": \
         {fixed_decompress:.6}, \"mb_per_s\": {:.3}}}}},\n",
        fixed.dwt().tile_width(),
        fixed.workers(),
        fixed_stream.len(),
        large_raw as f64 / fixed_stream.len() as f64,
        large_raw as f64 / lifting_len as f64,
        large_mb / fixed_compress,
        large_mb / fixed_decompress,
    ));
    println!(
        "fixed codec (LWCF, tile {}, {} workers): compress {:>8.1} MB/s, decompress \
         {:>8.1} MB/s, ratio {:.2}:1 (lifting codec on the same frame: {:.2}:1)",
        fixed.dwt().tile_width(),
        fixed.workers(),
        large_mb / fixed_compress,
        large_mb / fixed_decompress,
        large_raw as f64 / fixed_stream.len() as f64,
        large_raw as f64 / lifting_len as f64,
    );

    // Serving layer: a loopback LWCP server driven by the concurrent load
    // generator — requests/s and MB/s through real sockets, swept across
    // connections x workers so the scaling curve (not one point) is on
    // record. Each point is provisioned (budget = conns x depth + workers),
    // so any busy rejection is a server regression, not an artefact of the
    // sweep. The serve image is pinned to 256x256 to keep the sweep's cost
    // independent of the corpus `size` argument.
    const SERVE_IMAGE: usize = 256;
    const SERVE_DEPTH: usize = 4;
    const SERVE_REQUESTS: usize = 8;
    json.push_str(&format!(
        "  \"serve\": {{\"image\": {SERVE_IMAGE}, \"pipeline_depth\": {SERVE_DEPTH}, \
         \"requests_per_connection\": {SERVE_REQUESTS}, \"points\": [\n"
    ));
    let mut first_point = true;
    for &workers in &[1usize, 2, 4] {
        for &conns in &[1usize, 4, 16, 64] {
            let budget = conns * SERVE_DEPTH + workers;
            let (report, stats, _) =
                measure_serve(conns, SERVE_REQUESTS, SERVE_IMAGE, workers, budget)?;
            if !first_point {
                json.push_str(",\n");
            }
            first_point = false;
            json.push_str(&format!(
                "    {{\"connections\": {conns}, \"workers\": {workers}, \"budget\": {budget}, \
                 \"requests\": {}, \"completed\": {}, \"rejected_busy\": {}, \
                 \"requests_per_s\": {:.3}, \"upload_mb_per_s\": {:.3}, \
                 \"download_mb_per_s\": {:.3}}}",
                report.requests,
                report.completed,
                report.rejected_busy,
                report.requests_per_second(),
                report.upload_mb_per_second(),
                report.download_mb_per_second(),
            ));
            println!(
                "serve {conns:>2} conns x {workers} workers (budget {budget:>3}): \
                 {:>7.1} req/s, {:>6.1} MB/s up, {:>5.1} MB/s down ({} busy)",
                report.requests_per_second(),
                report.upload_mb_per_second(),
                report.download_mb_per_second(),
                stats.rejected_busy,
            );
        }
    }
    json.push_str("\n  ]},\n");

    // Volumetric engine: the brick-parallel 3-D codec on a correlated CT
    // stack, swept over worker counts, with the per-slice 2-D bytes of the
    // same voxels alongside so the z-transform's gain stays on record.
    let vol_depth = 16usize;
    let vol_z_scales = 3u32;
    let vol_tile = 64.min(size);
    let vol_stack = synth::ct_volume(size, size, vol_depth, 12, 9);
    let vol_msamples = vol_stack.voxel_count() as f64 / 1e6;
    let vol_raw = (vol_stack.voxel_count() * 12).div_ceil(8);
    let slice_engine = TiledCompressor::with_codec(sequential, vol_tile, vol_tile, 1)?;
    let mut per_slice_bytes = 0usize;
    for z in 0..vol_depth {
        per_slice_bytes += slice_engine.compress(&vol_stack.slice_image(z)?)?.len();
    }
    let vol_reference =
        VolumeCompressor::with_codec(sequential, vol_z_scales, vol_tile, vol_tile, 8, 1)?
            .compress_stack(&vol_stack)?;
    json.push_str(&format!(
        "  \"volume\": {{\n    \"stack\": {{\"width\": {size}, \"height\": {size}, \"depth\": \
         {vol_depth}, \"bit_depth\": 12, \"scales\": {scales}, \"z_scales\": {vol_z_scales}, \
         \"tile\": {vol_tile}, \"brick_depth\": 8}},\n    \"raw_bytes\": {vol_raw}, \
         \"compressed_bytes\": {}, \"ratio\": {:.4}, \"per_slice_2d_bytes\": \
         {per_slice_bytes}, \"per_slice_2d_ratio\": {:.4},\n",
        vol_reference.len(),
        vol_raw as f64 / vol_reference.len() as f64,
        vol_raw as f64 / per_slice_bytes as f64,
    ));
    let vol_workers = [1usize, 2, 4];
    for (index, &workers) in vol_workers.iter().enumerate() {
        let engine =
            VolumeCompressor::with_codec(sequential, vol_z_scales, vol_tile, vol_tile, 8, workers)?;
        let bytes = engine.compress_stack(&vol_stack)?;
        assert_eq!(bytes, vol_reference, "LWCV bytes changed with {workers} workers");
        let compress_seconds = best(&|| {
            std::hint::black_box(engine.compress_stack(&vol_stack)?);
            Ok(())
        })?;
        let decompress_seconds = best(&|| {
            std::hint::black_box(engine.decompress_stack(&bytes)?);
            Ok(())
        })?;
        let comma = if index + 1 == vol_workers.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"workers_{workers}\": {{\"compress\": {{\"seconds\": {compress_seconds:.6}, \
             \"msamples_per_s\": {:.3}}}, \"decompress\": {{\"seconds\": \
             {decompress_seconds:.6}, \"msamples_per_s\": {:.3}}}}}{comma}\n",
            vol_msamples / compress_seconds,
            vol_msamples / decompress_seconds,
        ));
        println!(
            "volume {workers} worker(s) ({size}x{size}x{vol_depth}): compress {:>8.1} \
             Msamples/s, decompress {:>8.1} Msamples/s",
            vol_msamples / compress_seconds,
            vol_msamples / decompress_seconds,
        );
    }
    println!(
        "volume ratio {:.3}:1 vs per-slice 2-D {:.3}:1 on the same voxels",
        vol_raw as f64 / vol_reference.len() as f64,
        vol_raw as f64 / per_slice_bytes as f64,
    );
    json.push_str("  },\n");

    // Real-corpus harness: the DICOM/PGM rate-vs-distortion sweep on the
    // deterministic fixture corpus (or LWC_CORPUS_DIR), per modality and per
    // near-lossless bound δ. Infinite PSNR (lossless) serialises as null.
    let corpus_root = lwc_bench::corpus::resolve_root(None)?;
    let corpus_deltas = [0u8, 2, 4];
    json.push_str(&format!(
        "  \"real_corpus\": {{\n    \"root\": {:?},\n    \"scales\": {},\n    \"deltas\": {{\n",
        corpus_root.display().to_string(),
        lwc_bench::corpus::CORPUS_SCALES,
    ));
    for (d_index, &delta) in corpus_deltas.iter().enumerate() {
        let rows = lwc_bench::corpus::evaluate(&corpus_root, delta, 0)?;
        json.push_str(&format!("      \"{delta}\": {{\n"));
        for (r_index, row) in rows.iter().enumerate() {
            let psnr = if row.psnr_db.is_finite() {
                format!("{:.3}", row.psnr_db)
            } else {
                "null".to_owned()
            };
            let comma = if r_index + 1 == rows.len() { "" } else { "," };
            json.push_str(&format!(
                "        \"{}\": {{\"files\": {}, \"frames\": {}, \"raw_bytes\": {}, \
                 \"compressed_bytes\": {}, \"ratio\": {:.4}, \"psnr_db\": {psnr}, \
                 \"ssim\": {:.6}, \"max_abs_error\": {}}}{comma}\n",
                row.modality,
                row.files,
                row.frames,
                row.raw_bytes,
                row.compressed_bytes,
                row.ratio,
                row.ssim,
                row.max_abs_error,
            ));
            println!(
                "corpus δ={delta} {:<6} {:>2} files {:>2} frames: ratio {:>7.3}:1, \
                 PSNR {:>9}, SSIM {:.4}, L∞ {}",
                row.modality,
                row.files,
                row.frames,
                row.ratio,
                if row.psnr_db.is_finite() {
                    format!("{:.2} dB", row.psnr_db)
                } else {
                    "lossless".to_owned()
                },
                row.ssim,
                row.max_abs_error,
            );
        }
        let comma = if d_index + 1 == corpus_deltas.len() { "" } else { "," };
        json.push_str(&format!("      }}{comma}\n"));
    }
    json.push_str("    }\n  }\n");

    json.push_str("}\n");
    std::fs::write("BENCH_throughput.json", &json)?;
    println!(
        "wrote BENCH_throughput.json ({} modes + {} tiled sweeps + {} dwt_tiled sweeps + \
         fixed codec + serve + volume + real corpus, best of {reps} reps)",
        modes.len(),
        tile_sizes.len(),
        tile_sizes.len()
    );
    Ok(())
}

/// Runs the real-corpus harness standalone: resolve the corpus root
/// (argument, `LWC_CORPUS_DIR`, in-tree `fixtures/corpus`, or a generated
/// fixture corpus), evaluate every modality at a sweep of near-lossless
/// bounds, and print the ratio-vs-PSNR table. δ = 0 is asserted lossless and
/// every row is checked against its bound inside the evaluator.
fn corpus(dir: Option<&str>) -> Result<(), Box<dyn std::error::Error>> {
    heading("Real-corpus harness — per-modality compression ratio vs PSNR");
    let root = lwc_bench::corpus::resolve_root(dir)?;
    let files = lwc_bench::corpus::discover(&root)?;
    println!("corpus root: {} ({} files)", root.display(), files.len());
    println!(
        "{:<4} {:<10} {:>5} {:>6} {:>11} {:>11} {:>8} {:>10} {:>7} {:>4}",
        "δ", "modality", "files", "frames", "raw B", "coded B", "ratio", "PSNR", "SSIM", "L∞"
    );
    for delta in [0u8, 1, 2, 4] {
        for row in lwc_bench::corpus::evaluate(&root, delta, 0)? {
            if delta == 0 {
                assert_eq!(row.max_abs_error, 0, "{}: δ=0 must be lossless", row.modality);
            }
            println!(
                "{:<4} {:<10} {:>5} {:>6} {:>11} {:>11} {:>7.3}:1 {:>10} {:>7.4} {:>4}",
                delta,
                row.modality,
                row.files,
                row.frames,
                row.raw_bytes,
                row.compressed_bytes,
                row.ratio,
                if row.psnr_db.is_finite() {
                    format!("{:.2} dB", row.psnr_db)
                } else {
                    "lossless".to_owned()
                },
                row.ssim,
                row.max_abs_error,
            );
        }
    }
    println!("every reconstruction checked against its bound; δ=0 byte-exact lossless");
    Ok(())
}

/// One loopback measurement of the serving layer: a server on an ephemeral
/// port, `connections` concurrent clients pipelining compress requests for a
/// deterministic 12-bit phantom. `budget` is the global in-flight budget
/// (0 resolves to the server default of 4 x workers).
fn measure_serve(
    connections: usize,
    requests_per_connection: usize,
    size: usize,
    workers: usize,
    budget: usize,
) -> Result<(LoadReport, ServerStats, ServerConfig), Box<dyn std::error::Error>> {
    let config = ServerConfig {
        workers,
        queue_depth: budget,
        scales: 4,
        tile_size: 128,
        ..ServerConfig::default()
    };
    let mut server = Server::bind("127.0.0.1:0", config)?;
    let image = synth::ct_phantom(size, size, 12, 0xC0DE);
    let load = LoadGenConfig { connections, requests_per_connection, pipeline_depth: 4 };
    let report = loadgen::run(server.local_addr(), &load, &image)?;
    let stats = server.stats();
    let resolved = *server.config();
    server.shutdown();
    Ok((report, stats, resolved))
}

/// Serving smoke: start a loopback server, drive it with the concurrent
/// load generator, print throughput and the server's own counters, and fail
/// loudly on any of three regressions: busy rejections at a provisioned
/// in-flight budget, the work-stealing scheduler leaving all tile work on
/// one worker, or a deliberately starved budget *not* pushing back. CI runs
/// this on every push.
fn serve(connections: usize) -> Result<(), Box<dyn std::error::Error>> {
    heading(&format!("Serving smoke — loopback LWCP service, {connections} connections"));

    // Provisioned: the budget covers every outstanding request, so nothing
    // may bounce, and with several workers the steal path must spread the
    // per-tile jobs beyond a single worker.
    let workers = 4;
    let budget = connections * 4 + workers;
    let (report, stats, config) = measure_serve(connections, 16, 256, workers, budget)?;
    println!(
        "server: {} workers, in-flight budget {}, {} per connection, scales {}, tile {}",
        config.workers, config.queue_depth, config.conn_inflight, config.scales, config.tile_size
    );
    println!("load:   {report}");
    println!("stats:  {stats}");
    assert_eq!(
        report.completed, report.requests,
        "a provisioned budget must complete every request"
    );
    assert_eq!(report.rejected_busy, 0, "a provisioned budget must never answer busy");
    assert_eq!(report.failed, 0, "no request may fail outright");
    assert_eq!(
        stats.completed_requests, report.completed,
        "server and client must agree on the completed count"
    );
    assert!(
        stats.active_workers >= 2,
        "work stealing must spread tile jobs beyond one worker (got {})",
        stats.active_workers
    );

    // Starved: pin the budget to 1 and flood — backpressure must answer
    // `busy` instead of buffering without bound.
    let (tiny_report, _, _) = measure_serve(connections.max(2), 16, 256, 1, 1)?;
    println!("starved (budget 1): {tiny_report}");
    assert!(
        tiny_report.rejected_busy > 0,
        "a budget of 1 under a pipelined flood must reject some requests busy"
    );
    assert_eq!(
        tiny_report.completed + tiny_report.rejected_busy,
        tiny_report.requests,
        "every request is either completed or bounced busy"
    );
    println!("(the machine-readable serve sweep lands in BENCH_throughput.json via perfjson)");
    Ok(())
}

/// End-to-end smoke of the tile-parallel path on one large synthetic image:
/// compress, full decompress, row-band streaming decompress — all three must
/// agree bit for bit with the source. CI runs this at 4096x4096, a size the
/// monolithic path would happily thrash caches on.
/// Volumetric engine smoke + evaluation: the brick-parallel 3-D codec on a
/// correlated synthetic CT stack. Asserts the three properties the subsystem
/// promises — a lossless 3-D round trip, `LWCV` bytes independent of the
/// worker count, and a 3-D ratio beating per-slice 2-D coding of the same
/// voxels — and prints ratios plus Msamples/s for both paths. CI runs this
/// on every push at a reduced size.
fn volume(size: usize) -> Result<(), Box<dyn std::error::Error>> {
    let depth = 16usize;
    heading(&format!("Volumetric engine — {size}x{size}x{depth} 12-bit correlated stack"));
    let stack = synth::ct_volume(size, size, depth, 12, 9);
    let raw_bytes = (stack.voxel_count() * 12).div_ceil(8);
    let msamples = stack.voxel_count() as f64 / 1e6;
    let scales = 4u32;
    let z_scales = 3u32;
    let tile = 64.min(size);
    let codec = LosslessCodec::new(scales)?;

    // Per-slice 2-D baseline: every slice through the tiled 2-D codec,
    // independently — exactly what a 2-D-only service would store.
    let slice_engine = TiledCompressor::with_codec(codec, tile, tile, 1)?;
    let start = std::time::Instant::now();
    let mut per_slice_bytes = 0usize;
    for z in 0..depth {
        per_slice_bytes += slice_engine.compress(&stack.slice_image(z)?)?.len();
    }
    let slice_seconds = start.elapsed().as_secs_f64();

    // 3-D engine across worker counts: the container bytes must not depend
    // on how many threads encoded the bricks.
    let mut reference: Option<Vec<u8>> = None;
    for workers in [1usize, 2, 5] {
        let engine = VolumeCompressor::with_codec(codec, z_scales, tile, tile, 8, workers)?;
        let bytes = engine.compress_stack(&stack)?;
        match &reference {
            None => reference = Some(bytes),
            Some(expect) => assert_eq!(&bytes, expect, "LWCV bytes changed with {workers} workers"),
        }
    }
    let bytes = reference.expect("reference stream");

    let engine = VolumeCompressor::with_codec(codec, z_scales, tile, tile, 8, 0)?;
    let grid = engine.grid(size, size, depth)?;
    println!(
        "brick grid: {}x{}x{} voxels in {} bricks of {}x{}x{}, {} workers",
        size,
        size,
        depth,
        grid.brick_count(),
        tile,
        tile,
        grid.brick_depth(),
        engine.workers()
    );
    let start = std::time::Instant::now();
    std::hint::black_box(engine.compress_stack(&stack)?);
    let compress_seconds = start.elapsed().as_secs_f64();
    let start = std::time::Instant::now();
    let back = engine.decompress_stack(&bytes)?;
    let decompress_seconds = start.elapsed().as_secs_f64();
    assert_eq!(back.samples(), stack.samples(), "3-D round trip must be lossless");

    // Slab streaming decode: one brick layer resident at a time, same voxels.
    let mut slab_z = 0usize;
    for slab in engine.decompress_slabs(&bytes)? {
        let slab = slab?;
        assert_eq!(slab.z, slab_z, "slabs must arrive in z order");
        for (dz, z) in (slab.z..slab.z + slab.stack.depth()).enumerate() {
            assert_eq!(
                slab.stack.slice_image(dz)?.samples(),
                stack.slice_image(z)?.samples(),
                "slab slice {z} must match the source"
            );
        }
        slab_z += slab.stack.depth();
    }
    assert_eq!(slab_z, depth, "slabs must cover every slice");

    let ratio_3d = raw_bytes as f64 / bytes.len() as f64;
    let ratio_2d = raw_bytes as f64 / per_slice_bytes as f64;
    println!(
        "3-D (z_scales {z_scales}):   {} bytes, ratio {ratio_3d:.3}:1, compress {:.1} \
         Msamples/s, decompress {:.1} Msamples/s",
        bytes.len(),
        msamples / compress_seconds,
        msamples / decompress_seconds,
    );
    println!(
        "per-slice 2-D: {per_slice_bytes} bytes, ratio {ratio_2d:.3}:1, compress {:.1} \
         Msamples/s",
        msamples / slice_seconds,
    );
    println!(
        "3-D advantage: {:.2}% fewer bytes than per-slice 2-D",
        100.0 * (1.0 - bytes.len() as f64 / per_slice_bytes as f64)
    );
    assert!(
        bytes.len() < per_slice_bytes,
        "the z transform must beat per-slice 2-D coding on a correlated stack \
         ({} vs {per_slice_bytes} bytes)",
        bytes.len()
    );
    Ok(())
}

fn tiled(size: usize) -> Result<(), Box<dyn std::error::Error>> {
    heading(&format!("Tiled engine smoke — {size}x{size} 12-bit synthetic image"));
    let image = synth::ct_phantom(size, size, 12, 42);
    let engine = TiledCompressor::new(5, DEFAULT_TILE_SIZE, 0)?;
    let grid = engine.grid(size, size)?;
    println!(
        "tile grid: {}x{} tiles of {}x{} ({} tiles), {} workers",
        grid.tiles_x(),
        grid.tiles_y(),
        grid.tile_width(),
        grid.tile_height(),
        grid.tile_count(),
        engine.workers()
    );
    let (bytes, report) = engine.compress_with_report(&image)?;
    println!("compress:   {report}");

    let start = std::time::Instant::now();
    let back = engine.decompress(&bytes)?;
    let wall = start.elapsed().as_secs_f64();
    let exact = stats::bit_exact(&image, &back)?;
    println!(
        "decompress: {:.3} s ({:.1} MB/s), lossless: {}",
        wall,
        report.raw_bytes as f64 / 1e6 / wall.max(1e-9),
        if exact { "yes" } else { "NO" }
    );
    assert!(exact, "tiled round trip must be bit exact");

    // Row-band streaming decode: bounded memory, same pixels.
    let start = std::time::Instant::now();
    let mut rows = 0usize;
    let mut streamed_exact = true;
    for band in engine.decompress_row_bands(&bytes)? {
        let band = band?;
        let rect = TileRect { x: 0, y: band.y, width: size, height: band.image.height() };
        streamed_exact &= stats::bit_exact(&image.crop(rect)?, &band.image)?;
        rows += band.image.height();
    }
    println!(
        "row-band streaming decode: {:.3} s, {rows} rows, lossless: {}",
        start.elapsed().as_secs_f64(),
        if streamed_exact { "yes" } else { "NO" }
    );
    assert!(rows == size && streamed_exact, "row-band streaming decode must be bit exact");
    Ok(())
}

/// Tile-parallel fixed-point DWT smoke on one large frame: the tiled driver
/// must be bit-identical to the monolithic transform — a single-tile grid
/// reproduces `FixedDwt2d::forward` exactly, every multi-tile region matches
/// the monolithic transform of its crop, the words never depend on the
/// worker count, and the round trip is lossless. CI runs this at 4096×4096.
fn dwt_tiled(size: usize) -> Result<(), Box<dyn std::error::Error>> {
    heading(&format!("Tile-parallel fixed-point DWT smoke — {size}x{size} 12-bit frame"));
    let bank = FilterBank::table1(FilterId::F1);
    let scales = 5u32;
    let frame = synth::ct_phantom(size, size, 12, 42);
    let engine = TiledFixedDwt2d::new(&bank, scales, DEFAULT_TILE_SIZE, 0)?;
    let grid = engine.grid(size, size)?;
    println!(
        "tile grid: {}x{} tiles of {}x{} ({} tiles), {} workers, {scales} scales",
        grid.tiles_x(),
        grid.tiles_y(),
        grid.tile_width(),
        grid.tile_height(),
        grid.tile_count(),
        engine.workers()
    );

    let (coeffs, report) = engine.forward_with_report(&frame)?;
    println!("tiled forward:      {report}");

    // Worker-count independence: one worker must produce the same words.
    let sequential = TiledFixedDwt2d::new(&bank, scales, DEFAULT_TILE_SIZE, 1)?;
    let (seq_coeffs, seq_report) = sequential.forward_with_report(&frame)?;
    assert!(coeffs == seq_coeffs, "tiled DWT words must not depend on the worker count");
    println!(
        "1-worker forward:   {seq_report} ({:.2}x parallel speedup, words identical)",
        report.speedup_over(&seq_report)
    );

    // Tiled == monolithic, degenerate grid: one tile covering the frame is
    // exactly the monolithic transform of the whole frame.
    let monolithic = FixedDwt2d::paper_default(&bank, scales)?;
    let single = TiledFixedDwt2d::with_transform(monolithic.clone(), size, size, 0)?;
    let start = std::time::Instant::now();
    let whole = monolithic.forward(&frame)?;
    let mono_wall = start.elapsed().as_secs_f64();
    let single_tiles = single.forward(&frame)?;
    assert!(single_tiles.grid().is_single() && single_tiles.tile(0) == &whole);
    println!(
        "monolithic forward: {:.3} s ({:.1} Msamples/s); single-tile grid bit-identical",
        mono_wall,
        (size * size) as f64 / 1e6 / mono_wall.max(1e-9)
    );

    // Tiled == monolithic, per region: sampled tiles of the multi-tile grid
    // match the monolithic transform of their crops word for word.
    for index in [0, grid.tile_count() / 2, grid.tile_count() - 1] {
        let crop = frame.crop(grid.rect(index))?;
        assert!(
            coeffs.tile(index) == &monolithic.forward(&crop)?,
            "tile {index} must match the monolithic transform of its region"
        );
    }
    println!("sampled tiles match the monolithic transform of their regions word for word");

    // Lossless round trip through the tile-parallel inverse.
    let back = engine.inverse(&coeffs)?;
    let exact = stats::bit_exact(&frame, &back)?;
    println!("tiled inverse round trip lossless: {}", if exact { "yes" } else { "NO" });
    assert!(exact, "tiled fixed-point round trip must be bit exact");
    Ok(())
}

/// Line-based fused DWT smoke: the one-pass streaming cascade is
/// bit-identical to the multi-pass drivers on **both** datapaths (5/3
/// lifting with mirror extension, paper-exact fixed point with periodic
/// extension), and the row-streaming encoder produces the sequential
/// codec's exact bytes with an `O(width x levels)` coefficient working set,
/// round tripping through the pull-style row-band decode. CI runs this at
/// 4096x4096.
fn dwt_line(size: usize) -> Result<(), Box<dyn std::error::Error>> {
    heading(&format!("Line-based fused DWT smoke — {size}x{size} 12-bit frame"));
    let frame = synth::ct_phantom(size, size, 12, 33);
    let scales = 5.min(frame.max_scales());
    let msamples = (size * size) as f64 / 1e6;

    // Lifting datapath: the fused cascade vs the multi-pass driver, full
    // frame and a ragged odd-dimension crop (which exercises every mirror
    // tail of the ragged pyramid).
    let lifting = Lifting53::new(scales)?;
    let start = std::time::Instant::now();
    let multi = lifting.forward(&frame)?;
    let multi_s = start.elapsed().as_secs_f64();
    let start = std::time::Instant::now();
    let fused = LineDwt53::forward_view(&frame.view(), scales)?;
    let fused_s = start.elapsed().as_secs_f64();
    assert!(fused == multi, "fused lifting cascade must be bit-identical to the multi-pass driver");
    println!(
        "lifting 5/3 fused:  {:>8.1} Msamples/s (multi-pass {:>8.1}), coefficients identical",
        msamples / fused_s.max(1e-9),
        msamples / multi_s.max(1e-9)
    );
    if size > 8 {
        let rect = TileRect { x: 1, y: 2, width: size - 3, height: size - 5 };
        let ragged = frame.crop(rect)?;
        assert!(
            LineDwt53::forward_view(&ragged.view(), scales)? == lifting.forward(&ragged)?,
            "fused lifting cascade must match on ragged odd dimensions"
        );
        println!(
            "ragged {}x{} crop: fused coefficients identical across the odd-dimension pyramid",
            rect.width, rect.height
        );
    }

    // Paper-exact fixed-point datapath: same comparison at Table II word
    // lengths (the frame side must be divisible by 2^scales).
    let bank = FilterBank::table1(FilterId::F1);
    let hw = FixedDwt2d::paper_default(&bank, scales)?;
    let start = std::time::Instant::now();
    let multi_fixed = hw.forward(&frame)?;
    let multi_fixed_s = start.elapsed().as_secs_f64();
    let start = std::time::Instant::now();
    let fused_fixed = LineFixedDwt::forward_view(&hw, &frame.view())?;
    let fused_fixed_s = start.elapsed().as_secs_f64();
    assert!(
        fused_fixed == multi_fixed,
        "fused fixed-point cascade must be bit-identical to the multi-pass driver"
    );
    println!(
        "fixed F1 fused:     {:>8.1} Msamples/s (multi-pass {:>8.1}), words identical",
        msamples / fused_fixed_s.max(1e-9),
        msamples / multi_fixed_s.max(1e-9)
    );

    // Row-streaming encode: push rows through the fused cascade straight
    // into the Rice coders; bytes must equal the sequential codec's and the
    // coefficient working set must stay a sliver of the frame.
    let line = LineCompressor::new(scales)?;
    let mut encoder = line.begin(size, size, 12)?;
    let mut peak = 0usize;
    for y in 0..size {
        encoder.push_row(frame.view().row(y));
        peak = peak.max(encoder.working_set_samples());
    }
    let bytes = encoder.finish();
    assert_eq!(
        bytes,
        LosslessCodec::new(scales)?.compress(&frame)?,
        "streamed bytes must be identical to the sequential codec"
    );
    assert!(
        peak * 8 < size * size,
        "peak coefficient working set {peak} must stay far below the {} frame samples",
        size * size
    );
    println!(
        "streaming encode:   peak working set {peak} samples ({:.2}% of the frame), \
         bytes identical to the sequential codec",
        100.0 * peak as f64 / (size * size) as f64
    );

    // The pull-style partner: a line-transform tiled container streams back
    // out through bounded row bands — bounded-memory encode AND decode.
    let tiled = TiledCompressor::new(scales, DEFAULT_TILE_SIZE, 0)?.with_line_transform();
    let container = tiled.compress(&frame)?;
    assert_eq!(
        container,
        TiledCompressor::new(scales, DEFAULT_TILE_SIZE, 0)?.compress(&frame)?,
        "the line transform must not change the container bytes"
    );
    let mut next_y = 0usize;
    for band in tiled.decompress_row_bands(&container)? {
        let band = band?;
        assert_eq!(band.y, next_y);
        let rect = TileRect { x: 0, y: band.y, width: size, height: band.image.height() };
        assert!(stats::bit_exact(&frame.crop(rect)?, &band.image)?);
        next_y += band.image.height();
    }
    assert_eq!(next_y, size);
    println!("row-band decode:    container from the line transform streams back bit exact");
    Ok(())
}

/// End-to-end smoke of the paper-exact fixed-point codec: the Table I
/// datapath plus the Rice entropy back end producing a real decodable
/// `LWCF` bitstream. Dispatches through `&dyn Codec` — the same interface
/// the server and batch engine use — and checks the round trip is bit
/// exact, the bytes never depend on the worker count, and the container
/// directory serves random tile access. CI runs this at 4096×4096.
fn fixed_codec(size: usize) -> Result<(), Box<dyn std::error::Error>> {
    heading(&format!("Fixed-path codec smoke — {size}x{size} 12-bit frame -> LWCF"));
    let bank = FilterBank::table1(FilterId::F1);
    let scales = 5u32;
    let tile = DEFAULT_TILE_SIZE.min(size);
    let frame = synth::ct_phantom(size, size, 12, 42);
    let concrete = TiledFixedCompressor::new(&bank, scales, tile, 0)?;
    let grid = concrete.grid(size, size)?;
    println!(
        "tile grid: {}x{} tiles of {}x{} ({} tiles), {} workers, {scales} scales, bank F1",
        grid.tiles_x(),
        grid.tiles_y(),
        grid.tile_width(),
        grid.tile_height(),
        grid.tile_count(),
        concrete.workers()
    );

    let engine: &dyn Codec = &concrete;
    let start = std::time::Instant::now();
    let (bytes, report) = engine.compress_with_report(&frame)?;
    let compress_wall = start.elapsed().as_secs_f64();
    println!(
        "compress ({}): {} -> {} bytes in {:.3} s ({:.1} MB/s), ratio {:.2}:1 ({:.2} bpp)",
        engine.name(),
        report.raw_bytes,
        report.compressed_bytes,
        compress_wall,
        report.raw_bytes as f64 / 1e6 / compress_wall.max(1e-9),
        report.ratio(),
        report.bits_per_pixel
    );
    println!(
        "(a ratio below 1 is the honest result: losslessness keeps every Table II \
         fractional bit, so the fixed path expands — the lifting codec is the \
         compressing path)"
    );

    let start = std::time::Instant::now();
    let back = engine.decompress(&bytes)?;
    let wall = start.elapsed().as_secs_f64();
    let exact = stats::bit_exact(&frame, &back)?;
    println!(
        "decompress: {:.3} s ({:.1} MB/s raw), lossless: {}",
        wall,
        report.raw_bytes as f64 / 1e6 / wall.max(1e-9),
        if exact { "yes" } else { "NO" }
    );
    assert!(exact, "fixed-path round trip must be bit exact");

    // Worker-count independence: the bitstream is defined by the image and
    // the engine's configuration alone, never by scheduling.
    for workers in [1usize, 2, 5] {
        let other = TiledFixedCompressor::new(&bank, scales, tile, workers)?;
        assert!(
            Codec::compress(&other, &frame)? == bytes,
            "LWCF bytes must not depend on the worker count ({workers} workers)"
        );
    }
    println!("streams byte-identical across 1/2/5 workers");

    // Directory-driven random access through the trait.
    for index in [0, grid.tile_count() - 1] {
        let tile_image = engine.decompress_tile(&bytes, index)?;
        assert!(
            stats::bit_exact(&frame.crop(grid.rect(index))?, &tile_image)?,
            "tile {index} must decode to exactly its region"
        );
    }
    println!("sampled tile decodes match their regions pixel for pixel");
    Ok(())
}

fn conclusions(size: usize) -> Result<(), Box<dyn std::error::Error>> {
    heading(&format!("Conclusions — simulated architecture on a {size}x{size} 12-bit image"));
    let c = reproduction::conclusions(size)?;
    println!("{}", c.arch_report);
    println!("\nversus the Pentium-133 software model:\n{}", c.throughput);
    println!(
        "\nproposed datapath area: {:.1} mm2 (paper: {:.1} mm2)",
        c.proposed_area_mm2, c.paper.area_mm2
    );
    println!(
        "paper's headline figures: {:.1} images/s, {:.0}x speedup, {:.2}% utilization",
        c.paper.images_per_second,
        c.paper.speedup,
        c.paper.utilization * 100.0
    );
    if size != 512 {
        println!(
            "(run with `reproduce conclusions 512` for the paper's full-size workload; \
             utilization and per-pixel cycle cost are size independent)"
        );
    }
    // Also report the host software time for context.
    let bank = FilterBank::table1(FilterId::F2);
    let image = synth::random_image(size, size, 12, 7);
    let (model, seconds) = SoftwareModel::measure_host(&bank, &image, 6.min(image.max_scales()))?;
    println!("host f64 reference for the same image: {seconds:.3} s ({model})");

    // Batch compression engine — the software analogue of the paper's
    // pipelined datapath: images flow through a pool of workers, each
    // running the end-to-end lossless codec.
    let scales = 5.min(image.max_scales());
    let batch: Vec<Image> = (0..8)
        .map(|k| match k % 2 {
            0 => synth::ct_phantom(size, size, 12, 40 + k),
            _ => synth::mr_slice(size, size, 12, 40 + k),
        })
        .collect();
    let sequential = BatchCompressor::new(scales, 1)?;
    let parallel = BatchCompressor::with_codec(*sequential.codec(), 0);
    let (streams, seq) = sequential.compress_batch(&batch)?;
    let (par_streams, par) = parallel.compress_batch(&batch)?;
    assert_eq!(streams, par_streams, "parallel streams must be byte-identical");
    println!(
        "\nbatch compression engine ({} images of {size}x{size}, {scales} scales):",
        batch.len()
    );
    println!("  1 worker  : {seq}");
    println!("  {} workers : {par}", par.workers);
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    println!(
        "  speedup: {:.2}x on {cores} logical cores, streams byte-identical",
        par.speedup_over(&seq)
    );

    // Per-subband parallel codec — intra-image parallelism for the
    // low-latency single-image case, still byte-identical.
    let subband_codec = ParallelCodec::with_codec(*sequential.codec(), 0);
    let single = &batch[0];
    let start = std::time::Instant::now();
    let seq_stream = sequential.codec().compress(single)?;
    let seq_single = start.elapsed();
    let start = std::time::Instant::now();
    let par_stream = subband_codec.compress(single)?;
    let par_single = start.elapsed();
    assert_eq!(seq_stream, par_stream, "per-subband streams must be byte-identical");
    println!(
        "  single image ({size}x{size}): sequential {:.1} ms, per-subband parallel {:.1} ms \
         ({:.2}x, {} workers, stream byte-identical)",
        seq_single.as_secs_f64() * 1e3,
        par_single.as_secs_f64() * 1e3,
        seq_single.as_secs_f64() / par_single.as_secs_f64().max(1e-9),
        subband_codec.workers()
    );

    // Line-based fused engine — the paper's line-buffer datapath (Table IV
    // input buffers) taken literally in software: the whole multi-scale
    // transform runs in one streaming pass with an O(width x levels)
    // coefficient working set, instead of one frame-sized pass per scale,
    // and the stream stays byte-identical.
    let line_engine = parallel.line_based();
    let start = std::time::Instant::now();
    let line_stream = line_engine.compress(single)?;
    let line_single = start.elapsed();
    assert_eq!(seq_stream, line_stream, "line-based stream must be byte-identical");
    let mut probe = line_engine.begin(size, size, single.bit_depth())?;
    let single_view = single.view();
    let mut line_peak = 0usize;
    for y in 0..size {
        probe.push_row(single_view.row(y));
        line_peak = line_peak.max(probe.working_set_samples());
    }
    let _ = probe.finish();
    println!(
        "  line-based fused ({size}x{size}): {:.1} ms ({:.1} Msamples/s, peak \
         coefficient working set {:.1}% of the frame, stream byte-identical) — the \
         software analogue of the paper's line-buffer datapath",
        line_single.as_secs_f64() * 1e3,
        (size * size) as f64 / 1e6 / line_single.as_secs_f64().max(1e-9),
        100.0 * line_peak as f64 / (size * size) as f64,
    );

    // Tile-parallel engine — the paper's line-buffer locality argument taken
    // to software: one large image sharded into independently coded tiles.
    let tiled_engine = parallel.tiled((size / 4).max(32), (size / 4).max(32))?;
    let (tiled_bytes, tiled_report) = tiled_engine.compress_with_report(single)?;
    let tiled_back = tiled_engine.decompress(&tiled_bytes)?;
    assert!(stats::bit_exact(single, &tiled_back)?, "tiled round trip must be lossless");
    println!("  tile-parallel ({}px tiles): {tiled_report}", tiled_engine.tile_width());

    // Tile-parallel fixed-point DWT — the paper-exact datapath itself
    // region-sharded across the pool, bit-identical per region to the
    // monolithic transform. Skipped (with a note) when the size's tiles
    // cannot halve to the configured depth.
    let dwt_tile = (size / 4).max(32);
    let hw = FixedDwt2d::paper_default(&bank, scales)?;
    match parallel.tiled_dwt(hw, dwt_tile, dwt_tile) {
        Ok(dwt_engine) if dwt_engine.grid(size, size).is_ok() => {
            let (coeffs, fwd_report) = dwt_engine.forward_with_report(single)?;
            let back = dwt_engine.inverse(&coeffs)?;
            assert!(stats::bit_exact(single, &back)?, "tiled fixed DWT must be lossless");
            println!("  tile-parallel fixed DWT ({dwt_tile}px tiles): {fwd_report}");
        }
        _ => println!(
            "  tile-parallel fixed DWT: skipped ({dwt_tile}px tiles of a {size}px frame \
             cannot halve {scales} times)"
        ),
    }

    // Fixed-path codec — the same paper-exact datapath with its Rice entropy
    // back end, producing a real decodable LWCF bitstream through the Codec
    // trait. Losslessness keeps every Table II fractional bit, so the fixed
    // path *expands* (ratio below 1): the lifting engines above are the
    // compressing paths; this one makes the hardware datapath measurable end
    // to end.
    match TiledFixedCompressor::new(&bank, scales, dwt_tile, 0) {
        Ok(fixed) if fixed.grid(size, size).is_ok() => {
            let engine: &dyn Codec = &fixed;
            let start = std::time::Instant::now();
            let (lwcf, fixed_report) = engine.compress_with_report(single)?;
            let wall = start.elapsed().as_secs_f64();
            let back = engine.decompress(&lwcf)?;
            assert!(stats::bit_exact(single, &back)?, "fixed-path round trip must be lossless");
            println!(
                "  fixed-path codec (LWCF, {dwt_tile}px tiles, {} workers): {:.2}:1 \
                 ({:.2} bpp) at {:.1} MB/s, round trip bit exact",
                fixed.workers(),
                fixed_report.ratio(),
                fixed_report.bits_per_pixel,
                fixed_report.raw_bytes as f64 / 1e6 / wall.max(1e-9),
            );
            println!(
                "    (a ratio below 1 is the honest result: lossless fixed-point words \
                 keep every Table II fractional bit, so only the lifting path compresses)"
            );
        }
        _ => println!(
            "  fixed-path codec: skipped ({dwt_tile}px tiles of a {size}px frame cannot \
             halve {scales} times)"
        ),
    }
    Ok(())
}
