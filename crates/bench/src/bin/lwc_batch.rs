//! `lwc-batch` — directory-walking batch compression CLI.
//!
//! Walks a directory of DICOM/PGM files, fans every frame through the
//! inter-image [`BatchCompressor`], and prints a per-file table (ratio,
//! PSNR, SSIM, L∞) followed by the per-modality roll-up of the corpus
//! harness.
//!
//! ```text
//! cargo run --release -p lwc-bench --bin lwc-batch -- <dir> [--delta N] [--workers N]
//! ```
//!
//! With no directory argument the corpus root resolves like `reproduce
//! corpus` does: `LWC_CORPUS_DIR`, then the in-tree `fixtures/corpus`, then
//! a deterministic fixture corpus generated under the temp directory.
//! `--delta` sets the near-lossless bound (default 0, lossless); every
//! reconstruction is verified against it before anything is printed.

use lwc_bench::corpus;
use lwc_core::prelude::*;

fn usage() -> ! {
    eprintln!("usage: lwc-batch [DIR] [--delta N] [--workers N]");
    eprintln!("  DIR        corpus directory (default: resolved fixture corpus)");
    eprintln!("  --delta N  near-lossless per-pixel bound, 0 = lossless (default 0)");
    eprintln!("  --workers N  batch worker threads, 0 = auto (default 0)");
    std::process::exit(2);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut dir: Option<String> = None;
    let mut delta: u8 = 0;
    let mut workers: usize = 0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--delta" => {
                delta = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--workers" => {
                workers = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => {
                if dir.replace(other.to_owned()).is_some() {
                    usage();
                }
            }
        }
    }

    let root = corpus::resolve_root(dir.as_deref())?;
    let paths = corpus::discover(&root)?;
    if paths.is_empty() {
        return Err(format!("no DICOM/PGM corpus files under {}", root.display()).into());
    }
    println!(
        "lwc-batch: {} files under {} (δ = {delta}, {} scales)",
        paths.len(),
        root.display(),
        corpus::CORPUS_SCALES
    );

    let codec = LosslessCodec::near_lossless(corpus::CORPUS_SCALES, delta)?;
    let batch = BatchCompressor::with_codec(codec, workers);
    println!(
        "{:<40} {:>6} {:>11} {:>11} {:>8} {:>10} {:>7} {:>4}",
        "file", "frames", "raw B", "coded B", "ratio", "PSNR", "SSIM", "L∞"
    );
    for path in &paths {
        let file = corpus::load(path)?;
        let (streams, _) = batch.compress_batch(&file.frames)?;
        let (decoded, _) = batch.decompress_batch(&streams)?;
        let mut raw: u64 = 0;
        let mut coded: u64 = 0;
        let mut sq_error = 0.0f64;
        let mut samples: u64 = 0;
        let mut bit_depth = 0u32;
        let mut ssim_sum = 0.0f64;
        let mut worst = 0i32;
        for (frame, (stream, back)) in file.frames.iter().zip(streams.iter().zip(&decoded)) {
            let fid = metrics::fidelity(frame, back)?;
            if fid.max_abs_error > i32::from(delta) {
                return Err(format!(
                    "{}: reconstruction error {} exceeds δ={delta}",
                    path.display(),
                    fid.max_abs_error
                )
                .into());
            }
            raw += metrics::raw_bytes(frame.pixel_count() as u64, frame.bit_depth());
            coded += stream.len() as u64;
            sq_error += metrics::mse(frame, back)? * frame.pixel_count() as f64;
            samples += frame.pixel_count() as u64;
            bit_depth = bit_depth.max(frame.bit_depth());
            ssim_sum += fid.ssim;
            worst = worst.max(fid.max_abs_error);
        }
        let psnr = metrics::psnr_from_mse(sq_error / samples as f64, bit_depth);
        let name = path.strip_prefix(&root).unwrap_or(path).display().to_string();
        println!(
            "{:<40} {:>6} {:>11} {:>11} {:>7.3}:1 {:>10} {:>7.4} {:>4}",
            name,
            file.frames.len(),
            raw,
            coded,
            raw as f64 / coded as f64,
            if psnr.is_finite() { format!("{psnr:.2} dB") } else { "lossless".to_owned() },
            ssim_sum / file.frames.len() as f64,
            worst,
        );
    }

    println!("\nper-modality roll-up:");
    println!(
        "{:<10} {:>5} {:>6} {:>11} {:>11} {:>8} {:>10} {:>7} {:>4}",
        "modality", "files", "frames", "raw B", "coded B", "ratio", "PSNR", "SSIM", "L∞"
    );
    for row in corpus::evaluate(&root, delta, workers)? {
        println!(
            "{:<10} {:>5} {:>6} {:>11} {:>11} {:>7.3}:1 {:>10} {:>7.4} {:>4}",
            row.modality,
            row.files,
            row.frames,
            row.raw_bytes,
            row.compressed_bytes,
            row.ratio,
            if row.psnr_db.is_finite() {
                format!("{:.2} dB", row.psnr_db)
            } else {
                "lossless".to_owned()
            },
            row.ssim,
            row.max_abs_error,
        );
    }
    Ok(())
}
