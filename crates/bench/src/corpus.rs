//! Real-corpus harness: walk a directory of DICOM/PGM files, compress every
//! frame through the batch engine at a configured near-lossless bound δ, and
//! report per-modality rate (compression ratio, bits/pixel) against
//! distortion (PSNR, SSIM, L∞).
//!
//! The modality of a file is its immediate parent directory name (`ct/`,
//! `mr/`, `xray/`, ... — files at the corpus root fall under `"root"`), which
//! is how real exports are usually organised and what the deterministic
//! fixture corpus ([`write_fixture_corpus`]) mirrors. Discovery sniffs file
//! content, not just extensions, so `.dcm`-less DICOM exports are found.

use lwc_core::prelude::*;
use std::collections::BTreeMap;
use std::error::Error;
use std::path::{Path, PathBuf};

/// Decomposition depth the harness compresses at.
pub const CORPUS_SCALES: u32 = 3;

/// One loaded corpus file: its modality label and its frames as images.
pub struct CorpusFile {
    /// Path the file was discovered at.
    pub path: PathBuf,
    /// Immediate parent directory name, or `"root"`.
    pub modality: String,
    /// The frames (one for PGM and single-frame DICOM).
    pub frames: Vec<Image>,
}

/// Aggregated rate/distortion of one modality at one δ.
#[derive(Debug, Clone, PartialEq)]
pub struct ModalityReport {
    /// Modality label (parent directory name).
    pub modality: String,
    /// Files contributing to this row.
    pub files: usize,
    /// Frames across those files.
    pub frames: usize,
    /// Raw sample bytes across all frames.
    pub raw_bytes: u64,
    /// Compressed bytes across all frames.
    pub compressed_bytes: u64,
    /// `raw_bytes / compressed_bytes`.
    pub ratio: f64,
    /// PSNR in dB with the squared error pooled over every sample of the
    /// modality (infinite when lossless).
    pub psnr_db: f64,
    /// Mean SSIM over frames.
    pub ssim: f64,
    /// Worst per-sample absolute error across the modality — must never
    /// exceed the configured δ.
    pub max_abs_error: i32,
}

/// Recursively discovers corpus files under `root`: anything carrying the
/// DICOM magic plus `.pgm`/`.dcm` extensions. Paths come back sorted so
/// reports are deterministic.
///
/// # Errors
///
/// Returns an error if a directory cannot be read.
pub fn discover(root: &Path) -> Result<Vec<PathBuf>, Box<dyn Error>> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if is_corpus_file(&path) {
                found.push(path);
            }
        }
    }
    found.sort();
    Ok(found)
}

/// `true` if `path` looks like an input the harness can read: a `.pgm` or
/// `.dcm` extension, or — extension or not — a leading DICOM Part 10 magic.
fn is_corpus_file(path: &Path) -> bool {
    let ext = path.extension().and_then(|e| e.to_str()).map(str::to_ascii_lowercase);
    match ext.as_deref() {
        Some("pgm" | "dcm") => true,
        _ => {
            let mut prefix = [0u8; 132];
            std::fs::File::open(path)
                .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut prefix))
                .is_ok()
                && dicom::is_dicom(&prefix)
        }
    }
}

/// Loads one corpus file into frames, routing on content (DICOM magic)
/// rather than extension.
///
/// # Errors
///
/// Propagates the typed parse errors of the DICOM and PGM readers.
pub fn load(path: &Path) -> Result<CorpusFile, Box<dyn Error>> {
    let bytes = std::fs::read(path)?;
    let frames = if dicom::is_dicom(&bytes) {
        let parsed = dicom::parse(&bytes)?;
        (0..parsed.stack.depth())
            .map(|z| parsed.stack.slice_image(z))
            .collect::<Result<Vec<_>, _>>()?
    } else {
        vec![pgm::read_pgm(&mut bytes.as_slice())?]
    };
    let modality = path
        .parent()
        .and_then(Path::file_name)
        .and_then(|n| n.to_str())
        .unwrap_or("root")
        .to_owned();
    Ok(CorpusFile { path: path.to_path_buf(), modality, frames })
}

/// Walks `root`, compresses every frame at bound `delta` through the batch
/// engine, verifies the reconstruction against the bound, and aggregates
/// rate/distortion per modality. Rows come back sorted by modality name.
///
/// # Errors
///
/// Returns an error for unreadable directories, malformed corpus files, or
/// — the harness's own guarantee — a reconstruction that violates `delta`.
pub fn evaluate(
    root: &Path,
    delta: u8,
    workers: usize,
) -> Result<Vec<ModalityReport>, Box<dyn Error>> {
    let paths = discover(root)?;
    if paths.is_empty() {
        return Err(format!("no DICOM/PGM corpus files under {}", root.display()).into());
    }
    let codec = LosslessCodec::near_lossless(CORPUS_SCALES, delta)?;
    let batch = BatchCompressor::with_codec(codec, workers);

    struct Accumulator {
        files: usize,
        frames: usize,
        raw_bytes: u64,
        compressed_bytes: u64,
        sq_error: f64,
        samples: u64,
        bit_depth: u32,
        ssim_sum: f64,
        max_abs_error: i32,
    }
    let mut per_modality: BTreeMap<String, Accumulator> = BTreeMap::new();

    for path in &paths {
        let file = load(path)?;
        let (streams, _) = batch.compress_batch(&file.frames)?;
        let (decoded, _) = batch.decompress_batch(&streams)?;
        let acc = per_modality.entry(file.modality.clone()).or_insert(Accumulator {
            files: 0,
            frames: 0,
            raw_bytes: 0,
            compressed_bytes: 0,
            sq_error: 0.0,
            samples: 0,
            bit_depth: 0,
            ssim_sum: 0.0,
            max_abs_error: 0,
        });
        acc.files += 1;
        for (frame, (stream, back)) in file.frames.iter().zip(streams.iter().zip(&decoded)) {
            let fid = metrics::fidelity(frame, back)?;
            if fid.max_abs_error > i32::from(delta) {
                return Err(format!(
                    "{}: reconstruction error {} exceeds the configured bound δ={delta}",
                    path.display(),
                    fid.max_abs_error
                )
                .into());
            }
            acc.frames += 1;
            acc.raw_bytes += metrics::raw_bytes(frame.pixel_count() as u64, frame.bit_depth());
            acc.compressed_bytes += stream.len() as u64;
            acc.sq_error += metrics::mse(frame, back)? * frame.pixel_count() as f64;
            acc.samples += frame.pixel_count() as u64;
            acc.bit_depth = acc.bit_depth.max(frame.bit_depth());
            acc.ssim_sum += fid.ssim;
            acc.max_abs_error = acc.max_abs_error.max(fid.max_abs_error);
        }
    }

    Ok(per_modality
        .into_iter()
        .map(|(modality, acc)| ModalityReport {
            modality,
            files: acc.files,
            frames: acc.frames,
            raw_bytes: acc.raw_bytes,
            compressed_bytes: acc.compressed_bytes,
            ratio: acc.raw_bytes as f64 / acc.compressed_bytes as f64,
            psnr_db: metrics::psnr_from_mse(acc.sq_error / acc.samples as f64, acc.bit_depth),
            ssim: acc.ssim_sum / acc.frames as f64,
            max_abs_error: acc.max_abs_error,
        })
        .collect())
}

/// Writes the deterministic fixture corpus under `root` (created if absent):
///
/// * `ct/phantom_stack.dcm` — 4-frame 96x72 12-bit explicit-VR CT phantom,
/// * `ct/slice_implicit.dcm` — 80x60 12-bit implicit-VR single frame,
/// * `mr/mr_signed.dcm` — 64x64 12-bit explicit-VR with signed pixels,
/// * `xray/checker_edges.pgm` — 8-bit checkerboard (edge stress),
/// * `xray/gradient.pgm` — 12-bit gradient.
///
/// Existing files are overwritten so the corpus is always exactly this, and
/// the returned paths are what was written.
///
/// # Errors
///
/// Returns an error if a directory or file cannot be written.
pub fn write_fixture_corpus(root: &Path) -> Result<Vec<PathBuf>, Box<dyn Error>> {
    let mut written = Vec::new();
    let ct = root.join("ct");
    let mr = root.join("mr");
    let xray = root.join("xray");
    for dir in [&ct, &mr, &xray] {
        std::fs::create_dir_all(dir)?;
    }

    let slices: Vec<Image> = (0..4).map(|z| synth::ct_phantom(96, 72, 12, 900 + z)).collect();
    let stack = ImageStack::from_slices(&slices)?;
    let path = ct.join("phantom_stack.dcm");
    dicom::save(&path, &stack, true, false)?;
    written.push(path);

    let single = ImageStack::from_slices(&[synth::ct_phantom(80, 60, 12, 905)])?;
    let path = ct.join("slice_implicit.dcm");
    dicom::save(&path, &single, false, false)?;
    written.push(path);

    let mr_stack = ImageStack::from_slices(&[synth::mr_slice(64, 64, 12, 906)])?;
    let path = mr.join("mr_signed.dcm");
    dicom::save(&path, &mr_stack, true, true)?;
    written.push(path);

    let path = xray.join("checker_edges.pgm");
    pgm::save(&synth::checkerboard(64, 48, 8, 8), &path)?;
    written.push(path);

    let path = xray.join("gradient.pgm");
    pgm::save(&synth::gradient(72, 56, 12), &path)?;
    written.push(path);

    Ok(written)
}

/// Resolves the corpus root for the default harness runs: an explicit
/// argument wins, then `LWC_CORPUS_DIR`, then the in-tree `fixtures/corpus`
/// if it exists, and finally a deterministic fixture corpus written under
/// the system temp directory.
///
/// # Errors
///
/// Returns an error if the fallback fixture corpus cannot be written.
pub fn resolve_root(explicit: Option<&str>) -> Result<PathBuf, Box<dyn Error>> {
    if let Some(dir) = explicit {
        return Ok(PathBuf::from(dir));
    }
    if let Ok(dir) = std::env::var("LWC_CORPUS_DIR") {
        return Ok(PathBuf::from(dir));
    }
    let in_tree = PathBuf::from("fixtures/corpus");
    if in_tree.is_dir() {
        return Ok(in_tree);
    }
    let fallback = std::env::temp_dir().join("lwc_fixture_corpus");
    write_fixture_corpus(&fallback)?;
    Ok(fallback)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lwc_corpus_test_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn fixture_corpus_is_discovered_and_loads() {
        let root = scratch("discover");
        let written = write_fixture_corpus(&root).unwrap();
        assert_eq!(written.len(), 5);
        let found = discover(&root).unwrap();
        assert_eq!(found.len(), 5);
        for path in &found {
            let file = load(path).unwrap();
            assert!(!file.frames.is_empty(), "{}", path.display());
            assert!(["ct", "mr", "xray"].contains(&file.modality.as_str()));
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn evaluation_is_lossless_at_delta_zero_and_bounded_above() {
        let root = scratch("evaluate");
        write_fixture_corpus(&root).unwrap();
        let lossless = evaluate(&root, 0, 2).unwrap();
        assert_eq!(lossless.len(), 3, "three modalities");
        for row in &lossless {
            assert_eq!(row.max_abs_error, 0, "{}", row.modality);
            assert_eq!(row.psnr_db, f64::INFINITY);
            assert!(row.ratio > 1.0, "{} must compress", row.modality);
        }
        let bounded = evaluate(&root, 4, 2).unwrap();
        for (near, base) in bounded.iter().zip(&lossless) {
            assert!(near.max_abs_error <= 4, "{}", near.modality);
            assert!(near.psnr_db.is_finite() || near.max_abs_error == 0);
            assert!(
                near.compressed_bytes <= base.compressed_bytes + near.files as u64,
                "δ=4 must not compress worse than lossless beyond header overhead"
            );
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn discovery_sniffs_dicom_without_an_extension() {
        let root = scratch("sniff");
        std::fs::create_dir_all(&root).unwrap();
        let stack = ImageStack::from_slices(&[synth::ct_phantom(32, 24, 12, 1)]).unwrap();
        let bytes = dicom::encode(&stack, true, false).unwrap();
        std::fs::write(root.join("exported_without_extension"), &bytes).unwrap();
        std::fs::write(root.join("notes.txt"), b"not an image").unwrap();
        let found = discover(&root).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(load(&found[0]).unwrap().frames.len(), 1);
        std::fs::remove_dir_all(&root).ok();
    }
}
