//! # lwc-bench — benchmark harness and table regeneration
//!
//! This crate hosts two things:
//!
//! * the Criterion benchmarks under `benches/`, one per table/figure of the
//!   paper (see `DESIGN.md` for the experiment index), and
//! * the `reproduce` binary, which prints every regenerated table and figure
//!   next to the values the paper reports (the data behind
//!   `EXPERIMENTS.md`).
//!
//! The helpers here keep the workloads consistent across benches. The
//! [`corpus`] module is the real-corpus harness: DICOM/PGM discovery, the
//! deterministic in-tree fixture corpus, and per-modality ratio-vs-PSNR
//! evaluation shared by `reproduce corpus` and the `lwc-batch` CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;

use lwc_core::prelude::*;

/// The deterministic 12-bit random image used by the benchmarks
/// (the paper validates on random images).
#[must_use]
pub fn bench_image(size: usize) -> Image {
    synth::random_image(size, size, 12, 0xD47E)
}

/// The deterministic CT-like phantom used by the compression benchmarks.
#[must_use]
pub fn bench_phantom(size: usize) -> Image {
    synth::ct_phantom(size, size, 12, 0xD47E)
}

/// All six Table I banks, constructed once.
#[must_use]
pub fn all_banks() -> Vec<FilterBank> {
    FilterBank::all_table1()
}

/// The fixed synthetic corpus of the throughput harness (`reproduce
/// perfjson`): a deterministic CT/MR mix at `size`×`size`, 12-bit.
#[must_use]
pub fn perf_corpus(count: usize, size: usize) -> Vec<Image> {
    (0..count)
        .map(|k| match k % 2 {
            0 => synth::ct_phantom(size, size, 12, 4000 + k as u64),
            _ => synth::mr_slice(size, size, 12, 4000 + k as u64),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(bench_image(32), bench_image(32));
        assert_eq!(bench_phantom(32), bench_phantom(32));
        assert_eq!(all_banks().len(), 6);
    }
}
