//! The `LWCP` wire protocol: versioned, length-prefixed binary frames.
//!
//! Every message on the wire — request or response, in either direction — is
//! one frame. Layout (all integers big-endian):
//!
//! ```text
//! offset  field        size
//! 0       magic        4 bytes   0x4C574350 ("LWCP")
//! 4       version      1 byte    currently 1
//! 5       op           1 byte    see [`Op`]
//! 6       request id   8 bytes   chosen by the client, echoed by the server
//! 14      payload len  4 bytes   bytes that follow, bounded by the receiver
//! 18      payload      payload-len bytes
//! ```
//!
//! The declared payload length is validated against the receiver's configured
//! limit **before** any payload allocation, so a hostile or corrupt length
//! field cannot balloon memory. Responses carry the request's id (responses
//! to pipelined requests may arrive out of order — the id is the correlation
//! key) and either the request's response op or [`Op::Error`] with a typed
//! [`ErrorCode`] payload.

use crate::error::ServerError;

/// Magic number opening every `LWCP` frame ("LWCP").
pub const FRAME_MAGIC: u32 = 0x4C57_4350;

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// Serialized size of the fixed frame header, in bytes.
pub const FRAME_HEADER_BYTES: usize = 18;

/// Default per-frame payload ceiling (64 MiB) — enough for a 16-bit
/// 4096 x 4096 plate with headroom, small enough that one hostile frame
/// cannot exhaust memory.
pub const DEFAULT_MAX_PAYLOAD_BYTES: usize = 64 << 20;

/// Frame operation codes.
///
/// Requests use the low range; each successful response echoes the request op
/// with the top bit set; [`Op::Error`] answers any request that failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Request: compress a raw binary PGM (`P5`) payload; the response
    /// payload is an `LWC1`/`LWCT` stream.
    Compress,
    /// Request: decompress an `LWC1`/`LWCT` payload; the response payload is
    /// a binary PGM.
    Decompress,
    /// Request: decompress one tile of an `LWCT` payload. The payload is a
    /// 4-byte big-endian tile index followed by the stream; the response
    /// payload is the tile as a binary PGM.
    DecompressTile,
    /// Request: empty payload; the response payload is a JSON object of
    /// server counters (see `ServerStats`).
    Stats,
    /// Request: compress a raw volume payload (see `rawvol`) into an `LWCV`
    /// stream; the bricks fan across the server's scheduler.
    CompressVolume,
    /// Request: decompress an `LWCV` payload; the response payload is a raw
    /// volume (see `rawvol`).
    DecompressVolume,
    /// Request: decompress a region. The payload is six 4-byte big-endian
    /// fields — x, y, z, width, height, depth — followed by the stream. For
    /// 2-D streams (`LWC1`/`LWCT`) z must be 0 and depth 1 and the response
    /// is a binary PGM; for `LWCV` streams the response is a raw volume.
    DecompressRegion,
    /// Successful response to [`Op::Compress`].
    OkCompress,
    /// Successful response to [`Op::Decompress`].
    OkDecompress,
    /// Successful response to [`Op::DecompressTile`].
    OkDecompressTile,
    /// Successful response to [`Op::Stats`].
    OkStats,
    /// Successful response to [`Op::CompressVolume`].
    OkCompressVolume,
    /// Successful response to [`Op::DecompressVolume`].
    OkDecompressVolume,
    /// Successful response to [`Op::DecompressRegion`].
    OkDecompressRegion,
    /// Error response to any request: payload is a 2-byte big-endian
    /// [`ErrorCode`] followed by a UTF-8 message.
    Error,
}

impl Op {
    /// The wire code of this op.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Op::Compress => 0x01,
            Op::Decompress => 0x02,
            Op::DecompressTile => 0x03,
            Op::Stats => 0x04,
            Op::CompressVolume => 0x05,
            Op::DecompressVolume => 0x06,
            Op::DecompressRegion => 0x07,
            Op::OkCompress => 0x81,
            Op::OkDecompress => 0x82,
            Op::OkDecompressTile => 0x83,
            Op::OkStats => 0x84,
            Op::OkCompressVolume => 0x85,
            Op::OkDecompressVolume => 0x86,
            Op::OkDecompressRegion => 0x87,
            Op::Error => 0xFF,
        }
    }

    /// Parses a wire code; `None` for codes this build does not know.
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0x01 => Some(Op::Compress),
            0x02 => Some(Op::Decompress),
            0x03 => Some(Op::DecompressTile),
            0x04 => Some(Op::Stats),
            0x05 => Some(Op::CompressVolume),
            0x06 => Some(Op::DecompressVolume),
            0x07 => Some(Op::DecompressRegion),
            0x81 => Some(Op::OkCompress),
            0x82 => Some(Op::OkDecompress),
            0x83 => Some(Op::OkDecompressTile),
            0x84 => Some(Op::OkStats),
            0x85 => Some(Op::OkCompressVolume),
            0x86 => Some(Op::OkDecompressVolume),
            0x87 => Some(Op::OkDecompressRegion),
            0xFF => Some(Op::Error),
            _ => None,
        }
    }

    /// `true` for the client-to-server request ops.
    #[must_use]
    pub fn is_request(self) -> bool {
        matches!(
            self,
            Op::Compress
                | Op::Decompress
                | Op::DecompressTile
                | Op::Stats
                | Op::CompressVolume
                | Op::DecompressVolume
                | Op::DecompressRegion
        )
    }

    /// The success-response op answering this request op.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a request op.
    #[must_use]
    pub fn response(self) -> Self {
        match self {
            Op::Compress => Op::OkCompress,
            Op::Decompress => Op::OkDecompress,
            Op::DecompressTile => Op::OkDecompressTile,
            Op::Stats => Op::OkStats,
            Op::CompressVolume => Op::OkCompressVolume,
            Op::DecompressVolume => Op::OkDecompressVolume,
            Op::DecompressRegion => Op::OkDecompressRegion,
            other => panic!("{other:?} is not a request op"),
        }
    }

    /// All ops a frame may legally carry, for exhaustive tests.
    pub const ALL: [Op; 15] = [
        Op::Compress,
        Op::Decompress,
        Op::DecompressTile,
        Op::Stats,
        Op::CompressVolume,
        Op::DecompressVolume,
        Op::DecompressRegion,
        Op::OkCompress,
        Op::OkDecompress,
        Op::OkDecompressTile,
        Op::OkStats,
        Op::OkCompressVolume,
        Op::OkDecompressVolume,
        Op::OkDecompressRegion,
        Op::Error,
    ];
}

/// Typed error codes carried by [`Op::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The global in-flight budget or the per-connection pipeline cap was
    /// exhausted — retry later (backpressure).
    Busy,
    /// The declared payload length exceeds the receiver's limit.
    FrameTooLarge,
    /// The frame itself could not be parsed (bad magic, truncation).
    MalformedFrame,
    /// The frame's protocol version is not supported by this build.
    UnsupportedVersion,
    /// The op code is not known to this build.
    UnknownOp,
    /// The request payload is invalid (bad PGM, corrupt stream, ...).
    BadPayload,
    /// The requested tile index is outside the stream's tile grid.
    TileIndexOutOfRange,
    /// The server failed internally while executing a valid request.
    Internal,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire code of this error.
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            ErrorCode::Busy => 1,
            ErrorCode::FrameTooLarge => 2,
            ErrorCode::MalformedFrame => 3,
            ErrorCode::UnsupportedVersion => 4,
            ErrorCode::UnknownOp => 5,
            ErrorCode::BadPayload => 6,
            ErrorCode::TileIndexOutOfRange => 7,
            ErrorCode::Internal => 8,
            ErrorCode::ShuttingDown => 9,
        }
    }

    /// Parses a wire code; unknown codes map to [`ErrorCode::Internal`] so a
    /// newer peer's error still surfaces as an error rather than a parse
    /// failure.
    #[must_use]
    pub fn from_code(code: u16) -> Self {
        match code {
            1 => ErrorCode::Busy,
            2 => ErrorCode::FrameTooLarge,
            3 => ErrorCode::MalformedFrame,
            4 => ErrorCode::UnsupportedVersion,
            5 => ErrorCode::UnknownOp,
            6 => ErrorCode::BadPayload,
            7 => ErrorCode::TileIndexOutOfRange,
            8 => ErrorCode::Internal,
            9 => ErrorCode::ShuttingDown,
            _ => ErrorCode::Internal,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Busy => "busy",
            ErrorCode::FrameTooLarge => "frame too large",
            ErrorCode::MalformedFrame => "malformed frame",
            ErrorCode::UnsupportedVersion => "unsupported version",
            ErrorCode::UnknownOp => "unknown op",
            ErrorCode::BadPayload => "bad payload",
            ErrorCode::TileIndexOutOfRange => "tile index out of range",
            ErrorCode::Internal => "internal error",
            ErrorCode::ShuttingDown => "shutting down",
        };
        f.write_str(name)
    }
}

/// The parsed fixed-size header of one frame.
///
/// The op is kept as its raw wire byte: an unknown op is a *replyable*
/// condition (the request id is known), so op validation is the caller's
/// decision, not a parse failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Raw op byte; see [`Op::from_code`].
    pub op_code: u8,
    /// Client-chosen request id this frame belongs to.
    pub request_id: u64,
    /// Number of payload bytes following the header.
    pub payload_len: usize,
}

impl FrameHeader {
    /// Checks the declared payload length against a receiver's limit —
    /// callers must do this **before** sizing any buffer from the field.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Protocol`] with [`ErrorCode::FrameTooLarge`]
    /// on violation.
    pub fn ensure_within(&self, max_payload: usize) -> Result<(), ServerError> {
        if self.payload_len > max_payload {
            return Err(ServerError::Protocol {
                code: ErrorCode::FrameTooLarge,
                message: format!(
                    "declared payload of {} bytes exceeds the {max_payload}-byte limit",
                    self.payload_len
                ),
            });
        }
        Ok(())
    }
}

/// Parses and validates a frame header from its first
/// [`FRAME_HEADER_BYTES`] bytes. The declared payload length is **not**
/// checked here — call [`FrameHeader::ensure_within`] before allocating —
/// because an oversized declaration still carries a valid request id the
/// server can address its error reply to.
///
/// # Errors
///
/// Returns [`ServerError::Protocol`] with
///
/// * [`ErrorCode::MalformedFrame`] if fewer than [`FRAME_HEADER_BYTES`]
///   bytes are supplied or the magic is wrong,
/// * [`ErrorCode::UnsupportedVersion`] for an unknown protocol version.
pub fn parse_header(bytes: &[u8]) -> Result<FrameHeader, ServerError> {
    let header: &[u8; FRAME_HEADER_BYTES] = bytes
        .get(..FRAME_HEADER_BYTES)
        .and_then(|h| h.try_into().ok())
        .ok_or_else(|| ServerError::Protocol {
            code: ErrorCode::MalformedFrame,
            message: format!("frame header needs {FRAME_HEADER_BYTES} bytes, got {}", bytes.len()),
        })?;
    let magic = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != FRAME_MAGIC {
        return Err(ServerError::Protocol {
            code: ErrorCode::MalformedFrame,
            message: format!("bad frame magic 0x{magic:08X}"),
        });
    }
    let version = header[4];
    if version != PROTOCOL_VERSION {
        return Err(ServerError::Protocol {
            code: ErrorCode::UnsupportedVersion,
            message: format!(
                "protocol version {version} is not supported (this build speaks \
                 {PROTOCOL_VERSION})"
            ),
        });
    }
    let request_id = u64::from_be_bytes(header[6..14].try_into().expect("8 bytes"));
    let payload_len = u32::from_be_bytes(header[14..18].try_into().expect("4 bytes")) as usize;
    Ok(FrameHeader { op_code: header[5], request_id, payload_len })
}

/// One `LWCP` frame: a validated op, the correlation id and the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What this frame asks for or answers.
    pub op: Op,
    /// Correlation id; responses echo the request's.
    pub request_id: u64,
    /// Op-specific payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds an [`Op::Error`] response frame.
    #[must_use]
    pub fn error(request_id: u64, code: ErrorCode, message: &str) -> Self {
        let mut payload = Vec::with_capacity(2 + message.len());
        payload.extend_from_slice(&code.code().to_be_bytes());
        payload.extend_from_slice(message.as_bytes());
        Self { op: Op::Error, request_id, payload }
    }

    /// Decodes the payload of an [`Op::Error`] frame into its typed code and
    /// message. `None` if this is not an error frame or the payload is too
    /// short to carry a code.
    #[must_use]
    pub fn error_info(&self) -> Option<(ErrorCode, String)> {
        if self.op != Op::Error || self.payload.len() < 2 {
            return None;
        }
        let code = ErrorCode::from_code(u16::from_be_bytes([self.payload[0], self.payload[1]]));
        Some((code, String::from_utf8_lossy(&self.payload[2..]).into_owned()))
    }

    /// Total size of the encoded frame in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        FRAME_HEADER_BYTES + self.payload.len()
    }

    /// Serializes just the fixed header — the frame on the wire is this
    /// followed by the payload, which lets writers send the payload without
    /// copying it into a fresh buffer first.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds the 32-bit length field (the server and
    /// client APIs bound payloads well below this).
    #[must_use]
    pub fn header_bytes(&self) -> [u8; FRAME_HEADER_BYTES] {
        assert!(self.payload.len() <= u32::MAX as usize, "payload exceeds the 32-bit length field");
        let mut header = [0u8; FRAME_HEADER_BYTES];
        header[0..4].copy_from_slice(&FRAME_MAGIC.to_be_bytes());
        header[4] = PROTOCOL_VERSION;
        header[5] = self.op.code();
        header[6..14].copy_from_slice(&self.request_id.to_be_bytes());
        header[14..18].copy_from_slice(&(self.payload.len() as u32).to_be_bytes());
        header
    }

    /// Serializes the frame into one contiguous buffer.
    ///
    /// # Panics
    ///
    /// See [`Frame::header_bytes`].
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(self.encoded_len());
        bytes.extend_from_slice(&self.header_bytes());
        bytes.extend_from_slice(&self.payload);
        bytes
    }

    /// Decodes one frame from the front of `bytes`, returning it and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// See [`parse_header`]; additionally returns
    /// [`ErrorCode::MalformedFrame`] if the buffer is shorter than the
    /// declared payload, and [`ErrorCode::UnknownOp`] for an op byte this
    /// build does not know.
    pub fn decode(bytes: &[u8], max_payload: usize) -> Result<(Self, usize), ServerError> {
        let header = parse_header(bytes)?;
        header.ensure_within(max_payload)?;
        let end = FRAME_HEADER_BYTES + header.payload_len;
        let payload = bytes.get(FRAME_HEADER_BYTES..end).ok_or_else(|| ServerError::Protocol {
            code: ErrorCode::MalformedFrame,
            message: format!(
                "frame declares {} payload bytes but only {} follow the header",
                header.payload_len,
                bytes.len() - FRAME_HEADER_BYTES
            ),
        })?;
        let op = Op::from_code(header.op_code).ok_or_else(|| ServerError::Protocol {
            code: ErrorCode::UnknownOp,
            message: format!("unknown op code 0x{:02X}", header.op_code),
        })?;
        Ok((Self { op, request_id: header.request_id, payload: payload.to_vec() }, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_roundtrip_their_wire_codes() {
        for op in Op::ALL {
            assert_eq!(Op::from_code(op.code()), Some(op));
        }
        assert_eq!(Op::from_code(0x00), None);
        assert_eq!(Op::from_code(0x7E), None);
    }

    #[test]
    fn request_response_pairing() {
        assert_eq!(Op::Compress.response(), Op::OkCompress);
        assert_eq!(Op::Decompress.response(), Op::OkDecompress);
        assert_eq!(Op::DecompressTile.response(), Op::OkDecompressTile);
        assert_eq!(Op::Stats.response(), Op::OkStats);
        assert_eq!(Op::CompressVolume.response(), Op::OkCompressVolume);
        assert_eq!(Op::DecompressVolume.response(), Op::OkDecompressVolume);
        assert_eq!(Op::DecompressRegion.response(), Op::OkDecompressRegion);
        assert!(Op::Compress.is_request());
        assert!(Op::CompressVolume.is_request());
        assert!(!Op::OkCompress.is_request());
        assert!(!Op::OkCompressVolume.is_request());
        assert!(!Op::Error.is_request());
        for op in Op::ALL {
            if op != Op::Error {
                assert_eq!(op.is_request(), op.code() < 0x80, "{op:?}");
            }
        }
    }

    #[test]
    fn frames_roundtrip() {
        let frame = Frame { op: Op::Compress, request_id: 0xDEAD_BEEF, payload: vec![1, 2, 3] };
        let bytes = frame.encode();
        assert_eq!(bytes.len(), frame.encoded_len());
        let (back, consumed) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD_BYTES).unwrap();
        assert_eq!(back, frame);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn error_frames_carry_typed_codes() {
        let frame = Frame::error(7, ErrorCode::Busy, "queue full");
        let (code, message) = frame.error_info().unwrap();
        assert_eq!(code, ErrorCode::Busy);
        assert_eq!(message, "queue full");
        let ok = Frame { op: Op::OkStats, request_id: 7, payload: vec![] };
        assert!(ok.error_info().is_none());
    }

    #[test]
    fn oversized_declared_lengths_are_rejected_before_allocation() {
        let mut bytes = Frame { op: Op::Compress, request_id: 1, payload: vec![0; 8] }.encode();
        // Forge an absurd length field; the parse must fail on the limit, not
        // try to slice or allocate 4 GiB.
        bytes[14..18].copy_from_slice(&u32::MAX.to_be_bytes());
        let err = Frame::decode(&bytes, 1 << 20).unwrap_err();
        assert!(
            matches!(err, ServerError::Protocol { code: ErrorCode::FrameTooLarge, .. }),
            "{err}"
        );
    }

    #[test]
    fn short_buffers_and_bad_magic_are_typed_errors() {
        for len in 0..FRAME_HEADER_BYTES {
            let err = parse_header(&vec![0x4C; len]).unwrap_err();
            assert!(
                matches!(err, ServerError::Protocol { code: ErrorCode::MalformedFrame, .. }),
                "{len}-byte header"
            );
        }
        let mut bytes = Frame { op: Op::Stats, request_id: 0, payload: vec![] }.encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Frame::decode(&bytes, 1024),
            Err(ServerError::Protocol { code: ErrorCode::MalformedFrame, .. })
        ));
    }

    #[test]
    fn unknown_versions_and_ops_are_typed_errors() {
        let good = Frame { op: Op::Stats, request_id: 3, payload: vec![] }.encode();
        let mut versioned = good.clone();
        versioned[4] = PROTOCOL_VERSION + 1;
        assert!(matches!(
            Frame::decode(&versioned, 1024),
            Err(ServerError::Protocol { code: ErrorCode::UnsupportedVersion, .. })
        ));
        let mut op = good;
        op[5] = 0x7E;
        assert!(matches!(
            Frame::decode(&op, 1024),
            Err(ServerError::Protocol { code: ErrorCode::UnknownOp, .. })
        ));
    }

    #[test]
    fn error_codes_roundtrip() {
        for code in [
            ErrorCode::Busy,
            ErrorCode::FrameTooLarge,
            ErrorCode::MalformedFrame,
            ErrorCode::UnsupportedVersion,
            ErrorCode::UnknownOp,
            ErrorCode::BadPayload,
            ErrorCode::TileIndexOutOfRange,
            ErrorCode::Internal,
            ErrorCode::ShuttingDown,
        ] {
            assert_eq!(ErrorCode::from_code(code.code()), code);
        }
    }
}
