//! Synchronous client for the `LWCP` compression service.
//!
//! [`Client`] offers two shapes of interaction over one connection:
//!
//! * **request/response** — [`Client::compress`], [`Client::decompress`],
//!   [`Client::decompress_tile`], [`Client::stats`]: one frame out, one
//!   frame back.
//! * **pipelined** — [`Client::submit`] any number of requests without
//!   waiting, then [`Client::receive`] the responses as the workers finish
//!   them (possibly out of order; the request id correlates), or use
//!   [`Client::pipeline`] to submit a batch and get the results back in
//!   request order. Pipelining is what keeps every server worker busy from a
//!   single connection — the wire analogue of the paper's FIFO-coupled
//!   stages, where the next row enters the pipeline before the previous one
//!   has left.

use crate::error::ServerError;
use crate::frame::{into_frame, read_frame, write_frame};
use crate::protocol::{ErrorCode, Frame, Op, DEFAULT_MAX_PAYLOAD_BYTES};
use crate::rawvol::{read_raw_volume, write_raw_volume};
use lwc_image::{pgm, BrickRect, Image, ImageStack, TileRect};
use std::collections::HashMap;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How many consecutive read-timeout quanta [`Client::receive`] waits for a
/// response before giving up (with the default 100 ms read timeout this is a
/// 10-minute ceiling — compression of a large frame is slow work, not a hang).
const RESPONSE_PATIENCE_POLLS: u32 = 6000;

/// Maximum outstanding requests [`Client::pipeline`] keeps in flight: enough
/// lookahead to saturate a worker pool (compare the server's default queue
/// of `4 x workers`), small enough that responses are drained long before
/// either side's socket buffers fill.
pub const PIPELINE_WINDOW: usize = 32;

/// A connection to a running [`Server`](crate::Server).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    max_payload: usize,
}

/// One response received over a pipelined connection.
#[derive(Debug)]
pub struct Response {
    /// Id of the request this answers.
    pub request_id: u64,
    /// The request's payload on success, or the typed failure: a
    /// [`ServerError::Remote`] for an error frame, never a transport error.
    pub result: Result<Vec<u8>, ServerError>,
}

impl Client {
    /// Connects with default timeouts (100 ms read quantum, 10 s write) and
    /// the default 64 MiB frame limit — the same ceiling the server applies
    /// in both directions, so a response the server agrees to send is always
    /// readable here. Talking to a server running with a raised
    /// `--max-frame-mb`, pass the matching limit via
    /// [`Client::connect_with`].
    ///
    /// # Errors
    ///
    /// Returns an error if the connection cannot be established.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServerError> {
        Self::connect_with(
            addr,
            Duration::from_millis(100),
            Duration::from_secs(10),
            DEFAULT_MAX_PAYLOAD_BYTES,
        )
    }

    /// Connects with explicit socket timeouts and response-payload limit.
    ///
    /// # Errors
    ///
    /// Returns an error if the connection cannot be established or the
    /// timeouts are rejected by the platform.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        read_timeout: Duration,
        write_timeout: Duration,
        max_payload: usize,
    ) -> Result<Self, ServerError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(write_timeout))?;
        Ok(Self { stream, next_id: 1, max_payload })
    }

    /// Sends one request frame without waiting for the response; returns the
    /// request id to correlate the response with.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Config`] if `op` is not a request op, or an
    /// I/O error if the write fails.
    pub fn submit(&mut self, op: Op, payload: Vec<u8>) -> Result<u64, ServerError> {
        if !op.is_request() {
            return Err(ServerError::Config(format!("{op:?} is not a request op")));
        }
        let request_id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, &Frame { op, request_id, payload })?;
        Ok(request_id)
    }

    /// Receives the next response frame, in server completion order.
    ///
    /// # Errors
    ///
    /// Returns a transport-level error if the connection fails or the frame
    /// is malformed. A server-side failure is **not** an `Err` here — it
    /// comes back inside [`Response::result`] so pipelined callers can keep
    /// receiving.
    pub fn receive(&mut self) -> Result<Response, ServerError> {
        let (header, payload) =
            read_frame(&mut self.stream, self.max_payload, RESPONSE_PATIENCE_POLLS)?;
        let frame = into_frame(header, payload)?;
        if frame.op.is_request() {
            return Err(ServerError::Protocol {
                code: ErrorCode::MalformedFrame,
                message: format!("peer sent a request op {:?} on the response path", frame.op),
            });
        }
        let request_id = frame.request_id;
        let result = match frame.error_info() {
            Some((code, message)) => Err(ServerError::Remote { code, message }),
            None => Ok(frame.payload),
        };
        Ok(Response { request_id, result })
    }

    /// One full request/response exchange.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations **and** server error frames
    /// all surface as `Err` (the latter as [`ServerError::Remote`]).
    pub fn request(&mut self, op: Op, payload: Vec<u8>) -> Result<Vec<u8>, ServerError> {
        let id = self.submit(op, payload)?;
        let response = self.receive()?;
        if response.request_id != id {
            return Err(ServerError::Protocol {
                code: ErrorCode::MalformedFrame,
                message: format!(
                    "response correlates to request {} but {id} is the only one outstanding",
                    response.request_id
                ),
            });
        }
        response.result
    }

    /// Submits a batch of requests down the connection with a bounded
    /// sliding window of [`PIPELINE_WINDOW`] outstanding frames, then
    /// collects every response; results come back in **request order**
    /// regardless of the order the workers finished in.
    ///
    /// The window matters: submitting an unbounded batch without reading
    /// anything back would let completed responses fill this side's receive
    /// buffer until the server's writes time out and the remaining
    /// responses are lost.
    ///
    /// # Errors
    ///
    /// Returns `Err` only for transport/protocol failures; per-request
    /// server errors land in the corresponding result slot.
    #[allow(clippy::type_complexity)]
    pub fn pipeline(
        &mut self,
        requests: Vec<(Op, Vec<u8>)>,
    ) -> Result<Vec<Result<Vec<u8>, ServerError>>, ServerError> {
        let count = requests.len();
        let mut slot_of = HashMap::with_capacity(PIPELINE_WINDOW);
        let mut results: Vec<Option<Result<Vec<u8>, ServerError>>> =
            (0..count).map(|_| None).collect();
        let mut pending = requests.into_iter().enumerate();
        let mut outstanding = 0usize;
        loop {
            while outstanding < PIPELINE_WINDOW {
                let Some((slot, (op, payload))) = pending.next() else { break };
                let id = self.submit(op, payload)?;
                slot_of.insert(id, slot);
                outstanding += 1;
            }
            if outstanding == 0 {
                break;
            }
            let response = self.receive()?;
            outstanding -= 1;
            let slot =
                slot_of.remove(&response.request_id).ok_or_else(|| ServerError::Protocol {
                    code: ErrorCode::MalformedFrame,
                    message: format!("response for unknown request id {}", response.request_id),
                })?;
            results[slot] = Some(response.result);
        }
        Ok(results.into_iter().map(|r| r.expect("every slot answered")).collect())
    }

    /// Compresses raw binary PGM bytes; returns the `LWC1`/`LWCT` stream.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn compress(&mut self, pgm_bytes: &[u8]) -> Result<Vec<u8>, ServerError> {
        self.request(Op::Compress, pgm_bytes.to_vec())
    }

    /// Compresses an in-memory [`Image`] (serialized as PGM on the wire).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn compress_image(&mut self, image: &Image) -> Result<Vec<u8>, ServerError> {
        let mut payload = Vec::with_capacity(image.pixel_count() * 2 + 64);
        pgm::write_pgm(image, &mut payload)?;
        self.request(Op::Compress, payload)
    }

    /// Decompresses an `LWC1`/`LWCT` stream into an [`Image`].
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; additionally fails if the returned PGM does
    /// not parse.
    pub fn decompress(&mut self, stream: &[u8]) -> Result<Image, ServerError> {
        let payload = self.request(Op::Decompress, stream.to_vec())?;
        Ok(pgm::read_pgm(payload.as_slice())?)
    }

    /// Decompresses one tile (row-major `index`) of an `LWCT` stream — or
    /// tile 0 of a legacy stream, which is the whole image.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; an out-of-range index comes back as
    /// [`ServerError::Remote`] with
    /// [`ErrorCode::TileIndexOutOfRange`].
    pub fn decompress_tile(&mut self, stream: &[u8], index: u32) -> Result<Image, ServerError> {
        let mut payload = Vec::with_capacity(4 + stream.len());
        payload.extend_from_slice(&index.to_be_bytes());
        payload.extend_from_slice(stream);
        let response = self.request(Op::DecompressTile, payload)?;
        Ok(pgm::read_pgm(response.as_slice())?)
    }

    /// Compresses an [`ImageStack`] into an `LWCV` volume stream (serialized
    /// as a raw volume on the wire, see [`crate::rawvol`]).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn compress_volume(&mut self, stack: &ImageStack) -> Result<Vec<u8>, ServerError> {
        self.request(Op::CompressVolume, write_raw_volume(stack))
    }

    /// Decompresses an `LWCV` stream into an [`ImageStack`].
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; additionally fails if the returned raw
    /// volume does not parse.
    pub fn decompress_volume(&mut self, stream: &[u8]) -> Result<ImageStack, ServerError> {
        let payload = self.request(Op::DecompressVolume, stream.to_vec())?;
        read_raw_volume(&payload)
    }

    /// Decompresses a rectangular region of a 2-D (`LWC1`/`LWCT`/`LWCF`)
    /// stream — the server decodes only the covering tiles.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; additionally fails if the returned PGM does
    /// not parse. An out-of-bounds rectangle comes back as
    /// [`ServerError::Remote`] with [`ErrorCode::BadPayload`].
    pub fn decompress_region_image(
        &mut self,
        stream: &[u8],
        x: usize,
        y: usize,
        width: usize,
        height: usize,
    ) -> Result<Image, ServerError> {
        let rect = BrickRect { plane: TileRect { x, y, width, height }, z: 0, depth: 1 };
        let response = self.request(Op::DecompressRegion, region_request(rect, stream))?;
        Ok(pgm::read_pgm(response.as_slice())?)
    }

    /// Decompresses a cuboid region of an `LWCV` volume stream — the server
    /// decodes only the covering bricks.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; additionally fails if the returned raw
    /// volume does not parse. An out-of-bounds cuboid comes back as
    /// [`ServerError::Remote`] with [`ErrorCode::BadPayload`].
    pub fn decompress_region_volume(
        &mut self,
        stream: &[u8],
        rect: BrickRect,
    ) -> Result<ImageStack, ServerError> {
        let response = self.request(Op::DecompressRegion, region_request(rect, stream))?;
        read_raw_volume(&response)
    }

    /// Fetches the server's counters as a JSON string (see `ServerStats`).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn stats(&mut self) -> Result<String, ServerError> {
        let payload = self.request(Op::Stats, Vec::new())?;
        Ok(String::from_utf8_lossy(&payload).into_owned())
    }
}

/// Serializes a `decompress-region` payload: the 24-byte rectangle prefix
/// (six u32 BE: x, y, z, width, height, depth) followed by the stream.
fn region_request(rect: BrickRect, stream: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(24 + stream.len());
    for field in
        [rect.plane.x, rect.plane.y, rect.z, rect.plane.width, rect.plane.height, rect.depth]
    {
        payload.extend_from_slice(&(field as u32).to_be_bytes());
    }
    payload.extend_from_slice(stream);
    payload
}
