//! Error type of the compression service.

use crate::protocol::ErrorCode;
use lwc_coder::CoderError;
use lwc_image::ImageError;
use lwc_pipeline::PipelineError;
use std::fmt;
use std::io;

/// Errors surfaced by the server, the client library and the load generator.
#[derive(Debug)]
pub enum ServerError {
    /// A socket or stream operation failed (includes timeouts).
    Io(io::Error),
    /// A frame received from the peer violated the `LWCP` protocol.
    Protocol {
        /// Typed classification of the violation.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The peer answered with an [`Op::Error`](crate::Op::Error) frame.
    Remote {
        /// Typed error code carried by the frame.
        code: ErrorCode,
        /// Message carried by the frame.
        message: String,
    },
    /// The underlying compression machinery failed.
    Pipeline(PipelineError),
    /// An image payload could not be parsed or serialized.
    Image(ImageError),
    /// The server or client was misconfigured.
    Config(String),
}

impl ServerError {
    /// `true` if this is an I/O error representing a clean end of stream —
    /// the peer hung up between frames, which is how connections end.
    #[must_use]
    pub fn is_disconnect(&self) -> bool {
        matches!(self, Self::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof)
    }

    /// `true` if this is a [`ServerError::Remote`] busy rejection — the
    /// server's in-flight budget (global or per-connection) was exhausted
    /// and the request should be retried.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        matches!(self, Self::Remote { code: ErrorCode::Busy, .. })
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Protocol { code, message } => write!(f, "protocol violation ({code}): {message}"),
            Self::Remote { code, message } => write!(f, "server error ({code}): {message}"),
            Self::Pipeline(e) => write!(f, "pipeline error: {e}"),
            Self::Image(e) => write!(f, "image error: {e}"),
            Self::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Pipeline(e) => Some(e),
            Self::Image(e) => Some(e),
            Self::Protocol { .. } | Self::Remote { .. } | Self::Config(_) => None,
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<PipelineError> for ServerError {
    fn from(e: PipelineError) -> Self {
        Self::Pipeline(e)
    }
}

impl From<CoderError> for ServerError {
    fn from(e: CoderError) -> Self {
        Self::Pipeline(PipelineError::from(e))
    }
}

impl From<ImageError> for ServerError {
    fn from(e: ImageError) -> Self {
        Self::Image(e)
    }
}
