//! Concurrent load generator for the compression service.
//!
//! Drives `connections` parallel clients against a server, each issuing
//! `requests_per_connection` compress requests with a bounded pipeline of
//! `pipeline_depth` outstanding frames, and aggregates throughput. Busy
//! rejections (the server's in-flight budget pushing back) are counted
//! separately from completions, so the budget-versus-worker-count trade is
//! *measured*, not guessed — the same trade the paper works through when
//! sizing its inter-stage FIFOs.

use crate::client::Client;
use crate::error::ServerError;
use crate::protocol::{Op, FRAME_HEADER_BYTES};
use lwc_image::{pgm, Image};
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Shape of one load-generation run.
#[derive(Debug, Clone, Copy)]
pub struct LoadGenConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// Compress requests each connection issues.
    pub requests_per_connection: usize,
    /// Outstanding (pipelined) requests per connection.
    pub pipeline_depth: usize,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        Self { connections: 4, requests_per_connection: 16, pipeline_depth: 4 }
    }
}

/// Aggregated outcome of a load-generation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// Connections driven.
    pub connections: usize,
    /// Requests submitted across all connections.
    pub requests: u64,
    /// Requests answered with a success frame.
    pub completed: u64,
    /// Requests rejected with `busy` (in-flight budget backpressure).
    pub rejected_busy: u64,
    /// Requests answered with any other error frame.
    pub failed: u64,
    /// Request bytes written (frames + payloads).
    pub bytes_up: u64,
    /// Response payload bytes received from successful requests.
    pub bytes_down: u64,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
}

impl LoadReport {
    /// Completed requests per second of wall clock.
    #[must_use]
    pub fn requests_per_second(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Uploaded megabytes per second (raw PGM payload direction).
    #[must_use]
    pub fn upload_mb_per_second(&self) -> f64 {
        self.bytes_up as f64 / 1e6 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Downloaded megabytes per second (compressed stream direction).
    #[must_use]
    pub fn download_mb_per_second(&self) -> f64 {
        self.bytes_down as f64 / 1e6 / self.wall.as_secs_f64().max(1e-9)
    }
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} conns, {}/{} ok ({} busy, {} failed) in {:.3} s: {:.1} req/s, \
             {:.1} MB/s up, {:.1} MB/s down",
            self.connections,
            self.completed,
            self.requests,
            self.rejected_busy,
            self.failed,
            self.wall.as_secs_f64(),
            self.requests_per_second(),
            self.upload_mb_per_second(),
            self.download_mb_per_second()
        )
    }
}

struct ConnectionTally {
    completed: u64,
    rejected_busy: u64,
    failed: u64,
    bytes_up: u64,
    bytes_down: u64,
}

/// Drives one connection with a sliding window of pipelined requests.
fn drive_connection(
    addr: SocketAddr,
    pgm_payload: &[u8],
    requests: usize,
    depth: usize,
) -> Result<ConnectionTally, ServerError> {
    let mut client = Client::connect(addr)?;
    let frame_bytes = (FRAME_HEADER_BYTES + pgm_payload.len()) as u64;
    let mut tally =
        ConnectionTally { completed: 0, rejected_busy: 0, failed: 0, bytes_up: 0, bytes_down: 0 };
    let mut submitted = 0usize;
    let mut outstanding = 0usize;
    while submitted < requests || outstanding > 0 {
        while outstanding < depth && submitted < requests {
            client.submit(Op::Compress, pgm_payload.to_vec())?;
            tally.bytes_up += frame_bytes;
            submitted += 1;
            outstanding += 1;
        }
        let response = client.receive()?;
        outstanding -= 1;
        match response.result {
            Ok(stream) => {
                tally.completed += 1;
                tally.bytes_down += stream.len() as u64;
            }
            Err(e) if e.is_busy() => tally.rejected_busy += 1,
            Err(_) => tally.failed += 1,
        }
    }
    Ok(tally)
}

/// Runs the load generator against a server at `addr`, compressing `image`
/// over and over from every connection.
///
/// # Errors
///
/// Returns the first transport-level failure, if any (per-request server
/// errors are tallied in the report instead).
pub fn run(
    addr: SocketAddr,
    config: &LoadGenConfig,
    image: &Image,
) -> Result<LoadReport, ServerError> {
    if config.connections == 0 || config.requests_per_connection == 0 {
        return Err(ServerError::Config(
            "load generation needs at least one connection and one request".to_owned(),
        ));
    }
    let depth = config.pipeline_depth.max(1);
    let mut payload = Vec::with_capacity(image.pixel_count() * 2 + 64);
    pgm::write_pgm(image, &mut payload)?;
    let payload = Arc::new(payload);

    let start = Instant::now();
    let tallies: Vec<Result<ConnectionTally, ServerError>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..config.connections)
            .map(|_| {
                let payload = Arc::clone(&payload);
                scope.spawn(move || {
                    drive_connection(addr, &payload, config.requests_per_connection, depth)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen thread panicked")).collect()
    });
    let wall = start.elapsed();

    let mut report = LoadReport {
        connections: config.connections,
        requests: (config.connections * config.requests_per_connection) as u64,
        completed: 0,
        rejected_busy: 0,
        failed: 0,
        bytes_up: 0,
        bytes_down: 0,
        wall,
    };
    for tally in tallies {
        let tally = tally?;
        report.completed += tally.completed;
        report.rejected_busy += tally.rejected_busy;
        report.failed += tally.failed;
        report.bytes_up += tally.bytes_up;
        report.bytes_down += tally.bytes_down;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_rates_are_wall_clock_relative() {
        let report = LoadReport {
            connections: 2,
            requests: 10,
            completed: 8,
            rejected_busy: 2,
            failed: 0,
            bytes_up: 2_000_000,
            bytes_down: 1_000_000,
            wall: Duration::from_secs(2),
        };
        assert!((report.requests_per_second() - 4.0).abs() < 1e-9);
        assert!((report.upload_mb_per_second() - 1.0).abs() < 1e-9);
        assert!((report.download_mb_per_second() - 0.5).abs() < 1e-9);
        let line = report.to_string();
        assert!(line.contains("8/10 ok"), "{line}");
    }

    #[test]
    fn zero_shapes_are_rejected() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let image = lwc_image::synth::flat(8, 8, 8, 1);
        let bad = LoadGenConfig { connections: 0, ..LoadGenConfig::default() };
        assert!(run(addr, &bad, &image).is_err());
    }
}
