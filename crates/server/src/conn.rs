//! Per-connection state for the event loop: incremental frame reassembly
//! on the read side, a drainable response buffer on the write side, and
//! the little phase machine that makes closes graceful.
//!
//! A connection is just bytes plus bookkeeping — all *decisions* (admission
//! control, replies, timeouts) live in the event loop; this module only
//! moves bytes without ever blocking the loop.

use crate::frame::FrameAccumulator;
use crate::protocol::Frame;
use std::io::{self, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// How many already-sent peer bytes a violating connection drains after its
/// error reply, so closing the socket doesn't reset the reply away.
/// Bounded: a peer still flooding past this simply gets the reset.
pub(crate) const MAX_VIOLATION_DRAIN_BYTES: usize = 1 << 20;

/// Reads one `read_ready` pass performs before yielding back to the loop,
/// so one firehosing peer cannot starve every other connection (level
/// triggering re-reports it on the next wait immediately).
const READS_PER_PASS: usize = 16;

/// Where a connection is in its life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnPhase {
    /// Normal request/response traffic.
    Open,
    /// Peer sent FIN: no more requests, but responses still in flight are
    /// delivered before the close (pipelined clients half-close).
    PeerClosed,
    /// Protocol violation: the typed error reply is queued; flush it, send
    /// our FIN, then read-and-discard (bounded) so the close is clean.
    Draining {
        /// Our write half has been shut down.
        fin_sent: bool,
        /// Peer bytes discarded so far.
        drained: usize,
    },
}

/// What one readable-event pass produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadResult {
    /// Bytes arrived (or were discarded, when draining).
    Progress,
    /// Nothing (more) to read right now.
    Idle,
    /// The connection is finished — deregister and drop it.
    Dead,
}

/// One client connection owned by the event loop.
pub(crate) struct Connection {
    pub stream: TcpStream,
    /// Incremental frame reassembly; dead after a violation.
    pub acc: FrameAccumulator,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Requests admitted from this connection and not yet answered.
    pub in_flight: usize,
    pub phase: ConnPhase,
    /// Read interest currently registered with the poller (dropped once the
    /// peer half-closes, or a level-triggered EOF would spin the loop).
    pub want_read: bool,
    /// Write interest currently registered with the poller.
    pub want_write: bool,
    /// Last time read bytes arrived (the slow-loris clock).
    pub last_read: Instant,
    /// Last time a write made progress (the stalled-peer clock).
    pub last_write: Instant,
}

impl Connection {
    /// Wraps an accepted stream: nodelay, nonblocking, fresh accumulator.
    pub fn new(stream: TcpStream, max_payload: usize) -> io::Result<Self> {
        let _ = stream.set_nodelay(true);
        stream.set_nonblocking(true)?;
        let now = Instant::now();
        Ok(Self {
            stream,
            acc: FrameAccumulator::new(max_payload),
            write_buf: Vec::new(),
            write_pos: 0,
            in_flight: 0,
            phase: ConnPhase::Open,
            want_read: true,
            want_write: false,
            last_read: now,
            last_write: now,
        })
    }

    /// Serializes a response frame onto the write buffer (no I/O yet — the
    /// loop flushes after processing the event batch).
    pub fn queue_frame(&mut self, frame: &Frame) {
        self.write_buf.extend_from_slice(&frame.header_bytes());
        self.write_buf.extend_from_slice(&frame.payload);
    }

    /// Bytes queued and not yet written.
    pub fn pending_write(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Writes as much buffered response data as the socket accepts right
    /// now. Returns the bytes written; `Err` means the peer is gone and the
    /// connection should be dropped.
    pub fn flush(&mut self) -> io::Result<usize> {
        let mut written = 0usize;
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return Err(io::Error::new(ErrorKind::WriteZero, "peer stopped reading")),
                Ok(n) => {
                    self.write_pos += n;
                    written += n;
                    self.last_write = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
        Ok(written)
    }

    /// Handles one readable event: pulls bytes into the accumulator (or
    /// discards them while draining a violation). Bounded per pass so one
    /// peer cannot monopolize the loop.
    pub fn read_ready(&mut self, scratch: &mut [u8]) -> ReadResult {
        let mut progressed = false;
        for _ in 0..READS_PER_PASS {
            match self.stream.read(scratch) {
                Ok(0) => {
                    return match self.phase {
                        // EOF while draining or already half-closed: done.
                        ConnPhase::Draining { .. } => ReadResult::Dead,
                        _ => {
                            self.phase = ConnPhase::PeerClosed;
                            if progressed {
                                ReadResult::Progress
                            } else {
                                ReadResult::Idle
                            }
                        }
                    };
                }
                Ok(n) => {
                    progressed = true;
                    self.last_read = Instant::now();
                    if let ConnPhase::Draining { drained, .. } = &mut self.phase {
                        *drained += n;
                        if *drained > MAX_VIOLATION_DRAIN_BYTES {
                            return ReadResult::Dead;
                        }
                    } else {
                        self.acc.push_bytes(&scratch[..n]);
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => return ReadResult::Dead,
            }
        }
        if progressed {
            ReadResult::Progress
        } else {
            ReadResult::Idle
        }
    }

    /// Whether this connection has nothing left to deliver and can close:
    /// the peer is gone (or being drained past its budget elsewhere) and no
    /// admitted request still owes it a response.
    pub fn finished(&self) -> bool {
        self.phase == ConnPhase::PeerClosed && self.in_flight == 0 && self.pending_write() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ErrorCode, Op};
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn frames_queue_flush_and_reassemble() {
        let (mut client, server) = pair();
        let mut conn = Connection::new(server, 1 << 20).unwrap();
        let frame = Frame { op: Op::OkStats, request_id: 7, payload: vec![1, 2, 3] };
        conn.queue_frame(&frame);
        assert_eq!(conn.pending_write(), frame.encoded_len());
        let written = conn.flush().unwrap();
        assert_eq!(written, frame.encoded_len());
        assert_eq!(conn.pending_write(), 0);
        client.set_nonblocking(false).unwrap();
        let (header, payload) = crate::frame::read_frame(&mut client, 1 << 20, 0).unwrap();
        assert_eq!(crate::frame::into_frame(header, payload).unwrap(), frame);
    }

    #[test]
    fn reads_accumulate_and_eof_half_closes() {
        let (mut client, server) = pair();
        let mut conn = Connection::new(server, 1 << 20).unwrap();
        let frame = Frame { op: Op::Stats, request_id: 1, payload: vec![] };
        use std::io::Write as _;
        client.write_all(&frame.encode()).unwrap();
        let mut scratch = [0u8; 4096];
        // The write is visible after at most a few polls.
        let mut got = ReadResult::Idle;
        for _ in 0..100 {
            got = conn.read_ready(&mut scratch);
            if got == ReadResult::Progress {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, ReadResult::Progress);
        assert!(matches!(
            conn.acc.next_event().unwrap(),
            Some(crate::frame::FrameEvent::Frame(_, _))
        ));
        drop(client);
        for _ in 0..100 {
            if conn.phase == ConnPhase::PeerClosed {
                break;
            }
            conn.read_ready(&mut scratch);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(conn.phase, ConnPhase::PeerClosed);
        assert!(conn.finished());
    }

    #[test]
    fn draining_discards_bytes_with_a_budget() {
        let (mut client, server) = pair();
        let mut conn = Connection::new(server, 1 << 20).unwrap();
        conn.queue_frame(&Frame::error(0, ErrorCode::MalformedFrame, "bad magic"));
        conn.phase = ConnPhase::Draining { fin_sent: false, drained: 0 };
        use std::io::Write as _;
        client.write_all(&[0xAA; 8192]).unwrap();
        let mut scratch = [0u8; 4096];
        for _ in 0..100 {
            if let ConnPhase::Draining { drained, .. } = conn.phase {
                if drained >= 8192 {
                    break;
                }
            }
            conn.read_ready(&mut scratch);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let ConnPhase::Draining { drained, .. } = conn.phase else { panic!("still draining") };
        assert_eq!(drained, 8192, "bytes discarded, not parsed");
        assert_eq!(conn.acc.buffered(), 0);
    }
}
