//! The event-driven compression server.
//!
//! One nonblocking I/O thread multiplexes every connection through a
//! readiness [`Poller`] (epoll on Linux, poll(2) elsewhere — see the
//! `polling` shim): per-connection state machines reassemble frames
//! incrementally and drain write buffers as sockets allow, so thousands of
//! idle connections cost no threads. Validated requests pass admission
//! control — a **global in-flight budget** plus a per-connection cap, both
//! answered with typed `busy` — and enter a work-stealing scheduler
//! ([`WorkStealing`]): one deque per codec worker, owner LIFO at the bottom,
//! idle workers stealing FIFO from the top. A multi-tile request splits
//! itself into per-tile tasks on its worker's own deque, so one large image
//! fans across every idle worker while the assembled bytes stay identical
//! to the sequential engine's. Completed responses ride a completion queue
//! back to the I/O thread, which wakes via [`Poller::notify`]. An optional
//! content-hash LRU cache answers repeated compress/decompress payloads
//! without touching the engine at all.

use crate::cache::ResponseCache;
use crate::conn::{ConnPhase, Connection, ReadResult};
use crate::error::ServerError;
use crate::frame::{into_frame, FrameEvent};
use crate::protocol::{
    ErrorCode, Frame, FrameHeader, Op, DEFAULT_MAX_PAYLOAD_BYTES, FRAME_HEADER_BYTES,
};
use crate::rawvol::{raw_volume_len, read_raw_volume, write_raw_volume};
use crate::sched::WorkStealing;
use crate::stats::{Metrics, SchedSnapshot, ServerStats};
use lwc_coder::bitio::BitReader;
use lwc_coder::fixedtiled::is_fixed;
use lwc_coder::tiled::is_tiled;
use lwc_coder::{
    is_volume, FixedHeader, FixedStream, LosslessCodec, StreamHeader, TiledHeader, TiledStream,
    VolumeHeader, VolumeStream,
};
use lwc_image::pgm;
use lwc_image::{BrickGrid, BrickRect, Image, ImageStack, TileGrid, TileRect};
use lwc_pipeline::{
    scatter_region, Codec, TiledCompressor, TiledFixedCompressor, VolumeCompressor,
    DEFAULT_BRICK_DEPTH, DEFAULT_TILE_SIZE,
};
use polling::{Event, Poller, NOTIFY_KEY};
use std::collections::{HashMap, VecDeque};
use std::io::ErrorKind;
use std::net::{Shutdown, SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Configuration of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Codec worker threads; `0` selects the machine's available parallelism.
    pub workers: usize,
    /// Global in-flight request budget: requests admitted and not yet
    /// answered, across all connections. `0` selects `4 x workers` (a few
    /// requests of lookahead per worker, like the paper's FIFOs hold a few
    /// rows per pipeline stage). The field keeps its historical name from
    /// the bounded-queue era so callers survive the switch.
    pub queue_depth: usize,
    /// Per-connection cap on admitted-but-unanswered requests; `0` selects
    /// 64 (twice the client library's pipeline window), so one connection
    /// cannot monopolize the global budget.
    pub conn_inflight: usize,
    /// Hot-response cache capacity in entries; `0` disables the cache.
    pub cache_entries: usize,
    /// Hot-response cache budget in bytes (request + response per entry);
    /// `0` selects 256 MiB when the cache is enabled.
    pub cache_bytes: usize,
    /// Decomposition depth used for `compress` requests.
    pub scales: u32,
    /// Square tile size used for `compress` requests (images larger than one
    /// tile produce `LWCT` containers).
    pub tile_size: usize,
    /// z-axis decomposition depth used for `compress-volume` requests
    /// (`0` codes every slice independently).
    pub z_scales: u32,
    /// Near-lossless per-pixel error bound δ applied to `compress` and
    /// `compress-volume` requests; `0` (the default) keeps the service
    /// lossless and byte-identical to earlier releases. Decompression always
    /// honors the quantizer recorded in the incoming stream, whatever this
    /// is set to.
    pub delta: u8,
    /// Brick depth in slices used for `compress-volume` requests.
    pub brick_depth: usize,
    /// Per-frame payload ceiling, validated before allocation.
    pub max_payload_bytes: usize,
    /// Event-loop tick and mid-frame patience quantum: a peer that stalls
    /// mid-frame is dropped after 100 of these.
    pub read_timeout: Duration,
    /// How long a response may sit unflushed against a stalled peer before
    /// the connection is dropped.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_depth: 0,
            conn_inflight: 0,
            cache_entries: 0,
            cache_bytes: 0,
            scales: 4,
            tile_size: DEFAULT_TILE_SIZE,
            z_scales: 2,
            delta: 0,
            brick_depth: DEFAULT_BRICK_DEPTH,
            max_payload_bytes: DEFAULT_MAX_PAYLOAD_BYTES,
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// How many event-loop ticks (of `read_timeout` each) a peer gets *inside*
/// a started frame before the connection is dropped (the slow-loris budget:
/// 100 ticks x 100 ms = 10 s to finish a started frame).
const MID_FRAME_PATIENCE_POLLS: u32 = 100;

/// Poller key of the listening socket; connections use keys from 1 up.
const LISTENER_KEY: usize = 0;

/// A request admitted into the scheduler.
struct Job {
    op: Op,
    request_id: u64,
    token: usize,
    payload: Vec<u8>,
}

/// A multi-tile `compress` fanned across workers: each tile task encodes
/// one payload; the last to finish assembles the container.
struct CompressFan {
    token: usize,
    request_id: u64,
    /// Original PGM request payload (the cache key on insert).
    payload: Vec<u8>,
    image: Image,
    grid: TileGrid,
    parts: Mutex<Vec<Option<Vec<u8>>>>,
    remaining: AtomicUsize,
    failed: Mutex<Option<(ErrorCode, String)>>,
}

/// A multi-tile `decompress` fanned across workers: each tile task decodes
/// one tile image; the last to finish scatters them into the frame.
struct DecodeFan {
    token: usize,
    request_id: u64,
    /// The compressed container (re-parsed per tile; the directory makes
    /// that a slice lookup, not a scan).
    payload: Vec<u8>,
    /// `true` for `LWCF`, `false` for `LWCT`.
    fixed: bool,
    width: usize,
    height: usize,
    bit_depth: u32,
    grid: TileGrid,
    parts: Mutex<Vec<Option<Image>>>,
    remaining: AtomicUsize,
    failed: Mutex<Option<(ErrorCode, String)>>,
}

/// A multi-brick `compress-volume` fanned across workers: each brick task
/// encodes one payload; the last to finish assembles the `LWCV` container.
struct VolumeFan {
    token: usize,
    request_id: u64,
    stack: ImageStack,
    grid: BrickGrid,
    parts: Mutex<Vec<Option<Vec<u8>>>>,
    remaining: AtomicUsize,
    failed: Mutex<Option<(ErrorCode, String)>>,
}

/// A fanned volumetric decode: each brick task decodes one brick's raw
/// samples; the last to finish scatters them into the requested box. Serves
/// both `decompress-volume` (the box is the whole volume) and
/// `decompress-region` over `LWCV` streams.
struct VolumeDecodeFan {
    token: usize,
    request_id: u64,
    /// [`Op::OkDecompressVolume`] or [`Op::OkDecompressRegion`].
    respond_op: Op,
    /// The `LWCV` container (request prefix stripped; re-parsed per brick —
    /// the directory makes that a slice lookup, not a scan).
    stream: Vec<u8>,
    engine: VolumeCompressor,
    header: VolumeHeader,
    grid: BrickGrid,
    /// The requested box, in volume coordinates.
    rect: BrickRect,
    /// Plane-major brick indices covering the box; slot `i` of `parts`
    /// holds brick `indices[i]`.
    indices: Vec<usize>,
    parts: Mutex<Vec<Option<Vec<i32>>>>,
    remaining: AtomicUsize,
    failed: Mutex<Option<(ErrorCode, String)>>,
}

/// A fanned 2-D `decompress-region`: each task decodes one covering tile of
/// an `LWCT`/`LWCF` directory; the last to finish crops the region out.
struct RegionFan {
    token: usize,
    request_id: u64,
    /// The container (request prefix stripped).
    stream: Vec<u8>,
    /// `true` for `LWCF`, `false` for `LWCT`.
    fixed: bool,
    rect: TileRect,
    bit_depth: u32,
    grid: TileGrid,
    /// Row-major tile indices covering the rectangle.
    indices: Vec<usize>,
    parts: Mutex<Vec<Option<Image>>>,
    remaining: AtomicUsize,
    failed: Mutex<Option<(ErrorCode, String)>>,
}

/// What worker deques carry: whole requests, or per-tile slices of one.
enum Task {
    Request(Job),
    CompressTile { fan: Arc<CompressFan>, index: usize },
    DecodeTile { fan: Arc<DecodeFan>, index: usize },
    VolumeBrick { fan: Arc<VolumeFan>, index: usize },
    VolumeDecodeBrick { fan: Arc<VolumeDecodeFan>, slot: usize },
    RegionTile { fan: Arc<RegionFan>, slot: usize },
}

/// A finished response traveling from a worker back to the I/O thread.
struct Completion {
    token: usize,
    frame: Frame,
}

struct Shared {
    config: ServerConfig,
    engine: TiledCompressor,
    volume_engine: VolumeCompressor,
    sched: WorkStealing<Task>,
    metrics: Metrics,
    cache: Option<Mutex<ResponseCache>>,
    completions: Mutex<VecDeque<Completion>>,
    poller: Poller,
    shutdown: AtomicBool,
    loop_exit: AtomicBool,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        ServerStats::snapshot(
            &self.metrics,
            self.config.workers,
            self.config.queue_depth,
            SchedSnapshot {
                queue_len: self.sched.queued(),
                steals: self.sched.steals(),
                active_workers: self.sched.active_workers(),
            },
        )
    }
}

/// A running compression service bound to a TCP address.
///
/// Dropping the server shuts it down gracefully: admission stops, in-flight
/// requests drain through the workers, responses flush, threads join.
///
/// ```
/// use lwc_image::synth;
/// use lwc_server::{Client, Server, ServerConfig};
///
/// # fn main() -> Result<(), lwc_server::ServerError> {
/// let config = ServerConfig { workers: 2, scales: 3, tile_size: 64, ..ServerConfig::default() };
/// let server = Server::bind("127.0.0.1:0", config)?;
/// let mut client = Client::connect(server.local_addr())?;
/// let image = synth::ct_phantom(96, 80, 12, 1);
/// let stream = client.compress_image(&image)?;
/// let back = client.decompress(&stream)?;
/// assert_eq!(image.samples(), back.samples());
/// # Ok(())
/// # }
/// ```
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    io: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts the event loop and the worker pool.
    ///
    /// Bind to port 0 for an OS-assigned loopback port
    /// ([`Server::local_addr`] reports it).
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound, the platform has no
    /// readiness backend, or the configuration is invalid (zero scales,
    /// out-of-range tile size).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> Result<Self, ServerError> {
        let mut config = config;
        if config.workers == 0 {
            config.workers = thread::available_parallelism().map(usize::from).unwrap_or(1);
        }
        if config.queue_depth == 0 {
            config.queue_depth = 4 * config.workers;
        }
        if config.conn_inflight == 0 {
            config.conn_inflight = 64;
        }
        if config.cache_entries > 0 && config.cache_bytes == 0 {
            config.cache_bytes = 256 << 20;
        }
        if config.max_payload_bytes < FRAME_HEADER_BYTES {
            return Err(ServerError::Config(format!(
                "max payload of {} bytes cannot carry any request",
                config.max_payload_bytes
            )));
        }
        // The shared engine runs single-threaded per tile: the pool's
        // parallelism lives across tasks, not inside one.
        let codec =
            LosslessCodec::near_lossless(config.scales, config.delta).map_err(ServerError::from)?;
        let engine = TiledCompressor::with_codec(codec, config.tile_size, config.tile_size, 1)?;
        let volume_engine = VolumeCompressor::with_codec(
            codec,
            config.z_scales,
            config.tile_size,
            config.tile_size,
            config.brick_depth,
            1,
        )?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poller = Poller::new()?;
        poller.add(&listener, LISTENER_KEY, true, false)?;
        let shared = Arc::new(Shared {
            config,
            engine,
            volume_engine,
            sched: WorkStealing::new(config.workers),
            metrics: Metrics::default(),
            cache: (config.cache_entries > 0)
                .then(|| Mutex::new(ResponseCache::new(config.cache_entries, config.cache_bytes))),
            completions: Mutex::new(VecDeque::new()),
            poller,
            shutdown: AtomicBool::new(false),
            loop_exit: AtomicBool::new(false),
        });

        let workers = (0..config.workers)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    shared.sched.run(worker, |w, task| run_task(&shared, w, task));
                })
            })
            .collect();
        let io = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || event_loop(&shared, listener))
        };
        Ok(Self { shared, addr, io: Some(io), workers })
    }

    /// The address the server is listening on.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The resolved configuration (workers, budgets and cache filled in).
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.shared.config
    }

    /// A snapshot of the server's counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Gracefully shuts the server down: stop admitting, drain in-flight
    /// requests through the workers, flush their responses, close
    /// connections, join every thread. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if !self.shared.shutdown.swap(true, Ordering::SeqCst) {
            self.shared.sched.close();
        }
        let _ = self.shared.poller.notify();
        // Workers first: once they are done, every completion is queued and
        // the still-running event loop has delivered or is delivering it.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.shared.loop_exit.store(true, Ordering::SeqCst);
        let _ = self.shared.poller.notify();
        if let Some(io) = self.io.take() {
            let _ = io.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The I/O thread: accepts, reads, admits, flushes, delivers completions.
fn event_loop(shared: &Arc<Shared>, listener: TcpListener) {
    let mut conns: HashMap<usize, Connection> = HashMap::new();
    let mut next_token: usize = LISTENER_KEY + 1;
    let mut events: Vec<Event> = Vec::new();
    let mut scratch = vec![0u8; 64 << 10];
    let mut accepting = true;
    let mut exit_deadline: Option<Instant> = None;

    loop {
        let _ = shared.poller.wait(&mut events, Some(shared.config.read_timeout));
        if accepting && shared.shutdown.load(Ordering::SeqCst) {
            // Stop taking new connections; existing ones get ShuttingDown
            // replies from admission until the drain finishes.
            let _ = shared.poller.delete(&listener);
            accepting = false;
        }
        let mut dead: Vec<usize> = Vec::new();
        for &event in &events {
            match event.key {
                NOTIFY_KEY => {} // completions are drained below either way
                LISTENER_KEY => {
                    if accepting {
                        accept_ready(shared, &listener, &mut conns, &mut next_token);
                    }
                }
                token => {
                    let Some(conn) = conns.get_mut(&token) else { continue };
                    if event.readable && conn.read_ready(&mut scratch) == ReadResult::Dead {
                        dead.push(token);
                        continue;
                    }
                    if pump_frames(shared, conn, token) {
                        dead.push(token);
                    }
                }
            }
        }
        deliver_completions(shared, &mut conns);
        flush_and_sweep(shared, &mut conns, &mut dead);
        for token in dead {
            close_conn(shared, &mut conns, token);
        }
        if shared.loop_exit.load(Ordering::SeqCst) {
            // Workers have joined: no further completions can appear. Keep
            // ticking until pending responses flush, with a bounded grace.
            let deadline =
                *exit_deadline.get_or_insert_with(|| Instant::now() + shared.config.write_timeout);
            let outstanding = !shared.completions.lock().expect("poisoned").is_empty()
                || conns.values().any(|c| c.pending_write() > 0);
            if !outstanding || Instant::now() >= deadline {
                break;
            }
        }
    }
    for (_, conn) in conns.drain() {
        let _ = shared.poller.delete(&conn.stream);
        let _ = conn.stream.shutdown(Shutdown::Both);
    }
    if accepting {
        let _ = shared.poller.delete(&listener);
    }
}

/// Accepts until the listener would block.
fn accept_ready(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    conns: &mut HashMap<usize, Connection>,
    next_token: &mut usize,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    continue; // dropped: the listener is about to deregister
                }
                let Ok(conn) = Connection::new(stream, shared.config.max_payload_bytes) else {
                    continue;
                };
                let token = loop {
                    let candidate = *next_token;
                    *next_token = next_token.wrapping_add(1);
                    if candidate != LISTENER_KEY
                        && candidate != NOTIFY_KEY
                        && !conns.contains_key(&candidate)
                    {
                        break candidate;
                    }
                };
                if shared.poller.add(&conn.stream, token, true, false).is_ok() {
                    Metrics::bump(&shared.metrics.accepted_connections);
                    conns.insert(token, conn);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // WouldBlock, or transient failure (EMFILE): the next readiness
            // event retries either way.
            Err(_) => break,
        }
    }
}

/// Drains every complete frame the accumulator holds. Returns `true` if the
/// connection must be closed outright (never: violations drain instead).
fn pump_frames(shared: &Arc<Shared>, conn: &mut Connection, token: usize) -> bool {
    if matches!(conn.phase, ConnPhase::Draining { .. }) {
        return false;
    }
    loop {
        match conn.acc.next_event() {
            Ok(None) => return false,
            Ok(Some(FrameEvent::Frame(header, payload))) => {
                handle_frame(shared, conn, token, header, payload);
            }
            Ok(Some(FrameEvent::Oversized(header))) => {
                // The header parsed — the request id is known and the reply
                // addressable — but the payload was never read, so the frame
                // boundary is lost: reply, FIN after flush, drain, close.
                queue_error(
                    shared,
                    conn,
                    header.request_id,
                    ErrorCode::FrameTooLarge,
                    &format!(
                        "declared payload of {} bytes exceeds the {}-byte limit",
                        header.payload_len, shared.config.max_payload_bytes
                    ),
                );
                enter_drain(conn);
                return false;
            }
            Err(e) => {
                // Broken framing before a request id could be read (bad
                // magic or version): reply once with id 0, then drain —
                // a byte stream with a lost frame boundary cannot resync.
                let (code, message) = match e {
                    ServerError::Protocol { code, message } => (code, message),
                    other => (ErrorCode::MalformedFrame, other.to_string()),
                };
                queue_error(shared, conn, 0, code, &message);
                enter_drain(conn);
                return false;
            }
        }
    }
}

/// Switches a connection into the violation-drain phase.
fn enter_drain(conn: &mut Connection) {
    conn.phase = ConnPhase::Draining { fin_sent: false, drained: 0 };
    conn.last_read = Instant::now();
}

/// Queues an error reply and counts it.
fn queue_error(
    shared: &Arc<Shared>,
    conn: &mut Connection,
    request_id: u64,
    code: ErrorCode,
    message: &str,
) {
    Metrics::bump(&shared.metrics.error_replies);
    conn.queue_frame(&Frame::error(request_id, code, message));
}

/// One complete frame off the wire: validate the op, then admit.
fn handle_frame(
    shared: &Arc<Shared>,
    conn: &mut Connection,
    token: usize,
    header: FrameHeader,
    payload: Vec<u8>,
) {
    Metrics::bump(&shared.metrics.received_requests);
    Metrics::add(&shared.metrics.bytes_in, (FRAME_HEADER_BYTES + payload.len()) as u64);
    match into_frame(header, payload) {
        Ok(frame) if frame.op.is_request() => admit(shared, conn, token, frame),
        Ok(frame) => {
            // A known op, but not a request (a response op on the request
            // path). The frame boundary is intact: the connection stays
            // usable.
            queue_error(
                shared,
                conn,
                frame.request_id,
                ErrorCode::UnknownOp,
                &format!("op {:?} is not a request", frame.op),
            );
        }
        Err(e) => {
            // Unknown op byte: the payload was fully consumed, so this is
            // also recoverable.
            let (code, message) = match e {
                ServerError::Protocol { code, message } => (code, message),
                other => (ErrorCode::MalformedFrame, other.to_string()),
            };
            queue_error(shared, conn, header.request_id, code, &message);
        }
    }
}

/// Admission control: stats inline, then cache, then the global budget and
/// the per-connection cap, then the scheduler.
fn admit(shared: &Arc<Shared>, conn: &mut Connection, token: usize, frame: Frame) {
    if frame.op == Op::Stats {
        // Served inline on the I/O thread: stats must answer even (indeed,
        // especially) when every worker is saturated. Snapshot first so the
        // reply does not count itself.
        let stats = shared.stats();
        Metrics::bump(&shared.metrics.completed_requests);
        conn.queue_frame(&Frame {
            op: Op::OkStats,
            request_id: frame.request_id,
            payload: stats.to_json().into_bytes(),
        });
        return;
    }
    if shared.shutdown.load(Ordering::SeqCst) {
        queue_error(
            shared,
            conn,
            frame.request_id,
            ErrorCode::ShuttingDown,
            "server is shutting down",
        );
        return;
    }
    let cacheable = matches!(frame.op, Op::Compress | Op::Decompress);
    if cacheable {
        if let Some(cache) = &shared.cache {
            if let Some(response) = cache.lock().expect("poisoned").get(frame.op, &frame.payload) {
                Metrics::bump(&shared.metrics.cache_hits);
                Metrics::bump(&shared.metrics.completed_requests);
                conn.queue_frame(&Frame {
                    op: frame.op.response(),
                    request_id: frame.request_id,
                    payload: response,
                });
                return;
            }
        }
    }
    // Only the I/O thread increments in_flight, so check-then-bump cannot
    // race past the budget.
    if shared.metrics.in_flight.load(Ordering::Relaxed) >= shared.config.queue_depth as u64 {
        Metrics::bump(&shared.metrics.rejected_busy);
        queue_error(
            shared,
            conn,
            frame.request_id,
            ErrorCode::Busy,
            &format!("in-flight budget exhausted ({} requests); retry", shared.config.queue_depth),
        );
        return;
    }
    if conn.in_flight >= shared.config.conn_inflight {
        Metrics::bump(&shared.metrics.rejected_busy);
        queue_error(
            shared,
            conn,
            frame.request_id,
            ErrorCode::Busy,
            &format!(
                "connection pipeline limit reached ({} in flight); retry",
                shared.config.conn_inflight
            ),
        );
        return;
    }
    if cacheable && shared.cache.is_some() {
        Metrics::bump(&shared.metrics.cache_misses);
    }
    Metrics::bump(&shared.metrics.in_flight);
    conn.in_flight += 1;
    let request_id = frame.request_id;
    let job = Job { op: frame.op, request_id, token, payload: frame.payload };
    if shared.sched.inject(Task::Request(job)).is_err() {
        Metrics::settle(&shared.metrics.in_flight);
        conn.in_flight -= 1;
        queue_error(shared, conn, request_id, ErrorCode::ShuttingDown, "server is shutting down");
    }
}

/// Routes queued completions to their connections, settling in-flight
/// accounting (a vanished connection still settles the global budget).
fn deliver_completions(shared: &Arc<Shared>, conns: &mut HashMap<usize, Connection>) {
    loop {
        let completion = shared.completions.lock().expect("poisoned").pop_front();
        let Some(Completion { token, frame }) = completion else { return };
        Metrics::settle(&shared.metrics.in_flight);
        if let Some(conn) = conns.get_mut(&token) {
            conn.in_flight -= 1;
            conn.queue_frame(&frame);
        }
    }
}

/// Flushes pending writes, updates poller interest, applies timeouts, sends
/// the draining FIN, and collects finished/stalled connections.
fn flush_and_sweep(
    shared: &Arc<Shared>,
    conns: &mut HashMap<usize, Connection>,
    dead: &mut Vec<usize>,
) {
    let now = Instant::now();
    let patience = shared.config.read_timeout * MID_FRAME_PATIENCE_POLLS;
    for (&token, conn) in conns.iter_mut() {
        if dead.contains(&token) {
            continue;
        }
        if conn.pending_write() > 0 {
            match conn.flush() {
                Ok(written) => Metrics::add(&shared.metrics.bytes_out, written as u64),
                Err(_) => {
                    dead.push(token);
                    continue;
                }
            }
        }
        let reply_flushed = conn.pending_write() == 0;
        if let ConnPhase::Draining { fin_sent, .. } = &mut conn.phase {
            if !*fin_sent && reply_flushed {
                // Reply flushed: signal our end with FIN, then keep draining
                // so the close cannot become a reply-destroying reset.
                let _ = conn.stream.shutdown(Shutdown::Write);
                *fin_sent = true;
            }
        }
        let stalled = match conn.phase {
            ConnPhase::Open | ConnPhase::PeerClosed => {
                (conn.acc.mid_frame() && now.duration_since(conn.last_read) > patience)
                    || (conn.pending_write() > 0
                        && now.duration_since(conn.last_write) > shared.config.write_timeout)
            }
            ConnPhase::Draining { .. } => {
                now.duration_since(conn.last_read) > shared.config.write_timeout
            }
        };
        if stalled || conn.finished() {
            dead.push(token);
            continue;
        }
        let want_read = conn.phase != ConnPhase::PeerClosed;
        let want_write = conn.pending_write() > 0;
        if (want_read != conn.want_read || want_write != conn.want_write)
            && shared.poller.modify(&conn.stream, token, want_read, want_write).is_ok()
        {
            conn.want_read = want_read;
            conn.want_write = want_write;
        }
    }
}

/// Deregisters and drops a connection. Its outstanding jobs still settle
/// the global in-flight budget when their completions arrive.
fn close_conn(shared: &Arc<Shared>, conns: &mut HashMap<usize, Connection>, token: usize) {
    if let Some(conn) = conns.remove(&token) {
        let _ = shared.poller.delete(&conn.stream);
    }
}

/// Executes one scheduled task on a worker thread.
fn run_task(shared: &Arc<Shared>, worker: usize, task: Task) {
    match task {
        Task::Request(job) => run_request(shared, worker, job),
        Task::CompressTile { fan, index } => run_compress_tile(shared, &fan, index),
        Task::DecodeTile { fan, index } => run_decode_tile(shared, &fan, index),
        Task::VolumeBrick { fan, index } => run_volume_brick(shared, &fan, index),
        Task::VolumeDecodeBrick { fan, slot } => run_volume_decode_brick(shared, &fan, slot),
        Task::RegionTile { fan, slot } => run_region_tile(shared, &fan, slot),
    }
}

/// Runs a whole request: multi-tile work splits itself into per-tile tasks
/// on this worker's own deque (idle workers steal them); everything else
/// executes directly.
fn run_request(shared: &Arc<Shared>, worker: usize, job: Job) {
    let job = match try_fan_out(shared, worker, job) {
        Ok(()) => return, // tiles queued; the last to finish responds
        Err(job) => job,
    };
    let outcome = execute(shared, job.op, &job.payload)
        .and_then(|payload| ensure_frame_fits(shared, payload));
    match outcome {
        Ok(response) => {
            cache_insert(shared, job.op, &job.payload, &response);
            respond_ok(shared, job.token, job.op.response(), job.request_id, response);
        }
        Err((code, message)) => respond_error(shared, job.token, job.request_id, code, &message),
    }
}

/// Splits a multi-tile compress/decompress into per-tile tasks. `Err(job)`
/// hands the request back for the direct path (single tile, single worker,
/// or any condition the direct path will classify with its typed error).
fn try_fan_out(shared: &Arc<Shared>, worker: usize, job: Job) -> Result<(), Job> {
    if shared.sched.workers() < 2 {
        return Err(job);
    }
    match job.op {
        Op::Compress => {
            let Ok(image) = pgm::read_pgm(job.payload.as_slice()) else { return Err(job) };
            let Ok(grid) = shared.engine.grid(image.width(), image.height()) else {
                return Err(job);
            };
            if grid.tile_count() < 2 {
                return Err(job);
            }
            let tiles = grid.tile_count();
            let fan = Arc::new(CompressFan {
                token: job.token,
                request_id: job.request_id,
                payload: job.payload,
                image,
                grid,
                parts: Mutex::new(vec![None; tiles]),
                remaining: AtomicUsize::new(tiles),
                failed: Mutex::new(None),
            });
            for index in 0..tiles {
                shared
                    .sched
                    .push_local(worker, Task::CompressTile { fan: Arc::clone(&fan), index });
            }
            Ok(())
        }
        Op::Decompress => {
            // Probe the container shape; any parse problem falls back to the
            // direct path for its typed error.
            let probe = if is_tiled(&job.payload) {
                TiledStream::parse(&job.payload).ok().and_then(|s| {
                    let h = *s.header();
                    s.grid().ok().map(|g| (false, h.width, h.height, h.bit_depth, g))
                })
            } else if is_fixed(&job.payload) {
                FixedStream::parse(&job.payload).ok().and_then(|s| {
                    let h = *s.header();
                    s.grid().ok().map(|g| (true, h.width, h.height, h.bit_depth, g))
                })
            } else {
                None
            };
            let Some((fixed, width, height, bit_depth, grid)) = probe else { return Err(job) };
            if grid.tile_count() < 2
                || ensure_response_fits(shared, width, height, bit_depth).is_err()
            {
                return Err(job);
            }
            let tiles = grid.tile_count();
            let fan = Arc::new(DecodeFan {
                token: job.token,
                request_id: job.request_id,
                payload: job.payload,
                fixed,
                width,
                height,
                bit_depth,
                grid,
                parts: Mutex::new(vec![None; tiles]),
                remaining: AtomicUsize::new(tiles),
                failed: Mutex::new(None),
            });
            for index in 0..tiles {
                shared.sched.push_local(worker, Task::DecodeTile { fan: Arc::clone(&fan), index });
            }
            Ok(())
        }
        Op::CompressVolume => {
            let Ok(stack) = read_raw_volume(&job.payload) else { return Err(job) };
            let Ok(grid) = shared.volume_engine.grid(stack.width(), stack.height(), stack.depth())
            else {
                return Err(job);
            };
            if grid.brick_count() < 2 {
                return Err(job);
            }
            let bricks = grid.brick_count();
            let fan = Arc::new(VolumeFan {
                token: job.token,
                request_id: job.request_id,
                stack,
                grid,
                parts: Mutex::new(vec![None; bricks]),
                remaining: AtomicUsize::new(bricks),
                failed: Mutex::new(None),
            });
            for index in 0..bricks {
                shared.sched.push_local(worker, Task::VolumeBrick { fan: Arc::clone(&fan), index });
            }
            Ok(())
        }
        Op::DecompressVolume => {
            let Some((engine, header, grid)) = probe_volume(&job.payload) else { return Err(job) };
            let whole = BrickRect {
                plane: TileRect { x: 0, y: 0, width: header.width, height: header.height },
                z: 0,
                depth: header.depth,
            };
            let Some(indices) = grid.covering_indices(whole) else { return Err(job) };
            if indices.len() < 2
                || ensure_volume_response_fits(
                    shared,
                    header.width,
                    header.height,
                    header.depth,
                    header.bit_depth,
                )
                .is_err()
            {
                return Err(job);
            }
            fan_volume_decode(
                shared,
                worker,
                &job,
                Op::OkDecompressVolume,
                job.payload.clone(),
                engine,
                header,
                grid,
                whole,
                indices,
            );
            Ok(())
        }
        Op::DecompressRegion => {
            let Ok((rect, stream_bytes)) = split_region_request(&job.payload) else {
                return Err(job);
            };
            if is_volume(stream_bytes) {
                let Some((engine, header, grid)) = probe_volume(stream_bytes) else {
                    return Err(job);
                };
                let Some(indices) = grid.covering_indices(rect) else { return Err(job) };
                if indices.len() < 2
                    || ensure_volume_response_fits(
                        shared,
                        rect.plane.width,
                        rect.plane.height,
                        rect.depth,
                        header.bit_depth,
                    )
                    .is_err()
                {
                    return Err(job);
                }
                fan_volume_decode(
                    shared,
                    worker,
                    &job,
                    Op::OkDecompressRegion,
                    stream_bytes.to_vec(),
                    engine,
                    header,
                    grid,
                    rect,
                    indices,
                );
                return Ok(());
            }
            // 2-D containers: the region must be a single slice.
            if rect.z != 0 || rect.depth != 1 {
                return Err(job);
            }
            let probe = if is_tiled(stream_bytes) {
                TiledStream::parse(stream_bytes).ok().and_then(|s| {
                    let h = *s.header();
                    s.grid().ok().map(|g| (false, h.bit_depth, g))
                })
            } else if is_fixed(stream_bytes) {
                FixedStream::parse(stream_bytes).ok().and_then(|s| {
                    let h = *s.header();
                    s.grid().ok().map(|g| (true, h.bit_depth, g))
                })
            } else {
                None
            };
            let Some((fixed, bit_depth, grid)) = probe else { return Err(job) };
            let Some(indices) = grid.covering_indices(rect.plane) else { return Err(job) };
            if indices.len() < 2
                || ensure_response_fits(shared, rect.plane.width, rect.plane.height, bit_depth)
                    .is_err()
            {
                return Err(job);
            }
            let slots = indices.len();
            let fan = Arc::new(RegionFan {
                token: job.token,
                request_id: job.request_id,
                stream: stream_bytes.to_vec(),
                fixed,
                rect: rect.plane,
                bit_depth,
                grid,
                indices,
                parts: Mutex::new(vec![None; slots]),
                remaining: AtomicUsize::new(slots),
                failed: Mutex::new(None),
            });
            for slot in 0..slots {
                shared.sched.push_local(worker, Task::RegionTile { fan: Arc::clone(&fan), slot });
            }
            Ok(())
        }
        _ => Err(job),
    }
}

/// Parses an `LWCV` payload into the header-matched single-threaded engine
/// and the grid; `None` hands the request to the direct path for its typed
/// error.
fn probe_volume(bytes: &[u8]) -> Option<(VolumeCompressor, VolumeHeader, BrickGrid)> {
    if !is_volume(bytes) {
        return None;
    }
    let stream = VolumeStream::parse(bytes).ok()?;
    let header = *stream.header();
    let grid = stream.grid().ok()?;
    let engine = volume_engine_for(&header).ok()?;
    Some((engine, header, grid))
}

/// Queues the per-brick decode tasks of a volumetric fan.
#[allow(clippy::too_many_arguments)]
fn fan_volume_decode(
    shared: &Arc<Shared>,
    worker: usize,
    job: &Job,
    respond_op: Op,
    stream: Vec<u8>,
    engine: VolumeCompressor,
    header: VolumeHeader,
    grid: BrickGrid,
    rect: BrickRect,
    indices: Vec<usize>,
) {
    let slots = indices.len();
    let fan = Arc::new(VolumeDecodeFan {
        token: job.token,
        request_id: job.request_id,
        respond_op,
        stream,
        engine,
        header,
        grid,
        rect,
        indices,
        parts: Mutex::new(vec![None; slots]),
        remaining: AtomicUsize::new(slots),
        failed: Mutex::new(None),
    });
    for slot in 0..slots {
        shared.sched.push_local(worker, Task::VolumeDecodeBrick { fan: Arc::clone(&fan), slot });
    }
}

/// Encodes one tile of a fanned-out compress; the last finisher assembles.
fn run_compress_tile(shared: &Arc<Shared>, fan: &Arc<CompressFan>, index: usize) {
    if fan.failed.lock().expect("poisoned").is_none() {
        match shared.engine.encode_tile(&fan.image, &fan.grid, index) {
            Ok(bytes) => fan.parts.lock().expect("poisoned")[index] = Some(bytes),
            Err(e) => {
                let mut failed = fan.failed.lock().expect("poisoned");
                if failed.is_none() {
                    *failed = Some((ErrorCode::Internal, format!("compression failed: {e}")));
                }
            }
        }
    }
    if fan.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        finish_compress(shared, fan);
    }
}

/// Assembles the `LWCT` container from the fanned tile payloads —
/// byte-identical to the sequential engine, which is built on the same
/// per-tile encode and container writer.
fn finish_compress(shared: &Arc<Shared>, fan: &Arc<CompressFan>) {
    if let Some((code, message)) = fan.failed.lock().expect("poisoned").take() {
        respond_error(shared, fan.token, fan.request_id, code, &message);
        return;
    }
    let parts = std::mem::take(&mut *fan.parts.lock().expect("poisoned"));
    let payloads: Vec<Vec<u8>> =
        parts.into_iter().map(|p| p.expect("every tile encoded")).collect();
    let outcome = shared
        .engine
        .assemble_container(&fan.grid, fan.image.bit_depth(), &payloads)
        .map_err(|e| (ErrorCode::Internal, format!("compression failed: {e}")))
        .and_then(|bytes| ensure_frame_fits(shared, bytes));
    match outcome {
        Ok(response) => {
            cache_insert(shared, Op::Compress, &fan.payload, &response);
            respond_ok(shared, fan.token, Op::OkCompress, fan.request_id, response);
        }
        Err((code, message)) => respond_error(shared, fan.token, fan.request_id, code, &message),
    }
}

/// Decodes one tile of a fanned-out decompress; the last finisher scatters.
fn run_decode_tile(shared: &Arc<Shared>, fan: &Arc<DecodeFan>, index: usize) {
    if fan.failed.lock().expect("poisoned").is_none() {
        let bad =
            |e: ServerError| (ErrorCode::BadPayload, format!("invalid compressed payload: {e}"));
        let result = if fan.fixed {
            FixedStream::parse(&fan.payload).map_err(|e| bad(e.into())).and_then(|stream| {
                let engine = fixed_engine(stream.header()).map_err(bad)?;
                engine.decompress_parsed_tile(&stream, index).map_err(|e| bad(e.into()))
            })
        } else {
            TiledStream::parse(&fan.payload).map_err(|e| bad(e.into())).and_then(|stream| {
                let engine = tiled_engine(stream.header()).map_err(bad)?;
                engine.decompress_parsed_tile(&stream, index).map_err(|e| bad(e.into()))
            })
        };
        match result {
            Ok(tile) => fan.parts.lock().expect("poisoned")[index] = Some(tile),
            Err(em) => {
                let mut failed = fan.failed.lock().expect("poisoned");
                if failed.is_none() {
                    *failed = Some(em);
                }
            }
        }
    }
    if fan.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        finish_decode(shared, fan);
    }
}

/// Scatters the fanned tile images into the output frame and serializes the
/// PGM response — the same scatter the sequential decompress performs.
fn finish_decode(shared: &Arc<Shared>, fan: &Arc<DecodeFan>) {
    if let Some((code, message)) = fan.failed.lock().expect("poisoned").take() {
        respond_error(shared, fan.token, fan.request_id, code, &message);
        return;
    }
    let parts = std::mem::take(&mut *fan.parts.lock().expect("poisoned"));
    let internal = |e: String| (ErrorCode::Internal, format!("decompression failed: {e}"));
    let outcome = Image::zeros(fan.width, fan.height, fan.bit_depth)
        .map_err(|e| internal(e.to_string()))
        .and_then(|mut frame| {
            for (index, tile) in parts.into_iter().enumerate() {
                let tile = tile.expect("every tile decoded");
                frame
                    .view_rect_mut(fan.grid.rect(index))
                    .and_then(|mut window| window.copy_from_image(&tile))
                    .map_err(|e| internal(e.to_string()))?;
            }
            encode_pgm(&frame)
        })
        .and_then(|bytes| ensure_frame_fits(shared, bytes));
    match outcome {
        Ok(response) => {
            cache_insert(shared, Op::Decompress, &fan.payload, &response);
            respond_ok(shared, fan.token, Op::OkDecompress, fan.request_id, response);
        }
        Err((code, message)) => respond_error(shared, fan.token, fan.request_id, code, &message),
    }
}

/// Encodes one brick of a fanned-out compress-volume; the last finisher
/// assembles the `LWCV` container.
fn run_volume_brick(shared: &Arc<Shared>, fan: &Arc<VolumeFan>, index: usize) {
    if fan.failed.lock().expect("poisoned").is_none() {
        match shared.volume_engine.encode_brick(&fan.stack, &fan.grid, index) {
            Ok(bytes) => fan.parts.lock().expect("poisoned")[index] = Some(bytes),
            Err(e) => {
                let mut failed = fan.failed.lock().expect("poisoned");
                if failed.is_none() {
                    *failed = Some((ErrorCode::Internal, format!("compression failed: {e}")));
                }
            }
        }
    }
    if fan.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        finish_volume_compress(shared, fan);
    }
}

/// Assembles the `LWCV` container from the fanned brick payloads —
/// byte-identical to the sequential engine, which is built on the same
/// per-brick encode and container writer.
fn finish_volume_compress(shared: &Arc<Shared>, fan: &Arc<VolumeFan>) {
    if let Some((code, message)) = fan.failed.lock().expect("poisoned").take() {
        respond_error(shared, fan.token, fan.request_id, code, &message);
        return;
    }
    let parts = std::mem::take(&mut *fan.parts.lock().expect("poisoned"));
    let payloads: Vec<Vec<u8>> =
        parts.into_iter().map(|p| p.expect("every brick encoded")).collect();
    let outcome = shared
        .volume_engine
        .assemble_container(&fan.grid, fan.stack.bit_depth(), &payloads)
        .map_err(|e| (ErrorCode::Internal, format!("compression failed: {e}")))
        .and_then(|bytes| ensure_frame_fits(shared, bytes));
    match outcome {
        Ok(response) => {
            respond_ok(shared, fan.token, Op::OkCompressVolume, fan.request_id, response);
        }
        Err((code, message)) => respond_error(shared, fan.token, fan.request_id, code, &message),
    }
}

/// Decodes one brick of a fanned-out volumetric decode (whole volume or
/// region); the last finisher scatters.
fn run_volume_decode_brick(shared: &Arc<Shared>, fan: &Arc<VolumeDecodeFan>, slot: usize) {
    if fan.failed.lock().expect("poisoned").is_none() {
        let bad = |e: String| (ErrorCode::BadPayload, format!("invalid compressed payload: {e}"));
        let result =
            VolumeStream::parse(&fan.stream).map_err(|e| bad(e.to_string())).and_then(|stream| {
                fan.engine
                    .decode_brick_samples(&stream, &fan.grid, fan.indices[slot])
                    .map_err(|e| bad(e.to_string()))
            });
        match result {
            Ok(samples) => fan.parts.lock().expect("poisoned")[slot] = Some(samples),
            Err(em) => {
                let mut failed = fan.failed.lock().expect("poisoned");
                if failed.is_none() {
                    *failed = Some(em);
                }
            }
        }
    }
    if fan.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        finish_volume_decode(shared, fan);
    }
}

/// Scatters the fanned brick samples into the requested region and
/// serializes the raw-volume response — the same scatter the sequential
/// volumetric decode performs.
fn finish_volume_decode(shared: &Arc<Shared>, fan: &Arc<VolumeDecodeFan>) {
    if let Some((code, message)) = fan.failed.lock().expect("poisoned").take() {
        respond_error(shared, fan.token, fan.request_id, code, &message);
        return;
    }
    let parts = std::mem::take(&mut *fan.parts.lock().expect("poisoned"));
    let internal = |e: String| (ErrorCode::Internal, format!("decompression failed: {e}"));
    let rect = fan.rect;
    let mut region = vec![0i32; rect.plane.width * rect.plane.height * rect.depth];
    for (slot, samples) in parts.into_iter().enumerate() {
        let samples = samples.expect("every brick decoded");
        scatter_region(&mut region, rect, fan.grid.rect(fan.indices[slot]), &samples);
    }
    let outcome = ImageStack::from_samples(
        rect.plane.width,
        rect.plane.height,
        rect.depth,
        fan.header.bit_depth,
        region,
    )
    .map_err(|e| internal(e.to_string()))
    .map(|stack| write_raw_volume(&stack))
    .and_then(|bytes| ensure_frame_fits(shared, bytes));
    match outcome {
        Ok(response) => {
            respond_ok(shared, fan.token, fan.respond_op, fan.request_id, response);
        }
        Err((code, message)) => respond_error(shared, fan.token, fan.request_id, code, &message),
    }
}

/// Decodes one covering tile of a fanned-out 2-D region request; the last
/// finisher crops and assembles.
fn run_region_tile(shared: &Arc<Shared>, fan: &Arc<RegionFan>, slot: usize) {
    if fan.failed.lock().expect("poisoned").is_none() {
        let bad =
            |e: ServerError| (ErrorCode::BadPayload, format!("invalid compressed payload: {e}"));
        let index = fan.indices[slot];
        let result = if fan.fixed {
            FixedStream::parse(&fan.stream).map_err(|e| bad(e.into())).and_then(|stream| {
                let engine = fixed_engine(stream.header()).map_err(bad)?;
                engine.decompress_parsed_tile(&stream, index).map_err(|e| bad(e.into()))
            })
        } else {
            TiledStream::parse(&fan.stream).map_err(|e| bad(e.into())).and_then(|stream| {
                let engine = tiled_engine(stream.header()).map_err(bad)?;
                engine.decompress_parsed_tile(&stream, index).map_err(|e| bad(e.into()))
            })
        };
        match result {
            Ok(tile) => fan.parts.lock().expect("poisoned")[slot] = Some(tile),
            Err(em) => {
                let mut failed = fan.failed.lock().expect("poisoned");
                if failed.is_none() {
                    *failed = Some(em);
                }
            }
        }
    }
    if fan.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        finish_region(shared, fan);
    }
}

/// Crops the covering tiles to the requested rectangle, assembles the region
/// image and serializes the PGM response.
fn finish_region(shared: &Arc<Shared>, fan: &Arc<RegionFan>) {
    if let Some((code, message)) = fan.failed.lock().expect("poisoned").take() {
        respond_error(shared, fan.token, fan.request_id, code, &message);
        return;
    }
    let parts = std::mem::take(&mut *fan.parts.lock().expect("poisoned"));
    let internal = |e: String| (ErrorCode::Internal, format!("decompression failed: {e}"));
    let rect = fan.rect;
    let mut region = vec![0i32; rect.width * rect.height];
    for (slot, tile) in parts.into_iter().enumerate() {
        let tile = tile.expect("every tile decoded");
        copy_tile_into_region(&mut region, rect, fan.grid.rect(fan.indices[slot]), &tile);
    }
    let outcome = Image::from_samples(rect.width, rect.height, fan.bit_depth, region)
        .map_err(|e| internal(e.to_string()))
        .and_then(|image| encode_pgm(&image))
        .and_then(|bytes| ensure_frame_fits(shared, bytes));
    match outcome {
        Ok(response) => {
            respond_ok(shared, fan.token, Op::OkDecompressRegion, fan.request_id, response);
        }
        Err((code, message)) => respond_error(shared, fan.token, fan.request_id, code, &message),
    }
}

/// Copies the intersection of a decoded tile with the requested rectangle
/// into the region buffer (region-local coordinates). Tiles that miss the
/// rectangle entirely are a no-op, so callers can scatter any covering set.
fn copy_tile_into_region(
    region: &mut [i32],
    want: TileRect,
    tile_rect: TileRect,
    tile: &lwc_image::Image,
) {
    let x0 = want.x.max(tile_rect.x);
    let y0 = want.y.max(tile_rect.y);
    let x1 = want.right().min(tile_rect.right());
    let y1 = want.bottom().min(tile_rect.bottom());
    if x0 >= x1 || y0 >= y1 {
        return;
    }
    for y in y0..y1 {
        let src_off = (y - tile_rect.y) * tile_rect.width + (x0 - tile_rect.x);
        let dst_off = (y - want.y) * want.width + (x0 - want.x);
        let n = x1 - x0;
        region[dst_off..dst_off + n].copy_from_slice(&tile.samples()[src_off..src_off + n]);
    }
}

/// Inserts a successful cacheable response into the hot-response cache.
fn cache_insert(shared: &Arc<Shared>, op: Op, payload: &[u8], response: &[u8]) {
    if !matches!(op, Op::Compress | Op::Decompress) {
        return;
    }
    if let Some(cache) = &shared.cache {
        cache.lock().expect("poisoned").insert(op, payload.to_vec(), response.to_vec());
    }
}

/// Queues a success completion and wakes the I/O thread.
fn respond_ok(shared: &Arc<Shared>, token: usize, op: Op, request_id: u64, payload: Vec<u8>) {
    Metrics::bump(&shared.metrics.completed_requests);
    push_completion(shared, token, Frame { op, request_id, payload });
}

/// Queues an error completion and wakes the I/O thread.
fn respond_error(
    shared: &Arc<Shared>,
    token: usize,
    request_id: u64,
    code: ErrorCode,
    message: &str,
) {
    Metrics::bump(&shared.metrics.error_replies);
    push_completion(shared, token, Frame::error(request_id, code, message));
}

fn push_completion(shared: &Arc<Shared>, token: usize, frame: Frame) {
    shared.completions.lock().expect("poisoned").push_back(Completion { token, frame });
    let _ = shared.poller.notify();
}

/// Refuses a response that would exceed the frame limit — the server never
/// emits a frame it would itself refuse to read.
fn ensure_frame_fits(shared: &Shared, payload: Vec<u8>) -> Result<Vec<u8>, (ErrorCode, String)> {
    if payload.len() > shared.config.max_payload_bytes {
        return Err((
            ErrorCode::FrameTooLarge,
            format!(
                "response of {} bytes exceeds the {}-byte frame limit (raise --max-frame-mb)",
                payload.len(),
                shared.config.max_payload_bytes
            ),
        ));
    }
    Ok(payload)
}

/// Executes one validated request against the shared engine (the direct,
/// non-fanned path; also the only path for `decompress-tile`).
fn execute(shared: &Shared, op: Op, payload: &[u8]) -> Result<Vec<u8>, (ErrorCode, String)> {
    match op {
        Op::Compress => {
            let image = pgm::read_pgm(payload)
                .map_err(|e| (ErrorCode::BadPayload, format!("invalid PGM payload: {e}")))?;
            Codec::compress(&shared.engine, &image)
                .map_err(|e| (ErrorCode::Internal, format!("compression failed: {e}")))
        }
        Op::Decompress => {
            let bad = |e: ServerError| {
                (ErrorCode::BadPayload, format!("invalid compressed payload: {e}"))
            };
            if is_volume(payload) {
                return Err((
                    ErrorCode::BadPayload,
                    "stream is a volumetric LWCV container: use decompress-volume".to_owned(),
                ));
            }
            // Check the response size from the header dimensions before any
            // decode work — a stream whose pixels cannot fit one response
            // frame is refused up front (see `ensure_response_fits`).
            let image = if is_tiled(payload) {
                let header = *TiledStream::parse(payload).map_err(|e| bad(e.into()))?.header();
                ensure_response_fits(shared, header.width, header.height, header.bit_depth)?;
                let engine = tiled_engine(&header).map_err(bad)?;
                Codec::decompress(&engine, payload).map_err(|e| bad(e.into()))?
            } else if is_fixed(payload) {
                let header = *FixedStream::parse(payload).map_err(|e| bad(e.into()))?.header();
                ensure_response_fits(shared, header.width, header.height, header.bit_depth)?;
                let engine = fixed_engine(&header).map_err(bad)?;
                Codec::decompress(&engine, payload).map_err(|e| bad(e.into()))?
            } else {
                let header =
                    StreamHeader::read(&mut BitReader::new(payload)).map_err(|e| bad(e.into()))?;
                ensure_response_fits(shared, header.width, header.height, header.bit_depth)?;
                decompress_auto(payload).map_err(bad)?
            };
            encode_pgm(&image)
        }
        Op::DecompressTile => {
            let (index, stream_bytes) = split_tile_request(payload)?;
            let bad = |e: ServerError| {
                (ErrorCode::BadPayload, format!("invalid compressed payload: {e}"))
            };
            if is_volume(stream_bytes) {
                return Err((
                    ErrorCode::BadPayload,
                    "stream is a volumetric LWCV container: use decompress-region".to_owned(),
                ));
            }
            // One container parse serves the range check, the size check,
            // the engine parameters and the tile decode.
            let tile = if is_tiled(stream_bytes) {
                let stream = TiledStream::parse(stream_bytes).map_err(|e| bad(e.into()))?;
                let tiles = stream.tile_count();
                if index as usize >= tiles {
                    return Err((
                        ErrorCode::TileIndexOutOfRange,
                        format!("tile index {index} out of range: the stream has {tiles} tiles"),
                    ));
                }
                let header = *stream.header();
                let rect = stream.grid().map_err(|e| bad(e.into()))?.rect(index as usize);
                ensure_response_fits(shared, rect.width, rect.height, header.bit_depth)?;
                let engine = tiled_engine(&header).map_err(bad)?;
                engine.decompress_parsed_tile(&stream, index as usize).map_err(|e| bad(e.into()))?
            } else if is_fixed(stream_bytes) {
                let stream = FixedStream::parse(stream_bytes).map_err(|e| bad(e.into()))?;
                let tiles = stream.tile_count();
                if index as usize >= tiles {
                    return Err((
                        ErrorCode::TileIndexOutOfRange,
                        format!("tile index {index} out of range: the stream has {tiles} tiles"),
                    ));
                }
                let header = *stream.header();
                let rect = stream.grid().map_err(|e| bad(e.into()))?.rect(index as usize);
                ensure_response_fits(shared, rect.width, rect.height, header.bit_depth)?;
                let engine = fixed_engine(&header).map_err(bad)?;
                engine.decompress_parsed_tile(&stream, index as usize).map_err(|e| bad(e.into()))?
            } else {
                if index != 0 {
                    return Err((
                        ErrorCode::TileIndexOutOfRange,
                        format!(
                            "tile index {index} out of range: a legacy stream is a single tile"
                        ),
                    ));
                }
                let header = StreamHeader::read(&mut BitReader::new(stream_bytes))
                    .map_err(|e| bad(e.into()))?;
                ensure_response_fits(shared, header.width, header.height, header.bit_depth)?;
                decompress_auto(stream_bytes).map_err(bad)?
            };
            encode_pgm(&tile)
        }
        Op::CompressVolume => {
            let stack = read_raw_volume(payload)
                .map_err(|e| (ErrorCode::BadPayload, format!("invalid raw volume payload: {e}")))?;
            shared
                .volume_engine
                .compress_stack(&stack)
                .map_err(|e| (ErrorCode::Internal, format!("compression failed: {e}")))
        }
        Op::DecompressVolume => {
            let bad =
                |e: String| (ErrorCode::BadPayload, format!("invalid compressed payload: {e}"));
            if !is_volume(payload) {
                return Err(bad("not an LWCV container".to_owned()));
            }
            // Check the response size from the header dimensions before any
            // decode work, exactly as the 2-D path does.
            let stream = VolumeStream::parse(payload).map_err(|e| bad(e.to_string()))?;
            let header = *stream.header();
            ensure_volume_response_fits(
                shared,
                header.width,
                header.height,
                header.depth,
                header.bit_depth,
            )?;
            let engine = volume_engine_for(&header).map_err(|e| bad(e.to_string()))?;
            let stack = engine.decompress_stack(payload).map_err(|e| bad(e.to_string()))?;
            Ok(write_raw_volume(&stack))
        }
        Op::DecompressRegion => {
            let (rect, stream_bytes) = split_region_request(payload)?;
            if is_volume(stream_bytes) {
                let bad =
                    |e: String| (ErrorCode::BadPayload, format!("invalid compressed payload: {e}"));
                let stream = VolumeStream::parse(stream_bytes).map_err(|e| bad(e.to_string()))?;
                let header = *stream.header();
                ensure_volume_response_fits(
                    shared,
                    rect.plane.width,
                    rect.plane.height,
                    rect.depth,
                    header.bit_depth,
                )?;
                let engine = volume_engine_for(&header).map_err(|e| bad(e.to_string()))?;
                let stack = engine
                    .decompress_region(stream_bytes, rect)
                    .map_err(|e| (ErrorCode::BadPayload, format!("region decode failed: {e}")))?;
                return Ok(write_raw_volume(&stack));
            }
            if rect.z != 0 || rect.depth != 1 {
                return Err((
                    ErrorCode::BadPayload,
                    format!(
                        "a 2-D stream holds a single slice: the region must have z = 0 and \
                         depth = 1, got z = {} depth = {}",
                        rect.z, rect.depth
                    ),
                ));
            }
            let image = decompress_region_2d(shared, rect.plane, stream_bytes)?;
            encode_pgm(&image)
        }
        Op::Stats => Ok(shared.stats().to_json().into_bytes()),
        other => Err((ErrorCode::UnknownOp, format!("{other:?} is not a request op"))),
    }
}

/// Decodes the minimal covering tile set of a 2-D region request
/// sequentially and crops it to the rectangle (the direct, non-fanned
/// region path; also the only 2-D region path for legacy `LWC1` streams,
/// which are a single tile).
fn decompress_region_2d(
    shared: &Shared,
    rect: TileRect,
    stream_bytes: &[u8],
) -> Result<lwc_image::Image, (ErrorCode, String)> {
    let bad = |e: ServerError| (ErrorCode::BadPayload, format!("invalid compressed payload: {e}"));
    let region_err = |w: usize, h: usize| {
        (
            ErrorCode::BadPayload,
            format!(
                "region out of bounds: {}x{} at ({}, {}) exceeds the {w}x{h} image",
                rect.width, rect.height, rect.x, rect.y
            ),
        )
    };
    let (bit_depth, grid, indices) = if is_tiled(stream_bytes) {
        let stream = TiledStream::parse(stream_bytes).map_err(|e| bad(e.into()))?;
        let header = *stream.header();
        let grid = stream.grid().map_err(|e| bad(e.into()))?;
        let indices =
            grid.covering_indices(rect).ok_or_else(|| region_err(header.width, header.height))?;
        (header.bit_depth, grid, indices)
    } else if is_fixed(stream_bytes) {
        let stream = FixedStream::parse(stream_bytes).map_err(|e| bad(e.into()))?;
        let header = *stream.header();
        let grid = stream.grid().map_err(|e| bad(e.into()))?;
        let indices =
            grid.covering_indices(rect).ok_or_else(|| region_err(header.width, header.height))?;
        (header.bit_depth, grid, indices)
    } else {
        // A legacy LWC1 stream is a single tile covering the whole image.
        let header =
            StreamHeader::read(&mut BitReader::new(stream_bytes)).map_err(|e| bad(e.into()))?;
        let grid = TileGrid::new(header.width, header.height, header.width, header.height)
            .map_err(|e| bad(e.into()))?;
        let indices =
            grid.covering_indices(rect).ok_or_else(|| region_err(header.width, header.height))?;
        (header.bit_depth, grid, indices)
    };
    ensure_response_fits(shared, rect.width, rect.height, bit_depth)?;
    let mut region = vec![0i32; rect.width * rect.height];
    for index in indices {
        let tile = if is_tiled(stream_bytes) || is_fixed(stream_bytes) {
            decompress_tile_auto(stream_bytes, index).map_err(bad)?
        } else {
            decompress_auto(stream_bytes).map_err(bad)?
        };
        copy_tile_into_region(&mut region, rect, grid.rect(index), &tile);
    }
    Image::from_samples(rect.width, rect.height, bit_depth, region)
        .map_err(|e| (ErrorCode::Internal, format!("decompression failed: {e}")))
}

/// Decodes one tile of a tiled or fixed container, header-driven.
fn decompress_tile_auto(bytes: &[u8], index: usize) -> Result<lwc_image::Image, ServerError> {
    if is_fixed(bytes) {
        let stream = FixedStream::parse(bytes)?;
        let engine = fixed_engine(stream.header())?;
        Ok(engine.decompress_parsed_tile(&stream, index)?)
    } else {
        let stream = TiledStream::parse(bytes)?;
        let engine = tiled_engine(stream.header())?;
        Ok(engine.decompress_parsed_tile(&stream, index)?)
    }
}

/// Refuses a decompression whose PGM response could not fit one frame under
/// the server's payload limit — checked from the header dimensions before
/// any decode work, so a client can't make the server decode terabytes it
/// could never send back (and a legitimate-but-huge stream gets a typed
/// error instead of an unreadable oversized response frame).
fn ensure_response_fits(
    shared: &Shared,
    width: usize,
    height: usize,
    bit_depth: u32,
) -> Result<(), (ErrorCode, String)> {
    let per_sample: u128 = if bit_depth > 8 { 2 } else { 1 };
    let need = width as u128 * height as u128 * per_sample + 64;
    if need > shared.config.max_payload_bytes as u128 {
        return Err((
            ErrorCode::FrameTooLarge,
            format!(
                "a {width}x{height} {bit_depth}-bit image decompresses to ~{need} response \
                 bytes, beyond the {}-byte frame limit (raise --max-frame-mb or decode locally)",
                shared.config.max_payload_bytes
            ),
        ));
    }
    Ok(())
}

fn encode_pgm(image: &lwc_image::Image) -> Result<Vec<u8>, (ErrorCode, String)> {
    let mut bytes = Vec::with_capacity(image.pixel_count() * 2 + 64);
    pgm::write_pgm(image, &mut bytes)
        .map_err(|e| (ErrorCode::Internal, format!("PGM serialization failed: {e}")))?;
    Ok(bytes)
}

fn split_tile_request(payload: &[u8]) -> Result<(u32, &[u8]), (ErrorCode, String)> {
    let index_bytes: [u8; 4] =
        payload.get(..4).and_then(|b| b.try_into().ok()).ok_or_else(|| {
            (
                ErrorCode::BadPayload,
                "decompress-tile payload must start with a 4-byte tile index".to_owned(),
            )
        })?;
    Ok((u32::from_be_bytes(index_bytes), &payload[4..]))
}

/// Decompresses any container format the service knows (`LWC1`, `LWCT`,
/// `LWCF`), taking the decomposition depth (and tile shape, and for `LWCF`
/// the filter bank) from the stream itself — the service never requires
/// clients to know how a stream was produced.
pub(crate) fn decompress_auto(bytes: &[u8]) -> Result<lwc_image::Image, ServerError> {
    Ok(engine_for(bytes)?.decompress(bytes)?)
}

/// Single-threaded engine with the parameters of a parsed tiled header.
/// The engine codec is lossless; near-lossless streams decode correctly
/// anyway because the quantizer is honored from the per-tile stream headers
/// and cross-checked against the container's delta field.
fn tiled_engine(header: &TiledHeader) -> Result<TiledCompressor, ServerError> {
    let codec = LosslessCodec::new(header.scales)?;
    Ok(TiledCompressor::with_codec(codec, header.tile_width, header.tile_height, 1)?)
}

/// Single-threaded fixed-path engine with the parameters of a parsed `LWCF`
/// header.
fn fixed_engine(header: &FixedHeader) -> Result<TiledFixedCompressor, ServerError> {
    Ok(TiledFixedCompressor::for_stream(header, 1)?)
}

/// Single-threaded volumetric engine with the parameters of a parsed `LWCV`
/// header — decompression always follows the stream's own parameters, never
/// the server's configured ones.
fn volume_engine_for(header: &VolumeHeader) -> Result<VolumeCompressor, ServerError> {
    let codec = LosslessCodec::new(header.scales)?;
    Ok(VolumeCompressor::with_codec(
        codec,
        header.z_scales,
        header.tile_width,
        header.tile_height,
        header.brick_depth,
        1,
    )?)
}

/// Refuses a volumetric decode whose raw-volume response could not fit one
/// frame under the server's payload limit — checked from the header
/// dimensions before any decode work, the 3-D analogue of
/// [`ensure_response_fits`].
fn ensure_volume_response_fits(
    shared: &Shared,
    width: usize,
    height: usize,
    depth: usize,
    bit_depth: u32,
) -> Result<(), (ErrorCode, String)> {
    let need = raw_volume_len(width, height, depth, bit_depth);
    if need > shared.config.max_payload_bytes as u128 {
        return Err((
            ErrorCode::FrameTooLarge,
            format!(
                "a {width}x{height}x{depth} {bit_depth}-bit volume decompresses to ~{need} \
                 response bytes, beyond the {}-byte frame limit (raise --max-frame-mb, request \
                 a region, or decode locally)",
                shared.config.max_payload_bytes
            ),
        ));
    }
    Ok(())
}

/// Splits a `decompress-region` payload into the requested rectangle and the
/// compressed stream. The 24-byte prefix is six `u32` big-endian fields:
/// x, y, z, width, height, depth.
fn split_region_request(payload: &[u8]) -> Result<(BrickRect, &[u8]), (ErrorCode, String)> {
    let prefix: &[u8; 24] = payload.get(..24).and_then(|b| b.try_into().ok()).ok_or_else(|| {
        (
            ErrorCode::BadPayload,
            "decompress-region payload must start with a 24-byte rectangle \
             (six u32 BE: x, y, z, width, height, depth)"
                .to_owned(),
        )
    })?;
    let word = |i: usize| {
        u32::from_be_bytes(prefix[4 * i..4 * i + 4].try_into().expect("4 bytes")) as usize
    };
    let rect = BrickRect {
        plane: TileRect { x: word(0), y: word(1), width: word(3), height: word(4) },
        z: word(2),
        depth: word(5),
    };
    if rect.plane.width == 0 || rect.plane.height == 0 || rect.depth == 0 {
        return Err((
            ErrorCode::BadPayload,
            format!(
                "region dimensions must be nonzero, got {}x{}x{}",
                rect.plane.width, rect.plane.height, rect.depth
            ),
        ));
    }
    Ok((rect, &payload[24..]))
}

/// Builds a single-threaded [`Codec`] matching the stream's own parameters —
/// the three-way magic sniff (`LWC1` / `LWCT` / `LWCF`) behind the
/// decompression ops. All header reads reject empty/truncated buffers with
/// typed errors, so sniffing never slices out of bounds.
fn engine_for(bytes: &[u8]) -> Result<Box<dyn Codec>, ServerError> {
    if is_tiled(bytes) {
        Ok(Box::new(tiled_engine(TiledStream::parse(bytes)?.header())?))
    } else if is_fixed(bytes) {
        Ok(Box::new(fixed_engine(FixedStream::parse(bytes)?.header())?))
    } else {
        let header = StreamHeader::read(&mut BitReader::new(bytes))?;
        let codec = LosslessCodec::new(header.scales)?;
        Ok(Box::new(TiledCompressor::with_codec(codec, header.width, header.height, 1)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_image::synth;

    fn fixed_stream(image: &lwc_image::Image) -> Vec<u8> {
        // The server crate has no lwc-filters dependency by design; a
        // header-driven engine (the same path the sniff uses) builds the
        // stream.
        let header = FixedHeader {
            width: image.width(),
            height: image.height(),
            bit_depth: image.bit_depth(),
            scales: 3,
            filter: 0,
            tile_width: 32,
            tile_height: 32,
        };
        TiledFixedCompressor::for_stream(&header, 1).unwrap().compress(image).unwrap()
    }

    #[test]
    fn decompress_auto_sniffs_all_three_formats_and_rejects_short_buffers() {
        let image = synth::ct_phantom(70, 50, 12, 3);
        let legacy = LosslessCodec::new(3).unwrap().compress(&image).unwrap();
        let tiled = TiledCompressor::new(3, 32, 1).unwrap().compress(&image).unwrap();
        let fixed = fixed_stream(&synth::ct_phantom(64, 48, 12, 3));
        assert!(is_tiled(&tiled) && !is_tiled(&legacy) && is_fixed(&fixed));
        for stream in [&legacy, &tiled] {
            let back = decompress_auto(stream).unwrap();
            assert_eq!(back.samples(), image.samples());
            // Every short prefix — including the empty buffer — must come
            // back as a typed error, never a panic or slice failure.
            for len in 0..8.min(stream.len()) {
                assert!(decompress_auto(&stream[..len]).is_err(), "prefix of {len} bytes");
            }
        }
        let back = decompress_auto(&fixed).unwrap();
        assert_eq!(back.samples(), synth::ct_phantom(64, 48, 12, 3).samples());
        for len in 0..8 {
            assert!(decompress_auto(&fixed[..len]).is_err(), "fixed prefix of {len} bytes");
        }
    }

    #[test]
    fn engine_sniffing_matches_the_stream_parameters() {
        let image = synth::ct_phantom(70, 50, 12, 3);
        let legacy = LosslessCodec::new(3).unwrap().compress(&image).unwrap();
        let tiled = TiledCompressor::new(3, 32, 1).unwrap().compress(&image).unwrap();
        let fixed = fixed_stream(&synth::ct_phantom(64, 48, 12, 5));
        assert_eq!(engine_for(&legacy).unwrap().name(), "tiled");
        assert_eq!(engine_for(&tiled).unwrap().name(), "tiled");
        let sniffed = engine_for(&fixed).unwrap();
        assert_eq!(sniffed.name(), "tiled-fixed");
        assert!(sniffed.capabilities().fixed_point);
        assert!(engine_for(&[]).is_err());
        assert!(engine_for(&[0x4C, 0x57]).is_err());
    }
}
