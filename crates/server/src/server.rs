//! The concurrent compression server.
//!
//! One acceptor thread takes TCP connections; each connection gets a reader
//! (the connection's own thread) and a writer thread joined by an in-process
//! channel; readers validate frames and feed the bounded [`JobQueue`]; a
//! fixed pool of codec workers drains the queue through the tiled engine and
//! routes response frames back to the right connection. Overload is explicit:
//! a full queue answers `busy` immediately, oversized frames are refused
//! before allocation, and reads/writes carry timeouts so a stalled peer can
//! never wedge a worker.

use crate::error::ServerError;
use crate::frame::{into_frame, read_frame_idle, write_frame, ReadOutcome};
use crate::protocol::{ErrorCode, Frame, Op, DEFAULT_MAX_PAYLOAD_BYTES, FRAME_HEADER_BYTES};
use crate::queue::{Job, JobQueue, Metrics, PushError, ServerStats};
use lwc_coder::bitio::BitReader;
use lwc_coder::fixedtiled::is_fixed;
use lwc_coder::tiled::is_tiled;
use lwc_coder::{FixedHeader, FixedStream, LosslessCodec, StreamHeader, TiledHeader, TiledStream};
use lwc_image::pgm;
use lwc_pipeline::{Codec, TiledCompressor, TiledFixedCompressor, DEFAULT_TILE_SIZE};
use std::io::Read;
use std::net::{
    IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Configuration of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Codec worker threads; `0` selects the machine's available parallelism.
    pub workers: usize,
    /// Capacity of the bounded request queue; `0` selects `4 x workers`
    /// (a few requests of lookahead per worker, like the paper's FIFOs hold a
    /// few rows per pipeline stage).
    pub queue_depth: usize,
    /// Decomposition depth used for `compress` requests.
    pub scales: u32,
    /// Square tile size used for `compress` requests (images larger than one
    /// tile produce `LWCT` containers).
    pub tile_size: usize,
    /// Per-frame payload ceiling, validated before allocation.
    pub max_payload_bytes: usize,
    /// Socket read timeout; doubles as the shutdown poll quantum.
    pub read_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_depth: 0,
            scales: 4,
            tile_size: DEFAULT_TILE_SIZE,
            max_payload_bytes: DEFAULT_MAX_PAYLOAD_BYTES,
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// How many consecutive timed-out reads a peer gets *inside* a frame before
/// the connection is dropped (multiplied by `read_timeout`, this is the
/// slow-loris budget: 100 polls x 100 ms = 10 s to finish a started frame).
const MID_FRAME_PATIENCE_POLLS: u32 = 100;

/// How many already-sent peer bytes a connection drains after replying to a
/// protocol violation, so closing the socket doesn't reset the reply away.
/// Bounded: a peer still flooding past this simply gets the reset.
const MAX_VIOLATION_DRAIN_BYTES: usize = 1 << 20;

struct Shared {
    config: ServerConfig,
    engine: TiledCompressor,
    queue: JobQueue,
    metrics: Metrics,
    shutdown: AtomicBool,
    connections: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        ServerStats::snapshot(&self.metrics, self.config.workers, &self.queue)
    }
}

/// A running compression service bound to a TCP address.
///
/// Dropping the server shuts it down gracefully: the acceptor stops, queued
/// requests drain through the workers, connections close, threads join.
///
/// ```
/// use lwc_image::synth;
/// use lwc_server::{Client, Server, ServerConfig};
///
/// # fn main() -> Result<(), lwc_server::ServerError> {
/// let config = ServerConfig { workers: 2, scales: 3, tile_size: 64, ..ServerConfig::default() };
/// let server = Server::bind("127.0.0.1:0", config)?;
/// let mut client = Client::connect(server.local_addr())?;
/// let image = synth::ct_phantom(96, 80, 12, 1);
/// let stream = client.compress_image(&image)?;
/// let back = client.decompress(&stream)?;
/// assert_eq!(image.samples(), back.samples());
/// # Ok(())
/// # }
/// ```
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts the acceptor and the worker pool.
    ///
    /// Bind to port 0 for an OS-assigned loopback port
    /// ([`Server::local_addr`] reports it).
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound or the configuration
    /// is invalid (zero scales, out-of-range tile size).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> Result<Self, ServerError> {
        let mut config = config;
        if config.workers == 0 {
            config.workers = thread::available_parallelism().map(usize::from).unwrap_or(1);
        }
        if config.queue_depth == 0 {
            config.queue_depth = 4 * config.workers;
        }
        if config.max_payload_bytes < FRAME_HEADER_BYTES {
            return Err(ServerError::Config(format!(
                "max payload of {} bytes cannot carry any request",
                config.max_payload_bytes
            )));
        }
        // Each worker runs the engine with one inner thread: the pool's
        // parallelism lives across requests, not inside one.
        let codec = LosslessCodec::new(config.scales).map_err(ServerError::from)?;
        let engine = TiledCompressor::with_codec(codec, config.tile_size, config.tile_size, 1)?;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            engine,
            queue: JobQueue::new(config.queue_depth),
            metrics: Metrics::default(),
            shutdown: AtomicBool::new(false),
            connections: Mutex::new(Vec::new()),
        });

        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Self { shared, addr, acceptor: Some(acceptor), workers })
    }

    /// The address the server is listening on.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The resolved configuration (workers and queue depth filled in).
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.shared.config
    }

    /// A snapshot of the server's counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Gracefully shuts the server down: stop accepting, refuse new work,
    /// drain queued requests, close connections, join every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.queue.close();
        // Wake the acceptor out of its blocking accept. A wildcard bind
        // address (0.0.0.0 / ::) is not connectable on every platform, so
        // aim the wake-up at loopback on the bound port.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let connections = std::mem::take(&mut *self.shared.connections.lock().expect("poisoned"));
        for handle in connections {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                Metrics::bump(&shared.metrics.accepted_connections);
                let shared_conn = Arc::clone(shared);
                let handle = thread::spawn(move || serve_connection(&shared_conn, stream));
                let mut connections = shared.connections.lock().expect("poisoned");
                // Reap handles of connections that already ended, so a
                // long-running server doesn't accumulate one per connection
                // it ever served (dropping a finished handle just detaches).
                connections.retain(|h| !h.is_finished());
                connections.push(handle);
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure (e.g. EMFILE); back off briefly.
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Reads frames off one connection, feeding the queue; a paired writer
/// thread owns the response direction so slow readers on our side never
/// block responses from other requests of the same connection.
fn serve_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(shared.config.read_timeout)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else { return };
    let _ = write_half.set_write_timeout(Some(shared.config.write_timeout));
    let (tx, rx) = channel::<Frame>();
    let writer = {
        let shared = Arc::clone(shared);
        thread::spawn(move || writer_loop(&shared, write_half, &rx))
    };

    // Whether the loop exits on a protocol violation with unread peer bytes
    // possibly still queued — in that case the reply must be protected from
    // a reset on close (see the drain below).
    let mut violation = false;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match read_frame_idle(
            &mut stream,
            shared.config.max_payload_bytes,
            MID_FRAME_PATIENCE_POLLS,
        ) {
            Ok(ReadOutcome::Idle) => {} // idle tick; re-check the shutdown flag
            Ok(ReadOutcome::Oversized(header)) => {
                // The header parsed — so the request id is known and the
                // reply is addressable — but the declared payload exceeds
                // the limit and was never read, so the frame boundary is
                // lost: reply, then close.
                Metrics::bump(&shared.metrics.error_replies);
                let _ = tx.send(Frame::error(
                    header.request_id,
                    ErrorCode::FrameTooLarge,
                    &format!(
                        "declared payload of {} bytes exceeds the {}-byte limit",
                        header.payload_len, shared.config.max_payload_bytes
                    ),
                ));
                violation = true;
                break;
            }
            Ok(ReadOutcome::Frame(header, payload)) => {
                Metrics::bump(&shared.metrics.received_requests);
                Metrics::add(&shared.metrics.bytes_in, (FRAME_HEADER_BYTES + payload.len()) as u64);
                match into_frame(header, payload) {
                    Ok(frame) if frame.op.is_request() => {
                        let job = Job {
                            op: frame.op,
                            request_id: frame.request_id,
                            payload: frame.payload,
                            reply: tx.clone(),
                        };
                        match shared.queue.try_push(job) {
                            Ok(()) => {}
                            Err((job, PushError::Full)) => {
                                Metrics::bump(&shared.metrics.rejected_busy);
                                Metrics::bump(&shared.metrics.error_replies);
                                let _ = tx.send(Frame::error(
                                    job.request_id,
                                    ErrorCode::Busy,
                                    &format!(
                                        "request queue full ({} deep); retry",
                                        shared.config.queue_depth
                                    ),
                                ));
                            }
                            Err((job, PushError::Closed)) => {
                                Metrics::bump(&shared.metrics.error_replies);
                                let _ = tx.send(Frame::error(
                                    job.request_id,
                                    ErrorCode::ShuttingDown,
                                    "server is shutting down",
                                ));
                                break;
                            }
                        }
                    }
                    Ok(frame) => {
                        // A known op, but not a request (a response op on the
                        // request path). The frame boundary is intact, so the
                        // connection stays usable.
                        Metrics::bump(&shared.metrics.error_replies);
                        let _ = tx.send(Frame::error(
                            frame.request_id,
                            ErrorCode::UnknownOp,
                            &format!("op {:?} is not a request", frame.op),
                        ));
                    }
                    Err(e) => {
                        // Unknown op byte: into_frame supplies the typed
                        // error; the payload was fully read, so this is also
                        // recoverable.
                        Metrics::bump(&shared.metrics.error_replies);
                        let (code, message) = match e {
                            ServerError::Protocol { code, message } => (code, message),
                            other => (ErrorCode::MalformedFrame, other.to_string()),
                        };
                        let _ = tx.send(Frame::error(header.request_id, code, &message));
                    }
                }
            }
            Err(e) if e.is_disconnect() => break,
            Err(ServerError::Protocol { code, message }) => {
                // The framing is broken before a request id could be read
                // (bad magic or bad version): reply once with id 0 and
                // close — there is no way to resynchronize a byte stream
                // with a lost frame boundary.
                Metrics::bump(&shared.metrics.error_replies);
                let _ = tx.send(Frame::error(0, code, &message));
                violation = true;
                break;
            }
            Err(_) => break, // hard I/O failure or mid-frame stall
        }
    }
    // Closing our half tells the writer to finish once pending responses for
    // this connection have flushed.
    drop(tx);
    let _ = writer.join();
    if violation {
        // The peer may still have bytes in flight that we never read (the
        // oversized payload, trailing pipelined frames). Closing a socket
        // with unread receive data sends RST on common platforms, which can
        // discard the error reply before the peer reads it. Signal our end
        // with FIN, then drain a bounded amount so the close is clean.
        let _ = stream.shutdown(Shutdown::Write);
        let mut sink = [0u8; 4096];
        let mut drained = 0usize;
        while drained < MAX_VIOLATION_DRAIN_BYTES {
            match stream.read(&mut sink) {
                Ok(0) => break,
                Ok(n) => drained += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break, // timeout or reset: we tried
            }
        }
    }
}

fn writer_loop(shared: &Arc<Shared>, mut stream: TcpStream, responses: &Receiver<Frame>) {
    while let Ok(frame) = responses.recv() {
        let len = frame.encoded_len() as u64;
        if write_frame(&mut stream, &frame).is_err() {
            // Peer gone or write timeout: tear the whole connection down so
            // the reader stops accepting work whose responses have nowhere
            // to go (its next read errors out).
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        Metrics::add(&shared.metrics.bytes_out, len);
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        // The server never emits a frame it would itself refuse to read:
        // whatever op produced it, an over-limit response becomes a typed
        // error (the decompress ops also pre-check this from the header
        // dimensions before doing any work).
        let outcome = execute(shared, job.op, &job.payload).and_then(|payload| {
            if payload.len() > shared.config.max_payload_bytes {
                return Err((
                    ErrorCode::FrameTooLarge,
                    format!(
                        "response of {} bytes exceeds the {}-byte frame limit (raise \
                         --max-frame-mb)",
                        payload.len(),
                        shared.config.max_payload_bytes
                    ),
                ));
            }
            Ok(payload)
        });
        let frame = match outcome {
            Ok(payload) => {
                Metrics::bump(&shared.metrics.completed_requests);
                Frame { op: job.op.response(), request_id: job.request_id, payload }
            }
            Err((code, message)) => {
                Metrics::bump(&shared.metrics.error_replies);
                Frame::error(job.request_id, code, &message)
            }
        };
        // A send failure means the connection already closed; the work is
        // simply discarded.
        let _ = job.reply.send(frame);
    }
}

/// Executes one validated request against the shared engine.
fn execute(shared: &Shared, op: Op, payload: &[u8]) -> Result<Vec<u8>, (ErrorCode, String)> {
    match op {
        Op::Compress => {
            let image = pgm::read_pgm(payload)
                .map_err(|e| (ErrorCode::BadPayload, format!("invalid PGM payload: {e}")))?;
            Codec::compress(&shared.engine, &image)
                .map_err(|e| (ErrorCode::Internal, format!("compression failed: {e}")))
        }
        Op::Decompress => {
            let bad = |e: ServerError| {
                (ErrorCode::BadPayload, format!("invalid compressed payload: {e}"))
            };
            // Check the response size from the header dimensions before any
            // decode work — a stream whose pixels cannot fit one response
            // frame is refused up front (see `ensure_response_fits`).
            let image = if is_tiled(payload) {
                let header = *TiledStream::parse(payload).map_err(|e| bad(e.into()))?.header();
                ensure_response_fits(shared, header.width, header.height, header.bit_depth)?;
                let engine = tiled_engine(&header).map_err(bad)?;
                Codec::decompress(&engine, payload).map_err(|e| bad(e.into()))?
            } else if is_fixed(payload) {
                let header = *FixedStream::parse(payload).map_err(|e| bad(e.into()))?.header();
                ensure_response_fits(shared, header.width, header.height, header.bit_depth)?;
                let engine = fixed_engine(&header).map_err(bad)?;
                Codec::decompress(&engine, payload).map_err(|e| bad(e.into()))?
            } else {
                let header =
                    StreamHeader::read(&mut BitReader::new(payload)).map_err(|e| bad(e.into()))?;
                ensure_response_fits(shared, header.width, header.height, header.bit_depth)?;
                decompress_auto(payload).map_err(bad)?
            };
            encode_pgm(&image)
        }
        Op::DecompressTile => {
            let (index, stream_bytes) = split_tile_request(payload)?;
            let bad = |e: ServerError| {
                (ErrorCode::BadPayload, format!("invalid compressed payload: {e}"))
            };
            // One container parse serves the range check, the size check,
            // the engine parameters and the tile decode.
            let tile = if is_tiled(stream_bytes) {
                let stream = TiledStream::parse(stream_bytes).map_err(|e| bad(e.into()))?;
                let tiles = stream.tile_count();
                if index as usize >= tiles {
                    return Err((
                        ErrorCode::TileIndexOutOfRange,
                        format!("tile index {index} out of range: the stream has {tiles} tiles"),
                    ));
                }
                let header = *stream.header();
                let rect = stream.grid().map_err(|e| bad(e.into()))?.rect(index as usize);
                ensure_response_fits(shared, rect.width, rect.height, header.bit_depth)?;
                let engine = tiled_engine(&header).map_err(bad)?;
                engine.decompress_parsed_tile(&stream, index as usize).map_err(|e| bad(e.into()))?
            } else if is_fixed(stream_bytes) {
                let stream = FixedStream::parse(stream_bytes).map_err(|e| bad(e.into()))?;
                let tiles = stream.tile_count();
                if index as usize >= tiles {
                    return Err((
                        ErrorCode::TileIndexOutOfRange,
                        format!("tile index {index} out of range: the stream has {tiles} tiles"),
                    ));
                }
                let header = *stream.header();
                let rect = stream.grid().map_err(|e| bad(e.into()))?.rect(index as usize);
                ensure_response_fits(shared, rect.width, rect.height, header.bit_depth)?;
                let engine = fixed_engine(&header).map_err(bad)?;
                engine.decompress_parsed_tile(&stream, index as usize).map_err(|e| bad(e.into()))?
            } else {
                if index != 0 {
                    return Err((
                        ErrorCode::TileIndexOutOfRange,
                        format!(
                            "tile index {index} out of range: a legacy stream is a single tile"
                        ),
                    ));
                }
                let header = StreamHeader::read(&mut BitReader::new(stream_bytes))
                    .map_err(|e| bad(e.into()))?;
                ensure_response_fits(shared, header.width, header.height, header.bit_depth)?;
                decompress_auto(stream_bytes).map_err(bad)?
            };
            encode_pgm(&tile)
        }
        Op::Stats => Ok(shared.stats().to_json().into_bytes()),
        other => Err((ErrorCode::UnknownOp, format!("{other:?} is not a request op"))),
    }
}

/// Refuses a decompression whose PGM response could not fit one frame under
/// the server's payload limit — checked from the header dimensions before
/// any decode work, so a client can't make the server decode terabytes it
/// could never send back (and a legitimate-but-huge stream gets a typed
/// error instead of an unreadable oversized response frame).
fn ensure_response_fits(
    shared: &Shared,
    width: usize,
    height: usize,
    bit_depth: u32,
) -> Result<(), (ErrorCode, String)> {
    let per_sample: u128 = if bit_depth > 8 { 2 } else { 1 };
    let need = width as u128 * height as u128 * per_sample + 64;
    if need > shared.config.max_payload_bytes as u128 {
        return Err((
            ErrorCode::FrameTooLarge,
            format!(
                "a {width}x{height} {bit_depth}-bit image decompresses to ~{need} response \
                 bytes, beyond the {}-byte frame limit (raise --max-frame-mb or decode locally)",
                shared.config.max_payload_bytes
            ),
        ));
    }
    Ok(())
}

fn encode_pgm(image: &lwc_image::Image) -> Result<Vec<u8>, (ErrorCode, String)> {
    let mut bytes = Vec::with_capacity(image.pixel_count() * 2 + 64);
    pgm::write_pgm(image, &mut bytes)
        .map_err(|e| (ErrorCode::Internal, format!("PGM serialization failed: {e}")))?;
    Ok(bytes)
}

fn split_tile_request(payload: &[u8]) -> Result<(u32, &[u8]), (ErrorCode, String)> {
    let index_bytes: [u8; 4] =
        payload.get(..4).and_then(|b| b.try_into().ok()).ok_or_else(|| {
            (
                ErrorCode::BadPayload,
                "decompress-tile payload must start with a 4-byte tile index".to_owned(),
            )
        })?;
    Ok((u32::from_be_bytes(index_bytes), &payload[4..]))
}

/// Decompresses any container format the service knows (`LWC1`, `LWCT`,
/// `LWCF`), taking the decomposition depth (and tile shape, and for `LWCF`
/// the filter bank) from the stream itself — the service never requires
/// clients to know how a stream was produced.
pub(crate) fn decompress_auto(bytes: &[u8]) -> Result<lwc_image::Image, ServerError> {
    Ok(engine_for(bytes)?.decompress(bytes)?)
}

/// Single-threaded engine with the parameters of a parsed tiled header.
fn tiled_engine(header: &TiledHeader) -> Result<TiledCompressor, ServerError> {
    let codec = LosslessCodec::new(header.scales)?;
    Ok(TiledCompressor::with_codec(codec, header.tile_width, header.tile_height, 1)?)
}

/// Single-threaded fixed-path engine with the parameters of a parsed `LWCF`
/// header.
fn fixed_engine(header: &FixedHeader) -> Result<TiledFixedCompressor, ServerError> {
    Ok(TiledFixedCompressor::for_stream(header, 1)?)
}

/// Builds a single-threaded [`Codec`] matching the stream's own parameters —
/// the three-way magic sniff (`LWC1` / `LWCT` / `LWCF`) behind the
/// decompression ops. All header reads reject empty/truncated buffers with
/// typed errors, so sniffing never slices out of bounds.
fn engine_for(bytes: &[u8]) -> Result<Box<dyn Codec>, ServerError> {
    if is_tiled(bytes) {
        Ok(Box::new(tiled_engine(TiledStream::parse(bytes)?.header())?))
    } else if is_fixed(bytes) {
        Ok(Box::new(fixed_engine(FixedStream::parse(bytes)?.header())?))
    } else {
        let header = StreamHeader::read(&mut BitReader::new(bytes))?;
        let codec = LosslessCodec::new(header.scales)?;
        Ok(Box::new(TiledCompressor::with_codec(codec, header.width, header.height, 1)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_image::synth;

    fn fixed_stream(image: &lwc_image::Image) -> Vec<u8> {
        // The server crate has no lwc-filters dependency by design; a
        // header-driven engine (the same path the sniff uses) builds the
        // stream.
        let header = FixedHeader {
            width: image.width(),
            height: image.height(),
            bit_depth: image.bit_depth(),
            scales: 3,
            filter: 0,
            tile_width: 32,
            tile_height: 32,
        };
        TiledFixedCompressor::for_stream(&header, 1).unwrap().compress(image).unwrap()
    }

    #[test]
    fn decompress_auto_sniffs_all_three_formats_and_rejects_short_buffers() {
        let image = synth::ct_phantom(70, 50, 12, 3);
        let legacy = LosslessCodec::new(3).unwrap().compress(&image).unwrap();
        let tiled = TiledCompressor::new(3, 32, 1).unwrap().compress(&image).unwrap();
        let fixed = fixed_stream(&synth::ct_phantom(64, 48, 12, 3));
        assert!(is_tiled(&tiled) && !is_tiled(&legacy) && is_fixed(&fixed));
        for stream in [&legacy, &tiled] {
            let back = decompress_auto(stream).unwrap();
            assert_eq!(back.samples(), image.samples());
            // Every short prefix — including the empty buffer — must come
            // back as a typed error, never a panic or slice failure.
            for len in 0..8.min(stream.len()) {
                assert!(decompress_auto(&stream[..len]).is_err(), "prefix of {len} bytes");
            }
        }
        let back = decompress_auto(&fixed).unwrap();
        assert_eq!(back.samples(), synth::ct_phantom(64, 48, 12, 3).samples());
        for len in 0..8 {
            assert!(decompress_auto(&fixed[..len]).is_err(), "fixed prefix of {len} bytes");
        }
    }

    #[test]
    fn engine_sniffing_matches_the_stream_parameters() {
        let image = synth::ct_phantom(70, 50, 12, 3);
        let legacy = LosslessCodec::new(3).unwrap().compress(&image).unwrap();
        let tiled = TiledCompressor::new(3, 32, 1).unwrap().compress(&image).unwrap();
        let fixed = fixed_stream(&synth::ct_phantom(64, 48, 12, 5));
        assert_eq!(engine_for(&legacy).unwrap().name(), "tiled");
        assert_eq!(engine_for(&tiled).unwrap().name(), "tiled");
        let sniffed = engine_for(&fixed).unwrap();
        assert_eq!(sniffed.name(), "tiled-fixed");
        assert!(sniffed.capabilities().fixed_point);
        assert!(engine_for(&[]).is_err());
        assert!(engine_for(&[0x4C, 0x57]).is_err());
    }
}
