//! The bounded request queue and the server's counters.
//!
//! The queue is the software analogue of the FIFOs between the paper's
//! pipeline stages: it decouples the connection readers (producers) from the
//! codec workers (consumers), and its *bounded* depth is what turns overload
//! into explicit, measurable backpressure — a full queue answers
//! [`ErrorCode::Busy`](crate::ErrorCode::Busy) immediately instead of
//! buffering without limit, exactly the throughput-versus-buffering trade the
//! paper sizes its FIFOs around.

use crate::protocol::{Frame, Op};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};

/// One queued unit of work: a validated request frame plus the channel that
/// routes the response frame back to its connection's writer thread.
#[derive(Debug)]
pub(crate) struct Job {
    /// The request op (always one of the four request ops).
    pub op: Op,
    /// Correlation id the response must echo.
    pub request_id: u64,
    /// The request payload.
    pub payload: Vec<u8>,
    /// Sends the response frame to the connection's writer.
    pub reply: Sender<Frame>,
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The queue is at capacity — the caller should answer busy.
    Full,
    /// The queue was closed by shutdown.
    Closed,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO of [`Job`]s.
pub(crate) struct JobQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
}

impl JobQueue {
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").jobs.len()
    }

    /// Enqueues without blocking; a full or closed queue hands the job back.
    pub fn try_push(&self, job: Job) -> Result<(), (Job, PushError)> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err((job, PushError::Closed));
        }
        if inner.jobs.len() >= self.capacity {
            return Err((job, PushError::Full));
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available or the queue is closed *and* drained.
    pub fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: pending jobs still drain, new pushes are refused,
    /// and blocked consumers wake up.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }
}

/// Lock-free counters the connection and worker threads bump as they go.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    pub accepted_connections: AtomicU64,
    pub received_requests: AtomicU64,
    pub completed_requests: AtomicU64,
    pub rejected_busy: AtomicU64,
    pub error_replies: AtomicU64,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
}

impl Metrics {
    pub fn add(counter: &AtomicU64, value: u64) {
        counter.fetch_add(value, Ordering::Relaxed);
    }

    pub fn bump(counter: &AtomicU64) {
        Self::add(counter, 1);
    }
}

/// A point-in-time snapshot of a server's counters — the payload of the
/// `stats` op and the return of [`Server::stats`](crate::Server::stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Codec worker threads draining the queue.
    pub workers: usize,
    /// Capacity of the bounded request queue.
    pub queue_depth: usize,
    /// Requests waiting in the queue at snapshot time.
    pub queue_len: usize,
    /// Connections accepted since startup.
    pub accepted_connections: u64,
    /// Request frames read off connections.
    pub received_requests: u64,
    /// Requests executed successfully.
    pub completed_requests: u64,
    /// Requests refused with `busy` because the queue was full.
    pub rejected_busy: u64,
    /// Error frames sent (any code, including busy).
    pub error_replies: u64,
    /// Frame bytes read from clients.
    pub bytes_in: u64,
    /// Frame bytes written to clients.
    pub bytes_out: u64,
}

impl ServerStats {
    pub(crate) fn snapshot(metrics: &Metrics, workers: usize, queue: &JobQueue) -> Self {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        Self {
            workers,
            queue_depth: queue.capacity(),
            queue_len: queue.len(),
            accepted_connections: get(&metrics.accepted_connections),
            received_requests: get(&metrics.received_requests),
            completed_requests: get(&metrics.completed_requests),
            rejected_busy: get(&metrics.rejected_busy),
            error_replies: get(&metrics.error_replies),
            bytes_in: get(&metrics.bytes_in),
            bytes_out: get(&metrics.bytes_out),
        }
    }

    /// Serializes the snapshot as a flat JSON object (the `stats` payload).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workers\": {}, \"queue_depth\": {}, \"queue_len\": {}, \
             \"accepted_connections\": {}, \"received_requests\": {}, \
             \"completed_requests\": {}, \"rejected_busy\": {}, \"error_replies\": {}, \
             \"bytes_in\": {}, \"bytes_out\": {}}}",
            self.workers,
            self.queue_depth,
            self.queue_len,
            self.accepted_connections,
            self.received_requests,
            self.completed_requests,
            self.rejected_busy,
            self.error_replies,
            self.bytes_in,
            self.bytes_out
        )
    }
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} workers, queue {}/{}, {} conns, {} reqs ({} ok, {} busy, {} errors), \
             {} B in / {} B out",
            self.workers,
            self.queue_len,
            self.queue_depth,
            self.accepted_connections,
            self.received_requests,
            self.completed_requests,
            self.rejected_busy,
            self.error_replies,
            self.bytes_in,
            self.bytes_out
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn job(id: u64) -> Job {
        let (tx, _rx) = channel();
        Job { op: Op::Stats, request_id: id, payload: vec![], reply: tx }
    }

    #[test]
    fn queue_is_bounded_and_fifo() {
        let queue = JobQueue::new(2);
        queue.try_push(job(1)).unwrap();
        queue.try_push(job(2)).unwrap();
        let (_, err) = queue.try_push(job(3)).unwrap_err();
        assert_eq!(err, PushError::Full);
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.pop().unwrap().request_id, 1);
        assert_eq!(queue.pop().unwrap().request_id, 2);
    }

    #[test]
    fn closed_queues_drain_then_return_none() {
        let queue = JobQueue::new(4);
        queue.try_push(job(1)).unwrap();
        queue.close();
        let (_, err) = queue.try_push(job(2)).unwrap_err();
        assert_eq!(err, PushError::Closed);
        assert_eq!(queue.pop().unwrap().request_id, 1);
        assert!(queue.pop().is_none());
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let queue = std::sync::Arc::new(JobQueue::new(1));
        let waiter = {
            let queue = queue.clone();
            std::thread::spawn(move || queue.pop().is_none())
        };
        // Give the waiter a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        queue.close();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn stats_snapshot_serializes_to_json() {
        let metrics = Metrics::default();
        Metrics::bump(&metrics.completed_requests);
        Metrics::add(&metrics.bytes_in, 123);
        let queue = JobQueue::new(8);
        let stats = ServerStats::snapshot(&metrics, 4, &queue);
        assert_eq!(stats.completed_requests, 1);
        assert_eq!(stats.bytes_in, 123);
        let json = stats.to_json();
        assert!(json.contains("\"completed_requests\": 1"), "{json}");
        assert!(json.contains("\"queue_depth\": 8"), "{json}");
        assert!(stats.to_string().contains("4 workers"));
    }
}
