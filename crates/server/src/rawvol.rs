//! Raw volume payloads on the `LWCP` wire.
//!
//! PGM covers single images but has no volumetric form, so the volume ops
//! carry stacks in a minimal explicit layout (all integers big-endian):
//!
//! ```text
//! offset  field       size
//! 0       width       4 bytes
//! 4       height      4 bytes
//! 8       depth       4 bytes
//! 12      bit depth   1 byte    1..=16
//! 13      samples     width * height * depth voxels, slice-major
//!                     (z outermost, then rows), 1 byte each for bit
//!                     depths <= 8, otherwise 2 bytes big-endian
//! ```
//!
//! The required byte count follows from the 13-byte header alone and is
//! checked against the actual payload length — in 128-bit arithmetic, before
//! any allocation — so a forged header cannot oversize a buffer.

use crate::error::ServerError;
use crate::protocol::ErrorCode;
use lwc_image::ImageStack;

/// Serialized size of the fixed raw-volume header, in bytes.
pub const RAW_VOLUME_HEADER_BYTES: usize = 13;

/// The exact wire size of a `width x height x depth` volume at `bit_depth`.
#[must_use]
pub fn raw_volume_len(width: usize, height: usize, depth: usize, bit_depth: u32) -> u128 {
    let per_sample: u128 = if bit_depth > 8 { 2 } else { 1 };
    RAW_VOLUME_HEADER_BYTES as u128 + width as u128 * height as u128 * depth as u128 * per_sample
}

/// Serializes a stack into the raw volume wire format.
#[must_use]
pub fn write_raw_volume(stack: &ImageStack) -> Vec<u8> {
    let wide = stack.bit_depth() > 8;
    let per_sample = if wide { 2 } else { 1 };
    let mut bytes = Vec::with_capacity(RAW_VOLUME_HEADER_BYTES + stack.voxel_count() * per_sample);
    bytes.extend_from_slice(&(stack.width() as u32).to_be_bytes());
    bytes.extend_from_slice(&(stack.height() as u32).to_be_bytes());
    bytes.extend_from_slice(&(stack.depth() as u32).to_be_bytes());
    bytes.push(stack.bit_depth() as u8);
    for &sample in stack.samples() {
        if wide {
            bytes.extend_from_slice(&(sample as u16).to_be_bytes());
        } else {
            bytes.push(sample as u8);
        }
    }
    bytes
}

/// Parses a raw volume payload back into an [`ImageStack`], validating the
/// payload length against the header before allocating and every sample
/// against the declared bit depth after.
///
/// # Errors
///
/// Returns a typed [`ErrorCode::BadPayload`] protocol error for truncated or
/// padded payloads, zero dimensions, an unsupported bit depth, or
/// out-of-range samples.
pub fn read_raw_volume(bytes: &[u8]) -> Result<ImageStack, ServerError> {
    let bad = |message: String| ServerError::Protocol { code: ErrorCode::BadPayload, message };
    let header = bytes.get(..RAW_VOLUME_HEADER_BYTES).ok_or_else(|| {
        bad(format!("raw volume header needs {RAW_VOLUME_HEADER_BYTES} bytes, got {}", bytes.len()))
    })?;
    let width = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
    let height = u32::from_be_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
    let depth = u32::from_be_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
    let bit_depth = u32::from(header[12]);
    if !(1..=16).contains(&bit_depth) {
        return Err(bad(format!("unsupported bit depth {bit_depth}")));
    }
    let need = raw_volume_len(width, height, depth, bit_depth);
    if need != bytes.len() as u128 {
        return Err(bad(format!(
            "a {width}x{height}x{depth} {bit_depth}-bit raw volume is {need} bytes, got {}",
            bytes.len()
        )));
    }
    let body = &bytes[RAW_VOLUME_HEADER_BYTES..];
    let samples: Vec<i32> = if bit_depth > 8 {
        body.chunks_exact(2).map(|pair| i32::from(u16::from_be_bytes([pair[0], pair[1]]))).collect()
    } else {
        body.iter().map(|&b| i32::from(b)).collect()
    };
    ImageStack::from_samples(width, height, depth, bit_depth, samples)
        .map_err(|e| bad(format!("invalid raw volume: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_image::synth;

    #[test]
    fn raw_volumes_roundtrip_both_sample_widths() {
        for bit_depth in [8, 12] {
            let stack = synth::ct_volume(21, 17, 5, bit_depth, 3);
            let bytes = write_raw_volume(&stack);
            assert_eq!(bytes.len() as u128, raw_volume_len(21, 17, 5, bit_depth));
            assert_eq!(read_raw_volume(&bytes).unwrap(), stack);
        }
    }

    #[test]
    fn truncation_padding_and_forged_headers_are_typed_errors() {
        let stack = synth::ct_volume(9, 7, 3, 12, 1);
        let bytes = write_raw_volume(&stack);
        for len in [0, 5, RAW_VOLUME_HEADER_BYTES, bytes.len() - 1] {
            assert!(read_raw_volume(&bytes[..len]).is_err(), "prefix of {len} bytes");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(read_raw_volume(&padded).is_err());
        // Forge a gigantic depth: the length check must reject it without
        // allocating anything of that scale.
        let mut forged = bytes.clone();
        forged[8..12].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(read_raw_volume(&forged).is_err());
        // Out-of-range samples for the declared bit depth.
        let mut shallow = bytes;
        shallow[12] = 4; // claim 4-bit, but 12-bit samples follow
        shallow.truncate(RAW_VOLUME_HEADER_BYTES + 9 * 7 * 3); // 4-bit => 1 byte each
        assert!(read_raw_volume(&shallow).is_err());
    }

    #[test]
    fn zero_dimensions_are_rejected() {
        let mut bytes = vec![0u8; RAW_VOLUME_HEADER_BYTES];
        bytes[12] = 8;
        assert!(read_raw_volume(&bytes).is_err());
    }
}
