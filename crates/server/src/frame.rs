//! Frame I/O over byte streams: blocking readers for the client, and the
//! incremental [`FrameAccumulator`] the server's event loop parses with.
//!
//! The blocking side reads with a short socket timeout so callers can poll
//! a shutdown flag between frames; [`read_frame_idle`] distinguishes "no
//! frame started yet" (a normal idle tick, [`ReadOutcome::Idle`]) from a
//! timeout *inside* a frame (a protocol error — a peer that starts a frame
//! must finish it within the patience window, or it is holding a
//! connection slot hostage). The incremental side accepts whatever bytes a
//! nonblocking read produced and yields complete frames as they form,
//! against the same length/limit validation.

use crate::error::ServerError;
use crate::protocol::{parse_header, ErrorCode, Frame, FrameHeader, FRAME_HEADER_BYTES};
use std::io::{ErrorKind, Read, Write};

/// `true` for the error kinds a timed-out socket read surfaces.
fn is_timeout(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Serializes `frame` to `writer` and flushes: the fixed header goes out
/// from a stack buffer and the payload is written in place — no per-frame
/// allocation or payload copy on the hot path.
///
/// # Errors
///
/// Returns [`ServerError::Io`] if the write fails (including a write
/// timeout, if one is set on the stream).
pub fn write_frame<W: Write>(writer: &mut W, frame: &Frame) -> Result<(), ServerError> {
    writer.write_all(&frame.header_bytes())?;
    writer.write_all(&frame.payload)?;
    writer.flush()?;
    Ok(())
}

/// Fills `buf` from `reader`, tolerating up to `max_idle_polls` consecutive
/// timed-out reads (each one costs the stream's read timeout of wall clock).
///
/// # Errors
///
/// * [`ServerError::Io`] with kind `UnexpectedEof` if the stream ends first.
/// * [`ServerError::Io`] with the timeout kind once the patience runs out.
fn read_full<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
    max_idle_polls: u32,
) -> Result<(), ServerError> {
    let mut filled = 0usize;
    let mut idle_polls = 0u32;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(ServerError::Io(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    format!("stream ended after {filled} of {} frame bytes", buf.len()),
                )))
            }
            Ok(n) => {
                filled += n;
                idle_polls = 0;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_timeout(e.kind()) => {
                idle_polls += 1;
                if idle_polls > max_idle_polls {
                    return Err(ServerError::Io(e));
                }
            }
            Err(e) => return Err(ServerError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one complete frame, header then payload, with the payload length
/// validated against `max_payload` before the payload buffer is allocated.
///
/// Socket timeouts are retried up to `max_idle_polls` times at every
/// position, so this blocks until a frame arrives or the patience window
/// (`max_idle_polls` x the stream's read timeout) elapses.
///
/// # Errors
///
/// * [`ServerError::Io`] on stream failure, timeout or mid-frame EOF.
/// * [`ServerError::Protocol`] for header violations (see
///   [`parse_header`]).
pub fn read_frame<R: Read>(
    reader: &mut R,
    max_payload: usize,
    max_idle_polls: u32,
) -> Result<(FrameHeader, Vec<u8>), ServerError> {
    let mut header_bytes = [0u8; FRAME_HEADER_BYTES];
    read_full(reader, &mut header_bytes, max_idle_polls)?;
    let header = parse_header(&header_bytes)?;
    header.ensure_within(max_payload)?;
    let mut payload = vec![0u8; header.payload_len];
    read_full(reader, &mut payload, max_idle_polls)?;
    Ok((header, payload))
}

/// What one patient read attempt on an idle-capable connection produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// No frame byte arrived within one read-timeout quantum — poll your
    /// shutdown flag and call again.
    Idle,
    /// One complete frame (header validated, payload within the limit).
    Frame(FrameHeader, Vec<u8>),
    /// A syntactically valid header declaring a payload beyond the limit.
    /// The payload was **not** read (the frame boundary is lost), but the
    /// header's request id lets the caller address its error reply before
    /// closing.
    Oversized(FrameHeader),
}

/// Like [`read_frame`], but an idle connection is not an error
/// ([`ReadOutcome::Idle`]), and an oversized declaration hands back the
/// parsed header ([`ReadOutcome::Oversized`]) so the caller can reply with
/// the request id. Once the first byte of a header is in, the frame must
/// complete within the patience window.
///
/// # Errors
///
/// See [`read_frame`]; a clean EOF before any frame byte surfaces as an
/// `UnexpectedEof` I/O error ([`ServerError::is_disconnect`]).
pub fn read_frame_idle<R: Read>(
    reader: &mut R,
    max_payload: usize,
    max_idle_polls: u32,
) -> Result<ReadOutcome, ServerError> {
    let mut first = [0u8; 1];
    loop {
        match reader.read(&mut first) {
            Ok(0) => {
                return Err(ServerError::Io(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "peer closed the connection",
                )))
            }
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_timeout(e.kind()) => return Ok(ReadOutcome::Idle),
            Err(e) => return Err(ServerError::Io(e)),
        }
    }
    let mut header_bytes = [0u8; FRAME_HEADER_BYTES];
    header_bytes[0] = first[0];
    read_full(reader, &mut header_bytes[1..], max_idle_polls)?;
    let header = parse_header(&header_bytes)?;
    if header.ensure_within(max_payload).is_err() {
        return Ok(ReadOutcome::Oversized(header));
    }
    let mut payload = vec![0u8; header.payload_len];
    read_full(reader, &mut payload, max_idle_polls)?;
    Ok(ReadOutcome::Frame(header, payload))
}

/// Converts a validated `(header, payload)` pair into a [`Frame`], rejecting
/// unknown op codes.
///
/// # Errors
///
/// Returns [`ServerError::Protocol`] with [`ErrorCode::UnknownOp`] if the
/// op byte is not one this build speaks.
pub fn into_frame(header: FrameHeader, payload: Vec<u8>) -> Result<Frame, ServerError> {
    let op =
        crate::protocol::Op::from_code(header.op_code).ok_or_else(|| ServerError::Protocol {
            code: ErrorCode::UnknownOp,
            message: format!("unknown op code 0x{:02X}", header.op_code),
        })?;
    Ok(Frame { op, request_id: header.request_id, payload })
}

/// One complete unit the [`FrameAccumulator`] produced.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete frame: header validated, payload within the limit.
    Frame(FrameHeader, Vec<u8>),
    /// A syntactically valid header declaring a payload beyond the limit.
    /// The payload bytes are **not** consumed (the frame boundary is lost
    /// — the accumulator is dead afterwards), but the header's request id
    /// lets the caller address its error reply before closing.
    Oversized(FrameHeader),
}

/// Incremental frame reassembly for nonblocking reads.
///
/// Feed whatever bytes the socket produced with
/// [`FrameAccumulator::push_bytes`], then drain [`FrameAccumulator::next_event`]
/// until it yields `Ok(None)`. Validation matches the blocking readers
/// exactly: the declared payload length is checked against the limit
/// *before* any payload-sized buffer exists, and header violations (bad
/// magic, bad version) surface as the same typed
/// [`ServerError::Protocol`] errors. After an error or an
/// [`FrameEvent::Oversized`] the frame boundary is unrecoverable and the
/// accumulator stays dead — the connection must close.
#[derive(Debug)]
pub struct FrameAccumulator {
    buf: Vec<u8>,
    pos: usize,
    max_payload: usize,
    dead: bool,
}

/// Consumed-prefix size beyond which the accumulator compacts its buffer
/// even while bytes remain, bounding memory at one frame plus this slack.
const COMPACT_THRESHOLD: usize = 64 << 10;

impl FrameAccumulator {
    /// Creates an accumulator enforcing `max_payload` per frame.
    #[must_use]
    pub fn new(max_payload: usize) -> Self {
        Self { buf: Vec::new(), pos: 0, max_payload, dead: false }
    }

    /// Appends freshly read bytes. Bytes arriving after a violation are
    /// ignored (the caller is only draining toward close).
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        if !self.dead {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Unconsumed bytes currently buffered.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` while a started frame is incomplete — the caller's slow-loris
    /// clock should be running.
    #[must_use]
    pub fn mid_frame(&self) -> bool {
        !self.dead && self.buffered() > 0
    }

    /// Extracts the next complete frame, if the buffer holds one.
    ///
    /// # Errors
    ///
    /// [`ServerError::Protocol`] for bad magic or an unsupported version —
    /// the stream cannot be resynchronized; reply (request id 0) and close.
    pub fn next_event(&mut self) -> Result<Option<FrameEvent>, ServerError> {
        if self.dead || self.buffered() < FRAME_HEADER_BYTES {
            self.compact();
            return Ok(None);
        }
        let header = match parse_header(&self.buf[self.pos..]) {
            Ok(header) => header,
            Err(e) => {
                self.dead = true;
                return Err(e);
            }
        };
        if header.ensure_within(self.max_payload).is_err() {
            self.dead = true;
            return Ok(Some(FrameEvent::Oversized(header)));
        }
        if self.buffered() < FRAME_HEADER_BYTES + header.payload_len {
            self.compact();
            return Ok(None);
        }
        let start = self.pos + FRAME_HEADER_BYTES;
        let payload = self.buf[start..start + header.payload_len].to_vec();
        self.pos = start + header.payload_len;
        self.compact();
        Ok(Some(FrameEvent::Frame(header, payload)))
    }

    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Op;

    #[test]
    fn frames_roundtrip_through_a_byte_stream() {
        let frames = [
            Frame { op: Op::Compress, request_id: 1, payload: vec![9; 100] },
            Frame { op: Op::Stats, request_id: 2, payload: vec![] },
            Frame::error(3, ErrorCode::Busy, "later"),
        ];
        let mut wire = Vec::new();
        for frame in &frames {
            write_frame(&mut wire, frame).unwrap();
        }
        let mut cursor = wire.as_slice();
        for frame in &frames {
            let (header, payload) = read_frame(&mut cursor, 1 << 20, 0).unwrap();
            assert_eq!(into_frame(header, payload).unwrap(), *frame);
        }
        // The stream is exactly consumed; one more read is a clean EOF.
        let err = read_frame(&mut cursor, 1 << 20, 0).unwrap_err();
        assert!(err.is_disconnect(), "{err}");
    }

    #[test]
    fn truncated_frames_are_mid_frame_eof() {
        let bytes = Frame { op: Op::Compress, request_id: 1, payload: vec![7; 32] }.encode();
        for len in [1, FRAME_HEADER_BYTES - 1, FRAME_HEADER_BYTES + 5] {
            let mut cursor = &bytes[..len];
            let err = read_frame(&mut cursor, 1 << 20, 0).unwrap_err();
            assert!(matches!(err, ServerError::Io(_)), "prefix of {len} bytes: {err}");
        }
    }

    #[test]
    fn oversized_payloads_fail_before_the_payload_reads() {
        let bytes = Frame { op: Op::Compress, request_id: 1, payload: vec![7; 64] }.encode();
        // Limit below the declared length: the strict reader must bail.
        let mut cursor = bytes.as_slice();
        let err = read_frame(&mut cursor, 16, 0).unwrap_err();
        assert!(matches!(err, ServerError::Protocol { code: ErrorCode::FrameTooLarge, .. }));
        // The idle-capable reader instead surfaces the header, so the server
        // can address its FrameTooLarge reply to the real request id.
        let mut cursor = bytes.as_slice();
        match read_frame_idle(&mut cursor, 16, 0).unwrap() {
            ReadOutcome::Oversized(header) => {
                assert_eq!(header.request_id, 1);
                assert_eq!(header.payload_len, 64);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn accumulator_reassembles_frames_from_any_chunking() {
        let frames = [
            Frame { op: Op::Compress, request_id: 1, payload: vec![9; 300] },
            Frame { op: Op::Stats, request_id: 2, payload: vec![] },
            Frame::error(3, ErrorCode::Busy, "later"),
        ];
        let mut wire = Vec::new();
        for frame in &frames {
            wire.extend_from_slice(&frame.encode());
        }
        for chunk in [1, 2, 7, 17, wire.len()] {
            let mut acc = FrameAccumulator::new(1 << 20);
            let mut seen = Vec::new();
            for piece in wire.chunks(chunk) {
                acc.push_bytes(piece);
                while let Some(event) = acc.next_event().unwrap() {
                    let FrameEvent::Frame(header, payload) = event else {
                        panic!("unexpected oversize")
                    };
                    seen.push(into_frame(header, payload).unwrap());
                }
            }
            assert_eq!(seen, frames, "chunk size {chunk}");
            assert_eq!(acc.buffered(), 0);
            assert!(!acc.mid_frame());
        }
    }

    #[test]
    fn accumulator_flags_mid_frame_and_recovers_between_frames() {
        let bytes = Frame { op: Op::Compress, request_id: 5, payload: vec![1; 40] }.encode();
        let mut acc = FrameAccumulator::new(1 << 20);
        acc.push_bytes(&bytes[..FRAME_HEADER_BYTES + 10]);
        assert!(acc.next_event().unwrap().is_none());
        assert!(acc.mid_frame(), "started frame, payload missing");
        acc.push_bytes(&bytes[FRAME_HEADER_BYTES + 10..]);
        assert!(matches!(acc.next_event().unwrap(), Some(FrameEvent::Frame(_, _))));
        assert!(!acc.mid_frame(), "boundary reached: the idle clock resets");
    }

    #[test]
    fn accumulator_reports_oversize_once_and_goes_dead() {
        let bytes = Frame { op: Op::Compress, request_id: 9, payload: vec![0; 64] }.encode();
        let mut acc = FrameAccumulator::new(16);
        acc.push_bytes(&bytes);
        match acc.next_event().unwrap() {
            Some(FrameEvent::Oversized(header)) => {
                assert_eq!(header.request_id, 9);
                assert_eq!(header.payload_len, 64);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // Dead: the boundary is lost, later bytes must not resurface frames.
        acc.push_bytes(&bytes);
        assert!(acc.next_event().unwrap().is_none());
        assert!(!acc.mid_frame());
    }

    #[test]
    fn accumulator_surfaces_header_violations_as_typed_errors() {
        let mut bad_magic = Frame { op: Op::Stats, request_id: 0, payload: vec![] }.encode();
        bad_magic[0] ^= 0xFF;
        let mut acc = FrameAccumulator::new(1 << 20);
        acc.push_bytes(&bad_magic);
        let err = acc.next_event().unwrap_err();
        assert!(matches!(err, ServerError::Protocol { code: ErrorCode::MalformedFrame, .. }));
        // Dead after the violation.
        acc.push_bytes(&Frame { op: Op::Stats, request_id: 1, payload: vec![] }.encode());
        assert!(acc.next_event().unwrap().is_none());

        let mut bad_version = Frame { op: Op::Stats, request_id: 0, payload: vec![] }.encode();
        bad_version[4] = 99;
        let mut acc = FrameAccumulator::new(1 << 20);
        acc.push_bytes(&bad_version);
        let err = acc.next_event().unwrap_err();
        assert!(matches!(err, ServerError::Protocol { code: ErrorCode::UnsupportedVersion, .. }));
    }
}
