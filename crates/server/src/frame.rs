//! Blocking frame I/O over byte streams.
//!
//! The server reads with a short socket timeout so it can poll its shutdown
//! flag between frames; [`read_frame_idle`] distinguishes "no frame started
//! yet" (a normal idle tick, [`ReadOutcome::Idle`]) from a timeout *inside*
//! a frame (a protocol error — a peer that starts a frame must finish it
//! within the patience window, or it is holding a connection slot hostage).

use crate::error::ServerError;
use crate::protocol::{parse_header, ErrorCode, Frame, FrameHeader, FRAME_HEADER_BYTES};
use std::io::{ErrorKind, Read, Write};

/// `true` for the error kinds a timed-out socket read surfaces.
fn is_timeout(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Serializes `frame` to `writer` and flushes: the fixed header goes out
/// from a stack buffer and the payload is written in place — no per-frame
/// allocation or payload copy on the hot path.
///
/// # Errors
///
/// Returns [`ServerError::Io`] if the write fails (including a write
/// timeout, if one is set on the stream).
pub fn write_frame<W: Write>(writer: &mut W, frame: &Frame) -> Result<(), ServerError> {
    writer.write_all(&frame.header_bytes())?;
    writer.write_all(&frame.payload)?;
    writer.flush()?;
    Ok(())
}

/// Fills `buf` from `reader`, tolerating up to `max_idle_polls` consecutive
/// timed-out reads (each one costs the stream's read timeout of wall clock).
///
/// # Errors
///
/// * [`ServerError::Io`] with kind `UnexpectedEof` if the stream ends first.
/// * [`ServerError::Io`] with the timeout kind once the patience runs out.
fn read_full<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
    max_idle_polls: u32,
) -> Result<(), ServerError> {
    let mut filled = 0usize;
    let mut idle_polls = 0u32;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(ServerError::Io(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    format!("stream ended after {filled} of {} frame bytes", buf.len()),
                )))
            }
            Ok(n) => {
                filled += n;
                idle_polls = 0;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_timeout(e.kind()) => {
                idle_polls += 1;
                if idle_polls > max_idle_polls {
                    return Err(ServerError::Io(e));
                }
            }
            Err(e) => return Err(ServerError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one complete frame, header then payload, with the payload length
/// validated against `max_payload` before the payload buffer is allocated.
///
/// Socket timeouts are retried up to `max_idle_polls` times at every
/// position, so this blocks until a frame arrives or the patience window
/// (`max_idle_polls` x the stream's read timeout) elapses.
///
/// # Errors
///
/// * [`ServerError::Io`] on stream failure, timeout or mid-frame EOF.
/// * [`ServerError::Protocol`] for header violations (see
///   [`parse_header`]).
pub fn read_frame<R: Read>(
    reader: &mut R,
    max_payload: usize,
    max_idle_polls: u32,
) -> Result<(FrameHeader, Vec<u8>), ServerError> {
    let mut header_bytes = [0u8; FRAME_HEADER_BYTES];
    read_full(reader, &mut header_bytes, max_idle_polls)?;
    let header = parse_header(&header_bytes)?;
    header.ensure_within(max_payload)?;
    let mut payload = vec![0u8; header.payload_len];
    read_full(reader, &mut payload, max_idle_polls)?;
    Ok((header, payload))
}

/// What one patient read attempt on an idle-capable connection produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// No frame byte arrived within one read-timeout quantum — poll your
    /// shutdown flag and call again.
    Idle,
    /// One complete frame (header validated, payload within the limit).
    Frame(FrameHeader, Vec<u8>),
    /// A syntactically valid header declaring a payload beyond the limit.
    /// The payload was **not** read (the frame boundary is lost), but the
    /// header's request id lets the caller address its error reply before
    /// closing.
    Oversized(FrameHeader),
}

/// Like [`read_frame`], but an idle connection is not an error
/// ([`ReadOutcome::Idle`]), and an oversized declaration hands back the
/// parsed header ([`ReadOutcome::Oversized`]) so the caller can reply with
/// the request id. Once the first byte of a header is in, the frame must
/// complete within the patience window.
///
/// # Errors
///
/// See [`read_frame`]; a clean EOF before any frame byte surfaces as an
/// `UnexpectedEof` I/O error ([`ServerError::is_disconnect`]).
pub fn read_frame_idle<R: Read>(
    reader: &mut R,
    max_payload: usize,
    max_idle_polls: u32,
) -> Result<ReadOutcome, ServerError> {
    let mut first = [0u8; 1];
    loop {
        match reader.read(&mut first) {
            Ok(0) => {
                return Err(ServerError::Io(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "peer closed the connection",
                )))
            }
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_timeout(e.kind()) => return Ok(ReadOutcome::Idle),
            Err(e) => return Err(ServerError::Io(e)),
        }
    }
    let mut header_bytes = [0u8; FRAME_HEADER_BYTES];
    header_bytes[0] = first[0];
    read_full(reader, &mut header_bytes[1..], max_idle_polls)?;
    let header = parse_header(&header_bytes)?;
    if header.ensure_within(max_payload).is_err() {
        return Ok(ReadOutcome::Oversized(header));
    }
    let mut payload = vec![0u8; header.payload_len];
    read_full(reader, &mut payload, max_idle_polls)?;
    Ok(ReadOutcome::Frame(header, payload))
}

/// Converts a validated `(header, payload)` pair into a [`Frame`], rejecting
/// unknown op codes.
///
/// # Errors
///
/// Returns [`ServerError::Protocol`] with [`ErrorCode::UnknownOp`] if the
/// op byte is not one this build speaks.
pub fn into_frame(header: FrameHeader, payload: Vec<u8>) -> Result<Frame, ServerError> {
    let op =
        crate::protocol::Op::from_code(header.op_code).ok_or_else(|| ServerError::Protocol {
            code: ErrorCode::UnknownOp,
            message: format!("unknown op code 0x{:02X}", header.op_code),
        })?;
    Ok(Frame { op, request_id: header.request_id, payload })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Op;

    #[test]
    fn frames_roundtrip_through_a_byte_stream() {
        let frames = [
            Frame { op: Op::Compress, request_id: 1, payload: vec![9; 100] },
            Frame { op: Op::Stats, request_id: 2, payload: vec![] },
            Frame::error(3, ErrorCode::Busy, "later"),
        ];
        let mut wire = Vec::new();
        for frame in &frames {
            write_frame(&mut wire, frame).unwrap();
        }
        let mut cursor = wire.as_slice();
        for frame in &frames {
            let (header, payload) = read_frame(&mut cursor, 1 << 20, 0).unwrap();
            assert_eq!(into_frame(header, payload).unwrap(), *frame);
        }
        // The stream is exactly consumed; one more read is a clean EOF.
        let err = read_frame(&mut cursor, 1 << 20, 0).unwrap_err();
        assert!(err.is_disconnect(), "{err}");
    }

    #[test]
    fn truncated_frames_are_mid_frame_eof() {
        let bytes = Frame { op: Op::Compress, request_id: 1, payload: vec![7; 32] }.encode();
        for len in [1, FRAME_HEADER_BYTES - 1, FRAME_HEADER_BYTES + 5] {
            let mut cursor = &bytes[..len];
            let err = read_frame(&mut cursor, 1 << 20, 0).unwrap_err();
            assert!(matches!(err, ServerError::Io(_)), "prefix of {len} bytes: {err}");
        }
    }

    #[test]
    fn oversized_payloads_fail_before_the_payload_reads() {
        let bytes = Frame { op: Op::Compress, request_id: 1, payload: vec![7; 64] }.encode();
        // Limit below the declared length: the strict reader must bail.
        let mut cursor = bytes.as_slice();
        let err = read_frame(&mut cursor, 16, 0).unwrap_err();
        assert!(matches!(err, ServerError::Protocol { code: ErrorCode::FrameTooLarge, .. }));
        // The idle-capable reader instead surfaces the header, so the server
        // can address its FrameTooLarge reply to the real request id.
        let mut cursor = bytes.as_slice();
        match read_frame_idle(&mut cursor, 16, 0).unwrap() {
            ReadOutcome::Oversized(header) => {
                assert_eq!(header.request_id, 1);
                assert_eq!(header.payload_len, 64);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }
}
