//! The hot-response cache: request-payload content hash → response payload.
//!
//! Medical viewers hammer the same slices: the same PGM uploaded twice, the
//! same stream decompressed by every radiologist opening a study. Both
//! datapaths are deterministic (same payload → byte-identical response), so
//! a content-addressed cache is *exact*, never approximate — a hit returns
//! precisely the bytes the engine would have produced, which keeps the
//! server's byte-identity guarantee intact with the cache on or off.
//!
//! Keys are `(op, full request payload)`: the payload is hashed (FNV-1a 64)
//! for bucket placement and then compared byte-for-byte on lookup, so hash
//! collisions can never serve the wrong response. Eviction is LRU by a
//! monotonic touch stamp under both an entry-count and a byte budget
//! (payload + response bytes per entry). The cache is **disabled by
//! default** (`cache_entries == 0` in `ServerConfig`): serving honest
//! worker-scaling numbers matters more than winning benchmarks against a
//! load generator that repeats one payload.

use crate::protocol::Op;
use std::collections::HashMap;

/// One cached response under its exact request key.
#[derive(Debug)]
struct Slot {
    op: u8,
    payload: Vec<u8>,
    response: Vec<u8>,
    stamp: u64,
}

impl Slot {
    /// Bytes this entry charges against the budget.
    fn cost(&self) -> usize {
        self.payload.len() + self.response.len()
    }
}

/// FNV-1a 64 over the op byte and the payload — stable, dependency-free,
/// and only a *placement* hint (equality is always verified).
fn content_hash(op: u8, payload: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(op);
    for &byte in payload {
        eat(byte);
    }
    hash
}

/// An exact LRU response cache; see the module docs.
#[derive(Debug)]
pub(crate) struct ResponseCache {
    buckets: HashMap<u64, Vec<Slot>>,
    max_entries: usize,
    max_bytes: usize,
    entries: usize,
    bytes: usize,
    clock: u64,
}

impl ResponseCache {
    /// Creates a cache bounded by `max_entries` entries and `max_bytes`
    /// total (payload + response) bytes.
    pub fn new(max_entries: usize, max_bytes: usize) -> Self {
        Self { buckets: HashMap::new(), max_entries, max_bytes, entries: 0, bytes: 0, clock: 0 }
    }

    /// Entries currently cached.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Looks up the response for `(op, payload)`, refreshing its LRU stamp.
    /// The returned bytes are a clone — the caller frames and sends them
    /// without holding the cache lock.
    pub fn get(&mut self, op: Op, payload: &[u8]) -> Option<Vec<u8>> {
        self.clock += 1;
        let stamp = self.clock;
        let slots = self.buckets.get_mut(&content_hash(op.code(), payload))?;
        let slot = slots.iter_mut().find(|s| s.op == op.code() && s.payload == payload)?;
        slot.stamp = stamp;
        Some(slot.response.clone())
    }

    /// Inserts a response, evicting least-recently-used entries until both
    /// budgets hold. Entries too large to ever fit the byte budget are
    /// skipped; re-inserting an existing key refreshes it.
    pub fn insert(&mut self, op: Op, payload: Vec<u8>, response: Vec<u8>) {
        let cost = payload.len() + response.len();
        if self.max_entries == 0 || cost > self.max_bytes {
            return;
        }
        self.clock += 1;
        let slot = Slot { op: op.code(), payload, response, stamp: self.clock };
        let bucket = self.buckets.entry(content_hash(slot.op, &slot.payload)).or_default();
        if let Some(existing) =
            bucket.iter_mut().find(|s| s.op == slot.op && s.payload == slot.payload)
        {
            self.bytes = self.bytes - existing.cost() + slot.cost();
            *existing = slot;
        } else {
            self.bytes += slot.cost();
            self.entries += 1;
            bucket.push(slot);
        }
        while self.entries > self.max_entries || self.bytes > self.max_bytes {
            self.evict_lru();
        }
    }

    /// Removes the entry with the oldest stamp. Linear in the entry count,
    /// which the entry budget keeps small — no second index to maintain.
    fn evict_lru(&mut self) {
        let Some((&hash, oldest)) = self
            .buckets
            .iter()
            .filter_map(|(hash, slots)| {
                slots.iter().map(|s| s.stamp).min().map(|stamp| (hash, stamp))
            })
            .min_by_key(|&(_, stamp)| stamp)
        else {
            return;
        };
        let slots = self.buckets.get_mut(&hash).expect("bucket exists");
        let index = slots.iter().position(|s| s.stamp == oldest).expect("slot exists");
        let slot = slots.swap_remove(index);
        self.entries -= 1;
        self.bytes -= slot.cost();
        if slots.is_empty() {
            self.buckets.remove(&hash);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_require_exact_payload_and_op_match() {
        let mut cache = ResponseCache::new(8, 1 << 20);
        cache.insert(Op::Compress, b"payload".to_vec(), b"response".to_vec());
        assert_eq!(cache.get(Op::Compress, b"payload").as_deref(), Some(&b"response"[..]));
        assert!(cache.get(Op::Decompress, b"payload").is_none(), "op is part of the key");
        assert!(cache.get(Op::Compress, b"payloae").is_none());
        assert!(cache.get(Op::Compress, b"").is_none());
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut cache = ResponseCache::new(2, 1 << 20);
        cache.insert(Op::Compress, vec![1], vec![10]);
        cache.insert(Op::Compress, vec![2], vec![20]);
        // Touch [1] so [2] becomes the LRU entry, then overflow.
        assert!(cache.get(Op::Compress, &[1]).is_some());
        cache.insert(Op::Compress, vec![3], vec![30]);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(Op::Compress, &[1]).is_some(), "recently touched survives");
        assert!(cache.get(Op::Compress, &[2]).is_none(), "LRU entry evicted");
        assert!(cache.get(Op::Compress, &[3]).is_some());
    }

    #[test]
    fn byte_budget_evicts_and_oversized_entries_are_skipped() {
        let mut cache = ResponseCache::new(100, 64);
        cache.insert(Op::Compress, vec![1; 16], vec![2; 16]); // 32 bytes
        cache.insert(Op::Compress, vec![3; 16], vec![4; 16]); // 64 total
        assert_eq!(cache.len(), 2);
        cache.insert(Op::Compress, vec![5; 16], vec![6; 16]); // evicts oldest
        assert_eq!(cache.len(), 2);
        assert!(cache.get(Op::Compress, &[1; 16]).is_none());
        // An entry that could never fit is refused outright.
        cache.insert(Op::Compress, vec![7; 60], vec![8; 60]);
        assert!(cache.get(Op::Compress, &[7; 60]).is_none());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsertion_refreshes_in_place() {
        let mut cache = ResponseCache::new(4, 1 << 20);
        cache.insert(Op::Compress, vec![1], vec![10]);
        cache.insert(Op::Compress, vec![1], vec![11, 12]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(Op::Compress, &[1]), Some(vec![11, 12]));
    }

    #[test]
    fn zero_entry_budget_disables_the_cache() {
        let mut cache = ResponseCache::new(0, 1 << 20);
        cache.insert(Op::Compress, vec![1], vec![10]);
        assert!(cache.get(Op::Compress, &[1]).is_none());
        assert_eq!(cache.len(), 0);
    }
}
