//! # lwc-server — the compression service
//!
//! The paper's architecture is a streaming producer/consumer pipeline:
//! stages coupled by bounded FIFOs, each sized so the datapath never stalls
//! and never buffers more than a few rows. This crate is that organisation
//! lifted to the network boundary — the serving layer the ROADMAP's
//! "millions of users" north star calls for, layered on the engines the
//! workspace already has:
//!
//! * [`protocol`] — the versioned, length-prefixed `LWCP` wire format
//!   ([`Frame`], [`Op`], typed [`ErrorCode`]s), with payload limits enforced
//!   *before* allocation,
//! * [`frame`] — blocking frame I/O for the client, plus the incremental
//!   [`FrameAccumulator`](frame::FrameAccumulator) the server's event loop
//!   parses with,
//! * [`Server`] — a **nonblocking event loop** (epoll on Linux via the
//!   vendored `polling` shim, poll(2) elsewhere): one I/O thread multiplexes
//!   every connection through per-connection state machines, and a
//!   [work-stealing scheduler](sched::WorkStealing) fans the per-tile jobs
//!   of one large request across every codec worker over the
//!   [`TiledCompressor`](lwc_pipeline::TiledCompressor) machinery.
//!   Backpressure is a **global in-flight budget** plus a per-connection
//!   cap: overload answers `busy` instead of buffering without bound (the
//!   FIFO-sizing trade-off made observable), and an optional content-hash
//!   LRU cache serves repeated payloads without touching the engine,
//! * [`Client`] — synchronous request/response plus pipelined multi-request
//!   submission over one connection,
//! * [`loadgen`] — a concurrent load generator measuring requests/s and
//!   MB/s against a live server (the data behind `BENCH_throughput.json`'s
//!   `serve` section),
//! * the `serve` binary — `cargo run -p lwc-server --bin serve` — which puts
//!   the service on a real port.
//!
//! ```
//! use lwc_image::synth;
//! use lwc_server::{Client, Server, ServerConfig};
//!
//! # fn main() -> Result<(), lwc_server::ServerError> {
//! let config = ServerConfig { workers: 2, scales: 3, tile_size: 64, ..ServerConfig::default() };
//! let server = Server::bind("127.0.0.1:0", config)?;
//! let mut client = Client::connect(server.local_addr())?;
//! let image = synth::mr_slice(80, 60, 12, 5);
//! let stream = client.compress_image(&image)?;
//! let back = client.decompress(&stream)?;
//! assert_eq!(image.samples(), back.samples());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cache;
mod client;
mod conn;
mod error;
pub mod frame;
pub mod loadgen;
pub mod protocol;
pub mod rawvol;
pub mod sched;
mod server;
mod stats;

pub use client::{Client, Response, PIPELINE_WINDOW};
pub use error::ServerError;
pub use loadgen::{LoadGenConfig, LoadReport};
pub use protocol::{ErrorCode, Frame, Op, DEFAULT_MAX_PAYLOAD_BYTES, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig};
pub use stats::ServerStats;
