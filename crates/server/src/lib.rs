//! # lwc-server — the compression service
//!
//! The paper's architecture is a streaming producer/consumer pipeline:
//! stages coupled by bounded FIFOs, each sized so the datapath never stalls
//! and never buffers more than a few rows. This crate is that organisation
//! lifted to the network boundary — the serving layer the ROADMAP's
//! "millions of users" north star calls for, layered on the engines the
//! workspace already has:
//!
//! * [`protocol`] — the versioned, length-prefixed `LWCP` wire format
//!   ([`Frame`], [`Op`], typed [`ErrorCode`]s), with payload limits enforced
//!   *before* allocation,
//! * [`frame`] — blocking frame I/O with idle/mid-frame timeout discipline,
//! * [`Server`] — a TCP acceptor feeding a **bounded** request queue drained
//!   by a pool of codec workers over the
//!   [`TiledCompressor`](lwc_pipeline::TiledCompressor) machinery; a full
//!   queue answers `busy` instead of buffering without bound (explicit
//!   backpressure, the FIFO-sizing trade-off made observable),
//! * [`Client`] — synchronous request/response plus pipelined multi-request
//!   submission over one connection,
//! * [`loadgen`] — a concurrent load generator measuring requests/s and
//!   MB/s against a live server (the data behind `BENCH_throughput.json`'s
//!   `serve` section),
//! * the `serve` binary — `cargo run -p lwc-server --bin serve` — which puts
//!   the service on a real port.
//!
//! ```
//! use lwc_image::synth;
//! use lwc_server::{Client, Server, ServerConfig};
//!
//! # fn main() -> Result<(), lwc_server::ServerError> {
//! let config = ServerConfig { workers: 2, scales: 3, tile_size: 64, ..ServerConfig::default() };
//! let server = Server::bind("127.0.0.1:0", config)?;
//! let mut client = Client::connect(server.local_addr())?;
//! let image = synth::mr_slice(80, 60, 12, 5);
//! let stream = client.compress_image(&image)?;
//! let back = client.decompress(&stream)?;
//! assert_eq!(image.samples(), back.samples());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod client;
mod error;
pub mod frame;
pub mod loadgen;
pub mod protocol;
mod queue;
mod server;

pub use client::{Client, Response, PIPELINE_WINDOW};
pub use error::ServerError;
pub use loadgen::{LoadGenConfig, LoadReport};
pub use protocol::{ErrorCode, Frame, Op, DEFAULT_MAX_PAYLOAD_BYTES, PROTOCOL_VERSION};
pub use queue::ServerStats;
pub use server::{Server, ServerConfig};
