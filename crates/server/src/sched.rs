//! Work-stealing task scheduler: per-worker deques with Chase–Lev
//! discipline.
//!
//! The single bounded `JobQueue` this replaces serialized every request —
//! and every tile of every request — behind one lock and one FIFO order. The
//! scheduler keeps one deque per worker instead, disciplined the way
//! Chase–Lev deques are used: the **owner** pushes and pops at the *bottom*
//! (LIFO, so freshly split tile tasks run while their image is hot in
//! cache), **idle workers steal** from the *top* (FIFO, so the oldest —
//! typically largest-remaining — work migrates first), and externally
//! injected requests enter round-robin at the top so they drain in roughly
//! arrival order. One large tiled request split into per-tile tasks
//! therefore fans out across every idle worker instead of serializing
//! behind one, which is the software version of the paper keeping all MACs
//! busy from one stream of rows.
//!
//! The implementation is deliberately lock-per-deque rather than the
//! classic lock-free array (the workspace forbids `unsafe`, which Chase–Lev
//! needs); each lock guards one short `VecDeque` operation, so contention
//! is bounded by steal attempts, not by queue depth. Capacity is **not**
//! bounded here — admission control (the server's global in-flight budget)
//! happens before tasks enter, which is what turns overload into an
//! explicit `busy` instead of unbounded buffering.
//!
//! JobQueue: the bounded FIFO of PRs 4–7, now retired.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// How long an idle worker sleeps between rescans when a wakeup races a
/// push; purely a latency backstop — the condvar handshake wakes it
/// promptly in the common case.
const IDLE_RESCAN: Duration = Duration::from_millis(10);

struct State {
    /// No new injected work is accepted; workers drain and exit.
    closed: bool,
    /// Workers currently executing a task (they may still push local work).
    busy: usize,
}

/// A multi-worker task scheduler; see the module docs for the discipline.
///
/// Tasks are handed to [`WorkStealing::run`], which each worker thread
/// calls once with its own index; the call returns after
/// [`WorkStealing::close`] once every task — including tasks spawned by
/// running tasks via [`WorkStealing::push_local`] — has executed.
pub struct WorkStealing<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    state: Mutex<State>,
    ready: Condvar,
    inject_cursor: AtomicUsize,
    steals: AtomicU64,
    executed: Vec<AtomicU64>,
}

impl<T: Send> WorkStealing<T> {
    /// Creates a scheduler with one deque per worker (`workers >= 1` is
    /// clamped up).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Self {
            shards: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            state: Mutex::new(State { closed: false, busy: 0 }),
            ready: Condvar::new(),
            inject_cursor: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            executed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of worker deques.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Injects an external task, round-robin across deques at the *top* (so
    /// owners reach injected work in roughly arrival order and stealers
    /// take the oldest first). Returns the task back if the scheduler is
    /// closed.
    ///
    /// # Errors
    ///
    /// `Err(task)` after [`WorkStealing::close`].
    pub fn inject(&self, task: T) -> Result<(), T> {
        if self.state.lock().expect("poisoned").closed {
            return Err(task);
        }
        let shard = self.inject_cursor.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[shard].lock().expect("poisoned").push_front(task);
        self.wake_one();
        Ok(())
    }

    /// Pushes a task to `worker`'s own deque bottom (LIFO for the owner).
    /// Meant to be called from *inside* a running task — splitting itself
    /// into subtasks — and therefore accepted even after
    /// [`WorkStealing::close`], so a request admitted before shutdown still
    /// fans out and completes during the drain.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn push_local(&self, worker: usize, task: T) {
        self.shards[worker].lock().expect("poisoned").push_back(task);
        self.wake_one();
    }

    /// Total tasks currently queued across all deques.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("poisoned").len()).sum()
    }

    /// Tasks taken from another worker's deque since startup.
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Tasks executed by `worker` (own pops and steals combined).
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    #[must_use]
    pub fn executed(&self, worker: usize) -> u64 {
        self.executed[worker].load(Ordering::Relaxed)
    }

    /// Workers that have executed at least one task — the "how many MACs
    /// did the work actually reach" statistic.
    #[must_use]
    pub fn active_workers(&self) -> usize {
        self.executed.iter().filter(|c| c.load(Ordering::Relaxed) > 0).count()
    }

    /// Closes the scheduler: new [`WorkStealing::inject`]s are refused,
    /// queued tasks (and their locally-pushed subtasks) still drain, and
    /// every [`WorkStealing::run`] call returns once the drain is complete.
    pub fn close(&self) {
        self.state.lock().expect("poisoned").closed = true;
        self.ready.notify_all();
    }

    /// The worker loop: executes tasks via `f(worker, task)` until the
    /// scheduler is closed **and** drained. Call once per worker thread
    /// with that worker's index.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn run(&self, worker: usize, mut f: impl FnMut(usize, T)) {
        while let Some(task) = self.next(worker) {
            f(worker, task);
            self.task_done();
        }
    }

    fn wake_one(&self) {
        // Touch the state lock before notifying: a worker that just scanned
        // empty deques holds it until it blocks on the condvar, so the
        // notification cannot slip into that window and be lost.
        drop(self.state.lock().expect("poisoned"));
        self.ready.notify_one();
    }

    /// Takes the next task for `worker`: own bottom first, then a steal
    /// scan, then block. `None` once closed and fully drained. Marks the
    /// worker busy; [`WorkStealing::task_done`] ends the span.
    fn next(&self, worker: usize) -> Option<T> {
        let mut state = self.state.lock().expect("poisoned");
        loop {
            if let Some(task) = self.shards[worker].lock().expect("poisoned").pop_back() {
                self.executed[worker].fetch_add(1, Ordering::Relaxed);
                state.busy += 1;
                return Some(task);
            }
            for offset in 1..self.shards.len() {
                let victim = (worker + offset) % self.shards.len();
                if let Some(task) = self.shards[victim].lock().expect("poisoned").pop_front() {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    self.executed[worker].fetch_add(1, Ordering::Relaxed);
                    state.busy += 1;
                    return Some(task);
                }
            }
            // Nothing anywhere. Exit only when no more work can appear:
            // closed, and no busy peer that could still push subtasks.
            if state.closed && state.busy == 0 {
                return None;
            }
            state = self.ready.wait_timeout(state, IDLE_RESCAN).expect("poisoned").0;
        }
    }

    /// Ends the busy span [`WorkStealing::next`] opened.
    fn task_done(&self) {
        let mut state = self.state.lock().expect("poisoned");
        state.busy -= 1;
        if state.busy == 0 && state.closed {
            // Last runner: idle peers waiting on the drain condition must
            // re-evaluate it now.
            self.ready.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn owner_runs_local_tasks_lifo_and_injected_tasks_fifo() {
        let pool: WorkStealing<u32> = WorkStealing::new(1);
        pool.inject(1).unwrap();
        pool.inject(2).unwrap();
        pool.push_local(0, 10);
        pool.push_local(0, 11);
        assert_eq!(pool.queued(), 4);
        pool.close();
        let mut order = Vec::new();
        pool.run(0, |_, task| order.push(task));
        // Local work first (LIFO), then injected requests in arrival order.
        assert_eq!(order, vec![11, 10, 1, 2]);
        assert_eq!(pool.executed(0), 4);
        assert_eq!(pool.steals(), 0);
        assert_eq!(pool.active_workers(), 1);
    }

    #[test]
    fn injection_is_refused_after_close_but_local_pushes_drain() {
        let pool: WorkStealing<u32> = WorkStealing::new(2);
        pool.inject(1).unwrap();
        pool.close();
        assert_eq!(pool.inject(2).unwrap_err(), 2);
        // A running task may still split itself during the drain.
        let pool = Arc::new(pool);
        let seen = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                pool.run(0, |worker, task| {
                    if task == 1 {
                        pool.push_local(worker, 100);
                    }
                    seen.push(task);
                });
                seen
            })
        };
        assert_eq!(seen.join().unwrap(), vec![1, 100]);
    }

    #[test]
    fn idle_workers_steal_queued_work() {
        let pool: Arc<WorkStealing<u32>> = Arc::new(WorkStealing::new(2));
        // All work sits in worker 0's deque; only worker 1 runs.
        for task in 0..8 {
            pool.push_local(0, task);
        }
        pool.close();
        let runner = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                pool.run(1, |_, task| seen.push(task));
                seen
            })
        };
        let mut seen = runner.join().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
        assert_eq!(pool.steals(), 8);
        assert_eq!(pool.executed(1), 8);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let pool: Arc<WorkStealing<u32>> = Arc::new(WorkStealing::new(1));
        let runner = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.run(0, |_, _| {}))
        };
        std::thread::sleep(Duration::from_millis(20));
        pool.close();
        runner.join().unwrap();
    }
}
