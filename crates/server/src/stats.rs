//! The server's counters: lock-free [`Metrics`] the event loop and workers
//! bump as they go, and the [`ServerStats`] snapshot the `stats` op serves.
//!
//! Until PR 8 this file's ancestor (`queue.rs`) also held the bounded
//! `JobQueue`; scheduling now lives in [`crate::sched`], and backpressure
//! is the **global in-flight budget** counted here — admission control at
//! the event loop, the software analogue of the paper's FIFO depth, made
//! observable through `rejected_busy` vs `completed_requests`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters the event loop and worker threads bump as they go.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    pub accepted_connections: AtomicU64,
    pub received_requests: AtomicU64,
    pub completed_requests: AtomicU64,
    pub rejected_busy: AtomicU64,
    pub error_replies: AtomicU64,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
    /// Requests admitted under the global budget and not yet answered.
    pub in_flight: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
}

impl Metrics {
    pub fn add(counter: &AtomicU64, value: u64) {
        counter.fetch_add(value, Ordering::Relaxed);
    }

    pub fn bump(counter: &AtomicU64) {
        Self::add(counter, 1);
    }

    pub fn settle(counter: &AtomicU64) {
        counter.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of a server's counters — the payload of the
/// `stats` op and the return of [`Server::stats`](crate::Server::stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Codec worker threads draining the deques.
    pub workers: usize,
    /// Global in-flight request budget (admission limit; the field keeps
    /// its historical name so callers and dashboards survive the switch
    /// from queue-depth backpressure).
    pub queue_depth: usize,
    /// Tasks queued across the worker deques at snapshot time.
    pub queue_len: usize,
    /// Requests admitted and not yet answered at snapshot time.
    pub in_flight: u64,
    /// Connections accepted since startup.
    pub accepted_connections: u64,
    /// Request frames read off connections.
    pub received_requests: u64,
    /// Requests executed successfully.
    pub completed_requests: u64,
    /// Requests refused with `busy` (global budget or per-connection cap).
    pub rejected_busy: u64,
    /// Error frames sent (any code, including busy).
    pub error_replies: u64,
    /// Frame bytes read from clients.
    pub bytes_in: u64,
    /// Frame bytes written to clients.
    pub bytes_out: u64,
    /// Responses served from the hot-response cache.
    pub cache_hits: u64,
    /// Cacheable requests that missed (and were executed).
    pub cache_misses: u64,
    /// Tasks a worker took from another worker's deque.
    pub steals: u64,
    /// Workers that have executed at least one task.
    pub active_workers: usize,
}

/// The scheduler-side numbers a snapshot folds in (queued tasks, steals,
/// active workers) — passed in so `Metrics` stays a plain counter block.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SchedSnapshot {
    pub queue_len: usize,
    pub steals: u64,
    pub active_workers: usize,
}

impl ServerStats {
    pub(crate) fn snapshot(
        metrics: &Metrics,
        workers: usize,
        queue_depth: usize,
        sched: SchedSnapshot,
    ) -> Self {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        Self {
            workers,
            queue_depth,
            queue_len: sched.queue_len,
            in_flight: get(&metrics.in_flight),
            accepted_connections: get(&metrics.accepted_connections),
            received_requests: get(&metrics.received_requests),
            completed_requests: get(&metrics.completed_requests),
            rejected_busy: get(&metrics.rejected_busy),
            error_replies: get(&metrics.error_replies),
            bytes_in: get(&metrics.bytes_in),
            bytes_out: get(&metrics.bytes_out),
            cache_hits: get(&metrics.cache_hits),
            cache_misses: get(&metrics.cache_misses),
            steals: sched.steals,
            active_workers: sched.active_workers,
        }
    }

    /// Serializes the snapshot as a flat JSON object (the `stats` payload).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workers\": {}, \"queue_depth\": {}, \"queue_len\": {}, \"in_flight\": {}, \
             \"accepted_connections\": {}, \"received_requests\": {}, \
             \"completed_requests\": {}, \"rejected_busy\": {}, \"error_replies\": {}, \
             \"bytes_in\": {}, \"bytes_out\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"steals\": {}, \"active_workers\": {}}}",
            self.workers,
            self.queue_depth,
            self.queue_len,
            self.in_flight,
            self.accepted_connections,
            self.received_requests,
            self.completed_requests,
            self.rejected_busy,
            self.error_replies,
            self.bytes_in,
            self.bytes_out,
            self.cache_hits,
            self.cache_misses,
            self.steals,
            self.active_workers
        )
    }
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} workers ({} active), {}/{} in flight (+{} queued), {} conns, {} reqs \
             ({} ok, {} busy, {} errors), {} hits / {} misses, {} steals, {} B in / {} B out",
            self.workers,
            self.active_workers,
            self.in_flight,
            self.queue_depth,
            self.queue_len,
            self.accepted_connections,
            self.received_requests,
            self.completed_requests,
            self.rejected_busy,
            self.error_replies,
            self.cache_hits,
            self.cache_misses,
            self.steals,
            self.bytes_in,
            self.bytes_out
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_snapshot_serializes_to_json() {
        let metrics = Metrics::default();
        Metrics::bump(&metrics.completed_requests);
        Metrics::add(&metrics.bytes_in, 123);
        Metrics::bump(&metrics.cache_hits);
        Metrics::bump(&metrics.in_flight);
        let sched = SchedSnapshot { queue_len: 3, steals: 7, active_workers: 2 };
        let stats = ServerStats::snapshot(&metrics, 4, 8, sched);
        assert_eq!(stats.completed_requests, 1);
        assert_eq!(stats.bytes_in, 123);
        assert_eq!(stats.steals, 7);
        assert_eq!(stats.in_flight, 1);
        let json = stats.to_json();
        assert!(json.contains("\"completed_requests\": 1"), "{json}");
        assert!(json.contains("\"queue_depth\": 8"), "{json}");
        assert!(json.contains("\"cache_hits\": 1"), "{json}");
        assert!(json.contains("\"steals\": 7"), "{json}");
        assert!(json.contains("\"active_workers\": 2"), "{json}");
        assert!(stats.to_string().contains("4 workers"));
    }

    #[test]
    fn settle_undoes_bump() {
        let metrics = Metrics::default();
        Metrics::bump(&metrics.in_flight);
        Metrics::bump(&metrics.in_flight);
        Metrics::settle(&metrics.in_flight);
        assert_eq!(metrics.in_flight.load(Ordering::Relaxed), 1);
    }
}
