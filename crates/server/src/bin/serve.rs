//! The `serve` binary: put the `LWCP` compression service on a TCP port.
//!
//! ```text
//! cargo run --release -p lwc-server --bin serve -- [flags]
//!
//!   --addr HOST:PORT    listen address           (default 127.0.0.1:7453)
//!   --workers N         codec worker threads     (default 0 = all cores)
//!   --queue N           request queue depth      (default 0 = 4 x workers)
//!   --scales N          compress decomposition   (default 4)
//!   --tile N            compress tile size       (default 256)
//!   --max-frame-mb N    per-frame payload limit  (default 64)
//!   --duration SECS     serve then exit          (default 0 = forever)
//! ```

use lwc_server::{Server, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--workers N] [--queue N] [--scales N] [--tile N] \
         [--max-frame-mb N] [--duration SECS]"
    );
    std::process::exit(2);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut addr = "127.0.0.1:7453".to_owned();
    let mut config = ServerConfig::default();
    let mut duration = 0u64;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--workers" => config.workers = value("--workers").parse()?,
            "--queue" => config.queue_depth = value("--queue").parse()?,
            "--scales" => config.scales = value("--scales").parse()?,
            "--tile" => config.tile_size = value("--tile").parse()?,
            "--max-frame-mb" => {
                config.max_payload_bytes = value("--max-frame-mb").parse::<usize>()? << 20;
            }
            "--duration" => duration = value("--duration").parse()?,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }

    let mut server = Server::bind(addr.as_str(), config)?;
    let resolved = *server.config();
    println!(
        "lwc-server listening on {} ({} workers, queue depth {}, scales {}, tile {}, \
         max frame {} MiB)",
        server.local_addr(),
        resolved.workers,
        resolved.queue_depth,
        resolved.scales,
        resolved.tile_size,
        resolved.max_payload_bytes >> 20
    );
    if duration == 0 {
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_secs(duration));
    let stats = server.stats();
    server.shutdown();
    println!("served for {duration} s: {stats}");
    Ok(())
}
