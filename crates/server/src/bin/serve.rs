//! The `serve` binary: put the `LWCP` compression service on a TCP port.
//!
//! ```text
//! cargo run --release -p lwc-server --bin serve -- [flags]
//!
//!   --addr HOST:PORT    listen address             (default 127.0.0.1:7453)
//!   --workers N         codec worker threads       (default 0 = all cores)
//!   --budget N          global in-flight budget    (default 0 = 4 x workers)
//!   --conn-inflight N   per-connection cap         (default 0 = 64)
//!   --cache-entries N   response cache entries     (default 0 = disabled)
//!   --cache-mb N        response cache byte budget (default 0 = 256 MiB)
//!   --scales N          compress decomposition     (default 4)
//!   --delta N           near-lossless bound        (default 0 = lossless)
//!   --tile N            compress tile size         (default 256)
//!   --z-scales N        volume z decomposition     (default 2)
//!   --brick-depth N     volume brick depth         (default 8)
//!   --max-frame-mb N    per-frame payload limit    (default 64)
//!   --duration SECS     serve then exit            (default 0 = forever)
//! ```
//!
//! `--queue` is accepted as a deprecated alias for `--budget`.

use lwc_server::{Server, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--workers N] [--budget N] [--conn-inflight N] \
         [--cache-entries N] [--cache-mb N] [--scales N] [--delta N] [--tile N] \
         [--z-scales N] [--brick-depth N] [--max-frame-mb N] [--duration SECS]"
    );
    std::process::exit(2);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut addr = "127.0.0.1:7453".to_owned();
    let mut config = ServerConfig::default();
    let mut duration = 0u64;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--workers" => config.workers = value("--workers").parse()?,
            "--budget" | "--queue" => config.queue_depth = value("--budget").parse()?,
            "--conn-inflight" => config.conn_inflight = value("--conn-inflight").parse()?,
            "--cache-entries" => config.cache_entries = value("--cache-entries").parse()?,
            "--cache-mb" => {
                config.cache_bytes = value("--cache-mb").parse::<usize>()? << 20;
            }
            "--scales" => config.scales = value("--scales").parse()?,
            "--delta" => config.delta = value("--delta").parse()?,
            "--tile" => config.tile_size = value("--tile").parse()?,
            "--z-scales" => config.z_scales = value("--z-scales").parse()?,
            "--brick-depth" => config.brick_depth = value("--brick-depth").parse()?,
            "--max-frame-mb" => {
                config.max_payload_bytes = value("--max-frame-mb").parse::<usize>()? << 20;
            }
            "--duration" => duration = value("--duration").parse()?,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }

    let mut server = Server::bind(addr.as_str(), config)?;
    let resolved = *server.config();
    let cache = if resolved.cache_entries == 0 {
        "off".to_owned()
    } else {
        format!("{} entries / {} MiB", resolved.cache_entries, resolved.cache_bytes >> 20)
    };
    println!(
        "lwc-server listening on {} ({} workers, in-flight budget {}, {} per connection, \
         cache {}, scales {}, delta {}, tile {}, z-scales {}, brick depth {}, \
         max frame {} MiB)",
        server.local_addr(),
        resolved.workers,
        resolved.queue_depth,
        resolved.conn_inflight,
        cache,
        resolved.scales,
        resolved.delta,
        resolved.tile_size,
        resolved.z_scales,
        resolved.brick_depth,
        resolved.max_payload_bytes >> 20
    );
    if duration == 0 {
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_secs(duration));
    let stats = server.stats();
    server.shutdown();
    println!("served for {duration} s: {stats}");
    Ok(())
}
