//! Property tests of the `LWCP` frame codec: arbitrary frames round-trip
//! through encode/decode (and through the stream reader), and random
//! corruptions of the header are rejected with typed errors, never panics.

use lwc_server::frame::{into_frame, read_frame, write_frame};
use lwc_server::protocol::{parse_header, FRAME_HEADER_BYTES};
use lwc_server::{ErrorCode, Frame, Op, ServerError, PROTOCOL_VERSION};
use proptest::prelude::*;

fn op_for(selector: usize) -> Op {
    Op::ALL[selector % Op::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_frames_roundtrip_through_the_codec(
        op_selector in 0usize..Op::ALL.len(),
        request_id in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let frame = Frame { op: op_for(op_selector), request_id, payload };
        let bytes = frame.encode();
        prop_assert_eq!(bytes.len(), FRAME_HEADER_BYTES + frame.payload.len());
        let (decoded, consumed) = Frame::decode(&bytes, 1 << 20).expect("roundtrip");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(&decoded, &frame);

        // And through the blocking stream reader, back to back with a second
        // frame to prove the boundary is respected.
        let second = Frame { op: Op::Stats, request_id: request_id ^ 1, payload: vec![] };
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).expect("write");
        write_frame(&mut wire, &second).expect("write");
        let mut cursor = wire.as_slice();
        let (h1, p1) = read_frame(&mut cursor, 1 << 20, 0).expect("first");
        let (h2, p2) = read_frame(&mut cursor, 1 << 20, 0).expect("second");
        prop_assert_eq!(into_frame(h1, p1).expect("op known"), frame);
        prop_assert_eq!(into_frame(h2, p2).expect("op known"), second);
        prop_assert!(cursor.is_empty());
    }

    #[test]
    fn truncated_frames_never_decode(
        payload in prop::collection::vec(any::<u8>(), 0..64),
        cut in 0usize..64,
    ) {
        let frame = Frame { op: Op::Compress, request_id: 9, payload };
        let bytes = frame.encode();
        let cut = cut % bytes.len().max(1);
        if cut < bytes.len() {
            prop_assert!(Frame::decode(&bytes[..cut], 1 << 20).is_err(), "cut at {}", cut);
        }
    }

    #[test]
    fn corrupted_headers_are_typed_errors_not_panics(
        byte in 0usize..FRAME_HEADER_BYTES,
        xor in 1u8..=255,
        payload_len in 0usize..32,
    ) {
        let frame = Frame { op: Op::Decompress, request_id: 5, payload: vec![0xAB; payload_len] };
        let mut bytes = frame.encode();
        bytes[byte] ^= xor;
        // Whatever field the flip landed in, the outcome is a clean decode
        // of a (different) valid frame or a typed error — never a panic and
        // never an out-of-bounds payload slice.
        match Frame::decode(&bytes, 1 << 20) {
            Ok((decoded, consumed)) => {
                prop_assert!(consumed <= bytes.len());
                prop_assert!(decoded.payload.len() <= bytes.len());
            }
            Err(ServerError::Protocol { code, .. }) => {
                prop_assert!(matches!(
                    code,
                    ErrorCode::MalformedFrame
                        | ErrorCode::UnsupportedVersion
                        | ErrorCode::FrameTooLarge
                        | ErrorCode::UnknownOp
                ));
            }
            Err(other) => prop_assert!(false, "unexpected error class: {}", other),
        }
    }
}

#[test]
fn declared_length_is_checked_against_the_limit_before_allocation() {
    // A 4 GiB declaration against a 1 KiB limit must fail the limit check;
    // no payload buffer may be sized from the field. The header itself
    // still parses, preserving the request id for the error reply.
    let mut bytes = Frame { op: Op::Compress, request_id: 71, payload: vec![] }.encode();
    bytes[14..18].copy_from_slice(&u32::MAX.to_be_bytes());
    let header = parse_header(&bytes).unwrap();
    assert_eq!(header.request_id, 71);
    let err = header.ensure_within(1024).unwrap_err();
    assert!(matches!(err, ServerError::Protocol { code: ErrorCode::FrameTooLarge, .. }), "{err}");
    assert!(matches!(
        Frame::decode(&bytes, 1024),
        Err(ServerError::Protocol { code: ErrorCode::FrameTooLarge, .. })
    ));
}

#[test]
fn version_is_enforced_at_the_header() {
    let mut bytes = Frame { op: Op::Stats, request_id: 1, payload: vec![] }.encode();
    bytes[4] = PROTOCOL_VERSION.wrapping_add(1);
    assert!(matches!(
        parse_header(&bytes),
        Err(ServerError::Protocol { code: ErrorCode::UnsupportedVersion, .. })
    ));
}
