//! Offline stand-in for the subset of the `rand` crate (0.8 API) used by the
//! LWC workspace: a seedable deterministic generator plus `gen_range` over
//! integer and floating-point ranges.
//!
//! The stream is produced by xoshiro256++ seeded through SplitMix64. It is
//! *not* the same stream as the real `rand::rngs::StdRng`; the workspace only
//! relies on determinism per seed, never on the exact values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly distributed over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1], got {p}");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<G: RngCore> Rng for G {}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

/// Types that can be drawn uniformly from a range. The single blanket
/// [`SampleRange`] impl below (mirroring the real `rand`'s structure) is what
/// lets type inference flow from the range literal to the sampled value.
pub trait SampleUniform: Sized {
    /// Uniform draw from the half-open range `[lo, hi)`.
    fn sample_half_open<G: RngCore>(lo: Self, hi: Self, rng: &mut G) -> Self;
    /// Uniform draw from the closed range `[lo, hi]`.
    fn sample_inclusive<G: RngCore>(lo: Self, hi: Self, rng: &mut G) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Maps 64 random bits onto `[0, bound)` with Lemire's multiply-shift
/// reduction (bias is below 2^-64, irrelevant for test workloads).
fn bounded(rng: &mut impl RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore>(lo: Self, hi: Self, rng: &mut G) -> Self {
                assert!(lo < hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + bounded(rng, span) as i128) as $t
            }
            fn sample_inclusive<G: RngCore>(lo: Self, hi: Self, rng: &mut G) -> Self {
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64 domain: use raw bits.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore>(lo: Self, hi: Self, rng: &mut G) -> Self {
                assert!(lo < hi, "cannot sample from an empty range");
                // 53 significant bits mapped to [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (hi - lo) * unit as $t
            }
            fn sample_inclusive<G: RngCore>(lo: Self, hi: Self, rng: &mut G) -> Self {
                // The closed/half-open distinction is immaterial at float
                // resolution; reuse the half-open draw.
                Self::sample_half_open(lo, hi, rng)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Generators shipped with the crate.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { state: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..=4095), b.gen_range(0..=4095));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let sa: Vec<i32> = (0..32).map(|_| a.gen_range(0..1_000_000)).collect();
        let sb: Vec<i32> = (0..32).map(|_| b.gen_range(0..1_000_000)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i32 = rng.gen_range(-300..300);
            assert!((-300..300).contains(&v));
            let w: i32 = rng.gen_range(-6..=6);
            assert!((-6..=6).contains(&w));
            let f: f64 = rng.gen_range(-0.01..0.01);
            assert!((-0.01..0.01).contains(&f));
            let u: usize = rng.gen_range(0..17);
            assert!(u < 17);
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            match rng.gen_range(0..=3) {
                0 => saw_lo = true,
                3 => saw_hi = true,
                _ => {}
            }
        }
        assert!(saw_lo && saw_hi);
    }
}
