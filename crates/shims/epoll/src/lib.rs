//! Offline stand-in for the crates.io [`polling`] crate: readiness
//! multiplexing for nonblocking sockets behind one tiny, portable API.
//!
//! The workspace builds without network access, so instead of depending on
//! `polling`/`mio` this shim vendors the minimal subset the `lwc-server`
//! event loop needs — register a socket under a `usize` key, wait for
//! read/write readiness, wake the waiter from another thread:
//!
//! * **Linux** — `epoll(7)` with an `eventfd(2)` notifier (the production
//!   backend: one syscall returns readiness for thousands of sockets),
//! * **other unix** — `poll(2)` over a registry snapshot with a self-pipe
//!   notifier (portable, fine for hundreds of sockets),
//! * **non-unix** — compiles, and [`Poller::new`] reports `Unsupported` at
//!   runtime (the server's blocking client paths don't need a poller).
//!
//! Semantics are **level-triggered**: a key keeps reporting readable while
//! unread bytes remain buffered, so callers re-arm nothing and simply read
//! until `WouldBlock`. Interest is explicit per direction — register write
//! interest only while a write buffer is nonempty, or every wait returns
//! instantly.
//!
//! On Linux the backend can be forced with `LWC_POLL_BACKEND=poll` (the
//! shim's own tests exercise both). Like every crate under `crates/shims/`,
//! deleting this directory and pointing the workspace dependency back at
//! crates.io restores the real thing; the `unsafe` FFI below is confined to
//! this crate — the rest of the workspace forbids `unsafe` outright.
//!
//! [`polling`]: https://crates.io/crates/polling

#![deny(missing_docs)]

use std::io;
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::io::{AsRawFd, RawFd};

/// Key reserved for the poller's internal notifier; [`Poller::add`] refuses
/// it.
pub const NOTIFY_KEY: usize = usize::MAX;

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The key the source was registered under.
    pub key: usize,
    /// The source is readable (or closed/errored — a read will not block).
    pub readable: bool,
    /// The source is writable (or errored — a write will not block).
    pub writable: bool,
}

/// Something a [`Poller`] can watch. Blanket-implemented for every
/// `AsRawFd` type on unix (sockets, listeners, pipes).
pub trait Source {
    /// The OS handle to register.
    fn raw(&self) -> RawSource;
}

/// The OS-level handle type behind a [`Source`].
#[cfg(unix)]
pub type RawSource = RawFd;
/// The OS-level handle type behind a [`Source`] (unused off unix).
#[cfg(not(unix))]
pub type RawSource = usize;

#[cfg(unix)]
impl<T: AsRawFd> Source for T {
    fn raw(&self) -> RawSource {
        self.as_raw_fd()
    }
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    #[cfg(unix)]
    Poll(pollset::PollSet),
    #[cfg(not(unix))]
    Unsupported,
}

/// A readiness multiplexer: register sources under keys, wait for events.
///
/// All methods take `&self`; the poller is `Sync`, so one thread can sit in
/// [`Poller::wait`] while others [`Poller::notify`] it.
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// Creates a poller on the best backend for this platform.
    ///
    /// # Errors
    ///
    /// Propagates the backend's creation failure; on non-unix platforms
    /// returns `Unsupported`.
    pub fn new() -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            if std::env::var("LWC_POLL_BACKEND").as_deref() == Ok("poll") {
                return Ok(Self { backend: Backend::Poll(pollset::PollSet::new()?) });
            }
            Ok(Self { backend: Backend::Epoll(epoll::Epoll::new()?) })
        }
        #[cfg(all(unix, not(target_os = "linux")))]
        {
            Ok(Self { backend: Backend::Poll(pollset::PollSet::new()?) })
        }
        #[cfg(not(unix))]
        {
            Err(io::Error::new(io::ErrorKind::Unsupported, "no readiness backend on this platform"))
        }
    }

    /// The name of the active backend (`"epoll"` or `"poll"`).
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => "epoll",
            #[cfg(unix)]
            Backend::Poll(_) => "poll",
            #[cfg(not(unix))]
            Backend::Unsupported => "unsupported",
        }
    }

    /// Registers `source` under `key` with the given interest. The source
    /// must already be in nonblocking mode and stay alive until
    /// [`Poller::delete`].
    ///
    /// # Errors
    ///
    /// Fails if the source is already registered, the key is
    /// [`NOTIFY_KEY`], or the backend syscall fails.
    pub fn add(
        &self,
        source: &impl Source,
        key: usize,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        if key == NOTIFY_KEY {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "key is reserved"));
        }
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.add(source.raw(), key, readable, writable),
            #[cfg(unix)]
            Backend::Poll(ps) => ps.add(source.raw(), key, readable, writable),
            #[cfg(not(unix))]
            Backend::Unsupported => unreachable!("Poller::new refused construction"),
        }
    }

    /// Replaces the interest of an already-registered source.
    ///
    /// # Errors
    ///
    /// Fails if the source is not registered or the backend syscall fails.
    pub fn modify(
        &self,
        source: &impl Source,
        key: usize,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.modify(source.raw(), key, readable, writable),
            #[cfg(unix)]
            Backend::Poll(ps) => ps.modify(source.raw(), key, readable, writable),
            #[cfg(not(unix))]
            Backend::Unsupported => unreachable!("Poller::new refused construction"),
        }
    }

    /// Unregisters a source. Call before closing the descriptor.
    ///
    /// # Errors
    ///
    /// Fails if the source is not registered or the backend syscall fails.
    pub fn delete(&self, source: &impl Source) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.delete(source.raw()),
            #[cfg(unix)]
            Backend::Poll(ps) => ps.delete(source.raw()),
            #[cfg(not(unix))]
            Backend::Unsupported => unreachable!("Poller::new refused construction"),
        }
    }

    /// Blocks until at least one source is ready, the timeout elapses, or
    /// [`Poller::notify`] is called; ready events are appended to `events`
    /// (cleared first). A notification wakes the wait but adds no event.
    /// Returns the number of events delivered (0 on timeout/notify).
    ///
    /// # Errors
    ///
    /// Propagates backend syscall failures; `EINTR` is treated as a wake
    /// with no events, not an error.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.wait(events, timeout),
            #[cfg(unix)]
            Backend::Poll(ps) => ps.wait(events, timeout),
            #[cfg(not(unix))]
            Backend::Unsupported => unreachable!("Poller::new refused construction"),
        }
    }

    /// Wakes a thread blocked in [`Poller::wait`] from any other thread.
    /// Notifications don't accumulate: many notifies before one wait wake
    /// it once.
    ///
    /// # Errors
    ///
    /// Propagates the backend's write failure.
    pub fn notify(&self) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.notify(),
            #[cfg(unix)]
            Backend::Poll(ps) => ps.notify(),
            #[cfg(not(unix))]
            Backend::Unsupported => unreachable!("Poller::new refused construction"),
        }
    }
}

/// Clamps a wait timeout to whole milliseconds for the syscalls, rounding
/// up so a short positive timeout never becomes a busy-spin 0.
#[cfg(unix)]
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) if d.is_zero() => 0,
        Some(d) => u128::max(1, d.as_millis()).min(i32::MAX as u128) as i32,
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    //! The Linux backend: `epoll(7)` + `eventfd(2)`.

    use super::{timeout_ms, Event, NOTIFY_KEY};
    use std::io;
    use std::os::raw::{c_int, c_uint, c_void};
    use std::time::Duration;

    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_NONBLOCK: c_int = 0o4000;
    const EFD_CLOEXEC: c_int = 0o2000000;

    /// Most events one `epoll_wait` call delivers; more simply arrive on
    /// the next call (level-triggered readiness is not lost).
    const WAIT_BATCH: usize = 256;

    fn interest_bits(readable: bool, writable: bool) -> u32 {
        let mut bits = EPOLLRDHUP;
        if readable {
            bits |= EPOLLIN;
        }
        if writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    fn check(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub(crate) struct Epoll {
        epfd: c_int,
        wake_fd: c_int,
    }

    impl Epoll {
        pub fn new() -> io::Result<Self> {
            let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let wake_fd = match check(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) }) {
                Ok(fd) => fd,
                Err(e) => {
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let poller = Self { epfd, wake_fd };
            poller.ctl(EPOLL_CTL_ADD, wake_fd, EPOLLIN, NOTIFY_KEY as u64)?;
            Ok(poller)
        }

        fn ctl(&self, op: c_int, fd: c_int, events: u32, data: u64) -> io::Result<()> {
            let mut event = EpollEvent { events, data };
            check(unsafe { epoll_ctl(self.epfd, op, fd, &mut event) })?;
            Ok(())
        }

        pub fn add(&self, fd: c_int, key: usize, readable: bool, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest_bits(readable, writable), key as u64)
        }

        pub fn modify(
            &self,
            fd: c_int,
            key: usize,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest_bits(readable, writable), key as u64)
        }

        pub fn delete(&self, fd: c_int) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
            let n = unsafe {
                epoll_wait(self.epfd, buf.as_mut_ptr(), WAIT_BATCH as c_int, timeout_ms(timeout))
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            for ev in &buf[..n as usize] {
                let (bits, data) = (ev.events, ev.data);
                if data == NOTIFY_KEY as u64 {
                    // Drain the eventfd so the next notify wakes again.
                    let mut scratch = 0u64;
                    unsafe { read(self.wake_fd, (&mut scratch as *mut u64).cast(), 8) };
                    continue;
                }
                out.push(Event {
                    key: data as usize,
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(out.len())
        }

        pub fn notify(&self) -> io::Result<()> {
            let one = 1u64;
            let ret = unsafe { write(self.wake_fd, (&one as *const u64).cast(), 8) };
            // A full (already-signalled) eventfd means a wake is pending —
            // that's exactly what the caller wanted.
            if ret < 0 {
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::WouldBlock {
                    return Err(err);
                }
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe {
                close(self.wake_fd);
                close(self.epfd);
            }
        }
    }
}

#[cfg(unix)]
mod pollset {
    //! The portable unix backend: `poll(2)` over a registry snapshot, with
    //! a self-pipe notifier.

    use super::{timeout_ms, Event};
    use std::collections::HashMap;
    use std::io;
    use std::os::raw::{c_int, c_short, c_void};
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    #[cfg(target_os = "linux")]
    type Nfds = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type Nfds = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: Nfds, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    const F_SETFL: c_int = 4;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: c_int = 0x4;
    const POLLIN: c_short = 0x1;
    const POLLOUT: c_short = 0x4;
    const POLLERR: c_short = 0x8;
    const POLLHUP: c_short = 0x10;

    struct Interest {
        key: usize,
        readable: bool,
        writable: bool,
    }

    pub(crate) struct PollSet {
        registry: Mutex<HashMap<RawFd, Interest>>,
        wake_read: c_int,
        wake_write: c_int,
    }

    impl PollSet {
        pub fn new() -> io::Result<Self> {
            let mut fds = [0 as c_int; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) };
            }
            Ok(Self { registry: Mutex::new(HashMap::new()), wake_read: fds[0], wake_write: fds[1] })
        }

        pub fn add(&self, fd: RawFd, key: usize, readable: bool, writable: bool) -> io::Result<()> {
            let mut registry = self.registry.lock().expect("poisoned");
            if registry.contains_key(&fd) {
                return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
            }
            registry.insert(fd, Interest { key, readable, writable });
            Ok(())
        }

        pub fn modify(
            &self,
            fd: RawFd,
            key: usize,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            let mut registry = self.registry.lock().expect("poisoned");
            let interest = registry
                .get_mut(&fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            *interest = Interest { key, readable, writable };
            Ok(())
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.registry
                .lock()
                .expect("poisoned")
                .remove(&fd)
                .map(|_| ())
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            // Snapshot under the lock, poll outside it: registrations made
            // while we sleep take effect on the next wait (callers wanting
            // them sooner call notify, same as with epoll).
            let mut fds = vec![PollFd { fd: self.wake_read, events: POLLIN, revents: 0 }];
            let mut keys = vec![usize::MAX];
            {
                let registry = self.registry.lock().expect("poisoned");
                for (fd, interest) in registry.iter() {
                    let mut events = 0 as c_short;
                    if interest.readable {
                        events |= POLLIN;
                    }
                    if interest.writable {
                        events |= POLLOUT;
                    }
                    fds.push(PollFd { fd: *fd, events, revents: 0 });
                    keys.push(interest.key);
                }
            }
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout_ms(timeout)) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            if fds[0].revents != 0 {
                // Drain every pending notify byte in one gulp.
                let mut sink = [0u8; 64];
                while unsafe { read(self.wake_read, sink.as_mut_ptr().cast(), sink.len()) } > 0 {}
            }
            for (slot, key) in fds.iter().zip(&keys).skip(1) {
                if slot.revents == 0 {
                    continue;
                }
                out.push(Event {
                    key: *key,
                    readable: slot.revents & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: slot.revents & (POLLOUT | POLLERR | POLLHUP) != 0,
                });
            }
            Ok(out.len())
        }

        pub fn notify(&self) -> io::Result<()> {
            let one = 1u8;
            let ret = unsafe { write(self.wake_write, (&one as *const u8).cast(), 1) };
            if ret < 0 {
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::WouldBlock {
                    return Err(err);
                }
            }
            Ok(())
        }
    }

    impl Drop for PollSet {
        fn drop(&mut self) {
            unsafe {
                close(self.wake_read);
                close(self.wake_write);
            }
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;
    use std::time::Instant;

    fn pollers() -> Vec<Poller> {
        #[cfg(target_os = "linux")]
        {
            std::env::set_var("LWC_POLL_BACKEND", "poll");
            let forced = Poller::new().unwrap();
            std::env::remove_var("LWC_POLL_BACKEND");
            let default = Poller::new().unwrap();
            assert_eq!(forced.backend_name(), "poll");
            assert_eq!(default.backend_name(), "epoll");
            vec![default, forced]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![Poller::new().unwrap()]
        }
    }

    #[test]
    fn sockets_report_readable_when_bytes_arrive() {
        for poller in pollers() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            poller.add(&server, 7, true, false).unwrap();

            let mut events = Vec::new();
            // Nothing pending: a short wait times out with no events.
            let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
            assert_eq!(n, 0, "{}", poller.backend_name());

            client.write_all(b"ping").unwrap();
            let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1, "{}", poller.backend_name());
            assert_eq!(events[0], Event { key: 7, readable: true, writable: false });

            // Level-triggered: still readable until the bytes are consumed.
            let n = poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
            assert_eq!(n, 1);
            let mut sink = [0u8; 16];
            let mut server = server;
            assert_eq!(server.read(&mut sink).unwrap(), 4);
            poller.delete(&server).unwrap();
        }
    }

    #[test]
    fn write_interest_is_explicit_and_modifiable() {
        for poller in pollers() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            // Read-only interest on an idle socket: no events.
            poller.add(&server, 3, true, false).unwrap();
            let mut events = Vec::new();
            assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap(), 0);
            // Adding write interest makes the idle socket immediately ready.
            poller.modify(&server, 3, true, true).unwrap();
            assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap(), 1);
            assert!(events[0].writable);
            poller.delete(&server).unwrap();
            assert!(poller.delete(&server).is_err(), "double delete is an error");
        }
    }

    #[test]
    fn notify_wakes_a_waiter_across_threads() {
        for poller in pollers() {
            let poller = Arc::new(poller);
            let waker = {
                let poller = Arc::clone(&poller);
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(30));
                    poller.notify().unwrap();
                })
            };
            let mut events = Vec::new();
            let start = Instant::now();
            let n = poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
            assert_eq!(n, 0, "notify wakes without events");
            assert!(start.elapsed() < Duration::from_secs(5), "woke early, not by timeout");
            waker.join().unwrap();
            // Coalesced notifies wake exactly once; a drained poller sleeps.
            poller.notify().unwrap();
            poller.notify().unwrap();
            assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap(), 0);
            assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap(), 0);
        }
    }

    #[test]
    fn reserved_key_is_refused() {
        for poller in pollers() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            assert!(poller.add(&listener, NOTIFY_KEY, true, false).is_err());
        }
    }
}
