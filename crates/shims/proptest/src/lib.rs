//! Offline stand-in for the subset of the `proptest` crate used by the LWC
//! workspace's property tests.
//!
//! Supported surface: the `proptest!` macro with `arg in strategy` bindings
//! and an optional `#![proptest_config(...)]` header, range strategies over
//! integers and floats, `prop::collection::vec`, `any::<T>()`, and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Unlike the real proptest there is **no shrinking** and no persistent
//! failure file: each test simply runs its body over a deterministic,
//! seed-derived sequence of random cases (so failures are reproducible run
//! to run). That is enough for the invariants exercised here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases every test body is run with.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values for one macro binding.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + Copy> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one value from the type's entire domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (stand-in for `proptest::arbitrary::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { marker: std::marker::PhantomData }
}

/// Strategy combinators namespaced like the real crate (`prop::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with random length and random elements.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing vectors whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Error raised by the `prop_assert*` macros; carries the failure message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives one property test: `run` is called `config.cases` times with a
/// deterministic, case-indexed generator. Called by the `proptest!` macro.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first case whose body
/// returns an error.
pub fn run_cases(name: &str, config: &ProptestConfig, run: impl Fn(&mut StdRng) -> TestCaseResult) {
    // Stable per-test seed: failures reproduce run to run.
    let base =
        name.bytes().fold(0xC0FF_EE00_5EED_1234u64, |acc, b| acc.rotate_left(7) ^ u64::from(b));
    for case in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(base ^ (u64::from(case) << 32));
        if let Err(TestCaseError(message)) = run(&mut rng) {
            panic!("property '{name}' failed on case {case}: {message}");
        }
    }
}

/// Declares property tests: each function body is run over many random cases
/// with its arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config ($config) $($rest)*);
    };
    (@config ($config:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $(let $arg = $strategy;)*
                // Shadowed names: above, the strategies; below, the values.
                #[allow(unused_parens)]
                let strategies = ($(&$arg),*);
                $crate::run_cases(stringify!($name), &config, |rng| {
                    #[allow(unused_parens)]
                    let ($($arg),*) = strategies;
                    $(let $arg = $crate::Strategy::generate($arg, rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, reporting the failing case
/// instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// One-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, TestCaseError, TestCaseResult};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(v in 10i32..20, w in 0u64..=5) {
            prop_assert!((10..20).contains(&v));
            prop_assert!(w <= 5);
        }

        #[test]
        fn vectors_respect_bounds(values in prop::collection::vec(-3i32..3, 1..10)) {
            prop_assert!(!values.is_empty() && values.len() < 10);
            prop_assert!(values.iter().all(|v| (-3..3).contains(v)));
        }

        #[test]
        fn any_produces_values(v in any::<i32>()) {
            let roundtrip = i64::from(v);
            prop_assert_eq!(roundtrip as i32, v);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(v in 0usize..3) {
            prop_assert!(v < 3);
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failures_panic_with_case_number() {
        crate::run_cases("always_fails", &ProptestConfig::with_cases(1), |_| {
            Err(TestCaseError("nope".into()))
        });
    }
}
