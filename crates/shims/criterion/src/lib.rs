//! Offline stand-in for the subset of the `criterion` crate (0.5 API) used by
//! the benches in `crates/bench`.
//!
//! It is a deliberately small wall-clock harness: each benchmark runs a short
//! warm-up, then a fixed number of timed samples, and the mean time per
//! iteration (plus derived throughput, when declared) is printed to stdout.
//! There is no statistical analysis, outlier detection or HTML report — the
//! point is that `cargo bench` compiles and runs the same sources that the
//! real Criterion would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group: a function name, a parameter,
/// or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        Self { id: format!("{function}/{parameter}") }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(value: &str) -> Self {
        Self { id: value.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(value: String) -> Self {
        Self { id: value }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Declared per-iteration volume, used to print derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// Same as [`Throughput::Bytes`] but reported in decimal multiples.
    BytesDecimal(u64),
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Mean nanoseconds per iteration measured by the last `iter` call.
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean nanoseconds per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Measurement: as many iterations as fit the measurement window,
        // clamped to a sane range.
        let iters = if per_iter > 0.0 {
            (self.measurement_time.as_secs_f64() / per_iter).ceil() as u64
        } else {
            1_000
        }
        .clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let mut line = format!("{name:<48} time: [{}]", human_time(mean_ns));
    if let Some(tp) = throughput {
        let per_second = move |volume: u64| volume as f64 / (mean_ns / 1e9);
        match tp {
            Throughput::Bytes(b) | Throughput::BytesDecimal(b) => {
                line.push_str(&format!(" thrpt: [{:.2} MiB/s]", per_second(b) / (1024.0 * 1024.0)));
            }
            Throughput::Elements(e) => {
                line.push_str(&format!(" thrpt: [{:.2} Melem/s]", per_second(e) / 1e6));
            }
        }
    }
    println!("{line}");
}

/// The benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(400),
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the warm-up window per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the measurement window per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement_time = duration;
        self
    }

    /// Accepted for API compatibility; this harness reports a single mean, so
    /// the sample count has no effect.
    #[must_use]
    pub fn sample_size(self, _samples: usize) -> Self {
        self
    }

    /// Applies command-line arguments: the first non-flag argument is kept as
    /// a substring filter on benchmark names; flags (including the `--bench`
    /// marker Cargo appends) are ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') && self.filter.is_none() {
                self.filter = Some(arg);
            }
        }
        self
    }

    fn enabled(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn bencher(&self) -> Bencher {
        Bencher {
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            mean_ns: f64::NAN,
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut routine: F,
    ) -> &mut Self {
        if self.enabled(name) {
            let mut bencher = self.bencher();
            routine(&mut bencher);
            report(name, bencher.mean_ns, None);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_owned(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput
/// declaration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; see [`Criterion::sample_size`].
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the measurement window for benchmarks in this group.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.criterion.measurement_time = duration;
        self
    }

    /// Declares the per-iteration data volume for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark of this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut routine: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into());
        if self.criterion.enabled(&name) {
            let mut bencher = self.criterion.bencher();
            routine(&mut bencher);
            report(&name, bencher.mean_ns, self.throughput);
        }
        self
    }

    /// Runs one benchmark of this group with a borrowed input value.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut routine: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into());
        if self.criterion.enabled(&name) {
            let mut bencher = self.criterion.bencher();
            routine(&mut bencher, input);
            report(&name, bencher.mean_ns, self.throughput);
        }
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Re-export of the standard black box, matching `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions, optionally with a shared
/// configuration expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grouped");
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
