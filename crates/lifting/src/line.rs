//! Line-based fused multi-scale 5/3 transform: the whole pyramid in one
//! streaming pass over the image.
//!
//! [`crate::Lifting53`] makes a full pass over the active region per scale
//! (a row pass, then a column pass), so a deep decomposition re-reads the
//! LL band from memory once per level. This module implements the scheduling
//! the hardware world uses instead (PAPERS.md, *"Area and Throughput
//! Trade-Offs in the Design of Pipelined Discrete Wavelet Transform
//! Architectures"*): **line-based** evaluation, where each level keeps a
//! bounded ring of line buffers and level `n + 1` consumes LL rows as level
//! `n` emits them. Rows flow from the input straight up the level cascade in
//! a single pass, with an `O(width x levels)` working set instead of
//! `O(pixels)`.
//!
//! The 5/3 lifting steps make this cheap: the vertical predict for detail
//! row `k` needs horizontally-transformed rows `2k`, `2k + 1` and `2k + 2`,
//! and the vertical update for approximation row `k` needs detail rows
//! `k - 1` and `k`, so a ring of about six rows per level covers the filter
//! support including the symmetric (mirror) boundary taps. The ragged
//! `ceil(n / 2)` pyramid of [`crate::geometry`] is handled exactly like the
//! multi-pass driver: one-sample dimensions pass through, odd dimensions
//! mirror at the tail.
//!
//! Every emitted coefficient is computed by the *same integer formulas* as
//! [`crate::Lifting53::forward`], so the output is **bit-identical** to the
//! multi-pass driver — the workspace property tests diff the two across
//! random odd/prime dimensions and depths, and the multi-pass transform
//! stays in-tree as the reference.

use crate::geometry::{band_rect, scaled_dim};
use crate::lifting1d::{approx_len, detail_len, forward_53_into, mirror};
use crate::transform::LiftingCoefficients;
use crate::LiftingError;
use lwc_image::ImageView;
use std::collections::VecDeque;

/// One row of subband coefficients emitted by [`LineDwt53`].
///
/// `band` follows the workspace convention (0 = approximation, 1 =
/// horizontal detail, 2 = vertical detail, 3 = diagonal detail); `y` is the
/// row inside the subband's rectangle (see [`crate::geometry::band_rect`]).
/// Rows of each subband are emitted top to bottom; the approximation band is
/// emitted only at the deepest scale. Detail rows of a dimension that has
/// contracted to one sample are empty slices.
#[derive(Debug)]
pub struct CoeffRow<'a> {
    /// Scale of the subband, `1..=scales`.
    pub scale: u32,
    /// Band index, `0..=3`.
    pub band: usize,
    /// Row inside the subband rectangle.
    pub y: usize,
    /// The coefficient row, left to right.
    pub samples: &'a [i32],
}

/// Per-level state of the line cascade: a ring of horizontally transformed
/// rows plus the last few vertical detail rows, sized by the 5/3 filter
/// support (not the image height).
#[derive(Debug)]
struct Level {
    /// 1-based scale this level produces.
    scale: u32,
    /// Active region entering this level.
    w: usize,
    h: usize,
    /// Horizontal split of a transformed row: `[approx | detail]`.
    a_w: usize,
    /// Vertical output counts.
    a_h: usize,
    d_h: usize,
    /// Ring of horizontally transformed rows; `rows[0]` has absolute row
    /// index `rows_start`.
    rows: VecDeque<Vec<i32>>,
    rows_start: usize,
    rows_in: usize,
    /// Recent vertical detail rows; `details[0]` has index `details_start`.
    details: VecDeque<Vec<i32>>,
    details_start: usize,
    next_detail: usize,
    next_approx: usize,
    flushed: bool,
    /// Recycled row buffers (the ring never allocates in steady state).
    spare: Vec<Vec<i32>>,
}

impl Level {
    fn new(scale: u32, w: usize, h: usize) -> Self {
        Self {
            scale,
            w,
            h,
            a_w: approx_len(w),
            a_h: approx_len(h),
            d_h: detail_len(h),
            rows: VecDeque::new(),
            rows_start: 0,
            rows_in: 0,
            details: VecDeque::new(),
            details_start: 0,
            next_detail: 0,
            next_approx: 0,
            flushed: false,
            spare: Vec::new(),
        }
    }

    fn row(&self, index: usize) -> &[i32] {
        &self.rows[index - self.rows_start]
    }

    fn detail(&self, index: usize) -> &[i32] {
        &self.details[index - self.details_start]
    }

    fn take_buf(&mut self) -> Vec<i32> {
        let mut buf = self.spare.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Receives one input row: applies the horizontal lifting step (identical
    /// to the multi-pass row pass) and appends the `[approx | detail]` row to
    /// the ring.
    fn receive(&mut self, src: &[i32]) {
        debug_assert_eq!(src.len(), self.w);
        let mut buf = self.take_buf();
        buf.resize(self.w, 0);
        if self.w >= 2 {
            let (a, d) = buf.split_at_mut(self.a_w);
            forward_53_into(src, a, d);
        } else {
            buf.copy_from_slice(src);
        }
        self.rows.push_back(buf);
        self.rows_in += 1;
    }

    /// Computes every vertical output whose dependencies are satisfied,
    /// emitting detail rows (bands 2/3) and horizontal-detail rows (band 1)
    /// and pushing LL rows either up the cascade (`out`) or out as the
    /// deepest approximation (band 0) when `is_top`.
    fn pump(
        &mut self,
        is_top: bool,
        out: &mut Vec<Vec<i32>>,
        pool: &mut Vec<Vec<i32>>,
        emit: &mut dyn FnMut(CoeffRow<'_>),
    ) {
        if self.h == 1 {
            // No vertical pass (exactly like the multi-pass driver): the
            // single horizontally transformed row is approximation row 0.
            if self.next_approx == 0 && self.rows_in == 1 {
                let row = &self.rows[0];
                emit(CoeffRow { scale: self.scale, band: 1, y: 0, samples: &row[self.a_w..] });
                if is_top {
                    emit(CoeffRow { scale: self.scale, band: 0, y: 0, samples: &row[..self.a_w] });
                } else {
                    let mut ll = pool.pop().unwrap_or_default();
                    ll.clear();
                    ll.extend_from_slice(&row[..self.a_w]);
                    out.push(ll);
                }
                self.next_approx = 1;
            }
            return;
        }
        loop {
            let mut progressed = false;
            if self.try_detail(emit) {
                progressed = true;
            }
            if self.try_approx(is_top, out, pool, emit) {
                progressed = true;
            }
            if !progressed {
                break;
            }
            self.trim();
        }
    }

    /// Vertical predict for detail row `next_detail`, if its rows are in.
    fn try_detail(&mut self, emit: &mut dyn FnMut(CoeffRow<'_>)) -> bool {
        let k = self.next_detail;
        if k >= self.d_h {
            return false;
        }
        let interior = 2 * k + 2 < self.h;
        if interior && self.rows_in <= 2 * k + 2 {
            return false;
        }
        if !interior && !self.flushed {
            // Even-height mirror tail: needs the last row, i.e. end of input.
            return false;
        }
        let mut buf = self.take_buf();
        {
            let r0 = self.row(2 * k);
            let r1 = self.row(2 * k + 1);
            let r2 = if interior {
                self.row(2 * k + 2)
            } else {
                // The right even neighbour is mirrored in even-subsequence
                // index space, exactly as in `forward_53`.
                let m = mirror(k as i64 + 1, self.a_h as i64) as usize;
                self.row(2 * m)
            };
            buf.extend(r1.iter().zip(r0.iter().zip(r2)).map(|(&odd, (&left, &right))| {
                let predicted = (left as i64 + right as i64) >> 1;
                (odd as i64 - predicted) as i32
            }));
        }
        emit(CoeffRow { scale: self.scale, band: 2, y: k, samples: &buf[..self.a_w] });
        emit(CoeffRow { scale: self.scale, band: 3, y: k, samples: &buf[self.a_w..] });
        self.details.push_back(buf);
        self.next_detail += 1;
        true
    }

    /// Vertical update for approximation row `next_approx`, if its detail
    /// rows are computed.
    fn try_approx(
        &mut self,
        is_top: bool,
        out: &mut Vec<Vec<i32>>,
        pool: &mut Vec<Vec<i32>>,
        emit: &mut dyn FnMut(CoeffRow<'_>),
    ) -> bool {
        let j = self.next_approx;
        if j >= self.a_h {
            return false;
        }
        let ready = if j == 0 {
            // Needs d(-1) and d(0): d(-1) mirrors to detail row 1 when it
            // exists, else row 0.
            self.next_detail >= 2.min(self.d_h)
        } else if j < self.d_h {
            self.next_detail > j
        } else {
            // Odd-height tail: both taps mirror into already-computed rows,
            // but only once every detail row exists.
            self.next_detail == self.d_h
        };
        if !ready {
            return false;
        }
        let mut buf = self.take_buf();
        {
            let (dm1, d0) = if j == 0 {
                (self.detail(1.min(self.d_h - 1)), self.detail(0))
            } else if j < self.d_h {
                (self.detail(j - 1), self.detail(j))
            } else {
                let m = mirror(j as i64, self.d_h as i64) as usize;
                (self.detail(j - 1), self.detail(m))
            };
            let r = self.row(2 * j);
            buf.extend(r.iter().zip(dm1.iter().zip(d0)).map(|(&even, (&a, &b))| {
                let update = (a as i64 + b as i64 + 2) >> 2;
                (even as i64 + update) as i32
            }));
        }
        emit(CoeffRow { scale: self.scale, band: 1, y: j, samples: &buf[self.a_w..] });
        if is_top {
            emit(CoeffRow { scale: self.scale, band: 0, y: j, samples: &buf[..self.a_w] });
        } else {
            let mut ll = pool.pop().unwrap_or_default();
            ll.clear();
            ll.extend_from_slice(&buf[..self.a_w]);
            out.push(ll);
        }
        self.spare.push(buf);
        self.next_approx += 1;
        true
    }

    /// Drops ring entries no future output can reference. The retention
    /// bounds are the filter support: approximation row `j` reads input row
    /// `2j` and detail rows `j - 2..=j`; the even-height mirror tail reads
    /// input row `2 * next_detail - 2`.
    fn trim(&mut self) {
        let keep_rows = (2 * self.next_approx).min((2 * self.next_detail).saturating_sub(2));
        while self.rows_start < keep_rows {
            let buf = self.rows.pop_front().expect("retention keeps rows_start in range");
            self.spare.push(buf);
            self.rows_start += 1;
        }
        let keep_details = self.next_approx.saturating_sub(2);
        while self.details_start < keep_details {
            let buf = self.details.pop_front().expect("retention keeps details_start in range");
            self.spare.push(buf);
            self.details_start += 1;
        }
    }

    fn buffered_samples(&self) -> usize {
        self.rows.iter().map(Vec::len).sum::<usize>()
            + self.details.iter().map(Vec::len).sum::<usize>()
            + self.spare.iter().map(|b| b.capacity()).sum::<usize>()
    }
}

/// Line-based fused forward 5/3 transform: push rows in with
/// [`LineDwt53::push_row`], receive subband coefficient rows through a
/// callback, and call [`LineDwt53::finish`] after the last row.
///
/// The engine is bit-identical to [`crate::Lifting53::forward`] on every
/// image geometry (any dimensions, any depth) while holding only
/// `O(width x levels)` samples — see the module documentation for the
/// scheduling and the ring-buffer sizing.
///
/// ```
/// use lwc_image::synth;
/// use lwc_lifting::{Lifting53, LineDwt53};
///
/// # fn main() -> Result<(), lwc_lifting::LiftingError> {
/// let image = synth::mr_slice(37, 53, 12, 1); // ragged odd dimensions
/// let fused = LineDwt53::forward_view(&image.view(), 3)?;
/// let multi_pass = Lifting53::new(3)?.forward(&image)?;
/// assert_eq!(fused, multi_pass); // bit-identical, one pass over memory
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LineDwt53 {
    width: usize,
    height: usize,
    scales: u32,
    levels: Vec<Level>,
    rows_in: usize,
    finished: bool,
    /// Recycled LL row buffers passed between cascade levels.
    pool: Vec<Vec<i32>>,
}

impl LineDwt53 {
    /// Creates a streaming transform for a `width x height` image.
    ///
    /// # Errors
    ///
    /// Returns [`LiftingError::NoScales`] for zero scales and
    /// [`LiftingError::ConfigurationMismatch`] for zero dimensions.
    pub fn new(width: usize, height: usize, scales: u32) -> Result<Self, LiftingError> {
        if scales == 0 {
            return Err(LiftingError::NoScales);
        }
        if width == 0 || height == 0 {
            return Err(LiftingError::ConfigurationMismatch(format!(
                "line transform needs nonzero dimensions, got {width}x{height}"
            )));
        }
        let levels = (0..scales)
            .map(|l| Level::new(l + 1, scaled_dim(width, l), scaled_dim(height, l)))
            .collect();
        Ok(Self { width, height, scales, levels, rows_in: 0, finished: false, pool: Vec::new() })
    }

    /// Image width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Decomposition depth.
    #[must_use]
    pub fn scales(&self) -> u32 {
        self.scales
    }

    /// Rows pushed so far.
    #[must_use]
    pub fn rows_pushed(&self) -> usize {
        self.rows_in
    }

    /// Samples currently buffered across every level's ring (including
    /// recycled spares) — the engine's coefficient working set. Bounded by
    /// the filter support times the level widths, independent of the image
    /// height; the streaming smoke test asserts the bound on a 4096² frame.
    #[must_use]
    pub fn working_set_samples(&self) -> usize {
        self.levels.iter().map(Level::buffered_samples).sum::<usize>()
            + self.pool.iter().map(|b| b.capacity()).sum::<usize>()
    }

    /// Pushes the next image row (top to bottom), emitting every coefficient
    /// row that becomes computable anywhere in the cascade.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the image width, if more than
    /// `height` rows are pushed, or after [`LineDwt53::finish`].
    pub fn push_row(&mut self, row: &[i32], emit: &mut dyn FnMut(CoeffRow<'_>)) {
        assert!(!self.finished, "push_row called after finish");
        assert_eq!(row.len(), self.width, "row length must equal the image width");
        assert!(self.rows_in < self.height, "more rows pushed than the image height");
        self.rows_in += 1;
        self.levels[0].receive(row);
        self.run_levels(false, emit);
    }

    /// Flushes the cascade after the last row, emitting every remaining
    /// boundary output level by level.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `height` rows were pushed or on a second call.
    pub fn finish(&mut self, emit: &mut dyn FnMut(CoeffRow<'_>)) {
        assert!(!self.finished, "finish called twice");
        assert_eq!(self.rows_in, self.height, "finish called before every row was pushed");
        self.finished = true;
        self.run_levels(true, emit);
        debug_assert!(
            self.levels.iter().all(|l| l.next_approx == l.a_h && l.next_detail == l.d_h),
            "flush must drain every level"
        );
    }

    /// One cascade sweep: feed each level the LL rows the level below
    /// released, then pump it. With `flush` set, levels are flushed bottom-up
    /// so boundary tails propagate in one sweep.
    fn run_levels(&mut self, flush: bool, emit: &mut dyn FnMut(CoeffRow<'_>)) {
        let mut inputs: Vec<Vec<i32>> = Vec::new();
        let mut outputs: Vec<Vec<i32>> = Vec::new();
        let level_count = self.levels.len();
        for li in 0..level_count {
            let is_top = li + 1 == level_count;
            let level = &mut self.levels[li];
            for buf in inputs.drain(..) {
                level.receive(&buf);
                self.pool.push(buf);
            }
            if flush {
                level.flushed = true;
            }
            level.pump(is_top, &mut outputs, &mut self.pool, emit);
            std::mem::swap(&mut inputs, &mut outputs);
        }
        // The top level emits band 0 instead of cascading.
        debug_assert!(inputs.is_empty() && outputs.is_empty());
    }

    /// Convenience driver: runs the whole view through the streaming engine
    /// and assembles the Mallat layout — the exact product of
    /// [`crate::Lifting53::forward_view`], used by the bit-identity tests
    /// and benches. Streaming consumers use [`LineDwt53::push_row`] instead
    /// and never materialize the full coefficient frame.
    ///
    /// # Errors
    ///
    /// See [`LineDwt53::new`].
    pub fn forward_view(
        view: &ImageView<'_>,
        scales: u32,
    ) -> Result<LiftingCoefficients, LiftingError> {
        let width = view.width();
        let height = view.height();
        let mut engine = Self::new(width, height, scales)?;
        let mut data = vec![0i32; width * height];
        let mut sink = |c: CoeffRow<'_>| {
            let rect = band_rect(width, height, c.scale, c.band);
            debug_assert_eq!(c.samples.len(), rect.width);
            let start = (rect.y + c.y) * width + rect.x;
            data[start..start + c.samples.len()].copy_from_slice(c.samples);
        };
        for y in 0..height {
            engine.push_row(view.row(y), &mut sink);
        }
        engine.finish(&mut sink);
        LiftingCoefficients::from_raw(data, width, height, scales, view.bit_depth())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lifting53;
    use lwc_image::synth;

    #[test]
    fn fused_matches_multi_pass_across_geometries() {
        for (w, h) in [
            (1usize, 1usize),
            (1, 17),
            (17, 1),
            (2, 2),
            (2, 5),
            (5, 2),
            (3, 3),
            (4, 4),
            (7, 11),
            (37, 53),
            (64, 64),
            (101, 63),
            (64, 37),
        ] {
            for scales in [1u32, 2, 3, 5] {
                let image = synth::random_image(w, h, 12, (w * 1000 + h) as u64 + scales as u64);
                let fused = LineDwt53::forward_view(&image.view(), scales).unwrap();
                let multi = Lifting53::new(scales).unwrap().forward(&image).unwrap();
                assert_eq!(fused, multi, "{w}x{h} at {scales} scales");
            }
        }
    }

    #[test]
    fn emission_is_in_order_and_complete_per_band() {
        let image = synth::ct_phantom(45, 29, 12, 3);
        let scales = 3u32;
        let mut engine = LineDwt53::new(45, 29, scales).unwrap();
        let mut next_y = std::collections::HashMap::new();
        let mut emitted = 0usize;
        let mut sink = |c: CoeffRow<'_>| {
            let expected = next_y.entry((c.scale, c.band)).or_insert(0usize);
            assert_eq!(c.y, *expected, "band ({}, {}) out of order", c.scale, c.band);
            *expected += 1;
            emitted += c.samples.len();
        };
        for y in 0..29 {
            engine.push_row(image.view().row(y), &mut sink);
        }
        engine.finish(&mut sink);
        assert_eq!(emitted, 45 * 29, "every pixel position maps to one coefficient");
        for ((scale, band), rows) in next_y {
            let rect = band_rect(45, 29, scale, band);
            assert_eq!(rows, rect.height, "band ({scale}, {band}) incomplete");
        }
    }

    #[test]
    fn working_set_is_bounded_by_width_not_height() {
        let (w, h, scales) = (128usize, 512usize, 4u32);
        let image = synth::mr_slice(w, h, 12, 7);
        let mut engine = LineDwt53::new(w, h, scales).unwrap();
        let mut peak = 0usize;
        let mut sink = |_c: CoeffRow<'_>| {};
        for y in 0..h {
            engine.push_row(image.view().row(y), &mut sink);
            peak = peak.max(engine.working_set_samples());
        }
        engine.finish(&mut sink);
        peak = peak.max(engine.working_set_samples());
        // Sum of level widths is < 2w; each level holds a constant number of
        // rows (ring + details + spares), far below the pixel count.
        assert!(peak <= 64 * w * scales as usize, "peak {peak}");
        assert!(peak < w * h / 4, "peak {peak} not far below the {} pixels", w * h);
    }

    #[test]
    fn misuse_panics() {
        assert!(LineDwt53::new(0, 4, 1).is_err());
        assert!(LineDwt53::new(4, 4, 0).is_err());
        let mut engine = LineDwt53::new(4, 2, 1).unwrap();
        let mut sink = |_c: CoeffRow<'_>| {};
        engine.push_row(&[0; 4], &mut sink);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut sink = |_c: CoeffRow<'_>| {};
            engine.finish(&mut sink);
        }));
        assert!(result.is_err(), "finish before the last row must panic");
    }
}
