//! One-dimensional reversible 5/3 lifting steps.
//!
//! The reversible LeGall 5/3 transform (JPEG 2000 Part 1, Annex F):
//!
//! ```text
//! predict: d[k] = x[2k+1] - floor((x[2k] + x[2k+2]) / 2)
//! update:  a[k] = x[2k]   + floor((d[k-1] + d[k] + 2) / 4)
//! ```
//!
//! with symmetric (mirror) extension at the borders. Every step adds an
//! integer to an integer, so the inverse recovers the input exactly at any
//! word length — the property the paper instead buys with a wide datapath.
//!
//! Signals of **any** length `n >= 1` are supported (the tile-sharded codec
//! feeds ragged edge tiles with odd and even dimensions alike): the
//! approximation keeps the `ceil(n / 2)` even-indexed samples and the detail
//! the `floor(n / 2)` odd-indexed ones. For even `n` the output is
//! bit-identical to the original even-only implementation (the test module
//! keeps that implementation as a reference and diffs against it).
//!
//! Both directions are split into an **interior fast path** — every filter
//! tap in range, plain shifts, no index mirroring — and explicit boundary
//! taps at the first/last positions, mirroring PR 2's interior/boundary
//! split of the fixed-point DWT loops. Only the two edge samples of each
//! half ever pay for the mirror arithmetic.

/// Number of approximation (even-indexed) samples of an `n`-sample signal.
#[must_use]
pub fn approx_len(n: usize) -> usize {
    n.div_ceil(2)
}

/// Number of detail (odd-indexed) samples of an `n`-sample signal.
#[must_use]
pub fn detail_len(n: usize) -> usize {
    n / 2
}

/// Forward reversible 5/3 lifting, returning `(approximation, detail)` of
/// lengths `ceil(n / 2)` and `floor(n / 2)`.
///
/// # Panics
///
/// Panics if `x` is empty.
#[must_use]
pub fn forward_53(x: &[i32]) -> (Vec<i32>, Vec<i32>) {
    let mut approx = vec![0i32; approx_len(x.len())];
    let mut detail = vec![0i32; detail_len(x.len())];
    forward_53_into(x, &mut approx, &mut detail);
    (approx, detail)
}

/// Allocation-free form of [`forward_53`]: writes the approximation and
/// detail halves into caller-provided slices. This is the horizontal kernel
/// of the line-based fused transform ([`crate::LineDwt53`]), which recycles
/// its row buffers instead of allocating two vectors per row.
///
/// # Panics
///
/// Panics if `x` is empty or the output slices do not have lengths
/// [`approx_len`] and [`detail_len`] of `x.len()`.
pub fn forward_53_into(x: &[i32], approx: &mut [i32], detail: &mut [i32]) {
    let n = x.len();
    assert!(n >= 1, "signal must not be empty");
    let half_a = approx_len(n);
    let half_d = detail_len(n);
    assert_eq!(approx.len(), half_a, "approximation slice length must be ceil(n / 2)");
    assert_eq!(detail.len(), half_d, "detail slice length must be floor(n / 2)");
    if half_d == 0 {
        approx[0] = x[0];
        return;
    }

    // Predict. Interior: every window [x[2k], x[2k+1], x[2k+2]] is in range.
    for (slot, w) in detail.iter_mut().zip(x.windows(3).step_by(2)) {
        let predicted = (w[0] as i64 + w[2] as i64) >> 1;
        *slot = (w[1] as i64 - predicted) as i32;
    }
    if n % 2 == 0 {
        // Boundary: the last odd sample's right even neighbour is mirrored in
        // even-subsequence index space.
        let k = half_d - 1;
        let m = mirror(k as i64 + 1, half_a as i64) as usize;
        let predicted = (x[2 * k] as i64 + x[2 * m] as i64) >> 1;
        detail[k] = (x[2 * k + 1] as i64 - predicted) as i32;
    }

    // Update. Boundary at k = 0 (left detail neighbour mirrored), interior
    // for 1..half_d, and for odd `n` a mirrored tail at the last even sample.
    let d = |k: i64| -> i64 { detail[mirror(k, half_d as i64) as usize] as i64 };
    approx[0] = (x[0] as i64 + ((d(-1) + d(0) + 2) >> 2)) as i32;
    for k in 1..half_d {
        let update = (detail[k - 1] as i64 + detail[k] as i64 + 2) >> 2;
        approx[k] = (x[2 * k] as i64 + update) as i32;
    }
    if half_a > half_d {
        let k = half_a as i64 - 1;
        let update = (d(k - 1) + d(k) + 2) >> 2;
        approx[half_a - 1] = (x[2 * (half_a - 1)] as i64 + update) as i32;
    }
}

/// Inverse reversible 5/3 lifting, reconstructing the interleaved signal of
/// length `approx.len() + detail.len()`.
///
/// # Panics
///
/// Panics if `approx` is empty or the halves are not a valid split (the
/// approximation must hold the detail's length or one more).
#[must_use]
pub fn inverse_53(approx: &[i32], detail: &[i32]) -> Vec<i32> {
    let half_a = approx.len();
    let half_d = detail.len();
    assert!(half_a >= 1, "subbands must not be empty");
    assert!(
        half_a == half_d || half_a == half_d + 1,
        "subband lengths must match: {half_a} approximation vs {half_d} detail samples"
    );
    if half_d == 0 {
        return vec![approx[0]];
    }
    let n = half_a + half_d;

    // Undo the update step to recover the even samples. Same split as the
    // forward update: one mirrored tap at each end, plain shifts between.
    let d = |k: i64| -> i64 { detail[mirror(k, half_d as i64) as usize] as i64 };
    let mut even = Vec::with_capacity(half_a);
    even.push(approx[0] as i64 - ((d(-1) + d(0) + 2) >> 2));
    for (k, w) in detail.windows(2).enumerate() {
        let update = (w[0] as i64 + w[1] as i64 + 2) >> 2;
        even.push(approx[k + 1] as i64 - update);
    }
    if half_a > half_d {
        let k = half_a as i64 - 1;
        even.push(approx[half_a - 1] as i64 - ((d(k - 1) + d(k) + 2) >> 2));
    }

    // Undo the predict step, interleaving. The interior pairs every detail
    // sample with its two natural even neighbours; only an even-length
    // signal's last detail needs the mirrored right neighbour.
    let mut out = Vec::with_capacity(n);
    for (w, &dk) in even.windows(2).zip(detail) {
        out.push(w[0] as i32);
        out.push((dk as i64 + ((w[0] + w[1]) >> 1)) as i32);
    }
    if n % 2 == 0 {
        let k = half_d - 1;
        let m = mirror(k as i64 + 1, half_a as i64) as usize;
        out.push(even[k] as i32);
        out.push((detail[k] as i64 + ((even[k] + even[m]) >> 1)) as i32);
    } else {
        out.push(even[half_a - 1] as i32);
    }
    out
}

/// Symmetric (whole-sample mirror) index extension into `0..n`.
pub(crate) fn mirror(k: i64, n: i64) -> i64 {
    if n == 1 {
        return 0;
    }
    let period = 2 * (n - 1);
    let mut k = k.rem_euclid(period);
    if k >= n {
        k = period - k;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The original even-only implementation, kept verbatim as the
    /// byte-compatibility reference for even-length signals.
    fn reference_forward_even(x: &[i32]) -> (Vec<i32>, Vec<i32>) {
        let n = x.len();
        assert!(n >= 2 && n % 2 == 0);
        let half = n / 2;
        let even = |k: i64| -> i64 {
            let k = mirror(k, half as i64);
            x[2 * k as usize] as i64
        };
        let odd = |k: i64| -> i64 {
            let k = mirror(k, half as i64);
            x[2 * k as usize + 1] as i64
        };
        let mut detail = Vec::with_capacity(half);
        for k in 0..half as i64 {
            let predicted = (even(k) + even(k + 1)).div_euclid(2);
            detail.push((odd(k) - predicted) as i32);
        }
        let d = |k: i64| -> i64 {
            let k = mirror(k, half as i64);
            detail[k as usize] as i64
        };
        let mut approx = Vec::with_capacity(half);
        for k in 0..half as i64 {
            let update = (d(k - 1) + d(k) + 2).div_euclid(4);
            approx.push((even(k) + update) as i32);
        }
        (approx, detail)
    }

    /// The original even-only inverse, kept verbatim as the reference.
    fn reference_inverse_even(approx: &[i32], detail: &[i32]) -> Vec<i32> {
        assert_eq!(approx.len(), detail.len());
        assert!(!approx.is_empty());
        let half = approx.len();
        let d = |k: i64| -> i64 {
            let k = mirror(k, half as i64);
            detail[k as usize] as i64
        };
        let mut even = Vec::with_capacity(half);
        for k in 0..half as i64 {
            let update = (d(k - 1) + d(k) + 2).div_euclid(4);
            even.push(approx[k as usize] as i64 - update);
        }
        let e = |k: i64| -> i64 {
            let k = mirror(k, half as i64);
            even[k as usize]
        };
        let mut out = Vec::with_capacity(half * 2);
        for k in 0..half as i64 {
            let predicted = (e(k) + e(k + 1)).div_euclid(2);
            out.push(even[k as usize] as i32);
            out.push((d(k) + predicted) as i32);
        }
        out
    }

    #[test]
    fn mirror_extension_reflects_indices() {
        assert_eq!(mirror(0, 4), 0);
        assert_eq!(mirror(-1, 4), 1);
        assert_eq!(mirror(-2, 4), 2);
        assert_eq!(mirror(4, 4), 2);
        assert_eq!(mirror(5, 4), 1);
        assert_eq!(mirror(3, 1), 0);
    }

    #[test]
    fn even_lengths_match_the_original_implementation_exactly() {
        // The fast-path rewrite and the odd-length generalization must not
        // move a single bit on the inputs the original code accepted — the
        // compressed-stream format depends on it.
        let mut rng = StdRng::seed_from_u64(11);
        for case in 0..500 {
            let n = 2 * rng.gen_range(1usize..130);
            let x: Vec<i32> = (0..n).map(|_| rng.gen_range(-40960..40960)).collect();
            let (a, d) = forward_53(&x);
            let (ra, rd) = reference_forward_even(&x);
            assert_eq!(a, ra, "case {case}: approximation diverged for n={n}");
            assert_eq!(d, rd, "case {case}: detail diverged for n={n}");
            assert_eq!(inverse_53(&a, &d), reference_inverse_even(&ra, &rd), "case {case}");
        }
    }

    #[test]
    fn roundtrip_is_exact_for_random_signals_of_any_length() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in [1usize, 2, 3, 4, 5, 7, 8, 16, 17, 63, 64, 250, 251] {
            for _ in 0..20 {
                let x: Vec<i32> = (0..n).map(|_| rng.gen_range(-4096..4096)).collect();
                let (a, d) = forward_53(&x);
                assert_eq!(a.len(), approx_len(n));
                assert_eq!(d.len(), detail_len(n));
                let y = inverse_53(&a, &d);
                assert_eq!(x, y, "n={n}");
            }
        }
    }

    #[test]
    fn single_sample_signals_pass_through() {
        let (a, d) = forward_53(&[42]);
        assert_eq!(a, vec![42]);
        assert!(d.is_empty());
        assert_eq!(inverse_53(&a, &d), vec![42]);
    }

    #[test]
    fn constant_signal_has_zero_detail() {
        for n in [3usize, 16, 17] {
            let x = vec![77; n];
            let (a, d) = forward_53(&x);
            assert!(d.iter().all(|&v| v == 0));
            assert!(a.iter().all(|&v| v == 77), "5/3 approximation preserves DC level");
        }
    }

    #[test]
    fn ramp_has_small_detail() {
        for n in [31usize, 32] {
            let x: Vec<i32> = (0..n as i32).collect();
            let (_a, d) = forward_53(&x);
            assert!(
                d.iter().all(|&v| v.abs() <= 2),
                "a ramp is predicted almost exactly (mirror boundary allows a residual of 2): {d:?}"
            );
        }
    }

    #[test]
    fn detail_captures_high_frequency() {
        let x: Vec<i32> = (0..32).map(|i| if i % 2 == 0 { 0 } else { 100 }).collect();
        let (_a, d) = forward_53(&x);
        assert!(d.iter().all(|&v| v == 100));
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        for x in [
            vec![i32::MAX / 4, i32::MIN / 4, i32::MAX / 4, i32::MIN / 4],
            vec![i32::MAX / 4, i32::MIN / 4, i32::MAX / 4],
        ] {
            let (a, d) = forward_53(&x);
            let y = inverse_53(&a, &d);
            assert_eq!(x, y);
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_signal_rejected() {
        let _ = forward_53(&[]);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn mismatched_halves_rejected() {
        let _ = inverse_53(&[1], &[3, 4]);
    }
}
