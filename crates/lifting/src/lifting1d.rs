//! One-dimensional reversible 5/3 lifting steps.
//!
//! The reversible LeGall 5/3 transform (JPEG 2000 Part 1, Annex F):
//!
//! ```text
//! predict: d[k] = x[2k+1] - floor((x[2k] + x[2k+2]) / 2)
//! update:  a[k] = x[2k]   + floor((d[k-1] + d[k] + 2) / 4)
//! ```
//!
//! with symmetric (mirror) extension at the borders. Every step adds an
//! integer to an integer, so the inverse recovers the input exactly at any
//! word length — the property the paper instead buys with a wide datapath.

/// Forward reversible 5/3 lifting of an even-length signal, returning
/// `(approximation, detail)`.
///
/// # Panics
///
/// Panics if `x` has an odd length or fewer than 2 samples.
#[must_use]
pub fn forward_53(x: &[i32]) -> (Vec<i32>, Vec<i32>) {
    let n = x.len();
    assert!(n >= 2 && n % 2 == 0, "signal length must be even and non-zero, got {n}");
    let half = n / 2;
    // Mirror extension helper for even (x[2k]) samples.
    let even = |k: i64| -> i64 {
        let k = mirror(k, half as i64);
        x[2 * k as usize] as i64
    };
    let odd = |k: i64| -> i64 {
        let k = mirror(k, half as i64);
        x[2 * k as usize + 1] as i64
    };

    // Predict step.
    let mut detail = Vec::with_capacity(half);
    for k in 0..half as i64 {
        let predicted = (even(k) + even(k + 1)).div_euclid(2);
        detail.push((odd(k) - predicted) as i32);
    }
    // Update step.
    let d = |k: i64| -> i64 {
        let k = mirror(k, half as i64);
        detail[k as usize] as i64
    };
    let mut approx = Vec::with_capacity(half);
    for k in 0..half as i64 {
        let update = (d(k - 1) + d(k) + 2).div_euclid(4);
        approx.push((even(k) + update) as i32);
    }
    (approx, detail)
}

/// Inverse reversible 5/3 lifting, reconstructing the interleaved signal.
///
/// # Panics
///
/// Panics if the halves have different lengths or are empty.
#[must_use]
pub fn inverse_53(approx: &[i32], detail: &[i32]) -> Vec<i32> {
    assert_eq!(approx.len(), detail.len(), "subband lengths must match");
    assert!(!approx.is_empty(), "subbands must not be empty");
    let half = approx.len();
    let d = |k: i64| -> i64 {
        let k = mirror(k, half as i64);
        detail[k as usize] as i64
    };
    // Undo the update step to recover the even samples.
    let mut even = Vec::with_capacity(half);
    for k in 0..half as i64 {
        let update = (d(k - 1) + d(k) + 2).div_euclid(4);
        even.push(approx[k as usize] as i64 - update);
    }
    let e = |k: i64| -> i64 {
        let k = mirror(k, half as i64);
        even[k as usize]
    };
    // Undo the predict step to recover the odd samples, interleaving.
    let mut out = Vec::with_capacity(half * 2);
    for k in 0..half as i64 {
        let predicted = (e(k) + e(k + 1)).div_euclid(2);
        out.push(even[k as usize] as i32);
        out.push((d(k) + predicted) as i32);
    }
    out
}

/// Symmetric (whole-sample mirror) index extension into `0..n`.
fn mirror(k: i64, n: i64) -> i64 {
    if n == 1 {
        return 0;
    }
    let period = 2 * (n - 1);
    let mut k = k.rem_euclid(period);
    if k >= n {
        k = period - k;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn mirror_extension_reflects_indices() {
        assert_eq!(mirror(0, 4), 0);
        assert_eq!(mirror(-1, 4), 1);
        assert_eq!(mirror(-2, 4), 2);
        assert_eq!(mirror(4, 4), 2);
        assert_eq!(mirror(5, 4), 1);
        assert_eq!(mirror(3, 1), 0);
    }

    #[test]
    fn roundtrip_is_exact_for_random_signals() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in [2usize, 4, 8, 16, 64, 250] {
            let x: Vec<i32> = (0..n).map(|_| rng.gen_range(-4096..4096)).collect();
            let (a, d) = forward_53(&x);
            assert_eq!(a.len(), n / 2);
            assert_eq!(d.len(), n / 2);
            let y = inverse_53(&a, &d);
            assert_eq!(x, y, "n={n}");
        }
    }

    #[test]
    fn constant_signal_has_zero_detail() {
        let x = vec![77; 16];
        let (a, d) = forward_53(&x);
        assert!(d.iter().all(|&v| v == 0));
        assert!(a.iter().all(|&v| v == 77), "5/3 approximation preserves DC level");
    }

    #[test]
    fn ramp_has_small_detail() {
        let x: Vec<i32> = (0..32).collect();
        let (_a, d) = forward_53(&x);
        assert!(
            d.iter().all(|&v| v.abs() <= 2),
            "a ramp is predicted almost exactly (mirror boundary allows a residual of 2): {d:?}"
        );
    }

    #[test]
    fn detail_captures_high_frequency() {
        let x: Vec<i32> = (0..32).map(|i| if i % 2 == 0 { 0 } else { 100 }).collect();
        let (_a, d) = forward_53(&x);
        assert!(d.iter().all(|&v| v == 100));
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let x = vec![i32::MAX / 4, i32::MIN / 4, i32::MAX / 4, i32::MIN / 4];
        let (a, d) = forward_53(&x);
        let y = inverse_53(&a, &d);
        assert_eq!(x, y);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_length_rejected() {
        let _ = forward_53(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn mismatched_halves_rejected() {
        let _ = inverse_53(&[1, 2], &[3]);
    }
}
