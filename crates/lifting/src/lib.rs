//! # lwc-lifting — reversible integer 5/3 lifting transform (baseline)
//!
//! The paper achieves losslessness by giving the conventional filter-bank
//! datapath enough fixed-point precision. The modern alternative — adopted a
//! few years later by JPEG 2000 — is the **lifting scheme** with integer
//! rounding inside each lifting step, which is reversible by construction at
//! any word length. This crate implements the reversible LeGall 5/3 lifting
//! transform (the integer relative of the paper's F4 bank) as:
//!
//! * an algorithmic **baseline/ablation** against the wide-word approach
//!   (identical lossless guarantee, different arithmetic cost), and
//! * the transform behind the end-to-end compression examples, because its
//!   integer subbands feed an entropy coder directly.
//!
//! The 2-D transform uses the same Mallat layout and symmetric (mirror)
//! boundary extension as JPEG 2000, and — like JPEG 2000 — supports images
//! of **any** dimensions: every pass halves the active region rounding up
//! (see [`geometry`]), so odd, prime and single-sample sides decompose and
//! reconstruct exactly. This is what lets the tile-sharded codec in
//! `lwc-pipeline` feed ragged edge tiles through the ordinary transform.
//!
//! ```
//! use lwc_lifting::Lifting53;
//! use lwc_image::synth;
//!
//! # fn main() -> Result<(), lwc_lifting::LiftingError> {
//! let image = synth::ct_phantom(64, 64, 12, 0);
//! let lifting = Lifting53::new(3)?;
//! let coeffs = lifting.forward(&image)?;
//! let back = lifting.inverse(&coeffs)?;
//! assert_eq!(lwc_image::stats::max_abs_diff(&image, &back)?, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod geometry;
mod lifting1d;
mod line;
mod transform;
pub mod zaxis;

pub use error::LiftingError;
pub use lifting1d::{approx_len, detail_len, forward_53, forward_53_into, inverse_53};
pub use line::{CoeffRow, LineDwt53};
pub use transform::{Lifting53, LiftingCoefficients};
pub use zaxis::{forward_z, inverse_z};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Lifting53>();
        assert_send_sync::<LiftingCoefficients>();
        assert_send_sync::<LiftingError>();
    }
}
