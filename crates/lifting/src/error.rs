//! Error type for the lifting transform.

use lwc_image::ImageError;
use std::error::Error;
use std::fmt;

/// Errors produced by the lifting transform.
#[derive(Debug)]
#[non_exhaustive]
pub enum LiftingError {
    /// The image dimensions cannot be decomposed to the requested depth.
    NotDecomposable {
        /// Image width.
        width: usize,
        /// Image height.
        height: usize,
        /// Requested scales.
        scales: u32,
    },
    /// Zero scales requested.
    NoScales,
    /// The coefficient set passed to the inverse transform has a different
    /// geometry or depth.
    ConfigurationMismatch(String),
    /// An image container problem.
    Image(ImageError),
}

impl fmt::Display for LiftingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiftingError::NotDecomposable { width, height, scales } => {
                write!(f, "a {width}x{height} image cannot be lifted over {scales} scales")
            }
            LiftingError::NoScales => write!(f, "at least one scale is required"),
            LiftingError::ConfigurationMismatch(msg) => {
                write!(f, "configuration mismatch: {msg}")
            }
            LiftingError::Image(e) => write!(f, "image error: {e}"),
        }
    }
}

impl Error for LiftingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LiftingError::Image(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ImageError> for LiftingError {
    fn from(e: ImageError) -> Self {
        LiftingError::Image(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LiftingError::NotDecomposable { width: 10, height: 6, scales: 3 };
        assert!(e.to_string().contains("10x6"));
        assert!(Error::source(&e).is_none());
        let e = LiftingError::from(ImageError::InvalidBitDepth(0));
        assert!(Error::source(&e).is_some());
    }
}
