//! Error type for the lifting transform.

use lwc_image::ImageError;
use std::error::Error;
use std::fmt;

/// Errors produced by the lifting transform.
#[derive(Debug)]
#[non_exhaustive]
pub enum LiftingError {
    /// Zero scales requested.
    NoScales,
    /// The coefficient set passed to the inverse transform has a different
    /// geometry or depth.
    ConfigurationMismatch(String),
    /// An image container problem.
    Image(ImageError),
}

impl fmt::Display for LiftingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiftingError::NoScales => write!(f, "at least one scale is required"),
            LiftingError::ConfigurationMismatch(msg) => {
                write!(f, "configuration mismatch: {msg}")
            }
            LiftingError::Image(e) => write!(f, "image error: {e}"),
        }
    }
}

impl Error for LiftingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LiftingError::Image(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ImageError> for LiftingError {
    fn from(e: ImageError) -> Self {
        LiftingError::Image(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LiftingError::NoScales;
        assert!(e.to_string().contains("at least one scale"));
        assert!(Error::source(&e).is_none());
        let e = LiftingError::from(ImageError::InvalidBitDepth(0));
        assert!(Error::source(&e).is_some());
    }
}
