//! Reversible 5/3 lifting along the z axis of a volume.
//!
//! The 3-D DWT of the volumetric datapath is **separable**: the 1-D kernels
//! of [`crate::forward_53`] run along z across slices, and each resulting
//! coefficient plane then goes through the ordinary 2-D transform. This
//! module supplies the z leg as a *slice-interleaved* pass over a
//! plane-major buffer (slice `z` occupies `plane_len` consecutive samples):
//! for every in-plane position, the column of samples across slices is
//! gathered, lifted and scattered back with the approximation planes in
//! front of the detail planes — the Mallat layout along z.
//!
//! The ragged pyramid of [`crate::geometry`] applies unchanged: level `s`
//! operates on the first `scaled_dim(depth, s)` planes, halving rounding up,
//! so **any** slice count (odd, prime, or one) decomposes to any depth.
//! With `z_scales = 0` both passes are no-ops, which is what makes the 3-D
//! codec bit-identical per slice to the 2-D path in that configuration.

use crate::geometry::scaled_dim;
use crate::lifting1d::{approx_len, forward_53_into, inverse_53};
use crate::LiftingError;

fn check_volume(samples: &[i32], plane_len: usize, depth: usize) -> Result<(), LiftingError> {
    if plane_len == 0 || depth == 0 || samples.len() != plane_len * depth {
        return Err(LiftingError::ConfigurationMismatch(format!(
            "buffer holds {} samples but the volume needs {} x {}",
            samples.len(),
            plane_len,
            depth
        )));
    }
    Ok(())
}

/// Forward 5/3 lifting along z, in place, over a plane-major buffer of
/// `depth` planes of `plane_len` samples each. After the call, planes
/// `0..ceil(n/2)` of each level hold z-approximation coefficients and the
/// remainder z-detail, per the Mallat convention. `z_scales = 0` leaves the
/// buffer untouched; levels past the point where the z pyramid saturates at
/// one plane are no-ops, exactly like the 2-D transform.
///
/// # Errors
///
/// Returns [`LiftingError::ConfigurationMismatch`] if the buffer length is
/// not `plane_len * depth` or either dimension is zero.
pub fn forward_z(
    samples: &mut [i32],
    plane_len: usize,
    depth: usize,
    z_scales: u32,
) -> Result<(), LiftingError> {
    check_volume(samples, plane_len, depth)?;
    let mut column = vec![0i32; depth];
    let mut approx = vec![0i32; depth.div_ceil(2)];
    let mut detail = vec![0i32; depth / 2];
    for s in 0..z_scales {
        let n = scaled_dim(depth, s);
        if n < 2 {
            break;
        }
        let a_len = approx_len(n);
        for i in 0..plane_len {
            for (z, slot) in column[..n].iter_mut().enumerate() {
                *slot = samples[z * plane_len + i];
            }
            forward_53_into(&column[..n], &mut approx[..a_len], &mut detail[..n - a_len]);
            for (z, &v) in approx[..a_len].iter().enumerate() {
                samples[z * plane_len + i] = v;
            }
            for (z, &v) in detail[..n - a_len].iter().enumerate() {
                samples[(a_len + z) * plane_len + i] = v;
            }
        }
    }
    Ok(())
}

/// Inverse of [`forward_z`]: reconstructs the plane-major sample buffer from
/// its z-Mallat layout, in place. With the same `plane_len`, `depth` and
/// `z_scales` this exactly undoes the forward pass at any word length.
///
/// # Errors
///
/// Returns [`LiftingError::ConfigurationMismatch`] if the buffer length is
/// not `plane_len * depth` or either dimension is zero.
pub fn inverse_z(
    samples: &mut [i32],
    plane_len: usize,
    depth: usize,
    z_scales: u32,
) -> Result<(), LiftingError> {
    check_volume(samples, plane_len, depth)?;
    let mut approx = vec![0i32; depth.div_ceil(2)];
    let mut detail = vec![0i32; depth / 2];
    for s in (0..z_scales).rev() {
        let n = scaled_dim(depth, s);
        if n < 2 {
            continue;
        }
        let a_len = approx_len(n);
        for i in 0..plane_len {
            for (z, slot) in approx[..a_len].iter_mut().enumerate() {
                *slot = samples[z * plane_len + i];
            }
            for (z, slot) in detail[..n - a_len].iter_mut().enumerate() {
                *slot = samples[(a_len + z) * plane_len + i];
            }
            let column = inverse_53(&approx[..a_len], &detail[..n - a_len]);
            for (z, &v) in column.iter().enumerate() {
                samples[z * plane_len + i] = v;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifting1d::forward_53;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_volume(plane_len: usize, depth: usize, seed: u64) -> Vec<i32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..plane_len * depth).map(|_| rng.gen_range(-40960..40960)).collect()
    }

    #[test]
    fn roundtrip_is_exact_for_any_depth_and_scales() {
        for depth in [1usize, 2, 3, 4, 5, 7, 8, 11, 16, 17] {
            for z_scales in [0u32, 1, 2, 3, 6] {
                let original = random_volume(13, depth, depth as u64 + z_scales as u64);
                let mut data = original.clone();
                forward_z(&mut data, 13, depth, z_scales).unwrap();
                if z_scales == 0 || depth == 1 {
                    assert_eq!(data, original, "z_scales = 0 must be the identity");
                }
                inverse_z(&mut data, 13, depth, z_scales).unwrap();
                assert_eq!(data, original, "depth={depth} z_scales={z_scales}");
            }
        }
    }

    #[test]
    fn matches_the_1d_kernel_column_by_column() {
        // One z level over an even number of planes is exactly forward_53
        // applied to every (x, y) column.
        let plane_len = 7;
        let depth = 6;
        let original = random_volume(plane_len, depth, 3);
        let mut data = original.clone();
        forward_z(&mut data, plane_len, depth, 1).unwrap();
        for i in 0..plane_len {
            let column: Vec<i32> = (0..depth).map(|z| original[z * plane_len + i]).collect();
            let (a, d) = forward_53(&column);
            let got: Vec<i32> = (0..depth).map(|z| data[z * plane_len + i]).collect();
            assert_eq!(&got[..a.len()], &a[..], "column {i} approximation");
            assert_eq!(&got[a.len()..], &d[..], "column {i} detail");
        }
    }

    #[test]
    fn deep_decompositions_saturate_instead_of_failing() {
        let mut data = random_volume(5, 3, 9);
        let original = data.clone();
        forward_z(&mut data, 5, 3, 16).unwrap();
        inverse_z(&mut data, 5, 3, 16).unwrap();
        assert_eq!(data, original);
    }

    #[test]
    fn constant_columns_have_zero_z_detail() {
        let plane_len = 4;
        let depth = 8;
        let mut data: Vec<i32> = (0..plane_len * depth).map(|i| (i % plane_len) as i32).collect();
        forward_z(&mut data, plane_len, depth, 2).unwrap();
        // Detail planes of both levels are all zero; the two remaining
        // approximation planes keep the per-column DC level.
        for z in 0..depth {
            for i in 0..plane_len {
                assert_eq!(data[z * plane_len + i], if z < 2 { i as i32 } else { 0 });
            }
        }
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let mut data = vec![0i32; 10];
        assert!(forward_z(&mut data, 3, 3, 1).is_err());
        assert!(forward_z(&mut data, 0, 10, 1).is_err());
        assert!(forward_z(&mut data, 10, 0, 1).is_err());
        assert!(inverse_z(&mut data, 3, 3, 1).is_err());
    }
}
