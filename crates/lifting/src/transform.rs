//! Two-dimensional reversible 5/3 transform in the Mallat layout.

use crate::lifting1d::{forward_53, inverse_53};
use crate::LiftingError;
use lwc_image::Image;

/// Integer wavelet coefficients in the Mallat layout, produced by
/// [`Lifting53::forward`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiftingCoefficients {
    data: Vec<i32>,
    width: usize,
    height: usize,
    scales: u32,
    input_bit_depth: u32,
}

impl LiftingCoefficients {
    /// Assembles a coefficient container from a Mallat-layout buffer — the
    /// entry point used by entropy decoders that rebuild the layout subband
    /// by subband.
    ///
    /// # Errors
    ///
    /// Returns [`LiftingError::NotDecomposable`] if the geometry does not
    /// support `scales` scales or the buffer length does not match.
    pub fn from_raw(
        data: Vec<i32>,
        width: usize,
        height: usize,
        scales: u32,
        input_bit_depth: u32,
    ) -> Result<Self, LiftingError> {
        if scales == 0 {
            return Err(LiftingError::NoScales);
        }
        check_decomposable(width, height, scales)?;
        if data.len() != width * height {
            return Err(LiftingError::ConfigurationMismatch(format!(
                "buffer holds {} samples but the layout needs {}",
                data.len(),
                width * height
            )));
        }
        Ok(Self { data, width, height, scales, input_bit_depth })
    }

    /// Width of the layout.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the layout.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Decomposition depth.
    #[must_use]
    pub fn scales(&self) -> u32 {
        self.scales
    }

    /// Bit depth of the source image.
    #[must_use]
    pub fn input_bit_depth(&self) -> u32 {
        self.input_bit_depth
    }

    /// The whole coefficient buffer, row major, Mallat layout.
    #[must_use]
    pub fn data(&self) -> &[i32] {
        &self.data
    }

    /// Copies the samples of one subband. `band` is indexed like
    /// `lwc_dwt::Subband`: 0 = approximation, 1 = horizontal detail,
    /// 2 = vertical detail, 3 = diagonal detail.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is out of range or `band > 3`.
    #[must_use]
    pub fn subband(&self, scale: u32, band: usize) -> Vec<i32> {
        assert!(scale >= 1 && scale <= self.scales, "scale {scale} out of range");
        assert!(band <= 3, "band {band} out of range");
        let w = self.width >> scale;
        let h = self.height >> scale;
        let (x0, y0) = match band {
            0 => (0, 0),
            1 => (w, 0),
            2 => (0, h),
            _ => (w, h),
        };
        let mut out = Vec::with_capacity(w * h);
        for y in y0..y0 + h {
            let start = y * self.width + x0;
            out.extend_from_slice(&self.data[start..start + w]);
        }
        out
    }
}

/// The reversible 2-D LeGall 5/3 lifting transform.
///
/// See the crate documentation for an end-to-end example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lifting53 {
    scales: u32,
}

impl Lifting53 {
    /// Creates a transform with the given decomposition depth.
    ///
    /// # Errors
    ///
    /// Returns [`LiftingError::NoScales`] if `scales` is zero.
    pub fn new(scales: u32) -> Result<Self, LiftingError> {
        if scales == 0 {
            return Err(LiftingError::NoScales);
        }
        Ok(Self { scales })
    }

    /// Decomposition depth.
    #[must_use]
    pub fn scales(&self) -> u32 {
        self.scales
    }

    /// Forward reversible transform of `image`.
    ///
    /// # Errors
    ///
    /// Returns [`LiftingError::NotDecomposable`] if the image does not
    /// support the configured depth.
    pub fn forward(&self, image: &Image) -> Result<LiftingCoefficients, LiftingError> {
        check_decomposable(image.width(), image.height(), self.scales)?;
        let width = image.width();
        let height = image.height();
        let mut data = image.samples().to_vec();
        let mut cur_w = width;
        let mut cur_h = height;
        for _ in 0..self.scales {
            forward_scale(&mut data, width, cur_w, cur_h);
            cur_w /= 2;
            cur_h /= 2;
        }
        Ok(LiftingCoefficients {
            data,
            width,
            height,
            scales: self.scales,
            input_bit_depth: image.bit_depth(),
        })
    }

    /// Inverse reversible transform.
    ///
    /// # Errors
    ///
    /// Returns [`LiftingError::ConfigurationMismatch`] if the coefficients
    /// carry a different depth, or an image error if the reconstructed
    /// samples fall outside the original bit depth (impossible for
    /// coefficients produced by [`Lifting53::forward`]).
    pub fn inverse(&self, coeffs: &LiftingCoefficients) -> Result<Image, LiftingError> {
        if coeffs.scales != self.scales {
            return Err(LiftingError::ConfigurationMismatch(format!(
                "coefficients have {} scales but the transform expects {}",
                coeffs.scales, self.scales
            )));
        }
        let width = coeffs.width;
        let height = coeffs.height;
        let mut data = coeffs.data.clone();
        for s in (1..=self.scales).rev() {
            let cur_w = width >> (s - 1);
            let cur_h = height >> (s - 1);
            inverse_scale(&mut data, width, cur_w, cur_h);
        }
        Ok(Image::from_samples(width, height, coeffs.input_bit_depth, data)?)
    }

    /// Convenience round trip used by tests and examples.
    ///
    /// # Errors
    ///
    /// See [`Lifting53::forward`] and [`Lifting53::inverse`].
    pub fn roundtrip(&self, image: &Image) -> Result<Image, LiftingError> {
        let c = self.forward(image)?;
        self.inverse(&c)
    }
}

fn check_decomposable(width: usize, height: usize, scales: u32) -> Result<(), LiftingError> {
    let mut w = width;
    let mut h = height;
    for _ in 0..scales {
        if w < 2 || h < 2 || w % 2 != 0 || h % 2 != 0 {
            return Err(LiftingError::NotDecomposable { width, height, scales });
        }
        w /= 2;
        h /= 2;
    }
    Ok(())
}

fn forward_scale(data: &mut [i32], stride: usize, cur_w: usize, cur_h: usize) {
    let mut row = vec![0i32; cur_w];
    for y in 0..cur_h {
        let base = y * stride;
        row.copy_from_slice(&data[base..base + cur_w]);
        let (a, d) = forward_53(&row);
        data[base..base + cur_w / 2].copy_from_slice(&a);
        data[base + cur_w / 2..base + cur_w].copy_from_slice(&d);
    }
    let mut col = vec![0i32; cur_h];
    for x in 0..cur_w {
        for y in 0..cur_h {
            col[y] = data[y * stride + x];
        }
        let (a, d) = forward_53(&col);
        for y in 0..cur_h / 2 {
            data[y * stride + x] = a[y];
            data[(y + cur_h / 2) * stride + x] = d[y];
        }
    }
}

fn inverse_scale(data: &mut [i32], stride: usize, cur_w: usize, cur_h: usize) {
    let mut approx = vec![0i32; cur_h / 2];
    let mut detail = vec![0i32; cur_h / 2];
    for x in 0..cur_w {
        for y in 0..cur_h / 2 {
            approx[y] = data[y * stride + x];
            detail[y] = data[(y + cur_h / 2) * stride + x];
        }
        let col = inverse_53(&approx, &detail);
        for (y, &v) in col.iter().enumerate() {
            data[y * stride + x] = v;
        }
    }
    let mut approx = vec![0i32; cur_w / 2];
    let mut detail = vec![0i32; cur_w / 2];
    for y in 0..cur_h {
        let base = y * stride;
        approx.copy_from_slice(&data[base..base + cur_w / 2]);
        detail.copy_from_slice(&data[base + cur_w / 2..base + cur_w]);
        let row = inverse_53(&approx, &detail);
        data[base..base + cur_w].copy_from_slice(&row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_image::{stats, synth};

    #[test]
    fn roundtrip_is_exact_on_all_workloads() {
        let lifting = Lifting53::new(4).unwrap();
        for image in [
            synth::random_image(64, 64, 12, 1),
            synth::ct_phantom(64, 64, 12, 2),
            synth::mr_slice(64, 64, 12, 3),
            synth::checkerboard(64, 64, 12, 1),
            synth::gradient(64, 64, 12),
        ] {
            let back = lifting.roundtrip(&image).unwrap();
            assert_eq!(stats::max_abs_diff(&image, &back).unwrap(), 0);
        }
    }

    #[test]
    fn rectangular_and_deep_decompositions_work() {
        let lifting = Lifting53::new(6).unwrap();
        let image = synth::random_image(128, 64, 12, 5);
        let back = lifting.roundtrip(&image).unwrap();
        assert_eq!(stats::max_abs_diff(&image, &back).unwrap(), 0);
    }

    #[test]
    fn detail_subbands_of_smooth_images_are_small() {
        let lifting = Lifting53::new(2).unwrap();
        let coeffs = lifting.forward(&synth::gradient(64, 64, 12)).unwrap();
        for band in 1..=3 {
            let max = coeffs.subband(1, band).iter().map(|v| v.abs()).max().unwrap();
            // The gradient steps by ~65 grey levels per pixel; detail stays
            // within a couple of steps (mirror boundary doubles one of them),
            // i.e. tiny compared with the 4095 dynamic range.
            assert!(max <= 150, "band {band}: max {max}");
        }
        // The approximation keeps the DC level (unlike the √2-gain banks).
        let approx = coeffs.subband(2, 0);
        let max_in = 4095;
        assert!(approx.iter().all(|&v| v.abs() <= 2 * max_in));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(Lifting53::new(0).is_err());
        let lifting = Lifting53::new(5).unwrap();
        let image = synth::flat(48, 48, 8, 0);
        assert!(matches!(lifting.forward(&image), Err(LiftingError::NotDecomposable { .. })));
        let coeffs = Lifting53::new(2).unwrap().forward(&synth::flat(32, 32, 8, 1)).unwrap();
        assert!(matches!(
            Lifting53::new(3).unwrap().inverse(&coeffs),
            Err(LiftingError::ConfigurationMismatch(_))
        ));
    }

    #[test]
    fn accessors_report_geometry() {
        let lifting = Lifting53::new(2).unwrap();
        assert_eq!(lifting.scales(), 2);
        let coeffs = lifting.forward(&synth::flat(32, 16, 12, 5)).unwrap();
        assert_eq!(coeffs.width(), 32);
        assert_eq!(coeffs.height(), 16);
        assert_eq!(coeffs.scales(), 2);
        assert_eq!(coeffs.input_bit_depth(), 12);
        assert_eq!(coeffs.data().len(), 512);
        assert_eq!(coeffs.subband(1, 3).len(), 16 * 8);
    }

    #[test]
    fn flat_image_detail_is_zero_and_approx_preserves_level() {
        let lifting = Lifting53::new(3).unwrap();
        let coeffs = lifting.forward(&synth::flat(64, 64, 12, 1000)).unwrap();
        for s in 1..=3 {
            for band in 1..=3 {
                assert!(coeffs.subband(s, band).iter().all(|&v| v == 0));
            }
        }
        assert!(coeffs.subband(3, 0).iter().all(|&v| v == 1000));
    }
}
