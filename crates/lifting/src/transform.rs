//! Two-dimensional reversible 5/3 transform in the Mallat layout.

use crate::geometry::{band_rect, scaled_dim};
use crate::lifting1d::{forward_53, inverse_53};
use crate::LiftingError;
use lwc_image::{Image, ImageView, ImageViewMut};

/// Integer wavelet coefficients in the Mallat layout, produced by
/// [`Lifting53::forward`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiftingCoefficients {
    data: Vec<i32>,
    width: usize,
    height: usize,
    scales: u32,
    input_bit_depth: u32,
}

impl LiftingCoefficients {
    /// Assembles a coefficient container from a Mallat-layout buffer — the
    /// entry point used by entropy decoders that rebuild the layout subband
    /// by subband. Any `width x height >= 1 x 1` geometry is accepted; ragged
    /// (non-power-of-two) dimensions follow the `ceil(n / 2)` pyramid of
    /// [`crate::geometry`].
    ///
    /// # Errors
    ///
    /// Returns [`LiftingError::NoScales`] for zero scales and
    /// [`LiftingError::ConfigurationMismatch`] if the buffer length does not
    /// match the geometry.
    pub fn from_raw(
        data: Vec<i32>,
        width: usize,
        height: usize,
        scales: u32,
        input_bit_depth: u32,
    ) -> Result<Self, LiftingError> {
        if scales == 0 {
            return Err(LiftingError::NoScales);
        }
        if width == 0 || height == 0 || data.len() != width * height {
            return Err(LiftingError::ConfigurationMismatch(format!(
                "buffer holds {} samples but the layout needs {}",
                data.len(),
                width * height
            )));
        }
        Ok(Self { data, width, height, scales, input_bit_depth })
    }

    /// Width of the layout.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the layout.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Decomposition depth.
    #[must_use]
    pub fn scales(&self) -> u32 {
        self.scales
    }

    /// Bit depth of the source image.
    #[must_use]
    pub fn input_bit_depth(&self) -> u32 {
        self.input_bit_depth
    }

    /// The whole coefficient buffer, row major, Mallat layout.
    #[must_use]
    pub fn data(&self) -> &[i32] {
        &self.data
    }

    /// Copies the samples of one subband. `band` is indexed like
    /// `lwc_dwt::Subband`: 0 = approximation, 1 = horizontal detail,
    /// 2 = vertical detail, 3 = diagonal detail. A detail band of a
    /// dimension that has contracted to one sample is empty.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is out of range or `band > 3`.
    #[must_use]
    pub fn subband(&self, scale: u32, band: usize) -> Vec<i32> {
        assert!(scale >= 1 && scale <= self.scales, "scale {scale} out of range");
        let rect = band_rect(self.width, self.height, scale, band);
        let mut out = Vec::with_capacity(rect.pixel_count());
        for y in rect.y..rect.bottom() {
            let start = y * self.width + rect.x;
            out.extend_from_slice(&self.data[start..start + rect.width]);
        }
        out
    }
}

/// The reversible 2-D LeGall 5/3 lifting transform.
///
/// Images of **any** dimensions (down to a single pixel, including odd and
/// prime sizes) decompose to any depth: every pass halves the active region
/// rounding up, so a dimension saturates at one sample instead of failing.
/// For dimensions divisible by `2^scales` the transform is bit-identical to
/// the classic even-only pyramid.
///
/// See the crate documentation for an end-to-end example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lifting53 {
    scales: u32,
}

impl Lifting53 {
    /// Creates a transform with the given decomposition depth.
    ///
    /// # Errors
    ///
    /// Returns [`LiftingError::NoScales`] if `scales` is zero.
    pub fn new(scales: u32) -> Result<Self, LiftingError> {
        if scales == 0 {
            return Err(LiftingError::NoScales);
        }
        Ok(Self { scales })
    }

    /// Decomposition depth.
    #[must_use]
    pub fn scales(&self) -> u32 {
        self.scales
    }

    /// Forward reversible transform of `image`.
    ///
    /// # Errors
    ///
    /// Currently infallible for any valid image; the `Result` is kept for
    /// API stability.
    pub fn forward(&self, image: &Image) -> Result<LiftingCoefficients, LiftingError> {
        self.forward_view(&image.view())
    }

    /// Forward transform of a borrowed (possibly strided) window — the entry
    /// point of the tile-parallel engine, which transforms tiles straight out
    /// of the full frame without materializing each tile as an owned image.
    ///
    /// ```
    /// use lwc_image::{synth, TileRect};
    /// use lwc_lifting::Lifting53;
    ///
    /// # fn main() -> Result<(), lwc_lifting::LiftingError> {
    /// let frame = synth::ct_phantom(64, 64, 12, 1);
    /// let rect = TileRect { x: 16, y: 8, width: 31, height: 27 };
    /// let tile = frame.view_rect(rect)?;
    /// let lifting = Lifting53::new(3)?;
    /// // Identical to transforming an owned copy of the tile.
    /// assert_eq!(lifting.forward_view(&tile)?, lifting.forward(&frame.crop(rect)?)?);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Currently infallible for any valid view; the `Result` is kept for
    /// API stability.
    pub fn forward_view(&self, view: &ImageView<'_>) -> Result<LiftingCoefficients, LiftingError> {
        let width = view.width();
        let height = view.height();
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            data.extend_from_slice(view.row(y));
        }
        let mut cur_w = width;
        let mut cur_h = height;
        for _ in 0..self.scales {
            forward_scale(&mut data, width, cur_w, cur_h);
            cur_w = cur_w.div_ceil(2);
            cur_h = cur_h.div_ceil(2);
        }
        Ok(LiftingCoefficients {
            data,
            width,
            height,
            scales: self.scales,
            input_bit_depth: view.bit_depth(),
        })
    }

    /// Inverse reversible transform.
    ///
    /// # Errors
    ///
    /// Returns [`LiftingError::ConfigurationMismatch`] if the coefficients
    /// carry a different depth, or an image error if the reconstructed
    /// samples fall outside the original bit depth (impossible for
    /// coefficients produced by [`Lifting53::forward`]).
    pub fn inverse(&self, coeffs: &LiftingCoefficients) -> Result<Image, LiftingError> {
        let data = self.inverse_raw(coeffs)?;
        Ok(Image::from_samples(coeffs.width, coeffs.height, coeffs.input_bit_depth, data)?)
    }

    /// Inverse transform returning the raw row-major sample buffer *without*
    /// the bit-depth range validation of [`Lifting53::inverse`]. The 3-D
    /// codec decodes each z-coefficient plane through this path — those
    /// planes hold signed z-transform coefficients, not pixels, and only
    /// after the inverse z pass do the values return to the pixel range
    /// (where the volume container validates them).
    ///
    /// # Errors
    ///
    /// Returns [`LiftingError::ConfigurationMismatch`] if the coefficients
    /// carry a different decomposition depth.
    pub fn inverse_raw(&self, coeffs: &LiftingCoefficients) -> Result<Vec<i32>, LiftingError> {
        if coeffs.scales != self.scales {
            return Err(LiftingError::ConfigurationMismatch(format!(
                "coefficients have {} scales but the transform expects {}",
                coeffs.scales, self.scales
            )));
        }
        let width = coeffs.width;
        let height = coeffs.height;
        let mut data = coeffs.data.clone();
        for s in (1..=self.scales).rev() {
            let cur_w = scaled_dim(width, s - 1);
            let cur_h = scaled_dim(height, s - 1);
            inverse_scale(&mut data, width, cur_w, cur_h);
        }
        Ok(data)
    }

    /// Inverse transform scattered into a window of an existing frame — the
    /// decode counterpart of [`Lifting53::forward_view`], used by the tiled
    /// decoder to place reconstructed tiles into the output frame. The
    /// reconstruction itself runs on a tile-sized working buffer (whose
    /// samples are range-validated exactly like [`Lifting53::inverse`])
    /// before the rows are copied into the window; nothing outside the
    /// window is touched.
    ///
    /// # Errors
    ///
    /// Everything [`Lifting53::inverse`] reports, plus
    /// [`LiftingError::ConfigurationMismatch`] if the window's shape or bit
    /// depth differs from the coefficients'.
    pub fn inverse_into(
        &self,
        coeffs: &LiftingCoefficients,
        out: &mut ImageViewMut<'_>,
    ) -> Result<(), LiftingError> {
        if out.width() != coeffs.width || out.height() != coeffs.height {
            return Err(LiftingError::ConfigurationMismatch(format!(
                "coefficients are {}x{} but the target window is {}x{}",
                coeffs.width,
                coeffs.height,
                out.width(),
                out.height()
            )));
        }
        if out.bit_depth() != coeffs.input_bit_depth {
            return Err(LiftingError::ConfigurationMismatch(format!(
                "coefficients carry {}-bit pixels but the target window is {}-bit",
                coeffs.input_bit_depth,
                out.bit_depth()
            )));
        }
        let image = self.inverse(coeffs)?;
        out.copy_from_image(&image)?;
        Ok(())
    }

    /// Convenience round trip used by tests and examples.
    ///
    /// # Errors
    ///
    /// See [`Lifting53::forward`] and [`Lifting53::inverse`].
    pub fn roundtrip(&self, image: &Image) -> Result<Image, LiftingError> {
        let c = self.forward(image)?;
        self.inverse(&c)
    }
}

fn forward_scale(data: &mut [i32], stride: usize, cur_w: usize, cur_h: usize) {
    if cur_w >= 2 {
        let a_w = cur_w.div_ceil(2);
        let mut row = vec![0i32; cur_w];
        for y in 0..cur_h {
            let base = y * stride;
            row.copy_from_slice(&data[base..base + cur_w]);
            let (a, d) = forward_53(&row);
            data[base..base + a_w].copy_from_slice(&a);
            data[base + a_w..base + cur_w].copy_from_slice(&d);
        }
    }
    if cur_h >= 2 {
        let a_h = cur_h.div_ceil(2);
        let mut col = vec![0i32; cur_h];
        for x in 0..cur_w {
            for (y, slot) in col.iter_mut().enumerate() {
                *slot = data[y * stride + x];
            }
            let (a, d) = forward_53(&col);
            for (y, &v) in a.iter().enumerate() {
                data[y * stride + x] = v;
            }
            for (y, &v) in d.iter().enumerate() {
                data[(y + a_h) * stride + x] = v;
            }
        }
    }
}

fn inverse_scale(data: &mut [i32], stride: usize, cur_w: usize, cur_h: usize) {
    if cur_h >= 2 {
        let a_h = cur_h.div_ceil(2);
        let mut approx = vec![0i32; a_h];
        let mut detail = vec![0i32; cur_h - a_h];
        for x in 0..cur_w {
            for (y, slot) in approx.iter_mut().enumerate() {
                *slot = data[y * stride + x];
            }
            for (y, slot) in detail.iter_mut().enumerate() {
                *slot = data[(y + a_h) * stride + x];
            }
            let col = inverse_53(&approx, &detail);
            for (y, &v) in col.iter().enumerate() {
                data[y * stride + x] = v;
            }
        }
    }
    if cur_w >= 2 {
        let a_w = cur_w.div_ceil(2);
        let mut approx = vec![0i32; a_w];
        let mut detail = vec![0i32; cur_w - a_w];
        for y in 0..cur_h {
            let base = y * stride;
            approx.copy_from_slice(&data[base..base + a_w]);
            detail.copy_from_slice(&data[base + a_w..base + cur_w]);
            let row = inverse_53(&approx, &detail);
            data[base..base + cur_w].copy_from_slice(&row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_image::{stats, synth, TileRect};

    #[test]
    fn roundtrip_is_exact_on_all_workloads() {
        let lifting = Lifting53::new(4).unwrap();
        for image in [
            synth::random_image(64, 64, 12, 1),
            synth::ct_phantom(64, 64, 12, 2),
            synth::mr_slice(64, 64, 12, 3),
            synth::checkerboard(64, 64, 12, 1),
            synth::gradient(64, 64, 12),
        ] {
            let back = lifting.roundtrip(&image).unwrap();
            assert_eq!(stats::max_abs_diff(&image, &back).unwrap(), 0);
        }
    }

    #[test]
    fn rectangular_and_deep_decompositions_work() {
        let lifting = Lifting53::new(6).unwrap();
        let image = synth::random_image(128, 64, 12, 5);
        let back = lifting.roundtrip(&image).unwrap();
        assert_eq!(stats::max_abs_diff(&image, &back).unwrap(), 0);
    }

    #[test]
    fn ragged_odd_and_prime_dimensions_roundtrip() {
        // The generalized pyramid: odd, prime and single-sample dimensions
        // all decompose and reconstruct exactly, at any depth.
        for (w, h) in [(37, 53), (1, 1), (1, 17), (17, 1), (3, 3), (101, 63), (64, 37), (2, 5)] {
            for scales in [1u32, 2, 3, 6] {
                let lifting = Lifting53::new(scales).unwrap();
                let image = synth::random_image(w, h, 12, (w * h) as u64 + scales as u64);
                let back = lifting.roundtrip(&image).unwrap();
                assert_eq!(
                    stats::max_abs_diff(&image, &back).unwrap(),
                    0,
                    "{w}x{h} at {scales} scales"
                );
            }
        }
    }

    #[test]
    fn forward_view_matches_owned_tile_transform() {
        let frame = synth::ct_phantom(96, 80, 12, 9);
        let lifting = Lifting53::new(3).unwrap();
        for rect in [
            TileRect { x: 0, y: 0, width: 32, height: 32 },
            TileRect { x: 33, y: 17, width: 31, height: 29 },
            TileRect { x: 95, y: 0, width: 1, height: 80 },
        ] {
            let via_view = lifting.forward_view(&frame.view_rect(rect).unwrap()).unwrap();
            let via_copy = lifting.forward(&frame.crop(rect).unwrap()).unwrap();
            assert_eq!(via_view, via_copy, "{rect:?}");
        }
    }

    #[test]
    fn inverse_into_scatters_tiles_into_a_frame() {
        let lifting = Lifting53::new(2).unwrap();
        let tile = synth::mr_slice(24, 17, 12, 4);
        let coeffs = lifting.forward(&tile).unwrap();
        let mut frame = Image::zeros(60, 40, 12).unwrap();
        let rect = TileRect { x: 30, y: 20, width: 24, height: 17 };
        lifting.inverse_into(&coeffs, &mut frame.view_rect_mut(rect).unwrap()).unwrap();
        assert_eq!(frame.crop(rect).unwrap(), tile);
        // Mismatched window shape and bit depth are configuration errors.
        let wrong = TileRect { x: 0, y: 0, width: 23, height: 17 };
        assert!(matches!(
            lifting.inverse_into(&coeffs, &mut frame.view_rect_mut(wrong).unwrap()),
            Err(LiftingError::ConfigurationMismatch(_))
        ));
        let mut depth8 = Image::zeros(24, 17, 8).unwrap();
        assert!(matches!(
            lifting.inverse_into(&coeffs, &mut depth8.view_mut()),
            Err(LiftingError::ConfigurationMismatch(_))
        ));
    }

    #[test]
    fn detail_subbands_of_smooth_images_are_small() {
        let lifting = Lifting53::new(2).unwrap();
        let coeffs = lifting.forward(&synth::gradient(64, 64, 12)).unwrap();
        for band in 1..=3 {
            let max = coeffs.subband(1, band).iter().map(|v| v.abs()).max().unwrap();
            // The gradient steps by ~65 grey levels per pixel; detail stays
            // within a couple of steps (mirror boundary doubles one of them),
            // i.e. tiny compared with the 4095 dynamic range.
            assert!(max <= 150, "band {band}: max {max}");
        }
        // The approximation keeps the DC level (unlike the √2-gain banks).
        let approx = coeffs.subband(2, 0);
        let max_in = 4095;
        assert!(approx.iter().all(|&v| v.abs() <= 2 * max_in));
    }

    #[test]
    fn ragged_subbands_partition_the_layout() {
        let lifting = Lifting53::new(3).unwrap();
        let image = synth::random_image(37, 21, 12, 8);
        let coeffs = lifting.forward(&image).unwrap();
        // Per scale, the four bands cover the parent region exactly.
        for scale in 1..=3u32 {
            let parent = scaled_dim(37, scale - 1) * scaled_dim(21, scale - 1);
            let total: usize = (0..=3).map(|b| coeffs.subband(scale, b).len()).sum();
            assert_eq!(total, parent, "scale {scale}");
        }
        // A one-wide image has empty horizontal details.
        let thin = Lifting53::new(2).unwrap().forward(&synth::flat(1, 9, 8, 3)).unwrap();
        assert!(thin.subband(1, 1).is_empty());
        assert!(thin.subband(1, 3).is_empty());
        assert_eq!(thin.subband(1, 0).len(), 5);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(Lifting53::new(0).is_err());
        let coeffs = Lifting53::new(2).unwrap().forward(&synth::flat(32, 32, 8, 1)).unwrap();
        assert!(matches!(
            Lifting53::new(3).unwrap().inverse(&coeffs),
            Err(LiftingError::ConfigurationMismatch(_))
        ));
        assert!(matches!(
            LiftingCoefficients::from_raw(vec![0; 10], 4, 4, 1, 8),
            Err(LiftingError::ConfigurationMismatch(_))
        ));
        assert!(matches!(
            LiftingCoefficients::from_raw(vec![0; 16], 4, 4, 0, 8),
            Err(LiftingError::NoScales)
        ));
    }

    #[test]
    fn accessors_report_geometry() {
        let lifting = Lifting53::new(2).unwrap();
        assert_eq!(lifting.scales(), 2);
        let coeffs = lifting.forward(&synth::flat(32, 16, 12, 5)).unwrap();
        assert_eq!(coeffs.width(), 32);
        assert_eq!(coeffs.height(), 16);
        assert_eq!(coeffs.scales(), 2);
        assert_eq!(coeffs.input_bit_depth(), 12);
        assert_eq!(coeffs.data().len(), 512);
        assert_eq!(coeffs.subband(1, 3).len(), 16 * 8);
    }

    #[test]
    fn flat_image_detail_is_zero_and_approx_preserves_level() {
        let lifting = Lifting53::new(3).unwrap();
        let coeffs = lifting.forward(&synth::flat(64, 64, 12, 1000)).unwrap();
        for s in 1..=3 {
            for band in 1..=3 {
                assert!(coeffs.subband(s, band).iter().all(|&v| v == 0));
            }
        }
        assert!(coeffs.subband(3, 0).iter().all(|&v| v == 1000));
    }
}
