//! Subband geometry of the ragged (any-dimension) pyramid decomposition.
//!
//! Each analysis pass splits the active `w x h` region into a
//! `ceil(w/2) x ceil(h/2)` approximation and three detail bands holding the
//! remaining samples; the approximation becomes the next pass's region. For
//! dimensions divisible by `2^scales` this reduces to the classic halving
//! pyramid (`w >> scale` everywhere), which is how the generalized codec
//! stays byte-identical to the original on previously supported inputs.
//!
//! These helpers are the single source of truth for that geometry, shared by
//! the transform ([`crate::Lifting53`]), the sequential entropy codec and the
//! per-subband parallel decoder in `lwc-pipeline`.

use lwc_image::TileRect;

/// Side length of the active region at `scale`: `ceil(n / 2^scale)`, never
/// below 1 for `n >= 1`.
///
/// ```
/// use lwc_lifting::geometry::scaled_dim;
///
/// assert_eq!(scaled_dim(512, 3), 64);   // divisible: plain shift
/// assert_eq!(scaled_dim(37, 1), 19);    // ragged: rounds up
/// assert_eq!(scaled_dim(37, 6), 1);     // saturates at one sample
/// ```
#[must_use]
pub fn scaled_dim(n: usize, scale: u32) -> usize {
    let mut n = n;
    for _ in 0..scale {
        if n <= 1 {
            break;
        }
        n = n.div_ceil(2);
    }
    n
}

/// The rectangle of subband `(scale, band)` inside the Mallat layout of a
/// `width x height` decomposition. `band` follows the workspace convention:
/// 0 = approximation, 1 = horizontal detail, 2 = vertical detail,
/// 3 = diagonal detail.
///
/// Detail rectangles may be empty once a dimension has contracted to one
/// sample — the codec serializes such bands as zero samples.
///
/// # Panics
///
/// Panics if `scale` is zero or `band > 3`.
#[must_use]
pub fn band_rect(width: usize, height: usize, scale: u32, band: usize) -> TileRect {
    assert!(scale >= 1, "subbands exist from scale 1");
    assert!(band <= 3, "band {band} out of range");
    let parent_w = scaled_dim(width, scale - 1);
    let parent_h = scaled_dim(height, scale - 1);
    let aw = parent_w.div_ceil(2);
    let ah = parent_h.div_ceil(2);
    let (dw, dh) = (parent_w - aw, parent_h - ah);
    match band {
        0 => TileRect { x: 0, y: 0, width: aw, height: ah },
        1 => TileRect { x: aw, y: 0, width: dw, height: ah },
        2 => TileRect { x: 0, y: ah, width: aw, height: dh },
        _ => TileRect { x: aw, y: ah, width: dw, height: dh },
    }
}

/// Sample count of subband `(scale, band)`; see [`band_rect`].
///
/// # Panics
///
/// Panics if `scale` is zero or `band > 3`.
#[must_use]
pub fn band_len(width: usize, height: usize, scale: u32, band: usize) -> usize {
    band_rect(width, height, scale, band).pixel_count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisible_dimensions_reduce_to_the_classic_pyramid() {
        for scale in 1..=5u32 {
            assert_eq!(scaled_dim(512, scale), 512 >> scale);
            for band in 0..=3usize {
                let rect = band_rect(512, 256, scale, band);
                let (w, h) = (512 >> scale, 256 >> scale);
                assert_eq!((rect.width, rect.height), (w, h), "scale {scale} band {band}");
                let expected = match band {
                    0 => (0, 0),
                    1 => (w, 0),
                    2 => (0, h),
                    _ => (w, h),
                };
                assert_eq!((rect.x, rect.y), expected);
                assert_eq!(band_len(512, 256, scale, band), w * h);
            }
        }
    }

    #[test]
    fn ragged_bands_tile_the_parent_region_exactly() {
        for (w, h) in [(37usize, 53usize), (1, 1), (2, 1), (7, 8), (101, 1), (640, 480)] {
            for scale in 1..=6u32 {
                let parent = scaled_dim(w, scale - 1) * scaled_dim(h, scale - 1);
                let total: usize = (0..=3).map(|b| band_len(w, h, scale, b)).sum();
                assert_eq!(total, parent, "{w}x{h} scale {scale}");
                // The four rectangles partition the parent region.
                let a = band_rect(w, h, scale, 0);
                let hdet = band_rect(w, h, scale, 1);
                let vdet = band_rect(w, h, scale, 2);
                assert_eq!(a.right(), hdet.x);
                assert_eq!(a.bottom(), vdet.y);
                assert_eq!(a.width + hdet.width, scaled_dim(w, scale - 1));
                assert_eq!(a.height + vdet.height, scaled_dim(h, scale - 1));
            }
        }
    }

    #[test]
    fn one_sample_dimensions_have_empty_details() {
        assert_eq!(scaled_dim(1, 0), 1);
        assert_eq!(scaled_dim(1, 9), 1);
        let rect = band_rect(1, 8, 1, 1);
        assert!(rect.is_empty());
        assert_eq!(band_len(1, 8, 1, 0), 4);
        assert_eq!(band_len(1, 1, 3, 0), 1);
        assert_eq!(band_len(1, 1, 3, 3), 0);
    }

    #[test]
    #[should_panic(expected = "scale 1")]
    fn scale_zero_is_rejected() {
        let _ = band_rect(8, 8, 0, 0);
    }
}
