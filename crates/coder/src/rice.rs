//! Rice/Golomb coding of signed integers.
//!
//! Wavelet detail coefficients of natural and medical images follow sharply
//! peaked, roughly two-sided-geometric distributions, for which Rice codes
//! (Golomb codes with a power-of-two parameter) are within a few percent of
//! the entropy at negligible computational cost — which is why JPEG-LS and
//! CCSDS use them. Signed values are mapped to unsigned ones with the usual
//! zig-zag map before coding.

use crate::bitio::{BitReader, BitWriter};
use crate::CoderError;

/// Largest Rice parameter the coder will choose or accept.
pub const MAX_RICE_PARAMETER: u32 = 30;

/// Maps a signed integer onto a non-negative one (0, -1, 1, -2, 2, … →
/// 0, 1, 2, 3, 4, …).
#[must_use]
#[inline]
pub fn zigzag_encode(value: i32) -> u64 {
    ((i64::from(value) << 1) ^ (i64::from(value) >> 31)) as u64
}

/// Inverse of [`zigzag_encode`].
#[must_use]
#[inline]
pub fn zigzag_decode(value: u64) -> i32 {
    ((value >> 1) as i64 ^ -((value & 1) as i64)) as i32
}

/// Chooses the Rice parameter that minimizes the coded length of `values`
/// under the standard mean-based rule.
#[must_use]
pub fn optimal_parameter(values: &[i32]) -> u32 {
    if values.is_empty() {
        return 0;
    }
    let mean: f64 =
        values.iter().map(|&v| zigzag_encode(v) as f64).sum::<f64>() / values.len() as f64;
    parameter_for_mean(mean)
}

/// [`optimal_parameter`] from the sum and count of zig-zag mapped values.
///
/// For up to `2^21` values the integer sum is exactly the sequential `f64`
/// sum [`optimal_parameter`] computes (every partial sum stays below
/// `2^53`), so both select the same parameter and the stream stays
/// byte-identical.
#[must_use]
pub fn parameter_for_zigzag_sum(sum: u64, count: usize) -> u32 {
    if count == 0 {
        return 0;
    }
    parameter_for_mean(sum as f64 / count as f64)
}

fn parameter_for_mean(mean: f64) -> u32 {
    let mut k = 0;
    while k < MAX_RICE_PARAMETER && (1u64 << (k + 1)) as f64 <= mean + 1.0 {
        k += 1;
    }
    k
}

/// Writes one value with Rice parameter `k`.
///
/// The unary quotient is unbounded for arbitrary `(value, k)` pairs, but
/// when `k` comes from [`optimal_parameter`] over the block containing
/// `value` the run never exceeds [`crate::MAX_UNARY_RUN_BITS`] bits (see the
/// derivation there), which is why the stream format needs no escape code.
pub fn encode_value(writer: &mut BitWriter, value: i32, k: u32) {
    encode_zigzag(writer, zigzag_encode(value), k);
}

/// Writes one already zig-zag mapped value with Rice parameter `k`.
#[inline]
pub fn encode_zigzag(writer: &mut BitWriter, u: u64, k: u32) {
    let quotient = u >> k;
    let remainder = u & ((1u64 << k) - 1);
    let total = quotient + 1 + u64::from(k);
    if total <= 57 {
        // Fast path: the whole codeword — `quotient` ones, the zero
        // terminator, then the remainder — fits one `write_bits` field.
        writer.write_bits((((1 << (quotient + 1)) - 2) << k) | remainder, total as u32);
    } else {
        writer.write_unary(quotient);
        writer.write_bits(remainder, k);
    }
}

/// Reads one value coded with Rice parameter `k`.
///
/// # Errors
///
/// Returns [`CoderError::MalformedStream`] at end of input.
#[inline]
pub fn decode_value(reader: &mut BitReader<'_>, k: u32) -> Result<i32, CoderError> {
    let (quotient, remainder) = reader.read_unary_then_bits(k)?;
    Ok(zigzag_decode((quotient << k) | remainder))
}

/// Encodes a whole slice with a single parameter, returning the number of
/// bits written.
pub fn encode_slice(writer: &mut BitWriter, values: &[i32], k: u32) -> u64 {
    let before = writer.bit_len();
    for &v in values {
        encode_value(writer, v, k);
    }
    writer.bit_len() - before
}

/// Decodes `count` values coded with parameter `k`.
///
/// # Errors
///
/// Returns [`CoderError::MalformedStream`] at end of input.
pub fn decode_slice(
    reader: &mut BitReader<'_>,
    count: usize,
    k: u32,
) -> Result<Vec<i32>, CoderError> {
    let mut out = Vec::with_capacity(count);
    decode_into(reader, &mut out, count, k)?;
    Ok(out)
}

/// Decodes `count` values coded with parameter `k`, appending them to `out`
/// without any intermediate allocation (the per-block hot path of the
/// subband decoder).
///
/// # Errors
///
/// Returns [`CoderError::MalformedStream`] at end of input.
pub fn decode_into(
    reader: &mut BitReader<'_>,
    out: &mut Vec<i32>,
    count: usize,
    k: u32,
) -> Result<(), CoderError> {
    // Grow once and write through the slice so the hot loop has no growth
    // checks. On error the zero-filled tail is discarded by the caller along
    // with the rest of the output.
    let start = out.len();
    out.resize(start + count, 0);
    for slot in &mut out[start..] {
        *slot = decode_value(reader, k)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn zigzag_is_a_bijection_on_interesting_values() {
        for v in [-1_000_000, -4096, -3, -1, 0, 1, 2, 4095, 1_000_000, i32::MIN, i32::MAX] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
    }

    #[test]
    fn value_roundtrip_over_parameters() {
        for k in [0u32, 1, 3, 7, 12] {
            let mut w = BitWriter::new();
            let values = [-100, -5, -1, 0, 1, 4, 77, 4095];
            for &v in &values {
                encode_value(&mut w, v, k);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                assert_eq!(decode_value(&mut r, k).unwrap(), v, "k={k}");
            }
        }
    }

    #[test]
    fn wide_parameters_beyond_32_bits_still_roundtrip() {
        // Parameters above MAX_RICE_PARAMETER are rejected by the subband
        // layer but legal through the raw rice API; the decoder must handle
        // remainder fields wider than the combined-read fast path.
        for k in [33u32, 40, 57, 63] {
            let mut w = BitWriter::new();
            let values = [0, 1, -1, i32::MAX, i32::MIN];
            for &v in &values {
                encode_value(&mut w, v, k);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                assert_eq!(decode_value(&mut r, k).unwrap(), v, "k={k}");
            }
        }
    }

    #[test]
    fn slice_roundtrip_with_random_data() {
        let mut rng = StdRng::seed_from_u64(11);
        let values: Vec<i32> = (0..500).map(|_| rng.gen_range(-300..300)).collect();
        let k = optimal_parameter(&values);
        let mut w = BitWriter::new();
        let bits = encode_slice(&mut w, &values, k);
        assert!(bits > 0);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(decode_slice(&mut r, values.len(), k).unwrap(), values);
    }

    #[test]
    fn optimal_parameter_tracks_magnitude() {
        let small = vec![0, 1, -1, 0, 2, -2, 0, 0];
        let large = vec![1000, -900, 1200, -1100, 950, -1050];
        assert!(optimal_parameter(&small) <= 2);
        assert!(optimal_parameter(&large) >= 9);
        assert_eq!(optimal_parameter(&[]), 0);
    }

    #[test]
    fn peaked_distributions_compress_well() {
        // Two-sided geometric-ish data: mostly zeros with occasional spikes.
        let mut rng = StdRng::seed_from_u64(3);
        let values: Vec<i32> =
            (0..4000).map(|_| if rng.gen_bool(0.85) { 0 } else { rng.gen_range(-6..=6) }).collect();
        let k = optimal_parameter(&values);
        let mut w = BitWriter::new();
        encode_slice(&mut w, &values, k);
        let bits_per_sample = w.bit_len() as f64 / values.len() as f64;
        assert!(
            bits_per_sample < 2.5,
            "peaked data should cost well under 2.5 bits/sample, got {bits_per_sample}"
        );
    }

    #[test]
    fn parameter_zero_is_pure_unary() {
        let mut w = BitWriter::new();
        encode_value(&mut w, 2, 0); // zigzag 4 -> 11110
        assert_eq!(w.bit_len(), 5);
    }
}
