//! Rice/Golomb coding of signed integers.
//!
//! Wavelet detail coefficients of natural and medical images follow sharply
//! peaked, roughly two-sided-geometric distributions, for which Rice codes
//! (Golomb codes with a power-of-two parameter) are within a few percent of
//! the entropy at negligible computational cost — which is why JPEG-LS and
//! CCSDS use them. Signed values are mapped to unsigned ones with the usual
//! zig-zag map before coding.

use crate::bitio::{BitReader, BitWriter};
use crate::CoderError;

/// Largest Rice parameter the coder will choose or accept.
pub const MAX_RICE_PARAMETER: u32 = 30;

/// Maps a signed integer onto a non-negative one (0, -1, 1, -2, 2, … →
/// 0, 1, 2, 3, 4, …).
#[must_use]
pub fn zigzag_encode(value: i32) -> u64 {
    ((i64::from(value) << 1) ^ (i64::from(value) >> 31)) as u64
}

/// Inverse of [`zigzag_encode`].
#[must_use]
pub fn zigzag_decode(value: u64) -> i32 {
    ((value >> 1) as i64 ^ -((value & 1) as i64)) as i32
}

/// Chooses the Rice parameter that minimizes the coded length of `values`
/// under the standard mean-based rule.
#[must_use]
pub fn optimal_parameter(values: &[i32]) -> u32 {
    if values.is_empty() {
        return 0;
    }
    let mean: f64 =
        values.iter().map(|&v| zigzag_encode(v) as f64).sum::<f64>() / values.len() as f64;
    let mut k = 0;
    while k < MAX_RICE_PARAMETER && (1u64 << (k + 1)) as f64 <= mean + 1.0 {
        k += 1;
    }
    k
}

/// Writes one value with Rice parameter `k`.
pub fn encode_value(writer: &mut BitWriter, value: i32, k: u32) {
    let u = zigzag_encode(value);
    let quotient = u >> k;
    writer.write_unary(quotient);
    writer.write_bits(u & ((1u64 << k) - 1), k);
}

/// Reads one value coded with Rice parameter `k`.
///
/// # Errors
///
/// Returns [`CoderError::MalformedStream`] at end of input.
pub fn decode_value(reader: &mut BitReader<'_>, k: u32) -> Result<i32, CoderError> {
    let quotient = reader.read_unary()?;
    let remainder = reader.read_bits(k)?;
    Ok(zigzag_decode((quotient << k) | remainder))
}

/// Encodes a whole slice with a single parameter, returning the number of
/// bits written.
pub fn encode_slice(writer: &mut BitWriter, values: &[i32], k: u32) -> u64 {
    let before = writer.bit_len();
    for &v in values {
        encode_value(writer, v, k);
    }
    writer.bit_len() - before
}

/// Decodes `count` values coded with parameter `k`.
///
/// # Errors
///
/// Returns [`CoderError::MalformedStream`] at end of input.
pub fn decode_slice(
    reader: &mut BitReader<'_>,
    count: usize,
    k: u32,
) -> Result<Vec<i32>, CoderError> {
    (0..count).map(|_| decode_value(reader, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn zigzag_is_a_bijection_on_interesting_values() {
        for v in [-1_000_000, -4096, -3, -1, 0, 1, 2, 4095, 1_000_000, i32::MIN, i32::MAX] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
    }

    #[test]
    fn value_roundtrip_over_parameters() {
        for k in [0u32, 1, 3, 7, 12] {
            let mut w = BitWriter::new();
            let values = [-100, -5, -1, 0, 1, 4, 77, 4095];
            for &v in &values {
                encode_value(&mut w, v, k);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                assert_eq!(decode_value(&mut r, k).unwrap(), v, "k={k}");
            }
        }
    }

    #[test]
    fn slice_roundtrip_with_random_data() {
        let mut rng = StdRng::seed_from_u64(11);
        let values: Vec<i32> = (0..500).map(|_| rng.gen_range(-300..300)).collect();
        let k = optimal_parameter(&values);
        let mut w = BitWriter::new();
        let bits = encode_slice(&mut w, &values, k);
        assert!(bits > 0);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(decode_slice(&mut r, values.len(), k).unwrap(), values);
    }

    #[test]
    fn optimal_parameter_tracks_magnitude() {
        let small = vec![0, 1, -1, 0, 2, -2, 0, 0];
        let large = vec![1000, -900, 1200, -1100, 950, -1050];
        assert!(optimal_parameter(&small) <= 2);
        assert!(optimal_parameter(&large) >= 9);
        assert_eq!(optimal_parameter(&[]), 0);
    }

    #[test]
    fn peaked_distributions_compress_well() {
        // Two-sided geometric-ish data: mostly zeros with occasional spikes.
        let mut rng = StdRng::seed_from_u64(3);
        let values: Vec<i32> =
            (0..4000).map(|_| if rng.gen_bool(0.85) { 0 } else { rng.gen_range(-6..=6) }).collect();
        let k = optimal_parameter(&values);
        let mut w = BitWriter::new();
        encode_slice(&mut w, &values, k);
        let bits_per_sample = w.bit_len() as f64 / values.len() as f64;
        assert!(
            bits_per_sample < 2.5,
            "peaked data should cost well under 2.5 bits/sample, got {bits_per_sample}"
        );
    }

    #[test]
    fn parameter_zero_is_pure_unary() {
        let mut w = BitWriter::new();
        encode_value(&mut w, 2, 0); // zigzag 4 -> 11110
        assert_eq!(w.bit_len(), 5);
    }
}
