//! Subband-by-subband serialization of a multi-scale decomposition.
//!
//! Wavelet detail subbands of medical images are mostly near-zero noise with
//! localized heavy tails along tissue boundaries. A single Rice parameter per
//! subband would be dragged up by those edges, so the codec is
//! **block adaptive** (as in CCSDS 121 / JPEG-LS run mode): the subband is
//! split into fixed-size blocks and every block carries its own 5-bit
//! parameter chosen to minimize that block's cost.

use crate::bitio::{BitReader, BitWriter};
use crate::rice::{self, MAX_RICE_PARAMETER};
use crate::CoderError;

/// Number of samples coded with one shared Rice parameter.
pub const BLOCK_SIZE: usize = 64;

/// Upper bound on the unary run length (quotient plus terminator, in bits) of
/// any value the block-adaptive encoder emits — for **any** `i32` input, not
/// just plan-conformant coefficients.
///
/// Why no escape code is needed: within a block of `B <= BLOCK_SIZE` samples
/// the parameter is `k = optimal_parameter(block)`, which satisfies
/// `2^(k+1) > mean + 1` unless capped at [`MAX_RICE_PARAMETER`]. For any
/// zig-zagged value `u` in the block, `u <= sum(u_i) = B * mean`, so the
/// quotient obeys
///
/// ```text
/// u >> k  <=  u / 2^k  <  2u / (mean + 1)  <=  2 * B * mean / (mean + 1)  <  2B
/// ```
///
/// and in the capped case `k = 30` the largest zig-zag value (`2^32 - 1`,
/// from `i32::MIN`) still quotients to at most 3. The run is therefore at
/// most `max(2B, 4) <= 2 * BLOCK_SIZE` bits, which the tests below exercise
/// with adversarial blocks. This is why the stream format can stay
/// escape-free (and byte-stable) while [`crate::bitio::BitWriter::write_unary`]
/// never sees a pathological run from the encoder.
pub const MAX_UNARY_RUN_BITS: u64 = 2 * BLOCK_SIZE as u64;

/// Encodes/decodes the subbands of an integer wavelet decomposition with a
/// block-adaptive Rice code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubbandCodec;

impl SubbandCodec {
    /// Creates a codec.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Encodes one subband as a sequence of `BLOCK_SIZE` (64) sample blocks,
    /// each preceded by its 5-bit Rice parameter. Returns the number of bits
    /// written.
    pub fn encode_subband(self, writer: &mut BitWriter, samples: &[i32]) -> u64 {
        let before = writer.bit_len();
        for block in samples.chunks(BLOCK_SIZE) {
            encode_block(writer, block);
        }
        writer.bit_len() - before
    }

    /// Decodes one subband of `count` samples.
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] if the stream is truncated or
    /// a stored parameter is out of range.
    pub fn decode_subband(
        self,
        reader: &mut BitReader<'_>,
        count: usize,
    ) -> Result<Vec<i32>, CoderError> {
        let mut out = Vec::with_capacity(count);
        let mut remaining = count;
        while remaining > 0 {
            let block_len = remaining.min(BLOCK_SIZE);
            let k = reader.read_bits(5)? as u32;
            if k > MAX_RICE_PARAMETER {
                return Err(CoderError::MalformedStream(format!(
                    "rice parameter {k} exceeds the supported maximum"
                )));
            }
            rice::decode_into(reader, &mut out, block_len, k)?;
            remaining -= block_len;
        }
        Ok(out)
    }

    /// Advances `reader` past one subband of `count` samples without
    /// materializing the values (the unary prefixes still have to be scanned,
    /// but the remainders are skipped in one hop per value and nothing is
    /// zig-zag decoded or collected).
    ///
    /// This is how the parallel decoder builds its subband directory from a
    /// plain sequential stream: one cheap scan finds every subband's bit
    /// offset, then the subbands decode concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] if the stream is truncated or
    /// a stored parameter is out of range.
    pub fn skip_subband(self, reader: &mut BitReader<'_>, count: usize) -> Result<(), CoderError> {
        let mut remaining = count;
        while remaining > 0 {
            let block_len = remaining.min(BLOCK_SIZE);
            let k = reader.read_bits(5)? as u32;
            if k > MAX_RICE_PARAMETER {
                return Err(CoderError::MalformedStream(format!(
                    "rice parameter {k} exceeds the supported maximum"
                )));
            }
            for _ in 0..block_len {
                reader.read_unary()?;
                reader.skip_bits(u64::from(k))?;
            }
            remaining -= block_len;
        }
        Ok(())
    }
}

/// Encodes one block (at most [`BLOCK_SIZE`] samples): the 5-bit Rice
/// parameter chosen by the block-mean rule, then the zig-zagged values.
///
/// Zig-zags the block once into a stack scratch, summing for the parameter
/// rule in the same pass; the value coder then consumes the mapped values
/// without re-mapping. Shared by [`SubbandCodec::encode_subband`] and
/// [`StreamingSubbandEncoder`], so the streamed and one-shot encodings are
/// the same code, not merely equivalent.
fn encode_block(writer: &mut BitWriter, block: &[i32]) {
    debug_assert!(!block.is_empty() && block.len() <= BLOCK_SIZE);
    let mut zigzag = [0u64; BLOCK_SIZE];
    let mut sum = 0u64;
    for (slot, &v) in zigzag.iter_mut().zip(block) {
        let u = rice::zigzag_encode(v);
        *slot = u;
        sum += u;
    }
    let mapped = &zigzag[..block.len()];
    let k = rice::parameter_for_zigzag_sum(sum, mapped.len());
    writer.write_bits(u64::from(k), 5);
    for &u in mapped {
        rice::encode_zigzag(writer, u, k);
    }
}

/// Incremental counterpart of [`SubbandCodec::encode_subband`] for one
/// subband: samples are pushed in arbitrarily sized batches (e.g. row by row
/// from a line-based transform) and encoded block by block as soon as a full
/// [`BLOCK_SIZE`] block accumulates, so at most one partial block is ever
/// buffered.
///
/// Because the block-adaptive code is strictly sequential per subband — each
/// block's parameter depends only on that block — the finished bitstream is
/// **bit-identical** to a one-shot [`SubbandCodec::encode_subband`] over the
/// concatenated samples; the tests below diff ragged push schedules against
/// the one-shot encoder.
#[derive(Debug, Default)]
pub struct StreamingSubbandEncoder {
    writer: BitWriter,
    pending: Vec<i32>,
}

impl StreamingSubbandEncoder {
    /// Creates an encoder for one subband.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends samples, encoding every full block they complete.
    pub fn push(&mut self, mut samples: &[i32]) {
        if !self.pending.is_empty() {
            let need = BLOCK_SIZE - self.pending.len();
            let take = need.min(samples.len());
            self.pending.extend_from_slice(&samples[..take]);
            samples = &samples[take..];
            if self.pending.len() == BLOCK_SIZE {
                encode_block(&mut self.writer, &self.pending);
                self.pending.clear();
            }
        }
        let mut chunks = samples.chunks_exact(BLOCK_SIZE);
        for block in &mut chunks {
            encode_block(&mut self.writer, block);
        }
        self.pending.extend_from_slice(chunks.remainder());
    }

    /// Samples buffered awaiting a full block (always below [`BLOCK_SIZE`]).
    #[must_use]
    pub fn buffered_samples(&self) -> usize {
        self.pending.len()
    }

    /// Bits emitted so far (excluding the buffered partial block).
    #[must_use]
    pub fn encoded_bits(&self) -> u64 {
        self.writer.bit_len()
    }

    /// Encodes the final partial block, if any, and returns the subband's
    /// bitstream as `(bytes, exact bit length)` — ready for
    /// [`BitWriter::append`]-style splicing into a stream.
    #[must_use]
    pub fn finish(mut self) -> (Vec<u8>, u64) {
        if !self.pending.is_empty() {
            encode_block(&mut self.writer, &self.pending);
        }
        let bits = self.writer.bit_len();
        (self.writer.into_bytes(), bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn streaming_encoder_matches_one_shot_for_ragged_pushes() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<i32> = (0..1000).map(|_| rng.gen_range(-5000..5000)).collect();
        let mut reference = BitWriter::new();
        let reference_bits = SubbandCodec::new().encode_subband(&mut reference, &samples);

        for push_sizes in [vec![1000], vec![1; 1000], vec![37, 64, 640, 259], vec![63, 65, 872]] {
            let mut enc = StreamingSubbandEncoder::new();
            let mut offset = 0;
            for size in push_sizes {
                enc.push(&samples[offset..offset + size]);
                offset += size;
                assert!(enc.buffered_samples() < BLOCK_SIZE);
            }
            assert_eq!(offset, samples.len());
            let (bytes, bits) = enc.finish();
            assert_eq!(bits, reference_bits);
            assert_eq!(bytes, reference.clone().into_bytes());
        }
    }

    #[test]
    fn streaming_encoder_handles_the_empty_subband() {
        let enc = StreamingSubbandEncoder::new();
        let (bytes, bits) = enc.finish();
        assert!(bytes.is_empty());
        assert_eq!(bits, 0);
    }

    #[test]
    fn subband_roundtrip() {
        let codec = SubbandCodec::new();
        let mut rng = StdRng::seed_from_u64(1);
        let bands: Vec<Vec<i32>> = (0..6)
            .map(|scale| {
                let spread = 1 << scale;
                (0..300).map(|_| rng.gen_range(-spread..=spread)).collect()
            })
            .collect();
        let mut w = BitWriter::new();
        for band in &bands {
            assert!(codec.encode_subband(&mut w, band) > 0);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for band in &bands {
            assert_eq!(codec.decode_subband(&mut r, band.len()).unwrap(), *band);
        }
    }

    #[test]
    fn sparse_subbands_cost_little() {
        let codec = SubbandCodec::new();
        let band = vec![0i32; 4096];
        let mut w = BitWriter::new();
        let bits = codec.encode_subband(&mut w, &band);
        let blocks = band.len().div_ceil(BLOCK_SIZE) as u64;
        assert!(
            bits <= 5 * blocks + band.len() as u64,
            "all-zero subband should cost about one bit per sample plus headers"
        );
    }

    #[test]
    fn block_adaptation_beats_a_single_parameter() {
        // Mostly tiny values with one block of large "edge" coefficients: the
        // block-adaptive code must not let the edges inflate the cost of the
        // quiet blocks.
        let mut samples = vec![0i32; 1024];
        for (i, v) in samples.iter_mut().enumerate() {
            *v = if (512..576).contains(&i) { 2000 } else { (i % 3) as i32 - 1 };
        }
        let codec = SubbandCodec::new();
        let mut w = BitWriter::new();
        let adaptive_bits = codec.encode_subband(&mut w, &samples);

        let mut single = BitWriter::new();
        let k = rice::optimal_parameter(&samples);
        rice::encode_slice(&mut single, &samples, k);
        let single_bits = single.bit_len();

        assert!(
            adaptive_bits < single_bits / 2,
            "adaptive {adaptive_bits} bits vs single-parameter {single_bits} bits"
        );
    }

    #[test]
    fn corrupt_parameter_is_rejected() {
        let codec = SubbandCodec::new();
        let mut w = BitWriter::new();
        w.write_bits(31, 5); // parameter above MAX_RICE_PARAMETER
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(codec.decode_subband(&mut r, 4).is_err());
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let codec = SubbandCodec::new();
        let mut w = BitWriter::new();
        codec.encode_subband(&mut w, &[5, -5, 9, -9]);
        let mut bytes = w.into_bytes();
        bytes.truncate(1);
        let mut r = BitReader::new(&bytes);
        assert!(codec.decode_subband(&mut r, 4).is_err());
    }

    #[test]
    fn skip_subband_lands_exactly_on_the_next_subband() {
        let codec = SubbandCodec::new();
        let mut rng = StdRng::seed_from_u64(9);
        let first: Vec<i32> = (0..333).map(|_| rng.gen_range(-4000..4000)).collect();
        let second: Vec<i32> = (0..100).map(|_| rng.gen_range(-7..7)).collect();
        let mut w = BitWriter::new();
        codec.encode_subband(&mut w, &first);
        let first_bits = w.bit_len();
        codec.encode_subband(&mut w, &second);
        let bytes = w.into_bytes();

        let mut r = BitReader::new(&bytes);
        codec.skip_subband(&mut r, first.len()).unwrap();
        assert_eq!(r.bits_read(), first_bits);
        assert_eq!(codec.decode_subband(&mut r, second.len()).unwrap(), second);
    }

    #[test]
    fn skip_subband_rejects_truncation_and_bad_parameters() {
        let codec = SubbandCodec::new();
        let mut w = BitWriter::new();
        codec.encode_subband(&mut w, &[100, -100, 300, -300]);
        let mut bytes = w.into_bytes();
        bytes.truncate(1);
        let mut r = BitReader::new(&bytes);
        assert!(codec.skip_subband(&mut r, 4).is_err());

        let mut w = BitWriter::new();
        w.write_bits(31, 5);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(codec.skip_subband(&mut r, 4).is_err());
    }

    /// The [`MAX_UNARY_RUN_BITS`] bound: even adversarial blocks — a lone
    /// extreme value among zeros is the worst case for the mean-based
    /// parameter rule — never make the encoder emit a unary run beyond
    /// `2 * BLOCK_SIZE` bits, so no escape code is needed.
    #[test]
    fn encoder_unary_runs_never_exceed_the_documented_bound() {
        let mut adversarial: Vec<Vec<i32>> = vec![
            // Lone spikes that drag the block mean down.
            {
                let mut v = vec![0i32; BLOCK_SIZE];
                v[17] = i32::MIN;
                v
            },
            {
                let mut v = vec![0i32; BLOCK_SIZE];
                v[0] = i32::MAX;
                v
            },
            // Saturated blocks (parameter capped at MAX_RICE_PARAMETER).
            vec![i32::MIN; BLOCK_SIZE],
            vec![i32::MAX; 2 * BLOCK_SIZE + 1],
            // Tiny partial blocks, including the capped single-sample case.
            vec![i32::MIN],
            vec![i32::MAX, 0],
            vec![0, 0, -1, i32::MIN, 1, 0, 0],
        ];
        let mut rng = StdRng::seed_from_u64(21);
        adversarial.extend((0..50).map(|_| {
            let len = rng.gen_range(1..=2 * BLOCK_SIZE);
            (0..len).map(|_| rng.gen_range(i32::MIN..=i32::MAX)).collect::<Vec<i32>>()
        }));

        let codec = SubbandCodec::new();
        for samples in &adversarial {
            let mut w = BitWriter::new();
            codec.encode_subband(&mut w, samples);
            let bytes = w.into_bytes();
            // Re-parse the stream measuring every unary run.
            let mut r = BitReader::new(&bytes);
            let mut remaining = samples.len();
            while remaining > 0 {
                let block_len = remaining.min(BLOCK_SIZE);
                let k = r.read_bits(5).unwrap();
                for _ in 0..block_len {
                    let quotient = r.read_unary().unwrap();
                    assert!(
                        quotient < MAX_UNARY_RUN_BITS,
                        "unary run of {} bits exceeds the bound {MAX_UNARY_RUN_BITS}",
                        quotient + 1
                    );
                    r.skip_bits(k).unwrap();
                }
                remaining -= block_len;
            }
            // And the stream still round-trips.
            let mut r = BitReader::new(&bytes);
            assert_eq!(codec.decode_subband(&mut r, samples.len()).unwrap(), *samples);
        }
    }

    #[test]
    fn partial_final_block_roundtrips() {
        let codec = SubbandCodec::new();
        let samples: Vec<i32> = (0..(BLOCK_SIZE as i32 * 2 + 7)).map(|i| i % 11 - 5).collect();
        let mut w = BitWriter::new();
        codec.encode_subband(&mut w, &samples);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(codec.decode_subband(&mut r, samples.len()).unwrap(), samples);
    }
}
