//! Subband-by-subband serialization of a multi-scale decomposition.
//!
//! Wavelet detail subbands of medical images are mostly near-zero noise with
//! localized heavy tails along tissue boundaries. A single Rice parameter per
//! subband would be dragged up by those edges, so the codec is
//! **block adaptive** (as in CCSDS 121 / JPEG-LS run mode): the subband is
//! split into fixed-size blocks and every block carries its own 5-bit
//! parameter chosen to minimize that block's cost.

use crate::bitio::{BitReader, BitWriter};
use crate::rice::{self, MAX_RICE_PARAMETER};
use crate::CoderError;

/// Number of samples coded with one shared Rice parameter.
pub const BLOCK_SIZE: usize = 64;

/// Encodes/decodes the subbands of an integer wavelet decomposition with a
/// block-adaptive Rice code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubbandCodec;

impl SubbandCodec {
    /// Creates a codec.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Encodes one subband as a sequence of `BLOCK_SIZE` (64) sample blocks,
    /// each preceded by its 5-bit Rice parameter. Returns the number of bits
    /// written.
    pub fn encode_subband(self, writer: &mut BitWriter, samples: &[i32]) -> u64 {
        let before = writer.bit_len();
        for block in samples.chunks(BLOCK_SIZE) {
            let k = rice::optimal_parameter(block);
            writer.write_bits(u64::from(k), 5);
            rice::encode_slice(writer, block, k);
        }
        writer.bit_len() - before
    }

    /// Decodes one subband of `count` samples.
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] if the stream is truncated or
    /// a stored parameter is out of range.
    pub fn decode_subband(
        self,
        reader: &mut BitReader<'_>,
        count: usize,
    ) -> Result<Vec<i32>, CoderError> {
        let mut out = Vec::with_capacity(count);
        let mut remaining = count;
        while remaining > 0 {
            let block_len = remaining.min(BLOCK_SIZE);
            let k = reader.read_bits(5)? as u32;
            if k > MAX_RICE_PARAMETER {
                return Err(CoderError::MalformedStream(format!(
                    "rice parameter {k} exceeds the supported maximum"
                )));
            }
            out.extend(rice::decode_slice(reader, block_len, k)?);
            remaining -= block_len;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn subband_roundtrip() {
        let codec = SubbandCodec::new();
        let mut rng = StdRng::seed_from_u64(1);
        let bands: Vec<Vec<i32>> = (0..6)
            .map(|scale| {
                let spread = 1 << scale;
                (0..300).map(|_| rng.gen_range(-spread..=spread)).collect()
            })
            .collect();
        let mut w = BitWriter::new();
        for band in &bands {
            assert!(codec.encode_subband(&mut w, band) > 0);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for band in &bands {
            assert_eq!(codec.decode_subband(&mut r, band.len()).unwrap(), *band);
        }
    }

    #[test]
    fn sparse_subbands_cost_little() {
        let codec = SubbandCodec::new();
        let band = vec![0i32; 4096];
        let mut w = BitWriter::new();
        let bits = codec.encode_subband(&mut w, &band);
        let blocks = band.len().div_ceil(BLOCK_SIZE) as u64;
        assert!(
            bits <= 5 * blocks + band.len() as u64,
            "all-zero subband should cost about one bit per sample plus headers"
        );
    }

    #[test]
    fn block_adaptation_beats_a_single_parameter() {
        // Mostly tiny values with one block of large "edge" coefficients: the
        // block-adaptive code must not let the edges inflate the cost of the
        // quiet blocks.
        let mut samples = vec![0i32; 1024];
        for (i, v) in samples.iter_mut().enumerate() {
            *v = if (512..576).contains(&i) { 2000 } else { (i % 3) as i32 - 1 };
        }
        let codec = SubbandCodec::new();
        let mut w = BitWriter::new();
        let adaptive_bits = codec.encode_subband(&mut w, &samples);

        let mut single = BitWriter::new();
        let k = rice::optimal_parameter(&samples);
        rice::encode_slice(&mut single, &samples, k);
        let single_bits = single.bit_len();

        assert!(
            adaptive_bits < single_bits / 2,
            "adaptive {adaptive_bits} bits vs single-parameter {single_bits} bits"
        );
    }

    #[test]
    fn corrupt_parameter_is_rejected() {
        let codec = SubbandCodec::new();
        let mut w = BitWriter::new();
        w.write_bits(31, 5); // parameter above MAX_RICE_PARAMETER
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(codec.decode_subband(&mut r, 4).is_err());
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let codec = SubbandCodec::new();
        let mut w = BitWriter::new();
        codec.encode_subband(&mut w, &[5, -5, 9, -9]);
        let mut bytes = w.into_bytes();
        bytes.truncate(1);
        let mut r = BitReader::new(&bytes);
        assert!(codec.decode_subband(&mut r, 4).is_err());
    }

    #[test]
    fn partial_final_block_roundtrips() {
        let codec = SubbandCodec::new();
        let samples: Vec<i32> = (0..(BLOCK_SIZE as i32 * 2 + 7)).map(|i| i % 11 - 5).collect();
        let mut w = BitWriter::new();
        codec.encode_subband(&mut w, &samples);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(codec.decode_subband(&mut r, samples.len()).unwrap(), samples);
    }
}
