//! Bit-level writer and reader over byte buffers.
//!
//! Bits are packed most-significant-bit first inside each byte, which keeps
//! the streams easy to inspect in a hex dump.
//!
//! Both ends work a word at a time instead of a bit at a time: the writer
//! collects bits in a 64-bit accumulator and emits whole bytes, multi-bit
//! fields go through a single shift-and-or, and unary runs are emitted and
//! scanned as whole `0xFF` bytes with `leading_ones` picking out the
//! terminator. The stream layout is unchanged from the original per-bit
//! implementation (the test module keeps that implementation around as a
//! byte-for-byte reference).

use crate::CoderError;

/// Largest field the single-shift fast path of [`BitWriter::write_bits`] can
/// take while the accumulator still holds up to 7 pending bits.
const MAX_SINGLE_SHIFT_BITS: u32 = 57;

/// Accumulates bits into a byte vector.
///
/// Internally the writer keeps up to 7 not-yet-emitted bits right-aligned in
/// a 64-bit accumulator; every write shifts the new field in below them and
/// drains whole bytes into the output buffer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Pending bits, right-aligned; only the low [`Self::pending`] bits are
    /// meaningful (higher bits may hold stale data and are masked on output).
    acc: u64,
    /// Number of valid bits in `acc`; always `< 8` between calls.
    pending: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | u64::from(bit);
        self.pending += 1;
        if self.pending == 8 {
            self.bytes.push(self.acc as u8);
            self.pending = 0;
        }
    }

    /// Writes the `count` least-significant bits of `value`, most significant
    /// of those first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    #[inline]
    pub fn write_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        if count > MAX_SINGLE_SHIFT_BITS {
            // The accumulator may hold up to 7 pending bits, so a single
            // shift only has room for 57 more; split the field once.
            self.write_bits(value >> 32, count - 32);
            self.write_bits(value & 0xFFFF_FFFF, 32);
            return;
        }
        if count == 0 {
            return;
        }
        let masked = value & (u64::MAX >> (64 - count));
        self.acc = (self.acc << count) | masked;
        self.pending += count;
        if self.pending >= 8 {
            // Drain all whole bytes at once instead of a loop per byte (one
            // byte is the common case for short Rice codewords).
            let drained = (self.pending / 8) as usize;
            self.pending %= 8;
            if drained == 1 {
                self.bytes.push((self.acc >> self.pending) as u8);
            } else {
                let aligned = (self.acc >> self.pending) << (64 - 8 * drained as u32);
                self.bytes.extend_from_slice(&aligned.to_be_bytes()[..drained]);
            }
        }
    }

    /// Writes `count` as a unary run (`count` one-bits followed by a zero).
    ///
    /// Long runs are emitted as whole `0xFF` bytes rather than bit by bit;
    /// see [`crate::rice`] for the bound that keeps encoder-produced runs
    /// short in the first place.
    pub fn write_unary(&mut self, count: u64) {
        let mut remaining = count;
        // Top off the partial byte so whole-byte emission can take over.
        if self.pending != 0 {
            let room = u64::from(8 - self.pending);
            if remaining >= room {
                self.write_bits(u64::MAX >> (64 - room), room as u32);
                remaining -= room;
            }
        }
        if self.pending == 0 {
            let whole = remaining / 8;
            self.bytes.resize(self.bytes.len() + whole as usize, 0xFF);
            remaining %= 8;
        }
        // `remaining < 8` here: emit the leftover ones and the terminator in
        // one field (`remaining` ones followed by a zero bit).
        self.write_bits((1 << (remaining + 1)) - 2, remaining as u32 + 1);
    }

    /// Appends the first `bit_len` bits of `bytes` (MSB-first, the layout
    /// [`BitWriter::into_bytes`] produces) to this stream.
    ///
    /// This is the splice primitive of the per-subband parallel codec: each
    /// worker fills its own writer and the fragments are concatenated at
    /// arbitrary bit offsets. When this writer happens to be byte-aligned the
    /// fragment's whole bytes are copied directly.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` holds fewer than `bit_len` bits.
    pub fn append(&mut self, bytes: &[u8], bit_len: u64) {
        assert!(
            bytes.len() as u64 * 8 >= bit_len,
            "fragment of {} bytes cannot hold {bit_len} bits",
            bytes.len()
        );
        let whole = (bit_len / 8) as usize;
        let rem = (bit_len % 8) as u32;
        if self.pending == 0 {
            self.bytes.extend_from_slice(&bytes[..whole]);
        } else {
            let mut chunks = bytes[..whole].chunks_exact(4);
            for chunk in &mut chunks {
                let word = u32::from_be_bytes(chunk.try_into().expect("chunk of 4"));
                self.write_bits(u64::from(word), 32);
            }
            for &byte in chunks.remainder() {
                self.write_bits(u64::from(byte), 8);
            }
        }
        if rem > 0 {
            self.write_bits(u64::from(bytes[whole] >> (8 - rem)), rem);
        }
    }

    /// Number of bits written so far.
    #[must_use]
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8 + u64::from(self.pending)
    }

    /// Finishes the stream, padding the last byte with zero bits.
    #[must_use]
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.pending > 0 {
            self.bytes.push((self.acc << (8 - self.pending)) as u8);
        }
        self.bytes
    }
}

/// Reads bits from a byte slice.
///
/// The reader keeps a 64-bit look-ahead accumulator of upcoming bits
/// (left-aligned, so bit 63 is the next stream bit) and refills it from the
/// byte buffer roughly once per seven byte-sized reads — small fields and
/// unary scans are a shift and a mask, not a loop per bit.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Index of the next byte not yet loaded into `acc`.
    next_byte: usize,
    /// Upcoming bits, left-aligned; only the top `avail` bits are valid and
    /// the bits below them are always zero.
    acc: u64,
    /// Number of valid bits at the top of `acc`.
    avail: u32,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, next_byte: 0, acc: 0, avail: 0 }
    }

    /// Total number of bits in the underlying buffer.
    fn total_bits(&self) -> u64 {
        self.bytes.len() as u64 * 8
    }

    fn end_of_stream() -> CoderError {
        CoderError::MalformedStream("unexpected end of bitstream".to_owned())
    }

    /// Loads bytes into the accumulator until it holds at least 57 bits or
    /// the input is exhausted. Away from the end of the buffer the refill is
    /// a single unaligned 8-byte load instead of a per-byte loop.
    fn refill(&mut self) {
        let take_bits = (64 - self.avail) & !7;
        if take_bits == 0 {
            return;
        }
        if let Some(chunk) = self.bytes.get(self.next_byte..self.next_byte + 8) {
            let word = u64::from_be_bytes(chunk.try_into().expect("chunk of 8"));
            self.acc |= (word >> (64 - take_bits)) << (64 - self.avail - take_bits);
            self.avail += take_bits;
            self.next_byte += (take_bits / 8) as usize;
        } else {
            while self.avail <= 56 && self.next_byte < self.bytes.len() {
                self.acc |= u64::from(self.bytes[self.next_byte]) << (56 - self.avail);
                self.avail += 8;
                self.next_byte += 1;
            }
        }
    }

    /// Drops the top `count <= avail` bits of the accumulator.
    #[inline]
    fn consume(&mut self, count: u32) {
        self.acc = if count == 64 { 0 } else { self.acc << count };
        self.avail -= count;
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] at end of input.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CoderError> {
        if self.avail == 0 {
            self.refill();
            if self.avail == 0 {
                return Err(Self::end_of_stream());
            }
        }
        let bit = self.acc >> 63 == 1;
        self.consume(1);
        Ok(bit)
    }

    /// Reads `count` bits into the low bits of a `u64`.
    ///
    /// The whole field comes out of the look-ahead accumulator with one
    /// shift — there is no per-bit loop.
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] at end of input.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    #[inline]
    pub fn read_bits(&mut self, count: u32) -> Result<u64, CoderError> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        if count == 0 {
            return Ok(0);
        }
        if count > 57 {
            // The refill tops out at 63 buffered bits, which cannot satisfy
            // a 58..=64-bit field at every alignment; split it once.
            let high = self.read_bits(count - 32)?;
            let low = self.read_bits(32)?;
            return Ok((high << 32) | low);
        }
        if self.avail < count {
            self.refill();
            if self.avail < count {
                return Err(Self::end_of_stream());
            }
        }
        let value = self.acc >> (64 - count);
        self.consume(count);
        Ok(value)
    }

    /// Reads a unary run (number of one-bits before the terminating zero).
    ///
    /// The run is counted with `leading_ones` over the look-ahead
    /// accumulator, so long runs cost a few instructions per 56 bits instead
    /// of a call per bit.
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] at end of input.
    pub fn read_unary(&mut self) -> Result<u64, CoderError> {
        let mut count = 0u64;
        loop {
            if self.avail == 0 {
                self.refill();
                if self.avail == 0 {
                    return Err(Self::end_of_stream());
                }
            }
            // Bits below the valid region are zero, so `leading_ones` can
            // only overshoot `avail` when all valid bits are ones.
            let ones = self.acc.leading_ones().min(self.avail);
            if ones < self.avail {
                self.consume(ones + 1);
                return Ok(count + u64::from(ones));
            }
            count += u64::from(ones);
            self.consume(ones);
        }
    }

    /// Reads a unary run immediately followed by a `count`-bit field — the
    /// shape of one Rice codeword — in a single accumulator transaction.
    ///
    /// Equivalent to [`BitReader::read_unary`] followed by
    /// [`BitReader::read_bits`], but the common case (the whole codeword
    /// already buffered) pays for one refill check instead of two.
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] at end of input.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    #[inline]
    pub fn read_unary_then_bits(&mut self, count: u32) -> Result<(u64, u64), CoderError> {
        if self.avail < 57 {
            self.refill();
        }
        let ones = self.acc.leading_ones().min(self.avail);
        if ones < self.avail && ones + 1 + count <= self.avail {
            // With `count >= 1` the constraint `ones + 1 + count <= 64`
            // keeps the run shift below 64; the `count == 0` arm never
            // shifts, so a 63-one run cannot overflow the shift either.
            let field = if count == 0 { 0 } else { (self.acc << (ones + 1)) >> (64 - count) };
            self.consume(ones + 1 + count);
            return Ok((u64::from(ones), field));
        }
        let quotient = self.read_unary()?;
        let field = self.read_bits(count)?;
        Ok((quotient, field))
    }

    /// Skips `count` bits without decoding them (used by the subband
    /// directory scanner of the parallel codec).
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] if fewer than `count` bits
    /// remain.
    pub fn skip_bits(&mut self, count: u64) -> Result<(), CoderError> {
        if u64::from(self.avail) >= count {
            self.consume(count as u32);
            return Ok(());
        }
        let target = self.bits_read() + count;
        if target > self.total_bits() {
            return Err(Self::end_of_stream());
        }
        self.next_byte = (target / 8) as usize;
        self.acc = 0;
        self.avail = 0;
        let offset = (target % 8) as u32;
        if offset != 0 {
            // Re-load the rest of the byte the target lands inside.
            self.acc = u64::from(self.bytes[self.next_byte]) << (56 + offset);
            self.avail = 8 - offset;
            self.next_byte += 1;
        }
        Ok(())
    }

    /// Number of bits consumed so far.
    #[must_use]
    pub fn bits_read(&self) -> u64 {
        self.next_byte as u64 * 8 - u64::from(self.avail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The original bit-at-a-time writer, kept verbatim as the behavioural
    /// reference for the word-at-a-time rewrite: every stream the fast writer
    /// produces must be byte-identical to this one's.
    #[derive(Debug, Default)]
    struct ReferenceBitWriter {
        bytes: Vec<u8>,
        current: u8,
        filled: u32,
    }

    impl ReferenceBitWriter {
        fn write_bit(&mut self, bit: bool) {
            self.current = (self.current << 1) | u8::from(bit);
            self.filled += 1;
            if self.filled == 8 {
                self.bytes.push(self.current);
                self.current = 0;
                self.filled = 0;
            }
        }

        fn write_bits(&mut self, value: u64, count: u32) {
            for i in (0..count).rev() {
                self.write_bit((value >> i) & 1 == 1);
            }
        }

        fn write_unary(&mut self, count: u64) {
            for _ in 0..count {
                self.write_bit(true);
            }
            self.write_bit(false);
        }

        fn into_bytes(mut self) -> Vec<u8> {
            if self.filled > 0 {
                self.current <<= 8 - self.filled;
                self.bytes.push(self.current);
            }
            self.bytes
        }
    }

    /// One random writer operation of the property mix.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Bit(bool),
        Bits(u64, u32),
        Unary(u64),
    }

    fn random_ops(rng: &mut StdRng, len: usize) -> Vec<Op> {
        (0..len)
            .map(|_| match rng.gen_range(0..3u32) {
                0 => Op::Bit(rng.gen_range(0..2) == 1),
                1 => {
                    let count = rng.gen_range(0..=64u32);
                    Op::Bits(rng.gen_range(0..=u64::MAX), count)
                }
                // Heavy tail: include runs far beyond 64 bits so the
                // whole-byte emission and scanning paths are exercised.
                _ => Op::Unary(if rng.gen_range(0..4u32) == 0 {
                    rng.gen_range(64..400u64)
                } else {
                    rng.gen_range(0..20u64)
                }),
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Byte-identical streams: any mix of bit, multi-bit and unary writes
        /// produces exactly the bytes of the original per-bit implementation.
        #[test]
        fn writer_matches_the_per_bit_reference(seed in 0u64..1_000_000, len in 1usize..120) {
            let mut rng = StdRng::seed_from_u64(seed);
            let ops = random_ops(&mut rng, len);
            let mut fast = BitWriter::new();
            let mut reference = ReferenceBitWriter::default();
            for &op in &ops {
                match op {
                    Op::Bit(b) => {
                        fast.write_bit(b);
                        reference.write_bit(b);
                    }
                    Op::Bits(v, c) => {
                        fast.write_bits(v, c);
                        reference.write_bits(v, c);
                    }
                    Op::Unary(n) => {
                        fast.write_unary(n);
                        reference.write_unary(n);
                    }
                }
            }
            prop_assert_eq!(fast.into_bytes(), reference.into_bytes());
        }

        /// Identical read-back: whatever was written comes back value for
        /// value through the word-at-a-time reader.
        #[test]
        fn reader_roundtrips_random_op_mixes(seed in 0u64..1_000_000, len in 1usize..120) {
            let mut rng = StdRng::seed_from_u64(seed);
            let ops = random_ops(&mut rng, len);
            let mut writer = BitWriter::new();
            for &op in &ops {
                match op {
                    Op::Bit(b) => writer.write_bit(b),
                    Op::Bits(v, c) => writer.write_bits(v, c),
                    Op::Unary(n) => writer.write_unary(n),
                }
            }
            let bytes = writer.into_bytes();
            let mut reader = BitReader::new(&bytes);
            for &op in &ops {
                match op {
                    Op::Bit(b) => prop_assert_eq!(reader.read_bit().unwrap(), b),
                    Op::Bits(v, c) => {
                        let expected = if c == 0 { 0 } else { v & (u64::MAX >> (64 - c)) };
                        prop_assert_eq!(reader.read_bits(c).unwrap(), expected);
                    }
                    Op::Unary(n) => prop_assert_eq!(reader.read_unary().unwrap(), n),
                }
            }
        }

        /// Splicing fragments at arbitrary bit offsets reproduces the stream
        /// a single writer would have produced.
        #[test]
        fn append_equals_writing_in_one_stream(seed in 0u64..1_000_000, pieces in 1usize..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let fragments: Vec<Vec<Op>> = (0..pieces)
                .map(|_| {
                    let len = rng.gen_range(1..40);
                    random_ops(&mut rng, len)
                })
                .collect();
            let mut single = BitWriter::new();
            let mut spliced = BitWriter::new();
            for ops in &fragments {
                let mut fragment = BitWriter::new();
                for &op in ops {
                    match op {
                        Op::Bit(b) => {
                            single.write_bit(b);
                            fragment.write_bit(b);
                        }
                        Op::Bits(v, c) => {
                            single.write_bits(v, c);
                            fragment.write_bits(v, c);
                        }
                        Op::Unary(n) => {
                            single.write_unary(n);
                            fragment.write_unary(n);
                        }
                    }
                }
                let bits = fragment.bit_len();
                spliced.append(&fragment.into_bytes(), bits);
            }
            prop_assert_eq!(spliced.bit_len(), single.bit_len());
            prop_assert_eq!(spliced.into_bytes(), single.into_bytes());
        }
    }

    #[test]
    fn bit_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true, true, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), pattern.len() as u64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_values_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(1, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.bits_read(), 37);
    }

    #[test]
    fn full_width_fields_roundtrip_at_any_alignment() {
        for lead in 0u32..8 {
            let mut w = BitWriter::new();
            w.write_bits(0, lead);
            w.write_bits(u64::MAX, 64);
            w.write_bits(0x0123_4567_89AB_CDEF, 64);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.read_bits(lead).unwrap(), 0);
            assert_eq!(r.read_bits(64).unwrap(), u64::MAX, "lead {lead}");
            assert_eq!(r.read_bits(64).unwrap(), 0x0123_4567_89AB_CDEF, "lead {lead}");
        }
    }

    #[test]
    fn unary_roundtrip() {
        let mut w = BitWriter::new();
        for n in [0u64, 1, 5, 13] {
            w.write_unary(n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for n in [0u64, 1, 5, 13] {
            assert_eq!(r.read_unary().unwrap(), n);
        }
    }

    #[test]
    fn long_unary_runs_roundtrip() {
        // Runs beyond 64 bits exercise the whole-0xFF-byte paths.
        let runs = [63u64, 64, 65, 127, 128, 1000];
        for lead in 0u32..8 {
            let mut w = BitWriter::new();
            w.write_bits(0, lead);
            for &n in &runs {
                w.write_unary(n);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.read_bits(lead).unwrap(), 0);
            for &n in &runs {
                assert_eq!(r.read_unary().unwrap(), n, "lead {lead}");
            }
        }
    }

    #[test]
    fn end_of_stream_is_an_error() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert!(r.read_bit().is_err());
        // A unary run that never terminates also errors out.
        let mut r = BitReader::new(&[0xFF]);
        assert!(r.read_unary().is_err());
        // Same for a run reaching the end mid-byte.
        let mut r = BitReader::new(&[0b0111_1111, 0xFF]);
        assert_eq!(r.read_unary().unwrap(), 0);
        assert!(r.read_unary().is_err());
    }

    #[test]
    fn skip_bits_advances_and_bounds_checks() {
        let mut r = BitReader::new(&[0xAB, 0xCD]);
        r.skip_bits(4).unwrap();
        assert_eq!(r.read_bits(8).unwrap(), 0xBC);
        assert_eq!(r.bits_read(), 12);
        assert!(r.skip_bits(5).is_err());
        r.skip_bits(4).unwrap();
        assert!(r.skip_bits(1).is_err());
    }

    #[test]
    fn padding_is_zero_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1010_0000]);
    }

    #[test]
    #[should_panic(expected = "more than 64 bits")]
    fn oversized_write_rejected() {
        let mut w = BitWriter::new();
        w.write_bits(0, 65);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn oversized_append_rejected() {
        let mut w = BitWriter::new();
        w.append(&[0xFF], 9);
    }
}
