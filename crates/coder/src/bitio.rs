//! Bit-level writer and reader over byte buffers.
//!
//! Bits are packed most-significant-bit first inside each byte, which keeps
//! the streams easy to inspect in a hex dump.

use crate::CoderError;

/// Accumulates bits into a byte vector.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    current: u8,
    filled: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.current = (self.current << 1) | u8::from(bit);
        self.filled += 1;
        if self.filled == 8 {
            self.bytes.push(self.current);
            self.current = 0;
            self.filled = 0;
        }
    }

    /// Writes the `count` least-significant bits of `value`, most significant
    /// of those first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn write_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        for i in (0..count).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Writes `count` as a unary run (`count` one-bits followed by a zero).
    pub fn write_unary(&mut self, count: u64) {
        for _ in 0..count {
            self.write_bit(true);
        }
        self.write_bit(false);
    }

    /// Number of bits written so far.
    #[must_use]
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8 + u64::from(self.filled)
    }

    /// Finishes the stream, padding the last byte with zero bits.
    #[must_use]
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.filled > 0 {
            self.current <<= 8 - self.filled;
            self.bytes.push(self.current);
        }
        self.bytes
    }
}

/// Reads bits from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    position: u64,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, position: 0 }
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] at end of input.
    pub fn read_bit(&mut self) -> Result<bool, CoderError> {
        let byte_index = (self.position / 8) as usize;
        if byte_index >= self.bytes.len() {
            return Err(CoderError::MalformedStream("unexpected end of bitstream".to_owned()));
        }
        let bit_index = 7 - (self.position % 8) as u32;
        self.position += 1;
        Ok((self.bytes[byte_index] >> bit_index) & 1 == 1)
    }

    /// Reads `count` bits into the low bits of a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] at end of input.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn read_bits(&mut self, count: u32) -> Result<u64, CoderError> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        let mut value = 0u64;
        for _ in 0..count {
            value = (value << 1) | u64::from(self.read_bit()?);
        }
        Ok(value)
    }

    /// Reads a unary run (number of one-bits before the terminating zero).
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] at end of input.
    pub fn read_unary(&mut self) -> Result<u64, CoderError> {
        let mut count = 0u64;
        while self.read_bit()? {
            count += 1;
        }
        Ok(count)
    }

    /// Number of bits consumed so far.
    #[must_use]
    pub fn bits_read(&self) -> u64 {
        self.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true, true, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), pattern.len() as u64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_values_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(1, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.bits_read(), 37);
    }

    #[test]
    fn unary_roundtrip() {
        let mut w = BitWriter::new();
        for n in [0u64, 1, 5, 13] {
            w.write_unary(n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for n in [0u64, 1, 5, 13] {
            assert_eq!(r.read_unary().unwrap(), n);
        }
    }

    #[test]
    fn end_of_stream_is_an_error() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert!(r.read_bit().is_err());
        // A unary run that never terminates also errors out.
        let mut r = BitReader::new(&[0xFF]);
        assert!(r.read_unary().is_err());
    }

    #[test]
    fn padding_is_zero_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1010_0000]);
    }

    #[test]
    #[should_panic(expected = "more than 64 bits")]
    fn oversized_write_rejected() {
        let mut w = BitWriter::new();
        w.write_bits(0, 65);
    }
}
