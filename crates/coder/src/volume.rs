//! The versioned volumetric container format (`LWCV`).
//!
//! A volume stream wraps one payload per brick of a
//! [`BrickGrid`] behind a fixed header and the same
//! 48-bit byte-offset directory machinery as the tiled `LWCT` container, so
//! bricks can be encoded, decoded and seeked independently — the format
//! backbone of the brick-parallel volume engine in `lwc-pipeline`. Layout
//! (all fields most-significant-bit first, written with [`BitWriter`]):
//!
//! ```text
//! offset  field
//! 0       magic          32 bits  0x4C574356 ("LWCV")
//! 4       version         8 bits  1 = lossless, 2 = near-lossless
//! 5       image width    32 bits  pixels, >= 1
//! 9       image height   32 bits  pixels, >= 1
//! 13      image depth    32 bits  slices, >= 1
//! 17      bit depth       8 bits  1..=16
//! 18      scales          8 bits  1..=15 (the per-plane 2-D streams' depth)
//! 19      z scales        8 bits  0..=15 (z decomposition; 0 = pure 2-D)
//! 20      tile width     32 bits  1..=2^20 - 1, clipped to the image
//! 24      tile height    32 bits  1..=2^20 - 1, clipped to the image
//! 28      brick depth    32 bits  >= 1, clipped to the image depth
//! 32      delta           8 bits  version 2 only: per-voxel bound, >= 1
//! 32/33   directory      (brick_count + 1) x 48-bit byte offsets
//! ...     payloads       brick_count brick payloads
//! ```
//!
//! The version byte selects the layout: a lossless (`δ = 0`) volume is
//! written as version 1 with no delta byte — byte-identical to every
//! pre-near-lossless container — so a version-2 header whose delta is zero
//! is a forgery and is rejected as malformed.
//!
//! `brick_count` is derived from the grid geometry, never stored; bricks are
//! ordered plane-major (all tiles of z-layer 0, then z-layer 1, ...). Each
//! brick payload is self-describing: the brick's z-transformed coefficient
//! planes are 2-D coded as one `LWC1` stream each, prefixed by a table of
//! `brick_depth` big-endian `u32` substream lengths:
//!
//! ```text
//! plane lengths   brick_depth x 32-bit byte lengths
//! plane streams   brick_depth concatenated LWC1 streams
//! ```
//!
//! With `z_scales = 0` the z transform is the identity, so every plane
//! substream is byte-identical to the 2-D tiled path's stream for the same
//! tile of the same slice — the property that pins the two datapaths
//! together (see the tests in `tests/volume_pipeline.rs`).

use crate::bitio::{BitReader, BitWriter};
use crate::tiled::{append_directory_and_payloads, read_directory};
use crate::CoderError;
use lwc_image::BrickGrid;

/// Magic number identifying a volumetric `lwc` container ("LWCV").
pub const VOLUME_MAGIC: u32 = 0x4C57_4356;

/// The lossless (version-1) volume container version.
pub const VOLUME_VERSION: u8 = 1;

/// The near-lossless (version-2) volume container version: the version-1
/// layout plus one quantizer delta byte.
pub const VOLUME_QUANT_VERSION: u8 = 2;

/// Serialized size of the fixed version-1 volume header, in bytes. A
/// version-2 header is one byte longer — see
/// [`VolumeHeader::serialized_bytes`].
pub const VOLUME_HEADER_BYTES: usize = 32;

/// Parsed fixed-size header of a volumetric container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VolumeHeader {
    /// Slice width in pixels.
    pub width: usize,
    /// Slice height in pixels.
    pub height: usize,
    /// Number of slices.
    pub depth: usize,
    /// Nominal bit depth of the voxels.
    pub bit_depth: u32,
    /// 2-D decomposition depth of every per-plane stream.
    pub scales: u32,
    /// z-axis decomposition depth (0 = no inter-slice decorrelation).
    pub z_scales: u32,
    /// Nominal (interior) tile width in pixels.
    pub tile_width: usize,
    /// Nominal (interior) tile height in pixels.
    pub tile_height: usize,
    /// Nominal (interior) brick depth in slices.
    pub brick_depth: usize,
    /// Near-lossless per-voxel error bound `δ` (0 = lossless; the header
    /// serializes as version 1 and no delta byte is written).
    pub delta: u8,
}

impl VolumeHeader {
    /// Serialized header size in bytes: [`VOLUME_HEADER_BYTES`] for a
    /// lossless (version-1) header, one more for the near-lossless
    /// (version-2) delta byte.
    #[must_use]
    pub fn serialized_bytes(&self) -> usize {
        if self.delta == 0 {
            VOLUME_HEADER_BYTES
        } else {
            VOLUME_HEADER_BYTES + 1
        }
    }

    /// The brick grid this header describes.
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] if the geometry is invalid
    /// (zero dimensions).
    pub fn grid(&self) -> Result<BrickGrid, CoderError> {
        BrickGrid::new(
            self.width,
            self.height,
            self.depth,
            self.tile_width,
            self.tile_height,
            self.brick_depth,
        )
        .map_err(|e| CoderError::MalformedStream(format!("invalid brick geometry in header: {e}")))
    }

    /// Validates the field ranges the writer enforces.
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] or
    /// [`CoderError::UnsupportedFormat`] for out-of-range fields.
    pub fn validate(&self) -> Result<(), CoderError> {
        if self.width == 0 || self.height == 0 || self.depth == 0 {
            return Err(CoderError::MalformedStream(format!(
                "implausible volume dimensions {}x{}x{}",
                self.width, self.height, self.depth
            )));
        }
        if self.tile_width == 0 || self.tile_height == 0 || self.brick_depth == 0 {
            return Err(CoderError::MalformedStream("zero brick dimensions".to_owned()));
        }
        if self.tile_width >= (1 << 20) || self.tile_height >= (1 << 20) {
            return Err(CoderError::UnsupportedFormat(format!(
                "tile dimensions {}x{} exceed the per-plane stream format's 20-bit fields",
                self.tile_width, self.tile_height
            )));
        }
        if self.bit_depth == 0 || self.bit_depth > 16 {
            return Err(CoderError::MalformedStream(format!(
                "unsupported bit depth {}",
                self.bit_depth
            )));
        }
        if self.scales == 0 || self.scales >= (1 << 4) {
            return Err(CoderError::MalformedStream(format!(
                "unsupported scale count {}",
                self.scales
            )));
        }
        if self.z_scales >= (1 << 4) {
            return Err(CoderError::MalformedStream(format!(
                "unsupported z scale count {}",
                self.z_scales
            )));
        }
        Ok(())
    }

    /// Serializes the header (fails validation first, so a malformed header
    /// can never be written).
    ///
    /// # Errors
    ///
    /// See [`VolumeHeader::validate`]; additionally rejects volumes whose
    /// dimensions exceed the 32-bit header fields.
    pub fn write(&self, writer: &mut BitWriter) -> Result<(), CoderError> {
        self.validate()?;
        if self.width > u32::MAX as usize
            || self.height > u32::MAX as usize
            || self.depth > u32::MAX as usize
            || self.brick_depth > u32::MAX as usize
        {
            return Err(CoderError::UnsupportedFormat(format!(
                "volume dimensions {}x{}x{} exceed the container's 32-bit fields",
                self.width, self.height, self.depth
            )));
        }
        let version = if self.delta == 0 { VOLUME_VERSION } else { VOLUME_QUANT_VERSION };
        writer.write_bits(u64::from(VOLUME_MAGIC), 32);
        writer.write_bits(u64::from(version), 8);
        writer.write_bits(self.width as u64, 32);
        writer.write_bits(self.height as u64, 32);
        writer.write_bits(self.depth as u64, 32);
        writer.write_bits(u64::from(self.bit_depth), 8);
        writer.write_bits(u64::from(self.scales), 8);
        writer.write_bits(u64::from(self.z_scales), 8);
        writer.write_bits(self.tile_width as u64, 32);
        writer.write_bits(self.tile_height as u64, 32);
        writer.write_bits(self.brick_depth as u64, 32);
        if self.delta != 0 {
            writer.write_bits(u64::from(self.delta), 8);
        }
        Ok(())
    }

    /// Reads and validates a header.
    ///
    /// # Errors
    ///
    /// * [`CoderError::MalformedStream`] if the stream ends inside the header
    ///   or a field is out of range.
    /// * [`CoderError::UnsupportedFormat`] for a wrong magic number or an
    ///   unknown (newer) container version.
    pub fn read(reader: &mut BitReader<'_>) -> Result<Self, CoderError> {
        let mut field = |bits: u32, name: &str| {
            reader.read_bits(bits).map_err(|_| {
                CoderError::MalformedStream(format!("truncated volume header: missing {name}"))
            })
        };
        let magic = field(32, "magic")?;
        if magic as u32 != VOLUME_MAGIC {
            return Err(CoderError::UnsupportedFormat("bad volume magic number".to_owned()));
        }
        let version = field(8, "version")? as u8;
        if version != VOLUME_VERSION && version != VOLUME_QUANT_VERSION {
            return Err(CoderError::UnsupportedFormat(format!(
                "volume container version {version} is not supported (this build reads \
                 {VOLUME_VERSION} and {VOLUME_QUANT_VERSION})"
            )));
        }
        let mut header = Self {
            width: field(32, "width")? as usize,
            height: field(32, "height")? as usize,
            depth: field(32, "depth")? as usize,
            bit_depth: field(8, "bit depth")? as u32,
            scales: field(8, "scale count")? as u32,
            z_scales: field(8, "z scale count")? as u32,
            tile_width: field(32, "tile width")? as usize,
            tile_height: field(32, "tile height")? as usize,
            brick_depth: field(32, "brick depth")? as usize,
            delta: 0,
        };
        if version == VOLUME_QUANT_VERSION {
            header.delta = field(8, "quantizer delta")? as u8;
            if header.delta == 0 {
                return Err(CoderError::MalformedStream(
                    "malformed quantizer header: near-lossless container version with zero delta"
                        .to_owned(),
                ));
            }
        }
        header.validate()?;
        Ok(header)
    }
}

/// `true` if `bytes` starts with the volume container magic (the router
/// between the 2-D decoders and the volumetric one).
#[must_use]
pub fn is_volume(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == VOLUME_MAGIC.to_be_bytes()
}

/// Assembles a volumetric container from a header and the per-brick payloads
/// (plane-major brick order).
///
/// # Errors
///
/// Returns an error if the header is invalid or the payload count does not
/// match the header's grid.
pub fn write_volume_container(
    header: &VolumeHeader,
    payloads: &[Vec<u8>],
) -> Result<Vec<u8>, CoderError> {
    let grid = header.grid()?;
    if payloads.len() != grid.brick_count() {
        return Err(CoderError::MalformedStream(format!(
            "{} brick payloads supplied but the grid has {}",
            payloads.len(),
            grid.brick_count()
        )));
    }
    let mut writer = BitWriter::new();
    header.write(&mut writer)?;
    Ok(append_directory_and_payloads(writer, header.serialized_bytes(), payloads))
}

/// Serializes one brick payload: the length table followed by the
/// concatenated per-plane `LWC1` streams.
#[must_use]
pub fn write_brick_payload(planes: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = planes.iter().map(Vec::len).sum();
    let mut payload = Vec::with_capacity(4 * planes.len() + total);
    for plane in planes {
        payload.extend_from_slice(&(plane.len() as u32).to_be_bytes());
    }
    for plane in planes {
        payload.extend_from_slice(plane);
    }
    payload
}

/// Splits a brick payload back into its `plane_count` per-plane `LWC1`
/// substreams, validating that the length table and the payload size agree
/// exactly (no truncation, no trailing garbage).
///
/// # Errors
///
/// Returns [`CoderError::MalformedStream`] on any inconsistency.
pub fn split_brick_payload(payload: &[u8], plane_count: usize) -> Result<Vec<&[u8]>, CoderError> {
    let table_bytes = plane_count.checked_mul(4).ok_or_else(|| {
        CoderError::MalformedStream("brick plane count overflows the length table".to_owned())
    })?;
    if payload.len() < table_bytes {
        return Err(CoderError::MalformedStream(format!(
            "brick payload of {} bytes cannot hold its {plane_count}-entry length table",
            payload.len()
        )));
    }
    let mut planes = Vec::with_capacity(plane_count);
    let mut cursor = table_bytes;
    for index in 0..plane_count {
        let entry: [u8; 4] = payload[index * 4..index * 4 + 4].try_into().expect("4-byte entry");
        let len = u32::from_be_bytes(entry) as usize;
        let end = cursor.checked_add(len).filter(|&e| e <= payload.len()).ok_or_else(|| {
            CoderError::MalformedStream(format!(
                "brick plane {index} claims {len} bytes beyond the payload"
            ))
        })?;
        planes.push(&payload[cursor..end]);
        cursor = end;
    }
    if cursor != payload.len() {
        return Err(CoderError::MalformedStream(format!(
            "brick payload holds {} trailing bytes past its plane streams",
            payload.len() - cursor
        )));
    }
    Ok(planes)
}

/// A parsed (but not yet decoded) volumetric container: the header, the
/// validated brick directory and a borrow of the raw bytes. Bricks can be
/// sliced out individually — this is what the brick-parallel decoder hands
/// to its workers and what the slab-streaming decoder seeks through.
#[derive(Debug, Clone)]
pub struct VolumeStream<'a> {
    header: VolumeHeader,
    offsets: Vec<u64>,
    bytes: &'a [u8],
}

impl<'a> VolumeStream<'a> {
    /// Parses and validates the header and directory of a volume container.
    ///
    /// The same decompression-bomb guard as the 2-D containers applies to
    /// the voxel count **before any allocation is sized from the header**:
    /// every voxel costs at least one payload bit across the per-plane
    /// streams, so a declared `width x height x depth` beyond the stream's
    /// bit count is forged or corrupt. The directory is then checked for
    /// monotonically non-decreasing offsets that start right after the
    /// directory and end exactly at the stream's last byte.
    ///
    /// # Errors
    ///
    /// * [`CoderError::UnsupportedFormat`] for a wrong magic or version.
    /// * [`CoderError::MalformedStream`] for invalid header fields, an
    ///   implausible voxel count, a truncated directory, or inconsistent
    ///   offsets.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, CoderError> {
        let mut reader = BitReader::new(bytes);
        let header = VolumeHeader::read(&mut reader)?;
        let voxels = header.width as u128 * header.height as u128 * header.depth as u128;
        if voxels > bytes.len() as u128 * 8 {
            return Err(CoderError::MalformedStream(format!(
                "header declares {}x{}x{} voxels but the {}-byte container cannot encode even \
                 one bit per sample",
                header.width,
                header.height,
                header.depth,
                bytes.len()
            )));
        }
        let grid = header.grid()?;
        let claimed = grid.plane().tiles_x() as u128
            * grid.plane().tiles_y() as u128
            * grid.bricks_z() as u128;
        let offsets = read_directory(&mut reader, bytes.len(), header.serialized_bytes(), claimed)?;
        Ok(Self { header, offsets, bytes })
    }

    /// The container header.
    #[must_use]
    pub fn header(&self) -> &VolumeHeader {
        &self.header
    }

    /// The brick grid of the container.
    ///
    /// # Errors
    ///
    /// See [`VolumeHeader::grid`] (cannot fail after a successful parse).
    pub fn grid(&self) -> Result<BrickGrid, CoderError> {
        self.header.grid()
    }

    /// Number of bricks in the container.
    #[must_use]
    pub fn brick_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The raw payload of brick `index`, in plane-major brick order.
    ///
    /// # Panics
    ///
    /// Panics if `index >= brick_count()`.
    #[must_use]
    pub fn brick_bytes(&self, index: usize) -> &'a [u8] {
        assert!(index < self.brick_count(), "brick index {index} out of bounds");
        &self.bytes[self.offsets[index] as usize..self.offsets[index + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> VolumeHeader {
        VolumeHeader {
            width: 48,
            height: 40,
            depth: 7,
            bit_depth: 12,
            scales: 3,
            z_scales: 1,
            tile_width: 32,
            tile_height: 32,
            brick_depth: 4,
            delta: 0,
        }
    }

    fn sample_container() -> (VolumeHeader, Vec<Vec<u8>>, Vec<u8>) {
        let header = sample_header();
        let grid = header.grid().unwrap();
        // Synthetic payloads are fine for format-level tests (the pipeline
        // tests exercise real brick streams); give every voxel one byte so
        // the plausibility guard is comfortably satisfied.
        let payloads: Vec<Vec<u8>> = grid
            .rects()
            .enumerate()
            .map(|(i, rect)| {
                let planes: Vec<Vec<u8>> = (0..rect.depth)
                    .map(|z| vec![(i + z) as u8; rect.plane.pixel_count()])
                    .collect();
                write_brick_payload(&planes)
            })
            .collect();
        let bytes = write_volume_container(&header, &payloads).unwrap();
        (header, payloads, bytes)
    }

    #[test]
    fn header_roundtrips() {
        let header = sample_header();
        let mut writer = BitWriter::new();
        header.write(&mut writer).unwrap();
        let bytes = writer.into_bytes();
        assert_eq!(bytes.len(), VOLUME_HEADER_BYTES);
        assert_eq!(&bytes[..4], &VOLUME_MAGIC.to_be_bytes());
        let mut reader = BitReader::new(&bytes);
        assert_eq!(VolumeHeader::read(&mut reader).unwrap(), header);
    }

    #[test]
    fn container_slices_bricks_back_out() {
        let (header, payloads, bytes) = sample_container();
        assert!(is_volume(&bytes));
        let stream = VolumeStream::parse(&bytes).unwrap();
        assert_eq!(stream.header(), &header);
        assert_eq!(stream.brick_count(), payloads.len());
        for (index, payload) in payloads.iter().enumerate() {
            assert_eq!(stream.brick_bytes(index), payload.as_slice(), "brick {index}");
        }
    }

    #[test]
    fn brick_payloads_split_back_into_planes() {
        let planes = vec![vec![1u8, 2, 3], vec![], vec![9u8; 5]];
        let payload = write_brick_payload(&planes);
        let split = split_brick_payload(&payload, 3).unwrap();
        assert_eq!(split.len(), 3);
        for (got, want) in split.iter().zip(&planes) {
            assert_eq!(got, &want.as_slice());
        }
        // Wrong plane count, truncation, oversized entry, trailing garbage.
        assert!(split_brick_payload(&payload, 2).is_err());
        assert!(split_brick_payload(&payload, 4).is_err());
        assert!(split_brick_payload(&payload[..payload.len() - 1], 3).is_err());
        let mut padded = payload.clone();
        padded.push(0);
        assert!(split_brick_payload(&padded, 3).is_err());
        let mut oversized = payload.clone();
        oversized[3] = 0xFF;
        assert!(split_brick_payload(&oversized, 3).is_err());
    }

    #[test]
    fn other_magics_are_not_volumes() {
        assert!(!is_volume(&[]));
        assert!(!is_volume(&crate::tiled::TILED_MAGIC.to_be_bytes()));
        assert!(matches!(
            VolumeStream::parse(&crate::tiled::TILED_MAGIC.to_be_bytes()),
            Err(CoderError::UnsupportedFormat(_))
        ));
    }

    #[test]
    fn unknown_versions_are_rejected() {
        let (_, _, mut bytes) = sample_container();
        bytes[4] = VOLUME_QUANT_VERSION + 1;
        assert!(matches!(VolumeStream::parse(&bytes), Err(CoderError::UnsupportedFormat(_))));
    }

    #[test]
    fn near_lossless_headers_roundtrip_with_the_delta_byte() {
        let header = VolumeHeader { delta: 3, ..sample_header() };
        let mut writer = BitWriter::new();
        header.write(&mut writer).unwrap();
        let bytes = writer.into_bytes();
        assert_eq!(bytes.len(), VOLUME_HEADER_BYTES + 1);
        assert_eq!(bytes[4], VOLUME_QUANT_VERSION);
        let mut reader = BitReader::new(&bytes);
        assert_eq!(VolumeHeader::read(&mut reader).unwrap(), header);
    }

    #[test]
    fn near_lossless_containers_slice_bricks_back_out() {
        let header = VolumeHeader { delta: 2, ..sample_header() };
        let grid = header.grid().unwrap();
        let payloads: Vec<Vec<u8>> = grid
            .rects()
            .enumerate()
            .map(|(i, rect)| {
                let planes: Vec<Vec<u8>> = (0..rect.depth)
                    .map(|z| vec![(i + z) as u8; rect.plane.pixel_count()])
                    .collect();
                write_brick_payload(&planes)
            })
            .collect();
        let bytes = write_volume_container(&header, &payloads).unwrap();
        let stream = VolumeStream::parse(&bytes).unwrap();
        assert_eq!(stream.header(), &header);
        for (index, payload) in payloads.iter().enumerate() {
            assert_eq!(stream.brick_bytes(index), payload.as_slice(), "brick {index}");
        }
    }

    #[test]
    fn near_lossless_version_with_zero_delta_is_malformed() {
        let header = VolumeHeader { delta: 1, ..sample_header() };
        let mut writer = BitWriter::new();
        header.write(&mut writer).unwrap();
        let mut bytes = writer.into_bytes();
        *bytes.last_mut().unwrap() = 0;
        let mut reader = BitReader::new(&bytes);
        match VolumeHeader::read(&mut reader) {
            Err(CoderError::MalformedStream(msg)) => {
                assert!(msg.contains("quantizer"), "{msg}");
            }
            other => panic!("expected MalformedStream, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_padded_containers_are_rejected() {
        let (_, _, bytes) = sample_container();
        for len in [0, 3, VOLUME_HEADER_BYTES - 1, VOLUME_HEADER_BYTES + 5, bytes.len() - 1] {
            assert!(VolumeStream::parse(&bytes[..len]).is_err(), "prefix of {len} bytes");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(VolumeStream::parse(&padded), Err(CoderError::MalformedStream(_))));
    }

    #[test]
    fn corrupt_directories_are_rejected() {
        let (_, _, bytes) = sample_container();
        let mut wrong_start = bytes.clone();
        wrong_start[VOLUME_HEADER_BYTES + 5] ^= 0x01;
        assert!(matches!(VolumeStream::parse(&wrong_start), Err(CoderError::MalformedStream(_))));
        let mut non_monotone = bytes.clone();
        let second_entry = VOLUME_HEADER_BYTES + 6;
        non_monotone[second_entry..second_entry + 6].copy_from_slice(&[0, 0, 0, 0, 0, 1]);
        assert!(matches!(VolumeStream::parse(&non_monotone), Err(CoderError::MalformedStream(_))));
    }

    #[test]
    fn invalid_header_fields_are_rejected() {
        let base = sample_header();
        for (header, what) in [
            (VolumeHeader { width: 0, ..base }, "zero width"),
            (VolumeHeader { height: 0, ..base }, "zero height"),
            (VolumeHeader { depth: 0, ..base }, "zero depth"),
            (VolumeHeader { tile_width: 0, ..base }, "zero tile width"),
            (VolumeHeader { tile_height: 0, ..base }, "zero tile height"),
            (VolumeHeader { brick_depth: 0, ..base }, "zero brick depth"),
            (VolumeHeader { tile_width: 1 << 20, ..base }, "oversized tile"),
            (VolumeHeader { bit_depth: 0, ..base }, "zero bit depth"),
            (VolumeHeader { bit_depth: 17, ..base }, "oversized bit depth"),
            (VolumeHeader { scales: 0, ..base }, "zero scales"),
            (VolumeHeader { scales: 16, ..base }, "oversized scales"),
            (VolumeHeader { z_scales: 16, ..base }, "oversized z scales"),
        ] {
            assert!(header.validate().is_err(), "{what}");
            let mut writer = BitWriter::new();
            assert!(header.write(&mut writer).is_err(), "{what} must not serialize");
        }
        // z_scales = 0 is legal: the pure per-slice 2-D configuration.
        assert!(VolumeHeader { z_scales: 0, ..base }.validate().is_ok());
    }

    #[test]
    fn forged_voxel_counts_are_rejected_before_any_allocation() {
        // A crafted 32-byte header declaring a 2^31 x 16 x 2^10 volume must
        // come back as a fast typed error — no buffer may ever be sized from
        // those dimensions.
        let header = VolumeHeader {
            width: 1 << 31,
            height: 16,
            depth: 1 << 10,
            bit_depth: 12,
            scales: 3,
            z_scales: 2,
            tile_width: (1 << 20) - 1,
            tile_height: 16,
            brick_depth: 8,
            delta: 0,
        };
        let mut writer = BitWriter::new();
        header.write(&mut writer).unwrap();
        let bytes = writer.into_bytes();
        match VolumeStream::parse(&bytes) {
            Err(CoderError::MalformedStream(msg)) => {
                assert!(msg.contains("cannot encode"), "{msg}");
            }
            other => panic!("expected MalformedStream, got {other:?}"),
        }
    }

    #[test]
    fn forged_brick_counts_are_rejected_without_allocating() {
        // 1x1x1 bricks over a large-but-plausible volume: the voxel guard
        // passes only if the stream is huge, so craft a small container whose
        // directory cannot possibly hold the claimed brick count.
        let header = VolumeHeader {
            width: 512,
            height: 512,
            depth: 8,
            bit_depth: 12,
            scales: 3,
            z_scales: 1,
            tile_width: 1,
            tile_height: 1,
            brick_depth: 1,
            delta: 0,
        };
        let mut writer = BitWriter::new();
        header.write(&mut writer).unwrap();
        let mut bytes = writer.into_bytes();
        // Enough padding to pass the voxel plausibility guard (1 bit per
        // voxel) while staying far short of the two-million-entry directory.
        bytes.resize(512 * 512 * 8 / 8 + VOLUME_HEADER_BYTES, 0);
        match VolumeStream::parse(&bytes) {
            Err(CoderError::MalformedStream(msg)) => {
                assert!(msg.contains("directory"), "{msg}");
            }
            other => panic!("expected MalformedStream, got {other:?}"),
        }
    }

    #[test]
    fn payload_count_must_match_the_grid() {
        let header = sample_header();
        assert!(matches!(
            write_volume_container(&header, &[vec![1, 2, 3]]),
            Err(CoderError::MalformedStream(_))
        ));
    }
}
