//! The versioned fixed-path container format (`LWCF`).
//!
//! `LWCF` is to the paper-exact fixed-point datapath what
//! [`LWCT`](crate::tiled) is to the lifting codec: a fixed header, a per-tile
//! 48-bit byte-offset directory (the identical directory machinery — both
//! formats share one implementation), and one entropy-coded payload per tile
//! of a [`TileGrid`]. Each payload is the tile's `Decomposition<i64>`
//! subbands in [`subband_order`](crate::subband_order), coded by
//! [`FixedSubbandCodec`](crate::FixedSubbandCodec). Layout (all fields
//! MSB-first, whole bytes):
//!
//! ```text
//! offset  field
//! 0       magic          32 bits  0x4C574346 ("LWCF")
//! 4       version         8 bits  currently 1
//! 5       image width    32 bits  pixels, >= 1
//! 9       image height   32 bits  pixels, >= 1
//! 13      bit depth       8 bits  1..=16
//! 14      scales          8 bits  1..=15 (the per-tile decomposition depth)
//! 15      filter          8 bits  Table I bank index, 0..=5
//! 16      tile width     32 bits  1..=2^20 - 1, clipped to the image
//! 20      tile height    32 bits  1..=2^20 - 1, clipped to the image
//! 24      directory      (tile_count + 1) x 48-bit byte offsets
//! ...     payloads       tile_count concatenated fixed-subband streams
//! ```
//!
//! The one field `LWCT` does not have is the **filter byte**: the lifting
//! codec has a single transform, but the fixed datapath is parameterized by
//! the six Table I banks, and the decoder must rebuild the exact
//! word-length plan the encoder used. Version 1 always pairs the stored
//! bank with the paper-default plan (32-bit words, 13-bit inputs), so the
//! bank index plus the scale count pins the whole datapath.
//!
//! Unlike `LWCT` there is no legacy single-stream format to stay compatible
//! with, so **every** `LWCF` stream is wrapped — a single-tile grid is simply
//! a one-entry directory. Because the fixed-point pyramid halves dimensions
//! exactly, every tile shape occurring in the grid must be divisible by
//! `2^scales`; the parser enforces this so a tampered scale count fails at
//! parse time, not mid-inverse-transform.

use crate::bitio::{BitReader, BitWriter};
use crate::tiled::{append_directory_and_payloads, read_directory};
use crate::CoderError;
use lwc_image::TileGrid;

/// Magic number identifying a fixed-path `lwc` container ("LWCF").
pub const FIXED_MAGIC: u32 = 0x4C57_4346;

/// The newest `LWCF` version this build writes and reads.
pub const FIXED_VERSION: u8 = 1;

/// Serialized size of the fixed `LWCF` header, in bytes.
pub const FIXED_HEADER_BYTES: usize = 24;

/// Number of Table I filter banks the filter byte can name (indices `0..=5`).
pub const FIXED_FILTER_BANKS: u8 = 6;

/// Parsed fixed-size header of an `LWCF` container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedHeader {
    /// Full image width in pixels.
    pub width: usize,
    /// Full image height in pixels.
    pub height: usize,
    /// Nominal bit depth of the pixels.
    pub bit_depth: u32,
    /// Decomposition depth of every per-tile stream.
    pub scales: u32,
    /// Table I filter-bank index (0..=5) of the fixed-point transform.
    pub filter: u8,
    /// Nominal (interior) tile width in pixels.
    pub tile_width: usize,
    /// Nominal (interior) tile height in pixels.
    pub tile_height: usize,
}

impl FixedHeader {
    /// The tile grid this header describes.
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] if the geometry is invalid
    /// (zero dimensions).
    pub fn grid(&self) -> Result<TileGrid, CoderError> {
        TileGrid::new(self.width, self.height, self.tile_width, self.tile_height).map_err(|e| {
            CoderError::MalformedStream(format!("invalid tile geometry in header: {e}"))
        })
    }

    /// Validates the field ranges the writer enforces, including the
    /// fixed-path geometry rule: every tile shape occurring in the grid
    /// (nominal, ragged right/bottom/corner) must be divisible by
    /// `2^scales`, because the fixed-point pyramid halves dimensions exactly.
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] or
    /// [`CoderError::UnsupportedFormat`] for out-of-range fields.
    pub fn validate(&self) -> Result<(), CoderError> {
        if self.width == 0 || self.height == 0 {
            return Err(CoderError::MalformedStream(format!(
                "implausible image dimensions {}x{}",
                self.width, self.height
            )));
        }
        if self.tile_width == 0 || self.tile_height == 0 {
            return Err(CoderError::MalformedStream("zero tile dimensions".to_owned()));
        }
        if self.tile_width >= (1 << 20) || self.tile_height >= (1 << 20) {
            return Err(CoderError::UnsupportedFormat(format!(
                "tile dimensions {}x{} exceed the container's 20-bit tile bound",
                self.tile_width, self.tile_height
            )));
        }
        if self.bit_depth == 0 || self.bit_depth > 16 {
            return Err(CoderError::MalformedStream(format!(
                "unsupported bit depth {}",
                self.bit_depth
            )));
        }
        if self.scales == 0 || self.scales >= (1 << 4) {
            return Err(CoderError::MalformedStream(format!(
                "unsupported scale count {}",
                self.scales
            )));
        }
        if self.filter >= FIXED_FILTER_BANKS {
            return Err(CoderError::UnsupportedFormat(format!(
                "filter index {} is not a Table I bank (0..={})",
                self.filter,
                FIXED_FILTER_BANKS - 1
            )));
        }
        let grid = self.grid()?;
        let step = 1usize << self.scales;
        let last_w = self.width - (grid.tiles_x() - 1) * grid.tile_width();
        let last_h = self.height - (grid.tiles_y() - 1) * grid.tile_height();
        for tw in [grid.tile_width(), last_w] {
            for th in [grid.tile_height(), last_h] {
                if tw % step != 0 || th % step != 0 {
                    return Err(CoderError::MalformedStream(format!(
                        "a {tw}x{th} tile of the grid cannot be decomposed {} times (dimensions \
                         must be divisible by {step})",
                        self.scales
                    )));
                }
            }
        }
        Ok(())
    }

    /// Serializes the header (fails validation first, so a malformed header
    /// can never be written).
    ///
    /// # Errors
    ///
    /// See [`FixedHeader::validate`]; additionally rejects images whose
    /// dimensions exceed the 32-bit header fields.
    pub fn write(&self, writer: &mut BitWriter) -> Result<(), CoderError> {
        self.validate()?;
        if self.width > u32::MAX as usize || self.height > u32::MAX as usize {
            return Err(CoderError::UnsupportedFormat(format!(
                "image dimensions {}x{} exceed the container's 32-bit fields",
                self.width, self.height
            )));
        }
        writer.write_bits(u64::from(FIXED_MAGIC), 32);
        writer.write_bits(u64::from(FIXED_VERSION), 8);
        writer.write_bits(self.width as u64, 32);
        writer.write_bits(self.height as u64, 32);
        writer.write_bits(u64::from(self.bit_depth), 8);
        writer.write_bits(u64::from(self.scales), 8);
        writer.write_bits(u64::from(self.filter), 8);
        writer.write_bits(self.tile_width as u64, 32);
        writer.write_bits(self.tile_height as u64, 32);
        Ok(())
    }

    /// Reads and validates a header.
    ///
    /// # Errors
    ///
    /// * [`CoderError::MalformedStream`] if the stream ends inside the header
    ///   or a field is out of range.
    /// * [`CoderError::UnsupportedFormat`] for a wrong magic number or an
    ///   unknown (newer) container version.
    pub fn read(reader: &mut BitReader<'_>) -> Result<Self, CoderError> {
        let mut field = |bits: u32, name: &str| {
            reader.read_bits(bits).map_err(|_| {
                CoderError::MalformedStream(format!("truncated fixed header: missing {name}"))
            })
        };
        let magic = field(32, "magic")?;
        if magic as u32 != FIXED_MAGIC {
            return Err(CoderError::UnsupportedFormat("bad fixed-container magic number".into()));
        }
        let version = field(8, "version")? as u8;
        if version != FIXED_VERSION {
            return Err(CoderError::UnsupportedFormat(format!(
                "fixed container version {version} is not supported (this build reads \
                 {FIXED_VERSION})"
            )));
        }
        let header = Self {
            width: field(32, "width")? as usize,
            height: field(32, "height")? as usize,
            bit_depth: field(8, "bit depth")? as u32,
            scales: field(8, "scale count")? as u32,
            filter: field(8, "filter index")? as u8,
            tile_width: field(32, "tile width")? as usize,
            tile_height: field(32, "tile height")? as usize,
        };
        header.validate()?;
        Ok(header)
    }
}

/// `true` if `bytes` starts with the fixed-path container magic — the third
/// arm of the format sniff (`LWC1` / `LWCT` / `LWCF`).
#[must_use]
pub fn is_fixed(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == FIXED_MAGIC.to_be_bytes()
}

/// Assembles an `LWCF` container from a header and the per-tile payloads
/// (one fixed-subband stream per tile, in row-major tile order).
///
/// # Errors
///
/// Returns an error if the header is invalid or the payload count does not
/// match the header's grid.
pub fn write_fixed_container(
    header: &FixedHeader,
    payloads: &[Vec<u8>],
) -> Result<Vec<u8>, CoderError> {
    let grid = header.grid()?;
    if payloads.len() != grid.tile_count() {
        return Err(CoderError::MalformedStream(format!(
            "{} tile payloads supplied but the grid has {}",
            payloads.len(),
            grid.tile_count()
        )));
    }
    let mut writer = BitWriter::new();
    header.write(&mut writer)?;
    Ok(append_directory_and_payloads(writer, FIXED_HEADER_BYTES, payloads))
}

/// A parsed (but not yet decoded) `LWCF` container: the header, the validated
/// tile directory and a borrow of the raw bytes.
#[derive(Debug, Clone)]
pub struct FixedStream<'a> {
    header: FixedHeader,
    offsets: Vec<u64>,
    bytes: &'a [u8],
}

impl<'a> FixedStream<'a> {
    /// Parses and validates the header and directory of an `LWCF` container,
    /// with the same defenses as the `LWCT` parser: the decompression-bomb
    /// plausibility guard (a stream must carry at least one coded bit per
    /// sample) runs before any allocation is sized from the 32-bit header
    /// fields, the directory entry count is bounded by the stream length, and
    /// the offsets must start right after the directory, never decrease, and
    /// end exactly at the stream's last byte.
    ///
    /// # Errors
    ///
    /// * [`CoderError::UnsupportedFormat`] for a wrong magic or version.
    /// * [`CoderError::MalformedStream`] for invalid header fields, a
    ///   truncated directory, or inconsistent offsets.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, CoderError> {
        let mut reader = BitReader::new(bytes);
        let header = FixedHeader::read(&mut reader)?;
        let grid = header.grid()?;
        let pixels = header.width as u128 * header.height as u128;
        if pixels > bytes.len() as u128 * 8 {
            return Err(CoderError::MalformedStream(format!(
                "header declares {}x{} pixels but the {}-byte container cannot encode even one \
                 bit per sample",
                header.width,
                header.height,
                bytes.len()
            )));
        }
        let claimed = grid.tiles_x() as u128 * grid.tiles_y() as u128;
        let offsets = read_directory(&mut reader, bytes.len(), FIXED_HEADER_BYTES, claimed)?;
        Ok(Self { header, offsets, bytes })
    }

    /// The container header.
    #[must_use]
    pub fn header(&self) -> &FixedHeader {
        &self.header
    }

    /// The tile grid of the container.
    ///
    /// # Errors
    ///
    /// See [`FixedHeader::grid`] (cannot fail after a successful parse).
    pub fn grid(&self) -> Result<TileGrid, CoderError> {
        self.header.grid()
    }

    /// Number of tiles in the container.
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The raw payload (a fixed-subband stream) of tile `index`, in row-major
    /// tile order.
    ///
    /// # Panics
    ///
    /// Panics if `index >= tile_count()`.
    #[must_use]
    pub fn tile_bytes(&self, index: usize) -> &'a [u8] {
        assert!(index < self.tile_count(), "tile index {index} out of bounds");
        &self.bytes[self.offsets[index] as usize..self.offsets[index + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> FixedHeader {
        FixedHeader {
            width: 96,
            height: 64,
            bit_depth: 12,
            scales: 3,
            filter: 0,
            tile_width: 32,
            tile_height: 32,
        }
    }

    /// A structurally complete container with synthetic payloads (the
    /// entropy layer has its own tests; here only the container matters).
    fn sample_container() -> (FixedHeader, Vec<Vec<u8>>, Vec<u8>) {
        let header = sample_header();
        let grid = header.grid().unwrap();
        // Payloads must be large enough to pass the one-bit-per-sample
        // plausibility guard (real Rice streams always are: every coded word
        // costs at least its one-bit unary terminator).
        let payloads: Vec<Vec<u8>> =
            (0..grid.tile_count()).map(|i| vec![i as u8 + 1; 200 + i]).collect();
        let bytes = write_fixed_container(&header, &payloads).unwrap();
        (header, payloads, bytes)
    }

    #[test]
    fn header_roundtrips() {
        let header = sample_header();
        let mut writer = BitWriter::new();
        header.write(&mut writer).unwrap();
        let bytes = writer.into_bytes();
        assert_eq!(bytes.len(), FIXED_HEADER_BYTES);
        assert_eq!(&bytes[..4], &FIXED_MAGIC.to_be_bytes());
        let mut reader = BitReader::new(&bytes);
        assert_eq!(FixedHeader::read(&mut reader).unwrap(), header);
    }

    #[test]
    fn container_slices_tiles_back_out() {
        let (header, payloads, bytes) = sample_container();
        assert!(is_fixed(&bytes));
        let stream = FixedStream::parse(&bytes).unwrap();
        assert_eq!(stream.header(), &header);
        assert_eq!(stream.tile_count(), payloads.len());
        for (index, payload) in payloads.iter().enumerate() {
            assert_eq!(stream.tile_bytes(index), payload.as_slice(), "tile {index}");
        }
    }

    #[test]
    fn other_formats_are_not_fixed() {
        assert!(!is_fixed(&[]));
        assert!(!is_fixed(&[0x4C, 0x57, 0x43]));
        assert!(!is_fixed(&0x4C57_4354u32.to_be_bytes())); // LWCT
        assert!(!is_fixed(&0x4C57_4331u32.to_be_bytes())); // LWC1
        assert!(matches!(
            FixedStream::parse(&0x4C57_4354u32.to_be_bytes()),
            Err(CoderError::UnsupportedFormat(_))
        ));
    }

    #[test]
    fn unknown_versions_are_rejected() {
        let (_, _, mut bytes) = sample_container();
        bytes[4] = FIXED_VERSION + 1;
        assert!(matches!(FixedStream::parse(&bytes), Err(CoderError::UnsupportedFormat(_))));
    }

    #[test]
    fn truncated_and_padded_containers_are_rejected() {
        let (_, _, bytes) = sample_container();
        for len in [0, 3, FIXED_HEADER_BYTES - 1, FIXED_HEADER_BYTES + 5, bytes.len() - 1] {
            assert!(FixedStream::parse(&bytes[..len]).is_err(), "prefix of {len} bytes");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(FixedStream::parse(&padded), Err(CoderError::MalformedStream(_))));
    }

    #[test]
    fn corrupt_directories_are_rejected() {
        let (_, _, bytes) = sample_container();
        // First offset not at the payload start.
        let mut wrong_start = bytes.clone();
        wrong_start[FIXED_HEADER_BYTES + 5] ^= 0x01;
        assert!(matches!(FixedStream::parse(&wrong_start), Err(CoderError::MalformedStream(_))));
        // Non-monotone interior offsets.
        let mut non_monotone = bytes.clone();
        let second_entry = FIXED_HEADER_BYTES + 6;
        non_monotone[second_entry..second_entry + 6].copy_from_slice(&[0, 0, 0, 0, 0, 1]);
        assert!(matches!(FixedStream::parse(&non_monotone), Err(CoderError::MalformedStream(_))));
    }

    #[test]
    fn invalid_header_fields_are_rejected() {
        let base = sample_header();
        for (header, what) in [
            (FixedHeader { width: 0, ..base }, "zero width"),
            (FixedHeader { height: 0, ..base }, "zero height"),
            (FixedHeader { tile_width: 0, ..base }, "zero tile width"),
            (FixedHeader { tile_height: 0, ..base }, "zero tile height"),
            (FixedHeader { tile_width: 1 << 20, ..base }, "oversized tile"),
            (FixedHeader { bit_depth: 0, ..base }, "zero depth"),
            (FixedHeader { bit_depth: 17, ..base }, "oversized depth"),
            (FixedHeader { scales: 0, ..base }, "zero scales"),
            (FixedHeader { scales: 16, ..base }, "oversized scales"),
            (FixedHeader { filter: FIXED_FILTER_BANKS, ..base }, "unknown filter"),
            (FixedHeader { width: 97, ..base }, "undecomposable ragged tile"),
            (FixedHeader { scales: 4, tile_width: 24, ..base }, "undecomposable nominal tile"),
        ] {
            assert!(header.validate().is_err(), "{what}");
            let mut writer = BitWriter::new();
            assert!(header.write(&mut writer).is_err(), "{what} must not serialize");
        }
    }

    #[test]
    fn forged_headers_with_absurd_tile_counts_are_rejected_without_allocating() {
        // 1x1 tiles dodge the divisibility rule only at scales >= 1, so use a
        // grid of minimal decomposable tiles: 2^scales-sized tiles over a
        // huge forged image.
        let header = FixedHeader {
            width: (1 << 20) * 8,
            height: (1 << 20) * 8,
            bit_depth: 12,
            scales: 3,
            filter: 0,
            tile_width: 8,
            tile_height: 8,
        };
        let mut writer = BitWriter::new();
        header.write(&mut writer).unwrap();
        let bytes = writer.into_bytes();
        assert!(matches!(FixedStream::parse(&bytes), Err(CoderError::MalformedStream(_))));
    }

    #[test]
    fn forged_pixel_counts_beyond_the_stream_bits_are_rejected() {
        // A structurally valid container whose dimensions declare more
        // pixels than the stream has bits: the bomb guard must fire before
        // any frame buffer is sized.
        let header = FixedHeader {
            width: 1 << 24,
            height: 1 << 8,
            bit_depth: 12,
            scales: 3,
            filter: 1,
            tile_width: (1 << 20) - 8, // divisible by 2^3, under the 20-bit bound
            tile_height: 1 << 8,
        };
        let grid = header.grid().unwrap();
        let payloads = vec![Vec::new(); grid.tile_count()];
        let bytes = write_fixed_container(&header, &payloads).unwrap();
        match FixedStream::parse(&bytes) {
            Err(CoderError::MalformedStream(msg)) => {
                assert!(msg.contains("cannot encode"), "{msg}");
            }
            other => panic!("expected MalformedStream, got {other:?}"),
        }
    }

    #[test]
    fn payload_count_must_match_the_grid() {
        let header = sample_header();
        assert!(matches!(
            write_fixed_container(&header, &[vec![1, 2, 3]]),
            Err(CoderError::MalformedStream(_))
        ));
    }
}
