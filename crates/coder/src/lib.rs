//! # lwc-coder — lossless entropy coding of wavelet subbands
//!
//! The paper designs the *transform* hardware for a lossless medical-image
//! compression system; the entropy-coding back end is out of its scope. To
//! make this reproduction a complete, usable compressor, this crate adds:
//!
//! * [`bitio`] — bit-level writers/readers,
//! * [`rice`] — Rice/Golomb codes with per-subband parameter selection
//!   (the standard low-complexity choice for wavelet detail statistics),
//! * [`SubbandCodec`] — serialization of a multi-scale integer decomposition
//!   subband by subband,
//! * [`LosslessCodec`] — an end-to-end image codec built on the reversible
//!   5/3 lifting transform from `lwc-lifting`, byte-exact on decode,
//! * [`quant`] — the near-lossless mode: deterministic detail-band
//!   quantization schedules derived from a per-pixel error bound `δ` and
//!   the 5/3 synthesis gain, carried in the `LWCQ` stream header
//!   ([`LosslessCodec::near_lossless`]; `δ = 0` stays bit-identical to
//!   the lossless streams),
//! * [`tiled`] — the versioned tiled container format (`LWCT`): a tile-grid
//!   header plus a per-tile byte-offset directory wrapping independent
//!   per-tile streams, the format behind the tile-parallel engine in
//!   `lwc-pipeline`,
//! * [`fixedband`] — the fixed-word Rice coder for the paper's own datapath:
//!   [`FixedSubbandCodec`] block-adaptively codes the `i64` transform words
//!   the fixed-point DWT produces at the Table II word lengths,
//! * [`fixedtiled`] — the versioned fixed-path container format (`LWCF`)
//!   that wraps per-tile fixed-subband payloads behind the same 48-bit
//!   offset-directory machinery as `LWCT`.
//!
//! The fixed-point transform of the paper is validated for losslessness in
//! `lwc-dwt`; historically the end-to-end compression numbers used only the
//! reversible integer transform (see DESIGN.md §5), but with [`fixedband`]
//! and [`fixedtiled`] the paper-exact datapath now has a complete entropy
//! back end of its own.
//!
//! ```
//! use lwc_coder::LosslessCodec;
//! use lwc_image::synth;
//!
//! # fn main() -> Result<(), lwc_coder::CoderError> {
//! let image = synth::ct_phantom(64, 64, 12, 1);
//! let codec = LosslessCodec::new(4)?;
//! let bytes = codec.compress(&image)?;
//! let restored = codec.decompress(&bytes)?;
//! assert_eq!(image.samples(), restored.samples());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitio;
mod codec;
mod error;
pub mod fixedband;
pub mod fixedtiled;
pub mod quant;
pub mod rice;
mod subband;
pub mod tiled;
pub mod volume;

pub use codec::{subband_order, CompressionReport, LosslessCodec, StreamHeader};
pub use error::CoderError;
pub use fixedband::{FixedSubbandCodec, FIXED_PARAMETER_BITS, MAX_FIXED_RICE_PARAMETER};
pub use fixedtiled::{
    is_fixed, write_fixed_container, FixedHeader, FixedStream, FIXED_HEADER_BYTES, FIXED_MAGIC,
    FIXED_VERSION,
};
pub use quant::{plane_delta_for_volume, QuantSchedule};
pub use subband::{StreamingSubbandEncoder, SubbandCodec, BLOCK_SIZE, MAX_UNARY_RUN_BITS};
pub use tiled::{TiledHeader, TiledStream};
pub use volume::{
    is_volume, write_volume_container, VolumeHeader, VolumeStream, VOLUME_HEADER_BYTES,
    VOLUME_MAGIC, VOLUME_QUANT_VERSION, VOLUME_VERSION,
};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LosslessCodec>();
        assert_send_sync::<CoderError>();
        assert_send_sync::<CompressionReport>();
    }
}
