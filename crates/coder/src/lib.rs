//! # lwc-coder — lossless entropy coding of wavelet subbands
//!
//! The paper designs the *transform* hardware for a lossless medical-image
//! compression system; the entropy-coding back end is out of its scope. To
//! make this reproduction a complete, usable compressor, this crate adds:
//!
//! * [`bitio`] — bit-level writers/readers,
//! * [`rice`] — Rice/Golomb codes with per-subband parameter selection
//!   (the standard low-complexity choice for wavelet detail statistics),
//! * [`SubbandCodec`] — serialization of a multi-scale integer decomposition
//!   subband by subband,
//! * [`LosslessCodec`] — an end-to-end image codec built on the reversible
//!   5/3 lifting transform from `lwc-lifting`, byte-exact on decode,
//! * [`tiled`] — the versioned tiled container format (`LWCT`): a tile-grid
//!   header plus a per-tile byte-offset directory wrapping independent
//!   per-tile streams, the format behind the tile-parallel engine in
//!   `lwc-pipeline`.
//!
//! The fixed-point transform of the paper is validated for losslessness in
//! `lwc-dwt`; its coefficients are wide fractional words and are not what one
//! would entropy-code directly, so the end-to-end compression numbers in the
//! examples use the reversible integer transform (see DESIGN.md §5).
//!
//! ```
//! use lwc_coder::LosslessCodec;
//! use lwc_image::synth;
//!
//! # fn main() -> Result<(), lwc_coder::CoderError> {
//! let image = synth::ct_phantom(64, 64, 12, 1);
//! let codec = LosslessCodec::new(4)?;
//! let bytes = codec.compress(&image)?;
//! let restored = codec.decompress(&bytes)?;
//! assert_eq!(image.samples(), restored.samples());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitio;
mod codec;
mod error;
pub mod rice;
mod subband;
pub mod tiled;

pub use codec::{subband_order, CompressionReport, LosslessCodec, StreamHeader};
pub use error::CoderError;
pub use subband::{SubbandCodec, BLOCK_SIZE, MAX_UNARY_RUN_BITS};
pub use tiled::{TiledHeader, TiledStream};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LosslessCodec>();
        assert_send_sync::<CoderError>();
        assert_send_sync::<CompressionReport>();
    }
}
