//! Near-lossless detail-coefficient quantization with a guaranteed L∞
//! reconstruction bound.
//!
//! The lossless codec becomes *near-lossless* by uniformly quantizing the
//! detail subbands before Rice coding: each coefficient `c` of a band with
//! per-coefficient allowance `e` is mapped to the index
//! `q = sign(c) * ((|c| + e) / (2e + 1))` and reconstructed as
//! `ĉ = q * (2e + 1)`, so `|c - ĉ| <= e` exactly. The question the user
//! actually asks, though, is about **pixels**: given a per-pixel error bound
//! `δ`, which bands may be quantized by how much so that
//! `max |orig - recon| <= δ` after the inverse 5/3 synthesis?
//!
//! # The synthesis gain of the reversible 5/3 kernel
//!
//! One 1-D inverse lifting stage reconstructs
//!
//! ```text
//! x[2i]     = s[i] - floor((d[i-1] + d[i] + 2) / 4)
//! x[2i + 1] = d[i] + floor((x[2i] + x[2i + 2]) / 2)
//! ```
//!
//! Perturbing the approximation samples by at most `ea` and the detail
//! samples by at most `ed` moves the even outputs by at most
//! `ea + ceil(ed / 2)` (two detail terms over the divisor 4, plus the
//! rounding of the floor) and the odd outputs by at most
//! `ed + ea + ceil(ed / 2)` — so one stage amplifies the input errors to
//!
//! ```text
//! E(ea, ed) = ea + ed + ceil(ed / 2)
//! ```
//!
//! The 2-D inverse of one scale runs the column stage and then the row
//! stage: the column pass merges `LL` with the vertical band (2) and the
//! horizontal band (1) with the diagonal band (3), the row pass merges the
//! two halves, so with per-band allowances `e1..e3` and the accumulated
//! approximation error `eLL` the level's output error is
//!
//! ```text
//! e_level = E(E(eLL, e2), E(e1, e3))
//! ```
//!
//! iterated from the deepest scale (`eLL = 0`: the approximation band is
//! never quantized) to the finest. [`QuantSchedule::bound`] evaluates this
//! recurrence exactly, and the proptests in `tests/near_lossless.rs` verify
//! the end-to-end inequality on real images.
//!
//! # From `δ` to a schedule
//!
//! [`QuantSchedule::for_delta`] allocates allowances greedily: starting from
//! the all-zero (lossless) schedule it repeatedly tries to increment the
//! allowance of one band — finest scale first, horizontal before vertical
//! before diagonal, the order in which bands buy the most rate for the least
//! pixel error — keeping an increment only if the synthesis bound stays
//! within `δ`, until no increment fits. The procedure is deterministic, so
//! the decoder reconstructs the identical schedule from the `(δ, scales)`
//! pair carried in the stream header — no per-band side information is
//! coded. Note the gain floor: the cheapest possible schedule (allowance 1
//! on the finest horizontal band) already costs 2 pixel levels, so `δ = 1`
//! degenerates to the lossless schedule — an honest consequence of the 5/3
//! synthesis gain, not a parser restriction.

/// Per-coefficient allowances of the detail bands, derived from a per-pixel
/// bound; see the module docs for the construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantSchedule {
    delta: u8,
    scales: u32,
    /// `allowances[scale - 1][band - 1]` for detail bands 1..=3.
    allowances: Vec<[u64; 3]>,
}

/// Worst-case output error of one 1-D 5/3 synthesis stage whose
/// approximation inputs are off by at most `ea` and whose detail inputs are
/// off by at most `ed`.
#[must_use]
pub fn stage_bound(ea: u64, ed: u64) -> u64 {
    ea + ed + ed.div_ceil(2)
}

impl QuantSchedule {
    /// The deterministic greedy schedule for a per-pixel bound `delta` at
    /// decomposition depth `scales`. `delta = 0` (and, by the synthesis gain
    /// floor, `delta = 1`) yields the all-zero lossless schedule.
    #[must_use]
    pub fn for_delta(delta: u8, scales: u32) -> Self {
        let mut schedule = Self { delta, scales, allowances: vec![[0u64; 3]; scales as usize] };
        if delta == 0 {
            return schedule;
        }
        loop {
            let mut grew = false;
            for scale in 1..=scales {
                for band in 1..=3usize {
                    schedule.allowances[scale as usize - 1][band - 1] += 1;
                    if schedule.bound() <= u64::from(delta) {
                        grew = true;
                    } else {
                        schedule.allowances[scale as usize - 1][band - 1] -= 1;
                    }
                }
            }
            if !grew {
                return schedule;
            }
        }
    }

    /// The per-pixel bound the schedule was built for.
    #[must_use]
    pub fn delta(&self) -> u8 {
        self.delta
    }

    /// Per-coefficient allowance of subband `(scale, band)`; band 0 (the
    /// approximation) is never quantized and always answers 0.
    #[must_use]
    pub fn allowance(&self, scale: u32, band: usize) -> u64 {
        if band == 0 || scale == 0 || scale > self.scales {
            return 0;
        }
        self.allowances[scale as usize - 1][band - 1]
    }

    /// Quantizer step of subband `(scale, band)`: `2 * allowance + 1`
    /// (1 for unquantized bands, making dequantization the identity).
    #[must_use]
    pub fn step(&self, scale: u32, band: usize) -> i64 {
        2 * self.allowance(scale, band) as i64 + 1
    }

    /// `true` if no band is quantized (every stream bit is bit-exact).
    #[must_use]
    pub fn is_lossless(&self) -> bool {
        self.allowances.iter().all(|bands| bands.iter().all(|&e| e == 0))
    }

    /// Exact worst-case L∞ pixel error of the inverse transform under this
    /// schedule, via the per-stage recurrence in the module docs.
    #[must_use]
    pub fn bound(&self) -> u64 {
        let mut approx = 0u64; // deepest approximation: never quantized
        for scale in (1..=self.scales).rev() {
            let [e1, e2, e3] = self.allowances[scale as usize - 1];
            approx = stage_bound(stage_bound(approx, e2), stage_bound(e1, e3));
        }
        approx
    }
}

/// Quantizes a subband in place with per-coefficient allowance `e`,
/// replacing each coefficient with its index in the uniform grid of step
/// `2e + 1` (round half away from zero). A zero allowance is the identity.
pub fn quantize(samples: &mut [i32], e: u64) {
    if e == 0 {
        return;
    }
    let step = 2 * e as i64 + 1;
    for value in samples {
        let c = i64::from(*value);
        let q = if c >= 0 { (c + e as i64) / step } else { -((-c + e as i64) / step) };
        *value = q as i32;
    }
}

/// Reverses [`quantize`]: maps indices back to grid centers
/// (`ĉ = q * (2e + 1)`), guaranteeing `|c - ĉ| <= e` for every coefficient
/// the encoder quantized. A zero allowance is the identity.
pub fn dequantize(samples: &mut [i32], e: u64) {
    if e == 0 {
        return;
    }
    let step = 2 * e as i64 + 1;
    for value in samples {
        *value = (i64::from(*value) * step) as i32;
    }
}

/// Largest per-plane 2-D bound `b` a volumetric stream may use so that the
/// voxel error after the inverse z transform stays within `delta`.
///
/// Each z synthesis stage consumes detail *planes* decoded by the 2-D codec
/// (error at most `b`) and the accumulated approximation chain, so the voxel
/// error after `z_scales` stages is `b + z_scales * (b + ceil(b / 2))`
/// (the stage recurrence of [`stage_bound`] seeded with `e0 = b`). With
/// `z_scales = 0` the z transform is the identity and `b = delta`.
#[must_use]
pub fn plane_delta_for_volume(delta: u8, z_scales: u32) -> u8 {
    (0..=delta).rev().find(|&b| volume_bound(b, z_scales) <= u64::from(delta)).unwrap_or(0)
}

/// Worst-case voxel error of a volume whose decoded coefficient planes are
/// each within `plane_delta` of the true z-transform planes.
#[must_use]
pub fn volume_bound(plane_delta: u8, z_scales: u32) -> u64 {
    let mut error = u64::from(plane_delta);
    for _ in 0..z_scales {
        error = stage_bound(error, u64::from(plane_delta));
    }
    error
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_bound_matches_hand_calculation() {
        assert_eq!(stage_bound(0, 0), 0);
        assert_eq!(stage_bound(0, 1), 2);
        assert_eq!(stage_bound(2, 1), 4);
        assert_eq!(stage_bound(2, 3), 7);
    }

    #[test]
    fn small_deltas_produce_the_worked_schedules() {
        // δ = 0 and δ = 1: lossless (the cheapest quantization already costs
        // 2 pixel levels through the synthesis gain).
        for delta in [0u8, 1] {
            let s = QuantSchedule::for_delta(delta, 4);
            assert!(s.is_lossless(), "delta {delta}");
            assert_eq!(s.bound(), 0);
        }
        // δ = 2: only the finest horizontal band, allowance 1.
        let s = QuantSchedule::for_delta(2, 4);
        assert_eq!(s.allowance(1, 1), 1);
        assert_eq!(s.allowance(1, 2), 0);
        assert_eq!(s.allowance(1, 3), 0);
        assert_eq!(s.allowance(2, 1), 0);
        assert_eq!(s.bound(), 2);
        // δ = 4: finest horizontal + vertical at allowance 1.
        let s = QuantSchedule::for_delta(4, 4);
        assert_eq!([s.allowance(1, 1), s.allowance(1, 2), s.allowance(1, 3)], [1, 1, 0]);
        assert_eq!(s.bound(), 4);
        // δ = 7: all three finest bands at allowance 1 (bound exactly 7).
        let s = QuantSchedule::for_delta(7, 4);
        assert_eq!([s.allowance(1, 1), s.allowance(1, 2), s.allowance(1, 3)], [1, 1, 1]);
        assert_eq!(s.bound(), 7);
        // δ = 8: the second pass buys one more level on the horizontal band.
        let s = QuantSchedule::for_delta(8, 4);
        assert_eq!([s.allowance(1, 1), s.allowance(1, 2), s.allowance(1, 3)], [2, 1, 1]);
        assert_eq!(s.bound(), 8);
    }

    #[test]
    fn bounds_never_exceed_delta_and_grow_monotonically() {
        for scales in 1..=6u32 {
            let mut last_bound = 0;
            for delta in 0..=64u8 {
                let s = QuantSchedule::for_delta(delta, scales);
                assert!(
                    s.bound() <= u64::from(delta),
                    "scales {scales} delta {delta}: bound {}",
                    s.bound()
                );
                assert!(s.bound() >= last_bound, "bound regressed at delta {delta}");
                last_bound = s.bound();
            }
        }
    }

    #[test]
    fn schedules_are_deterministic() {
        for delta in [0u8, 2, 4, 8, 32, 255] {
            assert_eq!(QuantSchedule::for_delta(delta, 5), QuantSchedule::for_delta(delta, 5));
        }
    }

    #[test]
    fn quantize_dequantize_stays_within_the_allowance() {
        for e in [1u64, 2, 3, 7, 100] {
            let original: Vec<i32> =
                (-1000..1000).chain([i32::MAX / 2, i32::MIN / 2, 0, 1, -1]).collect();
            let mut samples = original.clone();
            quantize(&mut samples, e);
            dequantize(&mut samples, e);
            for (&o, &r) in original.iter().zip(&samples) {
                assert!((i64::from(o) - i64::from(r)).unsigned_abs() <= e, "e {e}: {o} -> {r}");
            }
        }
        // Allowance 0 is the identity without touching a sample.
        let mut samples = vec![5, -7, 0];
        quantize(&mut samples, 0);
        dequantize(&mut samples, 0);
        assert_eq!(samples, [5, -7, 0]);
    }

    #[test]
    fn quantized_indices_shrink_magnitudes() {
        let mut samples = vec![100, -100, 3, -3];
        quantize(&mut samples, 1);
        assert_eq!(samples, [33, -33, 1, -1]);
        dequantize(&mut samples, 1);
        assert_eq!(samples, [99, -99, 3, -3]);
    }

    #[test]
    fn volume_plane_delta_honors_the_z_gain() {
        // z_scales = 0: the z transform is the identity, b = δ.
        assert_eq!(plane_delta_for_volume(4, 0), 4);
        // One z stage triples-ish the error: b + b + ceil(b/2).
        assert_eq!(volume_bound(2, 1), 5);
        assert_eq!(plane_delta_for_volume(5, 1), 2);
        assert_eq!(plane_delta_for_volume(4, 1), 1);
        assert_eq!(plane_delta_for_volume(2, 1), 0);
        for delta in 0..=32u8 {
            for z in 0..=4u32 {
                let b = plane_delta_for_volume(delta, z);
                assert!(volume_bound(b, z) <= u64::from(delta), "delta {delta} z {z}");
            }
        }
    }
}
