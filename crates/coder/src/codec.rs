//! End-to-end lossless image codec: reversible 5/3 transform + Rice-coded
//! subbands, with an opt-in near-lossless quantization mode.

use crate::bitio::{BitReader, BitWriter};
use crate::quant::{self, QuantSchedule};
use crate::{CoderError, SubbandCodec};
use lwc_image::{Image, ImageView};
use lwc_lifting::geometry::{band_len, band_rect};
use lwc_lifting::Lifting53;
use std::fmt;

/// Magic number identifying a lossless `lwc` compressed stream ("LWC1").
const MAGIC: u32 = 0x4C57_4331;

/// Magic number identifying a near-lossless quantized stream ("LWCQ"): the
/// `LWC1` layout plus one trailing header byte carrying the per-pixel error
/// bound `δ` the detail bands were quantized for. A `δ = 0` configuration
/// never writes this magic — its streams are byte-identical to `LWC1` — so
/// an `LWCQ` header whose delta field is zero is malformed by definition.
const QUANT_MAGIC: u32 = 0x4C57_4351;

/// Parsed fixed-size stream header (see [`LosslessCodec`] for the layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHeader {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Nominal bit depth of the pixels.
    pub bit_depth: u32,
    /// Decomposition depth the stream was coded with.
    pub scales: u32,
    /// Near-lossless per-pixel error bound the detail bands were quantized
    /// for; 0 means lossless (the legacy `LWC1` layout, bit for bit).
    pub delta: u8,
}

impl StreamHeader {
    /// Size of the serialized lossless (`LWC1`) header in bits; a
    /// near-lossless (`LWCQ`) header is [`StreamHeader::bits`] long.
    pub const BITS: u64 = 32 + 20 + 20 + 5 + 4;

    /// Serialized size of *this* header in bits: the `LWC1` layout plus the
    /// 8-bit delta field when the stream is near-lossless.
    #[must_use]
    pub fn bits(&self) -> u64 {
        if self.delta == 0 {
            Self::BITS
        } else {
            Self::BITS + 8
        }
    }

    /// Reads and validates a header (either magic).
    ///
    /// # Errors
    ///
    /// * [`CoderError::MalformedStream`] if the stream ends inside the
    ///   header, a dimension, the bit depth or the scale count is zero, or
    ///   an `LWCQ` header carries a zero delta (a forged quantizer header:
    ///   `δ = 0` streams are written with the `LWC1` magic).
    /// * [`CoderError::UnsupportedFormat`] if the magic number is wrong.
    pub fn read(reader: &mut BitReader<'_>) -> Result<Self, CoderError> {
        let magic = reader
            .read_bits(32)
            .map_err(|_| CoderError::MalformedStream("truncated header: no magic".to_owned()))?
            as u32;
        if magic != MAGIC && magic != QUANT_MAGIC {
            return Err(CoderError::UnsupportedFormat("bad magic number".to_owned()));
        }
        let mut field = |bits: u32, name: &str| {
            reader.read_bits(bits).map_err(|_| {
                CoderError::MalformedStream(format!("truncated header: missing {name}"))
            })
        };
        let width = field(20, "width")? as usize;
        let height = field(20, "height")? as usize;
        let bit_depth = field(5, "bit depth")? as u32;
        let scales = field(4, "scale count")? as u32;
        let delta = if magic == QUANT_MAGIC { field(8, "quantizer delta")? as u8 } else { 0 };
        // The 20-bit fields bound the dimensions at 2^20 - 1 by construction;
        // only the zero cases need rejecting.
        if width == 0 || height == 0 {
            return Err(CoderError::MalformedStream(format!(
                "implausible dimensions {width}x{height}"
            )));
        }
        if bit_depth == 0 {
            return Err(CoderError::MalformedStream("zero bit depth".to_owned()));
        }
        if scales == 0 {
            return Err(CoderError::MalformedStream("zero decomposition scales".to_owned()));
        }
        if magic == QUANT_MAGIC && delta == 0 {
            return Err(CoderError::MalformedStream(
                "malformed quantizer header: near-lossless magic with zero delta".to_owned(),
            ));
        }
        Ok(Self { width, height, bit_depth, scales, delta })
    }

    /// Checks that a stream of `stream_bytes` total bytes could plausibly
    /// encode the dimensions this header declares. Every sample costs at
    /// least one bit in the Rice layout (a `k = 0` zero is the lone
    /// terminator bit), so a header whose pixel count exceeds the stream's
    /// bit count is forged or corrupt — and must be rejected **before** any
    /// buffer is sized from the declared dimensions. A ~30-byte stream
    /// claiming a (2^20 - 1)^2 image would otherwise drive terabyte-scale
    /// allocations (a decompression bomb).
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] if the dimensions cannot fit.
    pub fn ensure_plausible_length(&self, stream_bytes: usize) -> Result<(), CoderError> {
        let pixels = self.width as u64 * self.height as u64;
        if pixels > stream_bytes as u64 * 8 {
            return Err(CoderError::MalformedStream(format!(
                "header declares {}x{} pixels but the {stream_bytes}-byte stream cannot encode \
                 even one bit per sample",
                self.width, self.height
            )));
        }
        Ok(())
    }

    /// Checks the header's scale count against a codec's configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::UnsupportedFormat`] on a mismatch.
    pub fn ensure_scales(&self, expected: u32) -> Result<(), CoderError> {
        if self.scales != expected {
            return Err(CoderError::UnsupportedFormat(format!(
                "stream uses {} scales but the codec is configured for {expected}",
                self.scales
            )));
        }
        Ok(())
    }

    /// Serializes the header: the `LWC1` layout for `delta = 0` (so
    /// lossless streams never change a bit), the `LWCQ` magic plus the
    /// trailing delta byte otherwise.
    pub fn write(&self, writer: &mut BitWriter) {
        let magic = if self.delta == 0 { MAGIC } else { QUANT_MAGIC };
        writer.write_bits(u64::from(magic), 32);
        writer.write_bits(self.width as u64, 20);
        writer.write_bits(self.height as u64, 20);
        writer.write_bits(u64::from(self.bit_depth), 5);
        writer.write_bits(u64::from(self.scales), 4);
        if self.delta != 0 {
            writer.write_bits(u64::from(self.delta), 8);
        }
    }

    /// Sample count of subband `(scale, band)`. For dimensions divisible by
    /// `2^scale` all four bands of a scale share `(w >> scale) * (h >> scale)`
    /// samples; ragged dimensions follow the `ceil(n / 2)` pyramid of
    /// [`lwc_lifting::geometry`], where detail bands may even be empty.
    #[must_use]
    pub fn band_len(&self, scale: u32, band: usize) -> usize {
        band_len(self.width, self.height, scale, band)
    }
}

/// The `(scale, band)` sequence in which subbands are serialized: the deepest
/// approximation first, then for each scale from the deepest to the finest
/// the horizontal, vertical and diagonal details — `3 * scales + 1` entries.
///
/// Shared by the sequential codec and the per-subband parallel codec in
/// `lwc-pipeline` so the two can never disagree on the layout.
pub fn subband_order(scales: u32) -> impl Iterator<Item = (u32, usize)> {
    std::iter::once((scales, 0))
        .chain((1..=scales).rev().flat_map(|scale| (1..=3).map(move |band| (scale, band))))
}

/// Statistics of one compression run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionReport {
    /// Size of the raw image in bytes (at its nominal bit depth, packed).
    pub raw_bytes: usize,
    /// Size of the compressed stream in bytes.
    pub compressed_bytes: usize,
    /// Average compressed bits per pixel.
    pub bits_per_pixel: f64,
}

impl CompressionReport {
    /// Compression ratio (raw / compressed); greater than 1 means the stream
    /// shrank.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.compressed_bytes as f64
    }
}

impl fmt::Display for CompressionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} bytes ({:.2}:1, {:.2} bpp)",
            self.raw_bytes,
            self.compressed_bytes,
            self.ratio(),
            self.bits_per_pixel
        )
    }
}

/// Lossless (and optionally near-lossless) wavelet image codec.
///
/// The stream layout is:
///
/// ```text
/// magic (32) | width (20) | height (20) | bit depth (5) | scales (4)
///            | delta (8, LWCQ streams only)
/// deepest approximation subband, then for each scale from the deepest to
/// the finest: horizontal, vertical, diagonal detail subbands
/// ```
///
/// All subbands are Rice coded with a per-subband parameter
/// (see [`SubbandCodec`]).
///
/// A codec built with [`LosslessCodec::near_lossless`] quantizes the detail
/// subbands before coding so that every reconstructed pixel stays within
/// the configured `δ` of the original (see [`crate::quant`]); its streams
/// carry the `LWCQ` magic and the delta byte, and any codec — whatever its
/// own `δ` — decodes them, honoring the *stream's* delta the way the
/// volumetric decoder honors a container's `z_scales`. With `δ = 0` the
/// codec and its streams are exactly the legacy lossless ones, bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LosslessCodec {
    transform: Lifting53,
    subbands: SubbandCodec,
    delta: u8,
}

impl LosslessCodec {
    /// Creates a lossless codec with the given decomposition depth.
    ///
    /// # Errors
    ///
    /// Returns an error if `scales` is zero.
    pub fn new(scales: u32) -> Result<Self, CoderError> {
        Ok(Self { transform: Lifting53::new(scales)?, subbands: SubbandCodec::new(), delta: 0 })
    }

    /// Creates a near-lossless codec: detail subbands are quantized by the
    /// deterministic schedule for per-pixel bound `delta`
    /// ([`QuantSchedule::for_delta`]), so `max |orig - recon| <= delta` for
    /// every pixel. `delta = 0` is exactly [`LosslessCodec::new`].
    ///
    /// # Errors
    ///
    /// Returns an error if `scales` is zero.
    pub fn near_lossless(scales: u32, delta: u8) -> Result<Self, CoderError> {
        Ok(Self { delta, ..Self::new(scales)? })
    }

    /// Decomposition depth used by the codec.
    #[must_use]
    pub fn scales(&self) -> u32 {
        self.transform.scales()
    }

    /// The near-lossless per-pixel error bound streams are encoded for
    /// (0 = lossless).
    #[must_use]
    pub fn delta(&self) -> u8 {
        self.delta
    }

    /// The quantization schedule this codec encodes with.
    #[must_use]
    pub fn schedule(&self) -> QuantSchedule {
        QuantSchedule::for_delta(self.delta, self.scales())
    }

    /// The reversible transform the codec runs (shared with the per-subband
    /// parallel codec in `lwc-pipeline`).
    #[must_use]
    pub fn transform(&self) -> &Lifting53 {
        &self.transform
    }

    /// The subband entropy coder.
    #[must_use]
    pub fn subband_codec(&self) -> &SubbandCodec {
        &self.subbands
    }

    /// The header this codec would write for `image`.
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::UnsupportedFormat`] if the dimensions or scale
    /// count do not fit the header's fixed-width fields — the serializer
    /// would otherwise truncate them silently (the image bit depth always
    /// fits: `lwc_image::Image` caps it at 16).
    pub fn header_for(&self, image: &Image) -> Result<StreamHeader, CoderError> {
        self.header_for_view(&image.view())
    }

    /// The header this codec would write for a borrowed window; see
    /// [`LosslessCodec::header_for`].
    ///
    /// # Errors
    ///
    /// See [`LosslessCodec::header_for`].
    pub fn header_for_view(&self, view: &ImageView<'_>) -> Result<StreamHeader, CoderError> {
        self.header_for_dims(view.width(), view.height(), view.bit_depth())
    }

    /// The header this codec would write for a frame of the given shape —
    /// the entry point for row-streaming encoders that never hold an image;
    /// see [`LosslessCodec::header_for`].
    ///
    /// # Errors
    ///
    /// See [`LosslessCodec::header_for`]; additionally rejects a zero or
    /// 32-bit-plus `bit_depth` (which the 5-bit header field cannot carry).
    pub fn header_for_dims(
        &self,
        width: usize,
        height: usize,
        bit_depth: u32,
    ) -> Result<StreamHeader, CoderError> {
        let header =
            StreamHeader { width, height, bit_depth, scales: self.scales(), delta: self.delta };
        if header.bit_depth == 0 || header.bit_depth >= 32 {
            return Err(CoderError::UnsupportedFormat(format!(
                "bit depth {bit_depth} does not fit the stream format's 5-bit field"
            )));
        }
        if header.width >= (1 << 20) || header.height >= (1 << 20) {
            return Err(CoderError::UnsupportedFormat(format!(
                "image dimensions {}x{} exceed the stream format's 20-bit fields",
                header.width, header.height
            )));
        }
        if header.scales >= (1 << 4) {
            return Err(CoderError::UnsupportedFormat(format!(
                "{} scales exceed the stream format's 4-bit field",
                header.scales
            )));
        }
        Ok(header)
    }

    /// Rebuilds the Mallat-layout coefficient container from per-subband
    /// sample vectors in [`subband_order`] order, then runs the inverse
    /// transform. Shared by [`LosslessCodec::decompress`] and the parallel
    /// decoder.
    ///
    /// # Errors
    ///
    /// Returns an error if the header is inconsistent with the subband data
    /// or the inverse transform fails.
    pub fn reassemble(
        &self,
        header: &StreamHeader,
        subbands: &[Vec<i32>],
    ) -> Result<Image, CoderError> {
        let data = self.reassemble_raw(header, subbands)?;
        Self::image_from_raw(header, data)
    }

    /// Wraps a reconstructed sample buffer as an [`Image`]. Near-lossless
    /// reconstructions may stray up to `delta` outside the pixel range at
    /// the extremes, so for `delta > 0` the samples are clamped to
    /// `[0, 2^bit_depth)` first (which only ever moves a sample *toward* its
    /// original, preserving the L∞ bound); lossless buffers are validated
    /// as-is.
    fn image_from_raw(header: &StreamHeader, mut data: Vec<i32>) -> Result<Image, CoderError> {
        if header.delta > 0 {
            // 64-bit so a forged 5-bit depth of 31 cannot overflow the shift
            // before `Image::from_samples` rejects it.
            let max = ((1i64 << header.bit_depth) - 1).min(i64::from(i32::MAX)) as i32;
            for value in &mut data {
                *value = (*value).clamp(0, max);
            }
        }
        Ok(Image::from_samples(header.width, header.height, header.bit_depth, data)?)
    }

    /// Like [`LosslessCodec::reassemble`] but returns the raw row-major
    /// sample buffer without the pixel-range validation of
    /// [`lwc_image::Image`]. The 3-D codec reconstructs z-coefficient planes
    /// through this path: their samples are signed z-transform outputs that
    /// only return to the pixel range after the inverse z pass.
    ///
    /// # Errors
    ///
    /// Returns an error if the header is inconsistent with the subband data.
    pub fn reassemble_raw(
        &self,
        header: &StreamHeader,
        subbands: &[Vec<i32>],
    ) -> Result<Vec<i32>, CoderError> {
        let width = header.width;
        let height = header.height;
        let expected = 3 * self.scales() as usize + 1;
        if subbands.len() != expected {
            return Err(CoderError::MalformedStream(format!(
                "{} subbands supplied but the layout has {expected}",
                subbands.len()
            )));
        }
        for ((scale, band), samples) in subband_order(self.scales()).zip(subbands) {
            if samples.len() != header.band_len(scale, band) {
                return Err(CoderError::MalformedStream(format!(
                    "subband at scale {scale} holds {} samples but the header implies {}",
                    samples.len(),
                    header.band_len(scale, band)
                )));
            }
        }
        // A near-lossless stream codes quantizer indices; rebuild the grid
        // centers while scattering, driven by the *header's* delta so any
        // codec configuration decodes any stream.
        let schedule = QuantSchedule::for_delta(header.delta, self.scales());
        let mut data = vec![0i32; width * height];
        for ((scale, band), samples) in subband_order(self.scales()).zip(subbands) {
            let rect = band_rect(width, height, scale, band);
            if rect.is_empty() {
                continue;
            }
            let step = schedule.step(scale, band);
            for (row_index, row) in samples.chunks(rect.width).enumerate() {
                let start = (rect.y + row_index) * width + rect.x;
                if step == 1 {
                    data[start..start + row.len()].copy_from_slice(row);
                } else {
                    for (slot, &index) in data[start..start + row.len()].iter_mut().zip(row) {
                        *slot = (i64::from(index) * step) as i32;
                    }
                }
            }
        }
        let coeffs = lwc_lifting::LiftingCoefficients::from_raw(
            data,
            width,
            height,
            self.scales(),
            header.bit_depth,
        )?;
        Ok(self.transform.inverse_raw(&coeffs)?)
    }

    /// Compresses `image` into a self-contained byte stream.
    ///
    /// # Errors
    ///
    /// Returns an error if the image cannot be decomposed to the configured
    /// depth.
    pub fn compress(&self, image: &Image) -> Result<Vec<u8>, CoderError> {
        self.compress_view(&image.view())
    }

    /// Compresses a borrowed (possibly strided) window of a larger frame —
    /// the entry point of the tile-parallel engine, which compresses tiles
    /// straight out of the frame without copying them into owned images. For
    /// a full-frame view this is exactly [`LosslessCodec::compress`].
    ///
    /// # Errors
    ///
    /// See [`LosslessCodec::compress`].
    pub fn compress_view(&self, view: &ImageView<'_>) -> Result<Vec<u8>, CoderError> {
        let header = self.header_for_view(view)?;
        let coeffs = self.transform.forward_view(view)?;
        let schedule = self.schedule();
        let mut writer = BitWriter::new();
        header.write(&mut writer);
        for (scale, band) in subband_order(self.scales()) {
            let mut samples = coeffs.subband(scale, band);
            quant::quantize(&mut samples, schedule.allowance(scale, band));
            self.subbands.encode_subband(&mut writer, &samples);
        }
        Ok(writer.into_bytes())
    }

    /// Reconstructs the image from a stream produced by
    /// [`LosslessCodec::compress`]. Lossless (`LWC1`) streams come back
    /// pixel-exact; near-lossless (`LWCQ`) streams come back within the
    /// *stream's* delta of the original, whatever this codec's own delta.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed streams or mismatched configuration.
    pub fn decompress(&self, bytes: &[u8]) -> Result<Image, CoderError> {
        let (header, data) = self.decompress_raw(bytes)?;
        Self::image_from_raw(&header, data)
    }

    /// Like [`LosslessCodec::decompress`] but returns the header plus the
    /// raw row-major sample buffer without pixel-range validation — the
    /// decode path for z-coefficient planes inside `LWCV` bricks, whose
    /// samples are signed transform outputs rather than pixels.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed streams or mismatched configuration.
    pub fn decompress_raw(&self, bytes: &[u8]) -> Result<(StreamHeader, Vec<i32>), CoderError> {
        let mut reader = BitReader::new(bytes);
        let header = StreamHeader::read(&mut reader)?;
        header.ensure_scales(self.scales())?;
        header.ensure_plausible_length(bytes.len())?;
        let subbands: Vec<Vec<i32>> = subband_order(self.scales())
            .map(|(scale, band)| {
                self.subbands.decode_subband(&mut reader, header.band_len(scale, band))
            })
            .collect::<Result<_, _>>()?;
        let data = self.reassemble_raw(&header, &subbands)?;
        Ok((header, data))
    }

    /// Compresses and reports the sizes.
    ///
    /// # Errors
    ///
    /// See [`LosslessCodec::compress`].
    pub fn compress_with_report(
        &self,
        image: &Image,
    ) -> Result<(Vec<u8>, CompressionReport), CoderError> {
        let bytes = self.compress(image)?;
        let raw_bits = image.pixel_count() * image.bit_depth() as usize;
        let report = CompressionReport {
            raw_bytes: raw_bits.div_ceil(8),
            compressed_bytes: bytes.len(),
            bits_per_pixel: bytes.len() as f64 * 8.0 / image.pixel_count() as f64,
        };
        Ok((bytes, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_image::{stats, synth};

    #[test]
    fn compress_decompress_is_lossless_on_phantoms() {
        let codec = LosslessCodec::new(4).unwrap();
        for image in [
            synth::ct_phantom(64, 64, 12, 1),
            synth::mr_slice(64, 64, 12, 2),
            synth::gradient(64, 64, 12),
            synth::flat(64, 64, 12, 777),
        ] {
            let bytes = codec.compress(&image).unwrap();
            let back = codec.decompress(&bytes).unwrap();
            assert!(stats::bit_exact(&image, &back).unwrap());
        }
    }

    #[test]
    fn structured_images_actually_compress() {
        // At clinically realistic raster sizes the phantom's smooth regions
        // dominate and the codec removes a good third of the volume; the
        // ratio keeps improving with resolution (1.9:1 at 512², see
        // EXPERIMENTS.md).
        let codec = LosslessCodec::new(5).unwrap();
        let image = synth::ct_phantom(256, 256, 12, 3);
        let (_bytes, report) = codec.compress_with_report(&image).unwrap();
        assert!(report.ratio() > 1.5, "a CT phantom should compress well, got {report}");
        assert!(report.bits_per_pixel < 8.0);
    }

    #[test]
    fn random_images_do_not_compress_but_stay_lossless() {
        let codec = LosslessCodec::new(3).unwrap();
        let image = synth::random_image(64, 64, 12, 5);
        let (bytes, report) = codec.compress_with_report(&image).unwrap();
        assert!(report.ratio() < 1.1, "uniform noise is incompressible: {report}");
        let back = codec.decompress(&bytes).unwrap();
        assert!(stats::bit_exact(&image, &back).unwrap());
    }

    #[test]
    fn rectangular_images_roundtrip() {
        let codec = LosslessCodec::new(3).unwrap();
        let image = synth::mr_slice(96, 48, 12, 9);
        let bytes = codec.compress(&image).unwrap();
        let back = codec.decompress(&bytes).unwrap();
        assert!(stats::bit_exact(&image, &back).unwrap());
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let codec = LosslessCodec::new(3).unwrap();
        let image = synth::ct_phantom(32, 32, 12, 0);
        let mut bytes = codec.compress(&image).unwrap();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(codec.decompress(&bad).is_err());
        // Truncation.
        bytes.truncate(8);
        assert!(codec.decompress(&bytes).is_err());
        // Wrong codec configuration.
        let other = LosslessCodec::new(4).unwrap();
        let full = codec.compress(&image).unwrap();
        assert!(other.decompress(&full).is_err());
    }

    #[test]
    fn bad_magic_is_an_unsupported_format_error() {
        let codec = LosslessCodec::new(3).unwrap();
        let mut bytes = codec.compress(&synth::ct_phantom(32, 32, 12, 1)).unwrap();
        bytes[3] ^= 0x01;
        assert!(matches!(codec.decompress(&bytes), Err(CoderError::UnsupportedFormat(_))));
    }

    #[test]
    fn truncated_headers_are_malformed_not_garbage() {
        let codec = LosslessCodec::new(3).unwrap();
        let bytes = codec.compress(&synth::ct_phantom(32, 32, 12, 2)).unwrap();
        // Every header-length prefix, including the empty stream, must be
        // rejected with a specific malformed-stream error (the magic check
        // needs 4 whole bytes, so shorter prefixes are truncation too).
        for len in 0..StreamHeader::BITS.div_ceil(8) as usize {
            let prefix = &bytes[..len];
            match codec.decompress(prefix) {
                Err(CoderError::MalformedStream(msg)) => {
                    assert!(msg.contains("truncated header"), "len {len}: {msg}");
                }
                other => panic!("len {len}: expected MalformedStream, got {other:?}"),
            }
        }
    }

    #[test]
    fn zero_dimensions_and_depths_are_rejected() {
        // Hand-craft headers with invalid fields; the payload is irrelevant
        // because validation must fail first.
        let craft = |width: u64, height: u64, depth: u64, scales: u64| {
            let mut w = BitWriter::new();
            w.write_bits(u64::from(super::MAGIC), 32);
            w.write_bits(width, 20);
            w.write_bits(height, 20);
            w.write_bits(depth, 5);
            w.write_bits(scales, 4);
            w.write_bits(0, 64);
            w.into_bytes()
        };
        let codec = LosslessCodec::new(3).unwrap();
        for (bytes, what) in [
            (craft(0, 32, 12, 3), "zero width"),
            (craft(32, 0, 12, 3), "zero height"),
            (craft(32, 32, 0, 3), "zero bit depth"),
            (craft(32, 32, 12, 0), "zero scales"),
        ] {
            assert!(
                matches!(codec.decompress(&bytes), Err(CoderError::MalformedStream(_))),
                "{what} must be a malformed-stream error"
            );
        }
    }

    #[test]
    fn forged_huge_dimensions_are_rejected_before_any_allocation() {
        // Decompression-bomb regression: a ~30-byte stream whose header
        // claims a (2^20 - 1)^2 image must come back as a fast typed error —
        // the declared pixel count exceeds the stream's bit count, and no
        // buffer may ever be sized from those dimensions.
        let mut w = BitWriter::new();
        w.write_bits(u64::from(super::MAGIC), 32);
        w.write_bits((1 << 20) - 1, 20);
        w.write_bits((1 << 20) - 1, 20);
        w.write_bits(12, 5);
        w.write_bits(3, 4);
        w.write_bits(0, 64); // a token payload, irrelevant
        let bytes = w.into_bytes();
        let codec = LosslessCodec::new(3).unwrap();
        match codec.decompress(&bytes) {
            Err(CoderError::MalformedStream(msg)) => {
                assert!(msg.contains("cannot encode"), "{msg}");
            }
            other => panic!("expected MalformedStream, got {other:?}"),
        }
        // The plausibility rule never rejects a real stream: every legit
        // stream carries at least one bit per pixel by construction.
        let image = synth::ct_phantom(48, 40, 12, 5);
        let real = codec.compress(&image).unwrap();
        let header = StreamHeader::read(&mut BitReader::new(&real)).unwrap();
        header.ensure_plausible_length(real.len()).unwrap();
        assert_eq!(codec.decompress(&real).unwrap().samples(), image.samples());
    }

    #[test]
    fn reassemble_rejects_inconsistent_subband_shapes() {
        let codec = LosslessCodec::new(2).unwrap();
        let header = StreamHeader { width: 16, height: 16, bit_depth: 12, scales: 2, delta: 0 };
        // Wrong subband count.
        assert!(matches!(
            codec.reassemble(&header, &[vec![0; 16]]),
            Err(CoderError::MalformedStream(_))
        ));
        // Right count, one band oversized.
        let mut bands: Vec<Vec<i32>> = subband_order(2)
            .map(|(scale, band)| vec![0i32; header.band_len(scale, band)])
            .collect();
        bands[3].push(7);
        assert!(matches!(codec.reassemble(&header, &bands), Err(CoderError::MalformedStream(_))));
        // Scales deeper than the geometry are no longer an error: the ragged
        // pyramid saturates at one sample, so a 2x2 image reassembles at any
        // depth as long as the band lengths agree.
        let tiny = StreamHeader { width: 2, height: 2, bit_depth: 12, scales: 2, delta: 0 };
        let bands: Vec<Vec<i32>> =
            subband_order(2).map(|(scale, band)| vec![0i32; tiny.band_len(scale, band)]).collect();
        assert_eq!(codec.reassemble(&tiny, &bands).unwrap().pixel_count(), 4);
    }

    #[test]
    fn odd_and_prime_dimensions_roundtrip() {
        // The ragged pyramid: sizes the original even-only codec rejected now
        // compress and reconstruct exactly, at any depth.
        for (w, h) in [(37, 53), (1, 1), (1, 17), (101, 63), (64, 37), (3, 3)] {
            for scales in [1u32, 3, 5] {
                let codec = LosslessCodec::new(scales).unwrap();
                let image = synth::random_image(w, h, 12, (w * h + scales as usize) as u64);
                let bytes = codec.compress(&image).unwrap();
                let back = codec.decompress(&bytes).unwrap();
                assert!(stats::bit_exact(&image, &back).unwrap(), "{w}x{h} at {scales} scales");
            }
        }
    }

    #[test]
    fn compress_view_of_a_tile_matches_compressing_the_owned_tile() {
        use lwc_image::TileRect;
        let frame = synth::ct_phantom(96, 96, 12, 5);
        let codec = LosslessCodec::new(3).unwrap();
        let rect = TileRect { x: 17, y: 32, width: 41, height: 33 };
        let via_view = codec.compress_view(&frame.view_rect(rect).unwrap()).unwrap();
        let via_copy = codec.compress(&frame.crop(rect).unwrap()).unwrap();
        assert_eq!(via_view, via_copy);
        let back = codec.decompress(&via_view).unwrap();
        assert!(stats::bit_exact(&frame.crop(rect).unwrap(), &back).unwrap());
    }

    #[test]
    fn header_roundtrips_through_the_bit_layer() {
        let header = StreamHeader { width: 640, height: 480, bit_depth: 12, scales: 5, delta: 0 };
        let mut w = BitWriter::new();
        header.write(&mut w);
        assert_eq!(w.bit_len(), StreamHeader::BITS);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(StreamHeader::read(&mut r).unwrap(), header);
        assert_eq!(header.band_len(5, 0), 20 * 15);
        assert_eq!(header.band_len(5, 3), 20 * 15);
        // Ragged geometry: a 5-wide layout splits 3 | 2 at the first scale.
        let ragged = StreamHeader { width: 5, height: 4, bit_depth: 12, scales: 1, delta: 0 };
        assert_eq!(ragged.band_len(1, 0), 3 * 2);
        assert_eq!(ragged.band_len(1, 1), 2 * 2);
    }

    #[test]
    fn subband_order_visits_every_band_once() {
        let order: Vec<(u32, usize)> = subband_order(3).collect();
        assert_eq!(
            order,
            vec![(3, 0), (3, 1), (3, 2), (3, 3), (2, 1), (2, 2), (2, 3), (1, 1), (1, 2), (1, 3)]
        );
        assert_eq!(subband_order(6).count(), 3 * 6 + 1);
    }

    #[test]
    fn near_lossless_streams_carry_the_quant_magic_and_honor_the_bound() {
        let image = synth::ct_phantom(96, 80, 12, 13);
        for delta in [2u8, 4, 8] {
            let codec = LosslessCodec::near_lossless(3, delta).unwrap();
            let bytes = codec.compress(&image).unwrap();
            assert_eq!(&bytes[..4], &QUANT_MAGIC.to_be_bytes(), "delta {delta}");
            let header = StreamHeader::read(&mut BitReader::new(&bytes)).unwrap();
            assert_eq!(header.delta, delta);
            assert_eq!(header.bits(), StreamHeader::BITS + 8);
            // Any codec decodes the stream, honoring the header's delta.
            let plain = LosslessCodec::new(3).unwrap();
            let back = plain.decompress(&bytes).unwrap();
            let diff = stats::max_abs_diff(&image, &back).unwrap();
            assert!(diff <= i32::from(delta), "delta {delta}: max diff {diff}");
            // And the stream genuinely shrinks relative to lossless.
            assert!(bytes.len() < plain.compress(&image).unwrap().len(), "delta {delta}");
        }
    }

    #[test]
    fn delta_zero_is_byte_identical_to_the_lossless_codec() {
        let image = synth::mr_slice(64, 48, 12, 3);
        let lossless = LosslessCodec::new(4).unwrap();
        let zero = LosslessCodec::near_lossless(4, 0).unwrap();
        assert_eq!(zero.delta(), 0);
        assert_eq!(lossless.compress(&image).unwrap(), zero.compress(&image).unwrap());
        // delta = 1 degenerates to the lossless schedule (the synthesis gain
        // floor) and therefore also to byte-identical streams.
        let one = LosslessCodec::near_lossless(4, 1).unwrap();
        assert!(one.schedule().is_lossless());
        let bytes = one.compress(&image).unwrap();
        assert_eq!(&bytes[..4], &QUANT_MAGIC.to_be_bytes(), "delta is still in the header");
        let back = LosslessCodec::new(4).unwrap().decompress(&bytes).unwrap();
        assert!(stats::bit_exact(&image, &back).unwrap());
    }

    #[test]
    fn quant_headers_with_zero_delta_are_malformed() {
        // Craft an otherwise-valid LWCQ header whose delta byte is zero: the
        // writer never produces this (delta 0 streams use the LWC1 magic),
        // so it must be refused as a forged quantizer header.
        let mut w = BitWriter::new();
        w.write_bits(u64::from(QUANT_MAGIC), 32);
        w.write_bits(32, 20);
        w.write_bits(32, 20);
        w.write_bits(12, 5);
        w.write_bits(3, 4);
        w.write_bits(0, 8); // delta = 0: malformed by definition
        w.write_bits(0, 64);
        let bytes = w.into_bytes();
        let codec = LosslessCodec::new(3).unwrap();
        match codec.decompress(&bytes) {
            Err(CoderError::MalformedStream(msg)) => {
                assert!(msg.contains("quantizer"), "{msg}");
            }
            other => panic!("expected MalformedStream, got {other:?}"),
        }
        // A truncated LWCQ header (delta byte missing) is typed, too.
        let mut w = BitWriter::new();
        w.write_bits(u64::from(QUANT_MAGIC), 32);
        w.write_bits(32, 20);
        w.write_bits(32, 20);
        w.write_bits(12, 5);
        w.write_bits(3, 4);
        let bytes = w.into_bytes();
        assert!(matches!(codec.decompress(&bytes), Err(CoderError::MalformedStream(_))));
    }

    #[test]
    fn near_lossless_roundtrips_clamp_into_the_pixel_range() {
        // A flat image at the top of the pixel range: quantization error
        // could push reconstructions past 2^bd - 1, which the clamp (not a
        // range error) must absorb while keeping the bound.
        for value in [0i32, 4095] {
            let image = {
                let mut samples = vec![value; 48 * 40];
                // A spot of contrast so the detail bands are nonzero.
                samples[5 * 48 + 7] = 4095 - value;
                Image::from_samples(48, 40, 12, samples).unwrap()
            };
            let codec = LosslessCodec::near_lossless(3, 8).unwrap();
            let back = codec.decompress(&codec.compress(&image).unwrap()).unwrap();
            assert!(stats::max_abs_diff(&image, &back).unwrap() <= 8);
            assert!(back.samples().iter().all(|&v| (0..=4095).contains(&v)));
        }
    }

    #[test]
    fn report_display_is_readable() {
        let report =
            CompressionReport { raw_bytes: 1000, compressed_bytes: 500, bits_per_pixel: 6.0 };
        assert!(report.to_string().contains("2.00:1"));
        assert!((report.ratio() - 2.0).abs() < 1e-12);
    }
}
