//! End-to-end lossless image codec: reversible 5/3 transform + Rice-coded
//! subbands.

use crate::bitio::{BitReader, BitWriter};
use crate::{CoderError, SubbandCodec};
use lwc_image::Image;
use lwc_lifting::Lifting53;
use std::fmt;

/// Magic number identifying an `lwc` compressed stream ("LWC1").
const MAGIC: u32 = 0x4C57_4331;

/// Statistics of one compression run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionReport {
    /// Size of the raw image in bytes (at its nominal bit depth, packed).
    pub raw_bytes: usize,
    /// Size of the compressed stream in bytes.
    pub compressed_bytes: usize,
    /// Average compressed bits per pixel.
    pub bits_per_pixel: f64,
}

impl CompressionReport {
    /// Compression ratio (raw / compressed); greater than 1 means the stream
    /// shrank.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.compressed_bytes as f64
    }
}

impl fmt::Display for CompressionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} bytes ({:.2}:1, {:.2} bpp)",
            self.raw_bytes,
            self.compressed_bytes,
            self.ratio(),
            self.bits_per_pixel
        )
    }
}

/// Lossless wavelet image codec.
///
/// The stream layout is:
///
/// ```text
/// magic (32) | width (20) | height (20) | bit depth (5) | scales (4)
/// deepest approximation subband, then for each scale from the deepest to
/// the finest: horizontal, vertical, diagonal detail subbands
/// ```
///
/// All subbands are Rice coded with a per-subband parameter
/// (see [`SubbandCodec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LosslessCodec {
    transform: Lifting53,
    subbands: SubbandCodec,
}

impl LosslessCodec {
    /// Creates a codec with the given decomposition depth.
    ///
    /// # Errors
    ///
    /// Returns an error if `scales` is zero.
    pub fn new(scales: u32) -> Result<Self, CoderError> {
        Ok(Self { transform: Lifting53::new(scales)?, subbands: SubbandCodec::new() })
    }

    /// Decomposition depth used by the codec.
    #[must_use]
    pub fn scales(&self) -> u32 {
        self.transform.scales()
    }

    /// Compresses `image` into a self-contained byte stream.
    ///
    /// # Errors
    ///
    /// Returns an error if the image cannot be decomposed to the configured
    /// depth.
    pub fn compress(&self, image: &Image) -> Result<Vec<u8>, CoderError> {
        let coeffs = self.transform.forward(image)?;
        let mut writer = BitWriter::new();
        writer.write_bits(u64::from(MAGIC), 32);
        writer.write_bits(image.width() as u64, 20);
        writer.write_bits(image.height() as u64, 20);
        writer.write_bits(u64::from(image.bit_depth()), 5);
        writer.write_bits(u64::from(self.scales()), 4);

        let deepest = self.scales();
        self.subbands.encode_subband(&mut writer, &coeffs.subband(deepest, 0));
        for scale in (1..=deepest).rev() {
            for band in 1..=3 {
                self.subbands.encode_subband(&mut writer, &coeffs.subband(scale, band));
            }
        }
        Ok(writer.into_bytes())
    }

    /// Reconstructs the image from a stream produced by
    /// [`LosslessCodec::compress`]. The result is pixel-exact.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed streams or mismatched configuration.
    pub fn decompress(&self, bytes: &[u8]) -> Result<Image, CoderError> {
        let mut reader = BitReader::new(bytes);
        if reader.read_bits(32)? as u32 != MAGIC {
            return Err(CoderError::UnsupportedFormat("bad magic number".to_owned()));
        }
        let width = reader.read_bits(20)? as usize;
        let height = reader.read_bits(20)? as usize;
        let bit_depth = reader.read_bits(5)? as u32;
        let scales = reader.read_bits(4)? as u32;
        if scales != self.scales() {
            return Err(CoderError::UnsupportedFormat(format!(
                "stream uses {scales} scales but the codec is configured for {}",
                self.scales()
            )));
        }
        if width == 0 || height == 0 || width > (1 << 20) || height > (1 << 20) {
            return Err(CoderError::MalformedStream(format!(
                "implausible dimensions {width}x{height}"
            )));
        }

        // Rebuild the Mallat layout buffer subband by subband.
        let mut data = vec![0i32; width * height];
        let deepest = self.scales();
        let mut place = |samples: &[i32], scale: u32, band: usize| {
            let w = width >> scale;
            let h = height >> scale;
            let (x0, y0) = match band {
                0 => (0, 0),
                1 => (w, 0),
                2 => (0, h),
                _ => (w, h),
            };
            for (i, &v) in samples.iter().enumerate() {
                let x = x0 + i % w;
                let y = y0 + i / w;
                data[y * width + x] = v;
            }
        };

        let approx_len = (width >> deepest) * (height >> deepest);
        if approx_len == 0 {
            return Err(CoderError::MalformedStream(
                "image too small for the coded number of scales".to_owned(),
            ));
        }
        let approx = self.subbands.decode_subband(&mut reader, approx_len)?;
        place(&approx, deepest, 0);
        for scale in (1..=deepest).rev() {
            let len = (width >> scale) * (height >> scale);
            for band in 1..=3 {
                let samples = self.subbands.decode_subband(&mut reader, len)?;
                place(&samples, scale, band);
            }
        }

        let coeffs =
            lwc_lifting::LiftingCoefficients::from_raw(data, width, height, scales, bit_depth)?;
        Ok(self.transform.inverse(&coeffs)?)
    }

    /// Compresses and reports the sizes.
    ///
    /// # Errors
    ///
    /// See [`LosslessCodec::compress`].
    pub fn compress_with_report(
        &self,
        image: &Image,
    ) -> Result<(Vec<u8>, CompressionReport), CoderError> {
        let bytes = self.compress(image)?;
        let raw_bits = image.pixel_count() * image.bit_depth() as usize;
        let report = CompressionReport {
            raw_bytes: raw_bits.div_ceil(8),
            compressed_bytes: bytes.len(),
            bits_per_pixel: bytes.len() as f64 * 8.0 / image.pixel_count() as f64,
        };
        Ok((bytes, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_image::{stats, synth};

    #[test]
    fn compress_decompress_is_lossless_on_phantoms() {
        let codec = LosslessCodec::new(4).unwrap();
        for image in [
            synth::ct_phantom(64, 64, 12, 1),
            synth::mr_slice(64, 64, 12, 2),
            synth::gradient(64, 64, 12),
            synth::flat(64, 64, 12, 777),
        ] {
            let bytes = codec.compress(&image).unwrap();
            let back = codec.decompress(&bytes).unwrap();
            assert!(stats::bit_exact(&image, &back).unwrap());
        }
    }

    #[test]
    fn structured_images_actually_compress() {
        // At clinically realistic raster sizes the phantom's smooth regions
        // dominate and the codec removes a good third of the volume; the
        // ratio keeps improving with resolution (1.9:1 at 512², see
        // EXPERIMENTS.md).
        let codec = LosslessCodec::new(5).unwrap();
        let image = synth::ct_phantom(256, 256, 12, 3);
        let (_bytes, report) = codec.compress_with_report(&image).unwrap();
        assert!(report.ratio() > 1.5, "a CT phantom should compress well, got {report}");
        assert!(report.bits_per_pixel < 8.0);
    }

    #[test]
    fn random_images_do_not_compress_but_stay_lossless() {
        let codec = LosslessCodec::new(3).unwrap();
        let image = synth::random_image(64, 64, 12, 5);
        let (bytes, report) = codec.compress_with_report(&image).unwrap();
        assert!(report.ratio() < 1.1, "uniform noise is incompressible: {report}");
        let back = codec.decompress(&bytes).unwrap();
        assert!(stats::bit_exact(&image, &back).unwrap());
    }

    #[test]
    fn rectangular_images_roundtrip() {
        let codec = LosslessCodec::new(3).unwrap();
        let image = synth::mr_slice(96, 48, 12, 9);
        let bytes = codec.compress(&image).unwrap();
        let back = codec.decompress(&bytes).unwrap();
        assert!(stats::bit_exact(&image, &back).unwrap());
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let codec = LosslessCodec::new(3).unwrap();
        let image = synth::ct_phantom(32, 32, 12, 0);
        let mut bytes = codec.compress(&image).unwrap();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(codec.decompress(&bad).is_err());
        // Truncation.
        bytes.truncate(8);
        assert!(codec.decompress(&bytes).is_err());
        // Wrong codec configuration.
        let other = LosslessCodec::new(4).unwrap();
        let full = codec.compress(&image).unwrap();
        assert!(other.decompress(&full).is_err());
    }

    #[test]
    fn report_display_is_readable() {
        let report =
            CompressionReport { raw_bytes: 1000, compressed_bytes: 500, bits_per_pixel: 6.0 };
        assert!(report.to_string().contains("2.00:1"));
        assert!((report.ratio() - 2.0).abs() < 1e-12);
    }
}
