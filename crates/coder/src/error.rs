//! Error type for the entropy-coding crate.

use lwc_image::ImageError;
use lwc_lifting::LiftingError;
use std::error::Error;
use std::fmt;

/// Errors produced while compressing or decompressing.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoderError {
    /// The compressed stream is truncated or corrupt.
    MalformedStream(String),
    /// The stream was produced by an incompatible version or configuration.
    UnsupportedFormat(String),
    /// A transform problem (undecomposable image, bad configuration).
    Lifting(LiftingError),
    /// An image container problem.
    Image(ImageError),
}

impl fmt::Display for CoderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoderError::MalformedStream(msg) => write!(f, "malformed compressed stream: {msg}"),
            CoderError::UnsupportedFormat(msg) => write!(f, "unsupported stream format: {msg}"),
            CoderError::Lifting(e) => write!(f, "transform error: {e}"),
            CoderError::Image(e) => write!(f, "image error: {e}"),
        }
    }
}

impl Error for CoderError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoderError::Lifting(e) => Some(e),
            CoderError::Image(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LiftingError> for CoderError {
    fn from(e: LiftingError) -> Self {
        CoderError::Lifting(e)
    }
}

impl From<ImageError> for CoderError {
    fn from(e: ImageError) -> Self {
        CoderError::Image(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = CoderError::MalformedStream("ran out of bits".to_owned());
        assert!(e.to_string().contains("ran out of bits"));
        assert!(Error::source(&e).is_none());
        let e = CoderError::from(LiftingError::NoScales);
        assert!(Error::source(&e).is_some());
        let e = CoderError::from(ImageError::InvalidBitDepth(0));
        assert!(Error::source(&e).is_some());
    }
}
