//! The versioned tiled container format (`LWCT`).
//!
//! A tiled stream wraps one independent [`LosslessCodec`](crate::LosslessCodec)
//! stream per tile of a [`TileGrid`] behind a fixed header and a per-tile
//! byte-offset directory, so tiles can be encoded, decoded and seeked
//! independently — the format backbone of the tile-parallel engine in
//! `lwc-pipeline`. Layout (all fields most-significant-bit first, written
//! with [`BitWriter`]; every field is a whole number of bits and the header
//! is a whole number of bytes):
//!
//! ```text
//! offset  field
//! 0       magic          32 bits  0x4C574354 ("LWCT")
//! 4       version         8 bits  1 = lossless, 2 = near-lossless
//! 5       image width    32 bits  pixels, >= 1
//! 9       image height   32 bits  pixels, >= 1
//! 13      bit depth       8 bits  1..=16
//! 14      scales          8 bits  1..=15 (the per-tile streams' depth)
//! 15      tile width     32 bits  1..=2^20 - 1, clipped to the image
//! 19      tile height    32 bits  1..=2^20 - 1, clipped to the image
//! 23      delta           8 bits  version 2 only: per-pixel bound, >= 1
//! 23/24   directory      (tile_count + 1) x 48-bit byte offsets
//! ...     payloads       tile_count concatenated LWC1/LWCQ streams
//! ```
//!
//! Version 2 appends a single quantizer byte: the near-lossless per-pixel
//! error bound `δ` every per-tile stream was encoded with (the per-tile
//! `LWCQ` headers carry the same value; the decoder cross-checks them). A
//! `δ = 0` engine writes version 1 with no delta byte — byte-identical to
//! every pre-near-lossless container — so a version-2 header whose delta is
//! zero is malformed by definition.
//!
//! `tile_count` is derived from the grid geometry, never stored. Directory
//! entry `i` is the absolute byte offset of tile `i`'s payload (row-major
//! tile order); the final entry is the total stream length, so tile `i`
//! occupies `bytes[offsets[i]..offsets[i + 1]]` and truncation or trailing
//! garbage is detectable. Tile dimensions are bounded by the inner format's
//! 20-bit fields; the outer 32-bit image dimensions are what lift the
//! whole-image limit — a 16k x 16k CR plate simply becomes a few thousand
//! independently coded tiles.
//!
//! Single-tile images are **not** wrapped: the engine emits the legacy
//! [`LWC1`](crate::StreamHeader) stream unchanged (byte-identical to
//! [`LosslessCodec::compress`](crate::LosslessCodec::compress)), and the
//! decoder sniffs the magic to route between the two formats, keeping every
//! pre-tiling stream readable.

use crate::bitio::{BitReader, BitWriter};
use crate::CoderError;
use lwc_image::TileGrid;

/// Magic number identifying a tiled `lwc` container ("LWCT").
pub const TILED_MAGIC: u32 = 0x4C57_4354;

/// The lossless container version (no quantizer field).
pub const TILED_VERSION: u8 = 1;

/// The near-lossless container version: the version-1 layout plus one
/// quantizer delta byte.
pub const TILED_QUANT_VERSION: u8 = 2;

/// Serialized size of the fixed version-1 tiled header, in bytes; a
/// version-2 header is one byte longer (see
/// [`TiledHeader::serialized_bytes`]).
pub const TILED_HEADER_BYTES: usize = 23;

/// Bits per directory entry (a 48-bit byte offset: containers beyond 256 TB
/// are out of scope). Shared with the fixed-path `LWCF` and volumetric
/// `LWCV` containers, which use the identical directory layout.
pub(crate) const OFFSET_BITS: u32 = 48;

/// Appends the `(payloads.len() + 1)`-entry 48-bit byte-offset directory and
/// the concatenated payloads to a writer that already holds a
/// `header_bytes`-byte container header. Shared by the `LWCT` and `LWCF`
/// writers so both formats' directories are one implementation.
pub(crate) fn append_directory_and_payloads(
    mut writer: BitWriter,
    header_bytes: usize,
    payloads: &[Vec<u8>],
) -> Vec<u8> {
    let directory_bytes = (payloads.len() + 1) * (OFFSET_BITS as usize / 8);
    let mut offset = header_bytes + directory_bytes;
    for payload in payloads {
        writer.write_bits(offset as u64, OFFSET_BITS);
        offset += payload.len();
    }
    writer.write_bits(offset as u64, OFFSET_BITS);
    let mut bytes = writer.into_bytes();
    debug_assert_eq!(bytes.len(), header_bytes + directory_bytes);
    bytes.reserve(offset - bytes.len());
    for payload in payloads {
        bytes.extend_from_slice(payload);
    }
    bytes
}

/// Reads and cross-validates a tile directory of `claimed` tiles: first
/// bounds the entry count by what `stream_len` bytes can physically hold
/// (the header fields are attacker controlled — nothing is allocated from
/// them before this check), then verifies that the offsets start exactly at
/// the end of the directory, never decrease, and end exactly at the stream's
/// last byte. Shared by the `LWCT` and `LWCF` parsers.
pub(crate) fn read_directory(
    reader: &mut BitReader<'_>,
    stream_len: usize,
    header_bytes: usize,
    claimed: u128,
) -> Result<Vec<u64>, CoderError> {
    let entry_bytes = OFFSET_BITS as usize / 8;
    let available = (stream_len.saturating_sub(header_bytes) / entry_bytes) as u128;
    if claimed + 1 > available {
        return Err(CoderError::MalformedStream(format!(
            "tile directory needs {} entries but at most {available} fit the stream",
            claimed + 1
        )));
    }
    let tile_count = claimed as usize;
    let mut offsets = Vec::with_capacity(tile_count + 1);
    for index in 0..=tile_count {
        let offset = reader.read_bits(OFFSET_BITS).map_err(|_| {
            CoderError::MalformedStream(format!(
                "truncated tile directory: missing offset {index} of {}",
                tile_count + 1
            ))
        })?;
        offsets.push(offset);
    }
    let payload_start = (header_bytes + (tile_count + 1) * entry_bytes) as u64;
    if offsets[0] != payload_start {
        return Err(CoderError::MalformedStream(format!(
            "tile directory starts payloads at byte {} but the header implies {payload_start}",
            offsets[0]
        )));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(CoderError::MalformedStream(
            "tile directory offsets are not monotonically non-decreasing".to_owned(),
        ));
    }
    if *offsets.last().expect("tile_count + 1 >= 1 offsets") != stream_len as u64 {
        return Err(CoderError::MalformedStream(format!(
            "tile directory ends payloads at byte {} but the container holds {} bytes",
            offsets.last().expect("nonempty"),
            stream_len
        )));
    }
    Ok(offsets)
}

/// Parsed fixed-size header of a tiled container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TiledHeader {
    /// Full image width in pixels.
    pub width: usize,
    /// Full image height in pixels.
    pub height: usize,
    /// Nominal bit depth of the pixels.
    pub bit_depth: u32,
    /// Decomposition depth of every per-tile stream.
    pub scales: u32,
    /// Nominal (interior) tile width in pixels.
    pub tile_width: usize,
    /// Nominal (interior) tile height in pixels.
    pub tile_height: usize,
    /// Near-lossless per-pixel error bound of every per-tile stream; 0 means
    /// lossless (serialized as version 1 with no quantizer byte).
    pub delta: u8,
}

impl TiledHeader {
    /// Serialized header size in bytes: [`TILED_HEADER_BYTES`] for a
    /// lossless header, one quantizer byte more for a near-lossless one.
    #[must_use]
    pub fn serialized_bytes(&self) -> usize {
        if self.delta == 0 {
            TILED_HEADER_BYTES
        } else {
            TILED_HEADER_BYTES + 1
        }
    }

    /// The tile grid this header describes.
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] if the geometry is invalid
    /// (zero dimensions).
    pub fn grid(&self) -> Result<TileGrid, CoderError> {
        TileGrid::new(self.width, self.height, self.tile_width, self.tile_height).map_err(|e| {
            CoderError::MalformedStream(format!("invalid tile geometry in header: {e}"))
        })
    }

    /// Validates the field ranges the writer enforces.
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] or
    /// [`CoderError::UnsupportedFormat`] for out-of-range fields.
    pub fn validate(&self) -> Result<(), CoderError> {
        if self.width == 0 || self.height == 0 {
            return Err(CoderError::MalformedStream(format!(
                "implausible image dimensions {}x{}",
                self.width, self.height
            )));
        }
        if self.tile_width == 0 || self.tile_height == 0 {
            return Err(CoderError::MalformedStream("zero tile dimensions".to_owned()));
        }
        if self.tile_width >= (1 << 20) || self.tile_height >= (1 << 20) {
            return Err(CoderError::UnsupportedFormat(format!(
                "tile dimensions {}x{} exceed the per-tile stream format's 20-bit fields",
                self.tile_width, self.tile_height
            )));
        }
        if self.bit_depth == 0 || self.bit_depth > 16 {
            return Err(CoderError::MalformedStream(format!(
                "unsupported bit depth {}",
                self.bit_depth
            )));
        }
        if self.scales == 0 || self.scales >= (1 << 4) {
            return Err(CoderError::MalformedStream(format!(
                "unsupported scale count {}",
                self.scales
            )));
        }
        Ok(())
    }

    /// Serializes the header (fails validation first, so a malformed header
    /// can never be written).
    ///
    /// # Errors
    ///
    /// See [`TiledHeader::validate`]; additionally rejects images whose
    /// dimensions exceed the 32-bit header fields.
    pub fn write(&self, writer: &mut BitWriter) -> Result<(), CoderError> {
        self.validate()?;
        if self.width > u32::MAX as usize || self.height > u32::MAX as usize {
            return Err(CoderError::UnsupportedFormat(format!(
                "image dimensions {}x{} exceed the container's 32-bit fields",
                self.width, self.height
            )));
        }
        let version = if self.delta == 0 { TILED_VERSION } else { TILED_QUANT_VERSION };
        writer.write_bits(u64::from(TILED_MAGIC), 32);
        writer.write_bits(u64::from(version), 8);
        writer.write_bits(self.width as u64, 32);
        writer.write_bits(self.height as u64, 32);
        writer.write_bits(u64::from(self.bit_depth), 8);
        writer.write_bits(u64::from(self.scales), 8);
        writer.write_bits(self.tile_width as u64, 32);
        writer.write_bits(self.tile_height as u64, 32);
        if self.delta != 0 {
            writer.write_bits(u64::from(self.delta), 8);
        }
        Ok(())
    }

    /// Reads and validates a header.
    ///
    /// # Errors
    ///
    /// * [`CoderError::MalformedStream`] if the stream ends inside the header
    ///   or a field is out of range.
    /// * [`CoderError::UnsupportedFormat`] for a wrong magic number or an
    ///   unknown (newer) container version.
    pub fn read(reader: &mut BitReader<'_>) -> Result<Self, CoderError> {
        let mut field = |bits: u32, name: &str| {
            reader.read_bits(bits).map_err(|_| {
                CoderError::MalformedStream(format!("truncated tiled header: missing {name}"))
            })
        };
        let magic = field(32, "magic")?;
        if magic as u32 != TILED_MAGIC {
            return Err(CoderError::UnsupportedFormat("bad tiled magic number".to_owned()));
        }
        let version = field(8, "version")? as u8;
        if version != TILED_VERSION && version != TILED_QUANT_VERSION {
            return Err(CoderError::UnsupportedFormat(format!(
                "tiled container version {version} is not supported (this build reads \
                 {TILED_VERSION} and {TILED_QUANT_VERSION})"
            )));
        }
        let mut header = Self {
            width: field(32, "width")? as usize,
            height: field(32, "height")? as usize,
            bit_depth: field(8, "bit depth")? as u32,
            scales: field(8, "scale count")? as u32,
            tile_width: field(32, "tile width")? as usize,
            tile_height: field(32, "tile height")? as usize,
            delta: 0,
        };
        if version == TILED_QUANT_VERSION {
            header.delta = field(8, "quantizer delta")? as u8;
            if header.delta == 0 {
                return Err(CoderError::MalformedStream(
                    "malformed quantizer header: near-lossless container version with zero delta"
                        .to_owned(),
                ));
            }
        }
        header.validate()?;
        Ok(header)
    }
}

/// `true` if `bytes` starts with the tiled container magic (the router
/// between the legacy single-stream decoder and the tiled one).
#[must_use]
pub fn is_tiled(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == TILED_MAGIC.to_be_bytes()
}

/// Assembles a tiled container from a header and the per-tile payloads (one
/// legacy stream per tile, in row-major tile order).
///
/// # Errors
///
/// Returns an error if the header is invalid or the payload count does not
/// match the header's grid.
pub fn write_container(header: &TiledHeader, payloads: &[Vec<u8>]) -> Result<Vec<u8>, CoderError> {
    let grid = header.grid()?;
    if payloads.len() != grid.tile_count() {
        return Err(CoderError::MalformedStream(format!(
            "{} tile payloads supplied but the grid has {}",
            payloads.len(),
            grid.tile_count()
        )));
    }
    let mut writer = BitWriter::new();
    header.write(&mut writer)?;
    Ok(append_directory_and_payloads(writer, header.serialized_bytes(), payloads))
}

/// A parsed (but not yet decoded) tiled container: the header, the validated
/// tile directory and a borrow of the raw bytes. Tiles can be sliced out
/// individually — this is what the parallel decoder hands to its workers and
/// what the row-band streaming decoder seeks through.
#[derive(Debug, Clone)]
pub struct TiledStream<'a> {
    header: TiledHeader,
    offsets: Vec<u64>,
    bytes: &'a [u8],
}

impl<'a> TiledStream<'a> {
    /// Parses and validates the header and directory of a tiled container.
    ///
    /// The directory is checked for monotonically non-decreasing offsets that
    /// start right after the directory and end exactly at the stream's last
    /// byte, so truncated, padded or internally inconsistent containers are
    /// rejected before any tile is touched.
    ///
    /// # Errors
    ///
    /// * [`CoderError::UnsupportedFormat`] for a wrong magic or version.
    /// * [`CoderError::MalformedStream`] for invalid header fields, a
    ///   truncated directory, or inconsistent offsets.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, CoderError> {
        let mut reader = BitReader::new(bytes);
        let header = TiledHeader::read(&mut reader)?;
        let grid = header.grid()?;
        // Same decompression-bomb guard as the legacy header: every sample
        // costs at least one payload bit across the per-tile streams, so a
        // pixel count beyond the stream's bit count is forged — reject it
        // before the frame buffer is sized from the 32-bit dimensions.
        let pixels = header.width as u128 * header.height as u128;
        if pixels > bytes.len() as u128 * 8 {
            return Err(CoderError::MalformedStream(format!(
                "header declares {}x{} pixels but the {}-byte container cannot encode even one \
                 bit per sample",
                header.width,
                header.height,
                bytes.len()
            )));
        }
        let claimed = grid.tiles_x() as u128 * grid.tiles_y() as u128;
        let offsets = read_directory(&mut reader, bytes.len(), header.serialized_bytes(), claimed)?;
        Ok(Self { header, offsets, bytes })
    }

    /// The container header.
    #[must_use]
    pub fn header(&self) -> &TiledHeader {
        &self.header
    }

    /// The tile grid of the container.
    ///
    /// # Errors
    ///
    /// See [`TiledHeader::grid`] (cannot fail after a successful parse).
    pub fn grid(&self) -> Result<TileGrid, CoderError> {
        self.header.grid()
    }

    /// Number of tiles in the container.
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The raw payload (a legacy single-image stream) of tile `index`, in
    /// row-major tile order.
    ///
    /// # Panics
    ///
    /// Panics if `index >= tile_count()`.
    #[must_use]
    pub fn tile_bytes(&self, index: usize) -> &'a [u8] {
        assert!(index < self.tile_count(), "tile index {index} out of bounds");
        &self.bytes[self.offsets[index] as usize..self.offsets[index + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LosslessCodec;
    use lwc_image::synth;

    fn sample_header() -> TiledHeader {
        TiledHeader {
            width: 70,
            height: 50,
            bit_depth: 12,
            scales: 3,
            tile_width: 32,
            tile_height: 32,
            delta: 0,
        }
    }

    fn sample_container() -> (TiledHeader, Vec<Vec<u8>>, Vec<u8>) {
        let header = sample_header();
        let grid = header.grid().unwrap();
        let codec = LosslessCodec::new(header.scales).unwrap();
        let image = synth::ct_phantom(header.width, header.height, 12, 1);
        let payloads: Vec<Vec<u8>> = grid
            .rects()
            .map(|rect| codec.compress_view(&image.view_rect(rect).unwrap()).unwrap())
            .collect();
        let bytes = write_container(&header, &payloads).unwrap();
        (header, payloads, bytes)
    }

    #[test]
    fn header_roundtrips() {
        let header = sample_header();
        let mut writer = BitWriter::new();
        header.write(&mut writer).unwrap();
        let bytes = writer.into_bytes();
        assert_eq!(bytes.len(), TILED_HEADER_BYTES);
        assert_eq!(&bytes[..4], &TILED_MAGIC.to_be_bytes());
        let mut reader = BitReader::new(&bytes);
        assert_eq!(TiledHeader::read(&mut reader).unwrap(), header);
    }

    #[test]
    fn container_slices_tiles_back_out() {
        let (header, payloads, bytes) = sample_container();
        assert!(is_tiled(&bytes));
        let stream = TiledStream::parse(&bytes).unwrap();
        assert_eq!(stream.header(), &header);
        assert_eq!(stream.tile_count(), payloads.len());
        for (index, payload) in payloads.iter().enumerate() {
            assert_eq!(stream.tile_bytes(index), payload.as_slice(), "tile {index}");
        }
    }

    #[test]
    fn legacy_streams_are_not_tiled() {
        let codec = LosslessCodec::new(3).unwrap();
        let bytes = codec.compress(&synth::ct_phantom(32, 32, 12, 0)).unwrap();
        assert!(!is_tiled(&bytes));
        assert!(matches!(TiledStream::parse(&bytes), Err(CoderError::UnsupportedFormat(_))));
        assert!(!is_tiled(&[]));
        assert!(!is_tiled(&[0x4C, 0x57]));
    }

    #[test]
    fn unknown_versions_are_rejected() {
        let (_, _, mut bytes) = sample_container();
        bytes[4] = TILED_QUANT_VERSION + 1;
        assert!(matches!(TiledStream::parse(&bytes), Err(CoderError::UnsupportedFormat(_))));
    }

    #[test]
    fn near_lossless_headers_roundtrip_with_the_delta_byte() {
        let header = TiledHeader { delta: 4, ..sample_header() };
        let mut writer = BitWriter::new();
        header.write(&mut writer).unwrap();
        let bytes = writer.into_bytes();
        assert_eq!(bytes.len(), TILED_HEADER_BYTES + 1);
        assert_eq!(bytes[4], TILED_QUANT_VERSION);
        let mut reader = BitReader::new(&bytes);
        assert_eq!(TiledHeader::read(&mut reader).unwrap(), header);
    }

    #[test]
    fn near_lossless_containers_slice_tiles_back_out() {
        let header = TiledHeader { delta: 2, ..sample_header() };
        let grid = header.grid().unwrap();
        let codec = LosslessCodec::near_lossless(header.scales, header.delta).unwrap();
        let image = synth::ct_phantom(header.width, header.height, 12, 1);
        let payloads: Vec<Vec<u8>> = grid
            .rects()
            .map(|rect| codec.compress_view(&image.view_rect(rect).unwrap()).unwrap())
            .collect();
        let bytes = write_container(&header, &payloads).unwrap();
        let stream = TiledStream::parse(&bytes).unwrap();
        assert_eq!(stream.header(), &header);
        for (index, payload) in payloads.iter().enumerate() {
            assert_eq!(stream.tile_bytes(index), payload.as_slice(), "tile {index}");
        }
    }

    #[test]
    fn near_lossless_version_with_zero_delta_is_malformed() {
        // A version-2 header must carry a non-zero delta: delta == 0 encodes
        // as version 1, so a v2/zero-delta combination is a forgery.
        let header = TiledHeader { delta: 1, ..sample_header() };
        let mut writer = BitWriter::new();
        header.write(&mut writer).unwrap();
        let mut bytes = writer.into_bytes();
        *bytes.last_mut().unwrap() = 0;
        let mut reader = BitReader::new(&bytes);
        match TiledHeader::read(&mut reader) {
            Err(CoderError::MalformedStream(msg)) => {
                assert!(msg.contains("quantizer"), "{msg}");
            }
            other => panic!("expected MalformedStream, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_padded_containers_are_rejected() {
        let (_, _, bytes) = sample_container();
        // Any truncation: inside the header, inside the directory, inside a
        // payload.
        for len in [0, 3, TILED_HEADER_BYTES - 1, TILED_HEADER_BYTES + 5, bytes.len() - 1] {
            assert!(TiledStream::parse(&bytes[..len]).is_err(), "prefix of {len} bytes");
        }
        // Trailing garbage is equally inconsistent with the directory.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(TiledStream::parse(&padded), Err(CoderError::MalformedStream(_))));
    }

    #[test]
    fn corrupt_directories_are_rejected() {
        let (_, _, bytes) = sample_container();
        // First offset not at the payload start.
        let mut wrong_start = bytes.clone();
        wrong_start[TILED_HEADER_BYTES + 5] ^= 0x01;
        assert!(matches!(TiledStream::parse(&wrong_start), Err(CoderError::MalformedStream(_))));
        // Non-monotone interior offsets.
        let mut non_monotone = bytes.clone();
        let second_entry = TILED_HEADER_BYTES + 6;
        non_monotone[second_entry..second_entry + 6].copy_from_slice(&[0, 0, 0, 0, 0, 1]);
        assert!(matches!(TiledStream::parse(&non_monotone), Err(CoderError::MalformedStream(_))));
    }

    #[test]
    fn invalid_header_fields_are_rejected() {
        let base = sample_header();
        for (header, what) in [
            (TiledHeader { width: 0, ..base }, "zero width"),
            (TiledHeader { height: 0, ..base }, "zero height"),
            (TiledHeader { tile_width: 0, ..base }, "zero tile width"),
            (TiledHeader { tile_height: 0, ..base }, "zero tile height"),
            (TiledHeader { tile_width: 1 << 20, ..base }, "oversized tile"),
            (TiledHeader { bit_depth: 0, ..base }, "zero depth"),
            (TiledHeader { bit_depth: 17, ..base }, "oversized depth"),
            (TiledHeader { scales: 0, ..base }, "zero scales"),
            (TiledHeader { scales: 16, ..base }, "oversized scales"),
        ] {
            assert!(header.validate().is_err(), "{what}");
            let mut writer = BitWriter::new();
            assert!(header.write(&mut writer).is_err(), "{what} must not serialize");
        }
    }

    #[test]
    fn forged_headers_with_absurd_tile_counts_are_rejected_without_allocating() {
        // A crafted header claiming ~2^64 tiles must come back as a
        // malformed-stream error, not a capacity-overflow panic or a huge
        // allocation attempt.
        for (width, height) in [(u32::MAX, u32::MAX), (u32::MAX, 1), (1 << 20, 1 << 20)] {
            let header = TiledHeader {
                width: width as usize,
                height: height as usize,
                bit_depth: 12,
                scales: 3,
                tile_width: 1,
                tile_height: 1,
                delta: 0,
            };
            let mut writer = BitWriter::new();
            header.write(&mut writer).unwrap();
            let bytes = writer.into_bytes();
            assert!(
                matches!(TiledStream::parse(&bytes), Err(CoderError::MalformedStream(_))),
                "{width}x{height} forged header"
            );
        }
    }

    #[test]
    fn forged_pixel_counts_beyond_the_stream_bits_are_rejected() {
        // A structurally valid container (header + consistent directory)
        // whose 32-bit dimensions declare more pixels than the stream has
        // bits must be refused before the frame buffer is sized — the
        // container-level decompression-bomb guard.
        let header = TiledHeader {
            width: 1 << 31,
            height: 16,
            bit_depth: 12,
            scales: 3,
            tile_width: (1 << 20) - 1,
            tile_height: 16,
            delta: 0,
        };
        let grid = header.grid().unwrap();
        let payloads = vec![Vec::new(); grid.tile_count()];
        let bytes = write_container(&header, &payloads).unwrap();
        match TiledStream::parse(&bytes) {
            Err(CoderError::MalformedStream(msg)) => {
                assert!(msg.contains("cannot encode"), "{msg}");
            }
            other => panic!("expected MalformedStream, got {other:?}"),
        }
    }

    #[test]
    fn payload_count_must_match_the_grid() {
        let header = sample_header();
        assert!(matches!(
            write_container(&header, &[vec![1, 2, 3]]),
            Err(CoderError::MalformedStream(_))
        ));
    }
}
