//! Block-adaptive Rice coding of raw fixed-point subband **words**.
//!
//! [`SubbandCodec`](crate::SubbandCodec) serializes the `i32` subbands of the
//! reversible lifting transform; this module is its counterpart for the
//! paper-exact fixed-point datapath, whose subbands are raw `i64` datapath
//! words in the Table II per-scale formats. The structure is identical —
//! fixed 64-sample blocks, one Rice parameter per block, the usual zig-zag
//! (folded-sign) map standing in for the hardware's sign-magnitude
//! representation — but two fields widen:
//!
//! * values are mapped with a **64-bit** zig-zag (the words are `i64`, even
//!   though plan-conformant coefficients fit 32 bits), and
//! * the per-block parameter field is **6 bits** so the parameter can reach
//!   [`MAX_FIXED_RICE_PARAMETER`] = 62, keeping the no-escape-code unary
//!   bound (see below) valid for *any* `i64` input, not just plan-conformant
//!   words.
//!
//! The bit-level machinery is the same word-at-a-time
//! [`BitWriter`]/[`BitReader`] the rest of the codec uses, and the codewords
//! themselves are written by [`rice::encode_zigzag`], so both entropy back
//! ends share one Rice kernel.

use crate::bitio::{BitReader, BitWriter};
use crate::rice;
use crate::subband::BLOCK_SIZE;
use crate::CoderError;

/// Largest Rice parameter the fixed-word coder will choose or accept.
///
/// With the 6-bit parameter field the cap sits at 62: in the capped case the
/// largest 64-bit zig-zag value (`2^64 - 1`, from `i64::MIN`) quotients to at
/// most 3, so the unary bound below holds with no escape code — the same
/// property [`crate::rice::MAX_RICE_PARAMETER`] = 30 provides for `i32` data.
pub const MAX_FIXED_RICE_PARAMETER: u32 = 62;

/// Bits of the per-block parameter field (wide enough for
/// [`MAX_FIXED_RICE_PARAMETER`]).
pub const FIXED_PARAMETER_BITS: u32 = 6;

/// Maps a signed 64-bit word onto a non-negative one (0, -1, 1, -2, 2, … →
/// 0, 1, 2, 3, 4, …); the wide form of [`rice::zigzag_encode`].
#[must_use]
#[inline]
pub fn zigzag_encode_wide(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode_wide`].
#[must_use]
#[inline]
pub fn zigzag_decode_wide(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// The mean-based parameter rule over a block's zig-zag sum, capped at
/// [`MAX_FIXED_RICE_PARAMETER`]. The sum is accumulated in 128 bits because
/// a block of extreme `i64` words overflows a `u64` accumulator.
#[must_use]
pub fn fixed_parameter_for_zigzag_sum(sum: u128, count: usize) -> u32 {
    if count == 0 {
        return 0;
    }
    let mean = sum as f64 / count as f64;
    let mut k = 0;
    while k < MAX_FIXED_RICE_PARAMETER && (f64::from(k + 1)).exp2() <= mean + 1.0 {
        k += 1;
    }
    k
}

/// Encodes/decodes fixed-point subband words with a block-adaptive Rice code.
///
/// Why no escape code is needed (the wide form of the
/// [`crate::MAX_UNARY_RUN_BITS`] derivation): within a block of
/// `B <= BLOCK_SIZE` words the parameter satisfies `2^(k+1) > mean + 1`
/// unless capped, so every zig-zag value `u <= B * mean` quotients to
/// `u >> k < 2B`; in the capped case `k = 62` even `u = 2^64 - 1` quotients
/// to at most 3. The unary run therefore never exceeds `2 * BLOCK_SIZE` bits
/// for **any** `i64` input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixedSubbandCodec;

impl FixedSubbandCodec {
    /// Creates a codec.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Encodes one subband of raw fixed-point words as a sequence of
    /// `BLOCK_SIZE` (64) sample blocks, each preceded by its 6-bit Rice
    /// parameter. Returns the number of bits written.
    pub fn encode_subband(self, writer: &mut BitWriter, words: &[i64]) -> u64 {
        let before = writer.bit_len();
        // Zig-zag each block once into a stack scratch, summing for the
        // parameter rule in the same pass (in 128 bits — extreme words would
        // overflow a u64 sum), exactly like the i32 subband coder.
        let mut zigzag = [0u64; BLOCK_SIZE];
        for block in words.chunks(BLOCK_SIZE) {
            let mut sum = 0u128;
            for (slot, &v) in zigzag.iter_mut().zip(block) {
                let u = zigzag_encode_wide(v);
                *slot = u;
                sum += u128::from(u);
            }
            let mapped = &zigzag[..block.len()];
            let k = fixed_parameter_for_zigzag_sum(sum, mapped.len());
            writer.write_bits(u64::from(k), FIXED_PARAMETER_BITS);
            for &u in mapped {
                rice::encode_zigzag(writer, u, k);
            }
        }
        writer.bit_len() - before
    }

    /// Decodes one subband of `count` words.
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] if the stream is truncated, a
    /// stored parameter is out of range, or a codeword's quotient overflows
    /// the 64-bit value range (only possible on corrupt input — the encoder's
    /// unary runs are bounded).
    pub fn decode_subband(
        self,
        reader: &mut BitReader<'_>,
        count: usize,
    ) -> Result<Vec<i64>, CoderError> {
        let mut out = Vec::with_capacity(count);
        let mut remaining = count;
        while remaining > 0 {
            let block_len = remaining.min(BLOCK_SIZE);
            let k = self.read_parameter(reader)?;
            // Grow once and write through the slice (see rice::decode_into).
            let start = out.len();
            out.resize(start + block_len, 0);
            for slot in &mut out[start..] {
                *slot = decode_word(reader, k)?;
            }
            remaining -= block_len;
        }
        Ok(out)
    }

    /// Advances `reader` past one subband of `count` words without
    /// materializing the values — the fixed-path counterpart of
    /// [`SubbandCodec::skip_subband`](crate::SubbandCodec::skip_subband),
    /// usable to build a subband directory over a sequential stream.
    ///
    /// # Errors
    ///
    /// Returns [`CoderError::MalformedStream`] if the stream is truncated or
    /// a stored parameter is out of range.
    pub fn skip_subband(self, reader: &mut BitReader<'_>, count: usize) -> Result<(), CoderError> {
        let mut remaining = count;
        while remaining > 0 {
            let block_len = remaining.min(BLOCK_SIZE);
            let k = self.read_parameter(reader)?;
            for _ in 0..block_len {
                reader.read_unary()?;
                reader.skip_bits(u64::from(k))?;
            }
            remaining -= block_len;
        }
        Ok(())
    }

    fn read_parameter(self, reader: &mut BitReader<'_>) -> Result<u32, CoderError> {
        let k = reader.read_bits(FIXED_PARAMETER_BITS)? as u32;
        if k > MAX_FIXED_RICE_PARAMETER {
            return Err(CoderError::MalformedStream(format!(
                "fixed-word rice parameter {k} exceeds the supported maximum"
            )));
        }
        Ok(k)
    }
}

/// Reads one word coded with parameter `k`, rejecting quotients that would
/// overflow the 64-bit zig-zag range (a corrupt stream; the encoder never
/// produces them).
#[inline]
fn decode_word(reader: &mut BitReader<'_>, k: u32) -> Result<i64, CoderError> {
    let (quotient, remainder) = reader.read_unary_then_bits(k)?;
    if k > 0 && quotient >> (64 - k) != 0 {
        return Err(CoderError::MalformedStream(format!(
            "rice quotient {quotient} overflows a 64-bit value at parameter {k}"
        )));
    }
    Ok(zigzag_decode_wide((quotient << k) | remainder))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn wide_zigzag_is_a_bijection_on_extremes() {
        for v in [0i64, 1, -1, 2, -2, i64::from(i32::MAX), i64::from(i32::MIN), i64::MAX, i64::MIN]
        {
            assert_eq!(zigzag_decode_wide(zigzag_encode_wide(v)), v);
        }
        assert_eq!(zigzag_encode_wide(0), 0);
        assert_eq!(zigzag_encode_wide(-1), 1);
        assert_eq!(zigzag_encode_wide(1), 2);
        assert_eq!(zigzag_encode_wide(i64::MIN), u64::MAX);
    }

    #[test]
    fn subband_roundtrip_over_magnitudes() {
        let codec = FixedSubbandCodec::new();
        let mut rng = StdRng::seed_from_u64(5);
        let bands: Vec<Vec<i64>> = (0..8)
            .map(|scale| {
                let spread = 1i64 << (4 * scale); // up to ±2^28
                (0..300).map(|_| rng.gen_range(-spread..=spread)).collect()
            })
            .collect();
        let mut w = BitWriter::new();
        for band in &bands {
            assert!(codec.encode_subband(&mut w, band) > 0);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for band in &bands {
            assert_eq!(codec.decode_subband(&mut r, band.len()).unwrap(), *band);
        }
    }

    #[test]
    fn extreme_words_roundtrip_without_escape_codes() {
        // i64 extremes drive the parameter to its cap; the stream must stay
        // decodable and the unary runs bounded.
        let codec = FixedSubbandCodec::new();
        let mut adversarial: Vec<Vec<i64>> = vec![
            vec![i64::MIN; BLOCK_SIZE],
            vec![i64::MAX; 2 * BLOCK_SIZE + 1],
            vec![i64::MIN],
            {
                let mut v = vec![0i64; BLOCK_SIZE];
                v[17] = i64::MIN;
                v
            },
            vec![0, 0, -1, i64::MIN, 1, i64::MAX, 0],
        ];
        let mut rng = StdRng::seed_from_u64(23);
        adversarial.extend((0..40).map(|_| {
            let len = rng.gen_range(1..=2 * BLOCK_SIZE);
            (0..len).map(|_| rng.gen_range(i64::MIN..=i64::MAX)).collect::<Vec<i64>>()
        }));
        for words in &adversarial {
            let mut w = BitWriter::new();
            codec.encode_subband(&mut w, words);
            let bytes = w.into_bytes();
            // Measure every unary run while re-parsing.
            let mut r = BitReader::new(&bytes);
            let mut remaining = words.len();
            while remaining > 0 {
                let block_len = remaining.min(BLOCK_SIZE);
                let k = r.read_bits(FIXED_PARAMETER_BITS).unwrap();
                for _ in 0..block_len {
                    let quotient = r.read_unary().unwrap();
                    assert!(
                        quotient < crate::MAX_UNARY_RUN_BITS,
                        "unary run of {} bits exceeds the bound",
                        quotient + 1
                    );
                    r.skip_bits(k).unwrap();
                }
                remaining -= block_len;
            }
            let mut r = BitReader::new(&bytes);
            assert_eq!(codec.decode_subband(&mut r, words.len()).unwrap(), *words);
        }
    }

    #[test]
    fn sparse_subbands_cost_little() {
        let codec = FixedSubbandCodec::new();
        let band = vec![0i64; 4096];
        let mut w = BitWriter::new();
        let bits = codec.encode_subband(&mut w, &band);
        let blocks = band.len().div_ceil(BLOCK_SIZE) as u64;
        assert!(
            bits <= u64::from(FIXED_PARAMETER_BITS) * blocks + band.len() as u64,
            "all-zero subband should cost about one bit per sample plus headers"
        );
    }

    #[test]
    fn corrupt_parameter_is_rejected() {
        let codec = FixedSubbandCodec::new();
        let mut w = BitWriter::new();
        w.write_bits(63, FIXED_PARAMETER_BITS); // above the cap
        let bytes = w.into_bytes();
        assert!(codec.decode_subband(&mut BitReader::new(&bytes), 4).is_err());
        assert!(codec.skip_subband(&mut BitReader::new(&bytes), 4).is_err());
    }

    #[test]
    fn truncated_streams_are_rejected() {
        let codec = FixedSubbandCodec::new();
        let mut w = BitWriter::new();
        codec.encode_subband(&mut w, &[5_000_000_000, -5_000_000_000, 9, -9]);
        let mut bytes = w.into_bytes();
        bytes.truncate(1);
        assert!(codec.decode_subband(&mut BitReader::new(&bytes), 4).is_err());
        assert!(codec.skip_subband(&mut BitReader::new(&bytes), 4).is_err());
    }

    #[test]
    fn forged_overlong_quotients_are_rejected_not_wrapped() {
        // A hand-built codeword whose quotient shifts past 64 bits must be a
        // typed error, not a silently wrapped value.
        let mut w = BitWriter::new();
        w.write_bits(40, FIXED_PARAMETER_BITS); // k = 40
        w.write_unary(1 << 25); // quotient 2^25, quotient << 40 overflows
        w.write_bits(0, 40);
        let bytes = w.into_bytes();
        let codec = FixedSubbandCodec::new();
        assert!(matches!(
            codec.decode_subband(&mut BitReader::new(&bytes), 1),
            Err(CoderError::MalformedStream(_))
        ));
    }

    #[test]
    fn skip_subband_lands_exactly_on_the_next_subband() {
        let codec = FixedSubbandCodec::new();
        let mut rng = StdRng::seed_from_u64(9);
        let first: Vec<i64> = (0..333).map(|_| rng.gen_range(-4_000_000..4_000_000)).collect();
        let second: Vec<i64> = (0..100).map(|_| rng.gen_range(-7..7)).collect();
        let mut w = BitWriter::new();
        codec.encode_subband(&mut w, &first);
        let first_bits = w.bit_len();
        codec.encode_subband(&mut w, &second);
        let bytes = w.into_bytes();

        let mut r = BitReader::new(&bytes);
        codec.skip_subband(&mut r, first.len()).unwrap();
        assert_eq!(r.bits_read(), first_bits);
        assert_eq!(codec.decode_subband(&mut r, second.len()).unwrap(), second);
    }

    #[test]
    fn parameter_rule_tracks_magnitude_and_caps() {
        assert_eq!(fixed_parameter_for_zigzag_sum(0, 0), 0);
        assert_eq!(fixed_parameter_for_zigzag_sum(0, 64), 0);
        assert!(
            fixed_parameter_for_zigzag_sum(u128::from(u64::MAX), 1) <= MAX_FIXED_RICE_PARAMETER
        );
        assert_eq!(
            fixed_parameter_for_zigzag_sum(u128::from(u64::MAX) * 64, 64),
            MAX_FIXED_RICE_PARAMETER
        );
        // Small means pick small parameters, like the i32 rule.
        assert!(fixed_parameter_for_zigzag_sum(64, 64) <= 1);
    }
}
