//! Hardware requirement formulas per architecture class.

use lwc_tech::{MemoryModel, MultiplierDesign, MultiplierModel};
use std::fmt;

/// Workload / configuration parameters shared by all architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostParameters {
    /// Filter length `L` (13 for the paper's sizing).
    pub filter_len: usize,
    /// Number of decomposition scales `S`.
    pub scales: u32,
    /// Number of image rows/columns `N`.
    pub image_size: usize,
    /// Datapath word length in bits (32 for lossless accuracy).
    pub word_bits: u32,
}

impl CostParameters {
    /// The paper's Table III configuration: L = 13, S = 6, N = 512, 32-bit
    /// words.
    #[must_use]
    pub fn paper_default() -> Self {
        Self { filter_len: 13, scales: 6, image_size: 512, word_bits: 32 }
    }
}

/// The architecture classes compared in Table III, plus the proposed design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchitectureClass {
    /// Two serial filters for the rows and two parallel filters for the
    /// columns, fed with two rows at a time (survey \[14\]).
    SerialParallel,
    /// All four filters implemented as parallel filters, fed with one row
    /// (survey \[14\]).
    Parallel,
    /// Lapped block processing: the image is split into filter-sized blocks
    /// processed with a serial-parallel/parallel datapath (\[13\]).
    BlockFiltering,
    /// Recursive 1-D transform over all scales in row order, followed by a
    /// transpose and a second pass (\[11\]).
    Recursive1d,
    /// The paper's proposed single-MAC architecture.
    Proposed,
}

impl ArchitectureClass {
    /// The four prior-art classes of Table III (without the proposed design).
    pub const PRIOR_ART: [ArchitectureClass; 4] = [
        ArchitectureClass::SerialParallel,
        ArchitectureClass::Parallel,
        ArchitectureClass::BlockFiltering,
        ArchitectureClass::Recursive1d,
    ];

    /// Human-readable name as used in Table III.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ArchitectureClass::SerialParallel => "Serial-Parallel",
            ArchitectureClass::Parallel => "Parallel",
            ArchitectureClass::BlockFiltering => "Block Filtering",
            ArchitectureClass::Recursive1d => "Recursive 1D",
            ArchitectureClass::Proposed => "Proposed (single MAC)",
        }
    }

    /// Number of multipliers the class needs (reconstructed formulas — see
    /// the crate documentation).
    #[must_use]
    pub fn multipliers(self, p: CostParameters) -> u64 {
        let l = p.filter_len as u64;
        match self {
            // Two serial row filters plus two fully parallel column filters.
            ArchitectureClass::SerialParallel => 2 * l + 2,
            // Four fully parallel filters.
            ArchitectureClass::Parallel => 4 * l,
            // One serial-parallel datapath reused across blocks.
            ArchitectureClass::BlockFiltering => 2 * l,
            // Two filter pairs sharing a recursive pyramid schedule.
            ArchitectureClass::Recursive1d => 2 * l,
            // The whole point of the paper: a single multiplier.
            ArchitectureClass::Proposed => 1,
        }
    }

    /// Number of on-chip memory words the class needs (reconstructed).
    #[must_use]
    pub fn memory_words(self, p: CostParameters) -> u64 {
        let l = p.filter_len as u64;
        let n = p.image_size as u64;
        match self {
            // Line buffers for the column filters plus a transpose row.
            ArchitectureClass::SerialParallel => 2 * l * n + n,
            // Half the line buffers (one row enters per cycle) plus a row.
            ArchitectureClass::Parallel => l * n + n,
            // Lapped blocks still need L lines of overlap storage per
            // dimension.
            ArchitectureClass::BlockFiltering => 2 * l * n,
            // The recursive schedule stores L partially-filtered lines plus
            // two transpose rows.
            ArchitectureClass::Recursive1d => l * n + 2 * n,
            // Input buffer of N/2 + 32 words plus the filter coefficients.
            ArchitectureClass::Proposed => n / 2 + 32 + l,
        }
    }

    /// Which multiplier cell the class would instantiate: the prior-art
    /// designs use the compiled cell (they run well below the 40 MHz the
    /// compiled cell supports per filter tap), the proposed design needs the
    /// pipelined Wallace tree to sustain one MAC per 25 ns.
    #[must_use]
    pub fn multiplier_design(self) -> MultiplierDesign {
        match self {
            ArchitectureClass::Proposed => MultiplierDesign::PipelinedWallace,
            _ => MultiplierDesign::Compiled,
        }
    }
}

impl fmt::Display for ArchitectureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Evaluated hardware cost of one architecture class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchitectureCost {
    /// Which class was evaluated.
    pub class: ArchitectureClass,
    /// Number of multipliers.
    pub multipliers: u64,
    /// Number of on-chip memory words.
    pub memory_words: u64,
    /// Area spent on multipliers, mm².
    pub multiplier_area_mm2: f64,
    /// Area spent on on-chip memory, mm².
    pub memory_area_mm2: f64,
}

impl ArchitectureCost {
    /// Evaluates `class` for parameters `p` using the calibrated technology
    /// model.
    #[must_use]
    pub fn evaluate(class: ArchitectureClass, p: CostParameters) -> Self {
        Self::evaluate_with(class, p, &MemoryModel::calibrated_es2())
    }

    /// Evaluates with an explicit memory model (for sensitivity sweeps).
    #[must_use]
    pub fn evaluate_with(
        class: ArchitectureClass,
        p: CostParameters,
        memory: &MemoryModel,
    ) -> Self {
        let multipliers = class.multipliers(p);
        let memory_words = class.memory_words(p);
        let mult_cell =
            MultiplierModel::paper(class.multiplier_design()).scaled_to_width(p.word_bits);
        ArchitectureCost {
            class,
            multipliers,
            memory_words,
            multiplier_area_mm2: multipliers as f64 * mult_cell.area_mm2,
            memory_area_mm2: memory.area_for_words(memory_words, p.word_bits),
        }
    }

    /// Total silicon area in mm².
    #[must_use]
    pub fn total_area_mm2(&self) -> f64 {
        self.multiplier_area_mm2 + self.memory_area_mm2
    }
}

impl fmt::Display for ArchitectureCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} multipliers, {} words, {:.1} mm2",
            self.class,
            self.multipliers,
            self.memory_words,
            self.total_area_mm2()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposed_design_uses_one_multiplier_and_small_buffers() {
        let p = CostParameters::paper_default();
        assert_eq!(ArchitectureClass::Proposed.multipliers(p), 1);
        // N/2 + 32 data words plus 13 coefficient words.
        assert_eq!(ArchitectureClass::Proposed.memory_words(p), 256 + 32 + 13);
    }

    #[test]
    fn prior_art_needs_orders_of_magnitude_more_memory() {
        let p = CostParameters::paper_default();
        for class in ArchitectureClass::PRIOR_ART {
            assert!(
                class.memory_words(p) > 20 * ArchitectureClass::Proposed.memory_words(p),
                "{class}"
            );
        }
    }

    #[test]
    fn areas_have_the_papers_shape() {
        let p = CostParameters::paper_default();
        let proposed = ArchitectureCost::evaluate(ArchitectureClass::Proposed, p);
        assert!((proposed.total_area_mm2() - 11.2).abs() < 0.5);
        for class in ArchitectureClass::PRIOR_ART {
            let cost = ArchitectureCost::evaluate(class, p);
            assert!(
                cost.total_area_mm2() > 140.0 && cost.total_area_mm2() < 300.0,
                "{class}: {:.1} mm2",
                cost.total_area_mm2()
            );
            assert!(
                cost.total_area_mm2() / proposed.total_area_mm2() > 12.0,
                "{class} should dwarf the proposed design"
            );
        }
    }

    #[test]
    fn recursive_architecture_is_the_cheapest_prior_art() {
        let p = CostParameters::paper_default();
        let recursive = ArchitectureCost::evaluate(ArchitectureClass::Recursive1d, p);
        for class in [
            ArchitectureClass::SerialParallel,
            ArchitectureClass::Parallel,
            ArchitectureClass::BlockFiltering,
        ] {
            assert!(
                recursive.total_area_mm2() < ArchitectureCost::evaluate(class, p).total_area_mm2(),
                "{class}"
            );
        }
    }

    #[test]
    fn proposed_design_is_the_only_one_needing_the_pipelined_multiplier() {
        assert_eq!(
            ArchitectureClass::Proposed.multiplier_design(),
            MultiplierDesign::PipelinedWallace
        );
        for class in ArchitectureClass::PRIOR_ART {
            assert_eq!(class.multiplier_design(), MultiplierDesign::Compiled);
        }
    }

    #[test]
    fn cost_display_is_readable() {
        let p = CostParameters::paper_default();
        let s = ArchitectureCost::evaluate(ArchitectureClass::Parallel, p).to_string();
        assert!(s.contains("Parallel"));
        assert!(s.contains("mm2"));
    }

    #[test]
    fn narrower_words_shrink_every_architecture() {
        let wide = CostParameters::paper_default();
        let narrow = CostParameters { word_bits: 16, ..wide };
        for class in ArchitectureClass::PRIOR_ART {
            assert!(
                ArchitectureCost::evaluate(class, narrow).total_area_mm2()
                    < ArchitectureCost::evaluate(class, wide).total_area_mm2(),
                "{class}"
            );
        }
    }
}
