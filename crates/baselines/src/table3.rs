//! Regeneration of Table III.

use crate::{ArchitectureClass, ArchitectureCost, CostParameters};
use std::fmt;

/// The area column of Table III exactly as printed (mm², 0.7 µm CMOS,
/// L = 13, S = 6, N = 512, 32-bit words), in the order Serial-Parallel,
/// Parallel, Block Filtering, Recursive 1-D.
pub const PAPER_TABLE3_AREAS_MM2: [f64; 4] = [254.36, 254.36, 246.64, 173.72];

/// The proposed architecture's area as printed in the conclusions (mm²).
pub const PAPER_PROPOSED_AREA_MM2: f64 = 11.2;

/// One row of the regenerated Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Evaluated cost under the calibrated technology model.
    pub cost: ArchitectureCost,
    /// The area the paper prints for this row (`None` for rows the paper
    /// only reports in the conclusions).
    pub paper_area_mm2: Option<f64>,
}

impl Table3Row {
    /// Relative deviation of the modelled area from the paper's figure, when
    /// the paper provides one.
    #[must_use]
    pub fn area_deviation(&self) -> Option<f64> {
        self.paper_area_mm2.map(|paper| (self.cost.total_area_mm2() - paper) / paper)
    }
}

impl fmt::Display for Table3Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.paper_area_mm2 {
            Some(paper) => write!(
                f,
                "{:<22} {:>4} mult {:>8} words {:>8.1} mm2 (paper {:>6.1} mm2)",
                self.cost.class.name(),
                self.cost.multipliers,
                self.cost.memory_words,
                self.cost.total_area_mm2(),
                paper
            ),
            None => write!(
                f,
                "{:<22} {:>4} mult {:>8} words {:>8.1} mm2",
                self.cost.class.name(),
                self.cost.multipliers,
                self.cost.memory_words,
                self.cost.total_area_mm2()
            ),
        }
    }
}

/// Regenerates Table III (the four prior-art classes followed by the
/// proposed architecture) for the given parameters.
#[must_use]
pub fn table3(p: CostParameters) -> Vec<Table3Row> {
    let mut rows: Vec<Table3Row> = ArchitectureClass::PRIOR_ART
        .iter()
        .zip(PAPER_TABLE3_AREAS_MM2)
        .map(|(&class, paper)| Table3Row {
            cost: ArchitectureCost::evaluate(class, p),
            paper_area_mm2: Some(paper),
        })
        .collect();
    rows.push(Table3Row {
        cost: ArchitectureCost::evaluate(ArchitectureClass::Proposed, p),
        paper_area_mm2: Some(PAPER_PROPOSED_AREA_MM2),
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_five_rows_in_paper_order() {
        let rows = table3(CostParameters::paper_default());
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].cost.class, ArchitectureClass::SerialParallel);
        assert_eq!(rows[4].cost.class, ArchitectureClass::Proposed);
    }

    #[test]
    fn modelled_areas_track_the_paper_within_a_third() {
        // The requirement formulas are reconstructions (see crate docs), so
        // we accept a generous tolerance on each row — the comparisons that
        // matter (ordering, gap to the proposed design) are asserted
        // separately.
        for row in table3(CostParameters::paper_default()) {
            let dev = row.area_deviation().unwrap();
            assert!(
                dev.abs() < 0.35,
                "{}: modelled {:.1} mm2 vs paper {:.1} mm2",
                row.cost.class,
                row.cost.total_area_mm2(),
                row.paper_area_mm2.unwrap()
            );
        }
    }

    #[test]
    fn proposed_design_is_more_than_an_order_of_magnitude_smaller() {
        let rows = table3(CostParameters::paper_default());
        let proposed = rows.last().unwrap().cost.total_area_mm2();
        for row in &rows[..4] {
            assert!(row.cost.total_area_mm2() / proposed > 12.0);
        }
    }

    #[test]
    fn prior_art_ordering_matches_the_paper() {
        // Paper ordering by area: Recursive 1-D < Block Filtering <=
        // Serial-Parallel = Parallel.
        let rows = table3(CostParameters::paper_default());
        let area = |i: usize| rows[i].cost.total_area_mm2();
        assert!(area(3) < area(2), "recursive < block filtering");
        assert!(area(3) < area(0) && area(3) < area(1));
    }

    #[test]
    fn rows_render_with_paper_reference() {
        let rows = table3(CostParameters::paper_default());
        let text = rows[0].to_string();
        assert!(text.contains("Serial-Parallel"));
        assert!(text.contains("254.4") || text.contains("254.3"));
    }
}
