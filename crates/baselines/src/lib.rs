//! # lwc-baselines — hardware cost of prior DWT architectures (Table III)
//!
//! Section 3 of the paper groups the published DWT architectures into four
//! classes and tabulates, for lossless-grade word lengths (32 bits, L = 13,
//! S = 6, N = 512), the number of arithmetic blocks, the number of memory
//! elements and the resulting silicon area — concluding that every prior
//! design costs hundreds of mm² while the proposed single-MAC datapath needs
//! ~11 mm².
//!
//! The printed closed forms in Table III are partially illegible in the
//! available copy of the paper, so the requirement formulas here are
//! **reconstructions** based on the cited survey (Chakrabarti, Vishwanath,
//! Owens \[14\]), the block-filtering proposal \[13\] and the recursive
//! architecture \[11\]; they are documented next to each variant and land
//! within ~±12 % of the printed area column under the calibrated technology
//! model, preserving both the ordering and the order-of-magnitude gap to the
//! proposed design (see EXPERIMENTS.md, experiment E-T3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod table3;

pub use cost::{ArchitectureClass, ArchitectureCost, CostParameters};
pub use table3::{table3, Table3Row, PAPER_TABLE3_AREAS_MM2};

#[cfg(test)]
mod crate_tests {
    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::ArchitectureCost>();
        assert_send_sync::<crate::Table3Row>();
    }
}
