//! Regeneration of every table and figure of the paper's evaluation.
//!
//! Each function returns structured data so that the `reproduce` binary can
//! print it, the Criterion benches can time it and the integration tests can
//! assert on it. The experiment identifiers (`E-T1` … `E-C1`) follow the
//! per-experiment index in `DESIGN.md`.

use lwc_arch::fifo::FifoBounds;
use lwc_arch::input_buffer::InputBufferSpec;
use lwc_arch::schedule::{utilization, Macrocycle, PAPER_UTILIZATION};
use lwc_arch::ArchError;
use lwc_arch::{ArchParams, ArchReport, ArchSimulator};
use lwc_baselines::{CostParameters, Table3Row};
use lwc_dwt::DwtError;
use lwc_filters::{BankMetrics, BiorthogonalityReport, FilterBank, FilterId};
use lwc_image::synth;
use lwc_perf::hardware::{HardwareModel, ThroughputReport};
use lwc_perf::macs;
use lwc_perf::software::SoftwareModel;
use lwc_tech::{MultiplierModel, TABLE5_PAPER};
use lwc_wordlen::integer_bits::{self, TABLE2_PAPER};

/// E-T1 — one row of the regenerated Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Bank identifier.
    pub id: FilterId,
    /// Filter metrics (lengths, absolute sums, growth factors).
    pub metrics: BankMetrics,
    /// Perfect-reconstruction residual of the printed coefficients.
    pub biorthogonality: BiorthogonalityReport,
}

/// E-T1 — regenerates Table I from the coefficient data.
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    FilterBank::all_table1()
        .iter()
        .map(|bank| Table1Row {
            id: bank.id(),
            metrics: BankMetrics::of(bank),
            biorthogonality: BiorthogonalityReport::of(bank),
        })
        .collect()
}

/// E-T2 — the regenerated Table II next to the printed one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Reproduction {
    /// Per-bank computed integer-part widths for scales 1..=6.
    pub computed: Vec<(FilterId, Vec<u32>)>,
    /// The printed table.
    pub paper: [[u32; 6]; 6],
}

impl Table2Reproduction {
    /// `true` when every entry matches the paper exactly.
    #[must_use]
    pub fn matches_paper(&self) -> bool {
        self.computed
            .iter()
            .zip(self.paper.iter())
            .all(|((_, row), paper_row)| row.as_slice() == paper_row.as_slice())
    }
}

/// E-T2 — regenerates Table II (minimum integer part per filter and scale).
#[must_use]
pub fn table2() -> Table2Reproduction {
    Table2Reproduction { computed: integer_bits::table2(6), paper: TABLE2_PAPER }
}

/// E-T3 — regenerates Table III (hardware cost of prior architectures plus
/// the proposed one) for the paper's parameters.
#[must_use]
pub fn table3() -> Vec<Table3Row> {
    lwc_baselines::table3(CostParameters::paper_default())
}

/// E-F4/T4 — the input-buffer sizing and the Bank 2 reuse counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table4Reproduction {
    /// Buffer sizing (Bsize = 4l+1 rounded to a power of two).
    pub spec: InputBufferSpec,
    /// Per scale: (scale, row/column length, #rounds).
    pub rounds: Vec<(u32, usize, usize)>,
    /// The printed #rounds column for the 512×512, 13-tap configuration.
    pub paper_rounds: [usize; 6],
}

/// E-F4/T4 — regenerates Table IV for the paper configuration.
///
/// # Errors
///
/// Returns an error only if the buffer spec cannot be built (never for the
/// 13-tap configuration).
pub fn table4() -> Result<Table4Reproduction, ArchError> {
    let spec = InputBufferSpec::for_filter(13)?;
    Ok(Table4Reproduction { spec, rounds: spec.table4(512, 6), paper_rounds: [31, 15, 7, 3, 1, 0] })
}

/// E-T5 — the two multiplier design points of Table V.
#[must_use]
pub fn table5() -> [MultiplierModel; 2] {
    TABLE5_PAPER
}

/// E-T6 — the FIFO depth bounds of Table VI next to the printed values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table6Reproduction {
    /// Computed bounds per scale.
    pub bounds: Vec<FifoBounds>,
    /// Printed MIN(D) row.
    pub paper_min: [usize; 6],
    /// Printed MAX(D) row.
    pub paper_max: [usize; 6],
}

impl Table6Reproduction {
    /// `true` when every bound matches the paper exactly.
    #[must_use]
    pub fn matches_paper(&self) -> bool {
        self.bounds
            .iter()
            .zip(self.paper_min.iter().zip(self.paper_max.iter()))
            .all(|(b, (&min, &max))| b.min_depth == min && b.max_depth == max)
    }
}

/// E-T6 — regenerates Table VI for N = 512, L = 13.
#[must_use]
pub fn table6() -> Table6Reproduction {
    Table6Reproduction {
        bounds: FifoBounds::table6(512, 6, 6),
        paper_min: [250, 122, 58, 26, 10, 2],
        paper_max: [504, 248, 120, 56, 24, 8],
    }
}

/// E-EQ2 — MAC counts and the software baseline time.
#[derive(Debug, Clone, PartialEq)]
pub struct Eq2Reproduction {
    /// MACs per scale for the reference workload.
    pub per_scale: Vec<u64>,
    /// Total MACs (Eq. 2).
    pub total: u64,
    /// The value the paper quotes (8.99·10⁶).
    pub paper_total: f64,
    /// Predicted Pentium-133 execution time in seconds (paper: 42 s).
    pub pentium_seconds: f64,
}

/// E-EQ2 — regenerates the Eq. (2) numbers for N = 512, L = 13, S = 6.
#[must_use]
pub fn eq2() -> Eq2Reproduction {
    let per_scale: Vec<u64> = (1..=6).map(|j| macs::macs_for_scale(512, 13, 13, j)).collect();
    let total = per_scale.iter().sum();
    Eq2Reproduction {
        per_scale,
        total,
        paper_total: macs::PAPER_QUOTED_MACS,
        pentium_seconds: SoftwareModel::pentium_133().seconds_for(total),
    }
}

/// E-F2 — the macrocycle schedule and the utilization figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Reproduction {
    /// A normal 13-cycle macrocycle.
    pub normal: Macrocycle,
    /// A macrocycle extended by the 6-cycle DRAM refresh.
    pub with_refresh: Macrocycle,
    /// Utilization for the default refresh interval (one refresh per 48
    /// macrocycles).
    pub utilization: f64,
    /// The figure the paper quotes (99.04 %).
    pub paper_utilization: f64,
}

/// E-F2 — regenerates the Fig. 2 schedule.
#[must_use]
pub fn fig2() -> Fig2Reproduction {
    Fig2Reproduction {
        normal: Macrocycle::normal(13),
        with_refresh: Macrocycle::with_refresh(13, 6),
        utilization: utilization(13, 48, 1, 6),
        paper_utilization: PAPER_UTILIZATION,
    }
}

/// E-C1 — the headline numbers of the conclusions: area, throughput and
/// speedup.
#[derive(Debug, Clone, PartialEq)]
pub struct ConclusionsReproduction {
    /// Image size the run used (the paper uses 512).
    pub image_size: usize,
    /// The architecture report of the simulated forward transform.
    pub arch_report: ArchReport,
    /// Throughput and speedup versus the Pentium-133 software model.
    pub throughput: ThroughputReport,
    /// Modelled silicon area of the proposed datapath (mm²).
    pub proposed_area_mm2: f64,
    /// The paper's numbers: 11.2 mm², 3.5 images/s, 154×, 99.04 %.
    pub paper: PaperConclusions,
}

/// The figures printed in the paper's conclusions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperConclusions {
    /// Datapath area in mm².
    pub area_mm2: f64,
    /// Images per second at 33 MHz.
    pub images_per_second: f64,
    /// Speedup over the 133 MHz Pentium.
    pub speedup: f64,
    /// Multiplier utilization.
    pub utilization: f64,
}

/// E-C1 — runs the architecture simulator on a random `image_size`²
/// 12-bit image (the paper's own validation workload) and assembles the
/// conclusions figures. Use `image_size = 512` to match the paper; smaller
/// sizes run faster and scale the cycle count accordingly.
///
/// # Errors
///
/// Returns an error if the architecture cannot be configured for
/// `image_size` (it must be divisible by 2⁶).
pub fn conclusions(image_size: usize) -> Result<ConclusionsReproduction, ArchError> {
    let params = ArchParams::new(image_size, FilterId::F2, 6)?;
    let simulator = ArchSimulator::new(params)?;
    let image = synth::random_image(image_size, image_size, 12, 1998);
    let run = simulator.run(&image)?;

    // The software baseline transforms the same image size.
    let software = SoftwareModel::pentium_133();
    let software_macs = macs::total_macs(image_size, 13, 13, 6);
    let hardware = HardwareModel { clock_hz: params.clock_hz() };
    let throughput =
        ThroughputReport::new(&hardware, run.report.total_cycles(), &software, software_macs);

    // The silicon area is a property of the chip, which the paper sizes for
    // 512×512 images (input buffer of N/2 + 32 words with N = 512); report
    // that design point even when the simulated workload is smaller.
    let proposed = lwc_baselines::ArchitectureCost::evaluate(
        lwc_baselines::ArchitectureClass::Proposed,
        CostParameters::paper_default(),
    );

    Ok(ConclusionsReproduction {
        image_size,
        arch_report: run.report,
        throughput,
        proposed_area_mm2: proposed.total_area_mm2(),
        paper: PaperConclusions {
            area_mm2: 11.2,
            images_per_second: 3.5,
            speedup: 154.0,
            utilization: PAPER_UTILIZATION,
        },
    })
}

/// E-L1 — the lossless round-trip verdict per filter bank on a random image.
///
/// # Errors
///
/// Propagates transform errors (undecomposable image).
pub fn lossless_summary(image_size: usize, scales: u32) -> Result<Vec<(FilterId, bool)>, DwtError> {
    let image = synth::random_image(image_size, image_size, 12, 42);
    FilterId::ALL
        .iter()
        .map(|&id| {
            lwc_dwt::lossless::fixed_roundtrip(&image, &FilterBank::table1(id), scales)
                .map(|r| (id, r.bit_exact))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_all_banks_and_is_biorthogonal() {
        let rows = table1();
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.biorthogonality.is_biorthogonal(5e-5), "{}", row.id);
            assert!(row.metrics.growth_2d > 1.0);
        }
    }

    #[test]
    fn table2_matches_the_paper_exactly() {
        assert!(table2().matches_paper());
    }

    #[test]
    fn table3_has_the_expected_shape() {
        let rows = table3();
        assert_eq!(rows.len(), 5);
        let proposed = rows.last().unwrap().cost.total_area_mm2();
        assert!(proposed < 12.0);
        assert!(rows[0].cost.total_area_mm2() / proposed > 12.0);
    }

    #[test]
    fn table4_and_table6_match_the_paper() {
        let t4 = table4().unwrap();
        let rounds: Vec<usize> = t4.rounds.iter().map(|&(_, _, r)| r).collect();
        assert_eq!(rounds, t4.paper_rounds.to_vec());
        assert_eq!(t4.spec.words, 32);
        assert!(table6().matches_paper());
    }

    #[test]
    fn table5_is_the_paper_data() {
        let t5 = table5();
        assert_eq!(t5[0].area_mm2, 2.92);
        assert_eq!(t5[1].access_time_ns, 23.45);
    }

    #[test]
    fn eq2_and_fig2_reproduce_the_section_numbers() {
        let e = eq2();
        assert!((e.total as f64 - e.paper_total).abs() / e.paper_total < 0.02);
        assert!((e.pentium_seconds - 42.0).abs() < 1.0);
        let f = fig2();
        assert!((f.utilization - f.paper_utilization).abs() < 0.002);
        assert_eq!(f.normal.len(), 13);
        assert_eq!(f.with_refresh.len(), 19);
    }

    #[test]
    fn conclusions_scale_down_to_a_small_workload() {
        // 64×64 instead of 512×512 keeps the test fast; the utilization and
        // the per-pixel cycle cost are size independent.
        let c = conclusions(64).unwrap();
        assert!((c.arch_report.utilization() - c.paper.utilization).abs() < 0.002);
        assert!(c.proposed_area_mm2 < 12.0);
        assert!(c.throughput.speedup > 100.0);
    }

    #[test]
    fn lossless_summary_reports_every_bank_exact() {
        for (id, exact) in lossless_summary(64, 3).unwrap() {
            assert!(exact, "{id}");
        }
    }
}
