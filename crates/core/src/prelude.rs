//! Convenient re-exports of the types most programs need.
//!
//! The central abstraction is the [`Codec`] trait: every compression engine
//! in the workspace — [`LosslessCodec`], [`ParallelCodec`],
//! [`TiledCompressor`], the paper-exact [`TiledFixedCompressor`] and the
//! volumetric [`VolumeCompressor`] — implements it, so generic code holds a
//! `&dyn Codec` and never enumerates engines.
//!
//! ```
//! use lwc_core::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let engine: Box<dyn Codec> = Box::new(TiledCompressor::new(3, 64, 2)?);
//! let image = synth::mr_slice(64, 64, 12, 0);
//! assert!(stats::bit_exact(&image, &engine.roundtrip(&image)?)?);
//! # Ok(())
//! # }
//! ```

pub use lwc_arch::{ArchParams, ArchReport, ArchSimulator, InverseSimulationRun, SimulationRun};
pub use lwc_baselines::{table3, ArchitectureClass, ArchitectureCost, CostParameters};
pub use lwc_coder::{
    CompressionReport, FixedHeader, FixedStream, FixedSubbandCodec, LosslessCodec, VolumeHeader,
    VolumeStream,
};
pub use lwc_dwt::{
    Decomposition, Dwt2d, DwtError, FixedCoeffRow, FixedDwt2d, LineFixedDwt, Subband,
};
pub use lwc_filters::{
    BankMetrics, BiorthogonalityReport, CoefficientPrecision, FilterBank, FilterId, Kernel,
    QuantizedBank,
};
pub use lwc_fixed::{Fx, MacAccumulator, QFormat};
pub use lwc_image::{
    dicom, pgm, stats, synth, BrickGrid, BrickRect, DicomImage, Image, ImageError, ImageStack,
    ImageView, ImageViewMut, TileGrid, TileRect, VolumeView,
};
pub use lwc_lifting::{Lifting53, LineDwt53};
pub use lwc_metrics::{self as metrics, FidelityReport};
pub use lwc_perf::hardware::{HardwareModel, ThroughputReport};
pub use lwc_perf::software::SoftwareModel;
pub use lwc_pipeline::{
    BatchCompressor, BatchReport, Codec, CodecCapabilities, LineCompressor, ParallelCodec,
    ParallelFixedDwt2d, PipelineError, RowBand, RowEncoder, SubbandDirectory, TiledCompressor,
    TiledDecomposition, TiledDwtReport, TiledFixedCompressor, TiledFixedDwt2d, TiledReport,
    VolumeCompressor, VolumeSlab, VolumeSlabs, DEFAULT_BRICK_DEPTH, DEFAULT_TILE_SIZE,
};
pub use lwc_server::{
    loadgen, Client, LoadGenConfig, LoadReport, Server, ServerConfig, ServerError, ServerStats,
};
pub use lwc_tech::{MemoryModel, MultiplierDesign, MultiplierModel, Process};
pub use lwc_wordlen::{integer_bits, WordLengthPlan};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_types_are_usable_together() {
        let bank = FilterBank::table1(FilterId::F5);
        let plan = WordLengthPlan::paper_default(&bank, 2).unwrap();
        assert_eq!(plan.word_bits(), 32);
        let image = synth::flat(16, 16, 12, 9);
        assert_eq!(stats::entropy_bits_per_pixel(&image), 0.0);
    }
}
