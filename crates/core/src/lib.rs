//! # lwc-core — lossless wavelet compression of medical images
//!
//! This is the umbrella crate of the **LWC** workspace, a from-scratch Rust
//! reproduction of *"VLSI Architecture for Lossless Compression of Medical
//! Images Using the Discrete Wavelet Transform"* (Urriza et al., DATE 1998).
//! It re-exports the individual subsystems and adds the high-level entry
//! points used by the examples, the integration tests and the benchmark
//! harness:
//!
//! * [`prelude`] — one `use` for the common types,
//! * [`reproduction`] — functions that regenerate every table and figure of
//!   the paper's evaluation (Table I–VI, Eq. 2, Fig. 2, the conclusions), in
//!   structured form,
//! * [`verify_lossless`] — the headline check: forward + inverse fixed-point
//!   DWT must reproduce the input image bit by bit.
//!
//! The individual subsystems live in their own crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`lwc_fixed`] | fixed-point formats, 64-bit MAC, round-half-up |
//! | [`lwc_filters`] | the six Table I filter banks |
//! | [`lwc_image`] | image container, synthetic medical phantoms, PGM I/O |
//! | [`lwc_wordlen`] | dynamic-range analysis, Table II, word-length plans |
//! | [`lwc_dwt`] | floating-point and fixed-point 2-D DWT |
//! | [`lwc_arch`] | cycle-accurate model of the proposed architecture |
//! | [`lwc_tech`] | 0.7 µm area/delay models (Table V) |
//! | [`lwc_baselines`] | prior-architecture cost comparison (Table III) |
//! | [`lwc_perf`] | MAC counts, software/hardware performance models |
//! | [`lwc_lifting`] | reversible integer 5/3 transform (baseline) |
//! | [`lwc_coder`] | Rice-coded lossless image codec |
//! | [`lwc_metrics`] | PSNR/SSIM/L∞ fidelity and compression-ratio reports |
//! | [`lwc_pipeline`] | multithreaded batch/streaming compression engine |
//! | [`lwc_server`] | concurrent TCP compression service (`LWCP` protocol) |
//!
//! ```
//! use lwc_core::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = synth::ct_phantom(64, 64, 12, 0);
//! let report = lwc_core::verify_lossless(&image, FilterId::F1, 3)?;
//! assert!(report.bit_exact);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prelude;
pub mod reproduction;

pub use lwc_arch;
pub use lwc_baselines;
pub use lwc_coder;
pub use lwc_dwt;
pub use lwc_filters;
pub use lwc_fixed;
pub use lwc_image;
pub use lwc_lifting;
pub use lwc_metrics;
pub use lwc_perf;
pub use lwc_pipeline;
pub use lwc_server;
pub use lwc_tech;
pub use lwc_wordlen;

use lwc_dwt::lossless::RoundtripReport;
use lwc_dwt::DwtError;
use lwc_filters::{FilterBank, FilterId};
use lwc_image::Image;

/// Runs the paper's lossless criterion on `image`: forward + inverse
/// fixed-point DWT (32-bit datapath, Table II integer parts) must reproduce
/// every pixel exactly.
///
/// # Errors
///
/// Returns an error if the image cannot be decomposed over `scales` scales
/// or the word-length plan cannot be built.
pub fn verify_lossless(
    image: &Image,
    filter: FilterId,
    scales: u32,
) -> Result<RoundtripReport, DwtError> {
    lwc_dwt::lossless::fixed_roundtrip(image, &FilterBank::table1(filter), scales)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_image::synth;

    #[test]
    fn verify_lossless_succeeds_on_the_paper_configuration() {
        let image = synth::random_image(64, 64, 12, 3);
        for id in FilterId::ALL {
            let report = verify_lossless(&image, id, 3).unwrap();
            assert!(report.bit_exact, "{id}");
        }
    }

    #[test]
    fn verify_lossless_propagates_configuration_errors() {
        let image = synth::flat(48, 48, 12, 0);
        assert!(verify_lossless(&image, FilterId::F1, 5).is_err());
    }
}
