//! Software execution-time model (the 133 MHz Pentium baseline).
//!
//! The paper states that the reference workload (8.99·10⁶ MACs) takes 42 s on
//! a desktop 133 MHz Pentium — about 2.1·10⁵ useful MACs per second once
//! memory traffic, loop overhead and the compiler of the day are accounted
//! for. The model here is simply a sustained MAC rate; it is calibrated on
//! the paper's figure by default and can be re-calibrated by timing the
//! actual Rust implementation on the host (the modern stand-in for the
//! "desktop PC" column of the comparison).

use crate::macs;
use lwc_dwt::Dwt2d;
use lwc_filters::FilterBank;
use lwc_image::Image;
use std::fmt;
use std::time::Instant;

/// A software implementation modelled as a sustained MAC rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftwareModel {
    /// Descriptive name ("Pentium 133 MHz", "host f64 reference", …).
    pub name: &'static str,
    /// Sustained multiply–accumulate throughput in MAC/s.
    pub macs_per_second: f64,
}

impl SoftwareModel {
    /// The paper's desktop baseline: 8.99·10⁶ MACs in 42 s.
    #[must_use]
    pub fn pentium_133() -> Self {
        Self {
            name: "Pentium 133 MHz (paper calibration)",
            macs_per_second: macs::PAPER_QUOTED_MACS / 42.0,
        }
    }

    /// Predicted execution time for `total_macs` operations, in seconds.
    #[must_use]
    pub fn seconds_for(&self, total_macs: u64) -> f64 {
        total_macs as f64 / self.macs_per_second
    }

    /// Predicted execution time of the paper's reference workload.
    #[must_use]
    pub fn seconds_for_reference_image(&self) -> f64 {
        self.seconds_for(macs::paper_reference_macs())
    }

    /// Calibrates a model by timing the double-precision reference transform
    /// on the host for the given workload.
    ///
    /// # Errors
    ///
    /// Propagates transform errors (e.g. an undecomposable image).
    pub fn measure_host(
        bank: &FilterBank,
        image: &Image,
        scales: u32,
    ) -> Result<(Self, f64), lwc_dwt::DwtError> {
        let dwt = Dwt2d::new(bank.clone(), scales)?;
        let start = Instant::now();
        let decomposition = dwt.forward(image)?;
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        // Keep the decomposition alive so the measurement is not optimized
        // away.
        std::hint::black_box(&decomposition);
        let l_h = bank.analysis_lowpass().len();
        let l_g = bank.analysis_highpass().len();
        let total = macs::total_macs(image.width(), l_h, l_g, scales);
        Ok((Self { name: "host f64 reference", macs_per_second: total as f64 / elapsed }, elapsed))
    }
}

impl fmt::Display for SoftwareModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {:.3e} MAC/s", self.name, self.macs_per_second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_filters::FilterId;
    use lwc_image::synth;

    #[test]
    fn pentium_calibration_reproduces_42_seconds() {
        let model = SoftwareModel::pentium_133();
        let t = model.seconds_for_reference_image();
        // The MAC count differs from the paper's by ~1 %, so the predicted
        // time does too.
        assert!((t - 42.0).abs() < 1.0, "predicted {t} s");
    }

    #[test]
    fn time_scales_linearly_with_work() {
        let model = SoftwareModel::pentium_133();
        assert!((model.seconds_for(2_000_000) / model.seconds_for(1_000_000) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn host_measurement_is_finite_and_much_faster_than_a_pentium() {
        let bank = FilterBank::table1(FilterId::F2);
        let image = synth::random_image(128, 128, 12, 1);
        let (model, elapsed) = SoftwareModel::measure_host(&bank, &image, 4).unwrap();
        assert!(elapsed > 0.0);
        assert!(model.macs_per_second.is_finite());
        assert!(
            model.macs_per_second > SoftwareModel::pentium_133().macs_per_second,
            "a modern host should outrun a 1997 Pentium"
        );
    }

    #[test]
    fn display_mentions_name_and_rate() {
        let s = SoftwareModel::pentium_133().to_string();
        assert!(s.contains("Pentium"));
        assert!(s.contains("MAC/s"));
    }
}
