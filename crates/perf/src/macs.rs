//! Multiply–accumulate operation counts (Eq. 1 and Eq. 2 of the paper).
//!
//! For a square `N×N` input, scale `j` of the separable 2-D FDWT filters an
//! `M×M` region with `M = N/2^(j-1)`:
//!
//! * the row pass produces `M/2` low-pass and `M/2` high-pass samples per
//!   row, costing `M²/2·(L_H + L_G)` MACs,
//! * the column pass does the same over the two row-filtered images, costing
//!   another `M²/2·(L_H + L_G)` MACs,
//!
//! for a per-scale total of `M²·(L_H + L_G)` and an `S`-scale total of
//! `(4/3)·(1 - 4^{-S})·N²·(L_H + L_G)`.
//!
//! With the paper's parameters (N = 512, 13-tap filters, S = 6) this evaluates
//! to 9.09·10⁶ MACs, 1.1 % above the 8.99·10⁶ the paper quotes — the paper
//! presumably trims a few border terms; the shape (and every conclusion drawn
//! from it) is unaffected. The same count applies to the IDWT.

/// MAC operations needed to compute scale `j` (1-based) of the FDWT of an
/// `n × n` image with analysis filter lengths `l_h` (low-pass) and `l_g`
/// (high-pass).
///
/// # Panics
///
/// Panics if `j` is zero or if the region at scale `j` would be empty.
#[must_use]
pub fn macs_for_scale(n: usize, l_h: usize, l_g: usize, j: u32) -> u64 {
    assert!(j >= 1, "scales are 1-based");
    let m = n >> (j - 1);
    assert!(m >= 2, "scale {j} of a {n}-wide image is empty");
    (m as u64) * (m as u64) * (l_h as u64 + l_g as u64)
}

/// Total MAC operations of an `scales`-scale FDWT (Eq. 2). The IDWT costs the
/// same.
///
/// # Panics
///
/// Panics if any scale would be empty.
#[must_use]
pub fn total_macs(n: usize, l_h: usize, l_g: usize, scales: u32) -> u64 {
    (1..=scales).map(|j| macs_for_scale(n, l_h, l_g, j)).sum()
}

/// The closed-form version of Eq. (2):
/// `(4/3)·(1 - 4^{-S})·N²·(L_H + L_G)`.
#[must_use]
pub fn total_macs_closed_form(n: usize, l_h: usize, l_g: usize, scales: u32) -> f64 {
    let n = n as f64;
    let taps = (l_h + l_g) as f64;
    (4.0 / 3.0) * (1.0 - 0.25f64.powi(scales as i32)) * n * n * taps
}

/// The paper's reference workload: 512×512 image, 13-tap filters, 6 scales.
#[must_use]
pub fn paper_reference_macs() -> u64 {
    total_macs(512, 13, 13, 6)
}

/// The MAC count the paper quotes for that workload (Section 2).
pub const PAPER_QUOTED_MACS: f64 = 8.99e6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_scale_counts_shrink_by_four() {
        let s1 = macs_for_scale(512, 13, 13, 1);
        let s2 = macs_for_scale(512, 13, 13, 2);
        let s3 = macs_for_scale(512, 13, 13, 3);
        assert_eq!(s1, 512 * 512 * 26);
        assert_eq!(s1 / s2, 4);
        assert_eq!(s2 / s3, 4);
    }

    #[test]
    fn total_matches_the_paper_within_two_percent() {
        let total = paper_reference_macs() as f64;
        let deviation = (total - PAPER_QUOTED_MACS).abs() / PAPER_QUOTED_MACS;
        assert!(
            deviation < 0.02,
            "computed {total:.3e} vs paper {PAPER_QUOTED_MACS:.3e} ({deviation:.3})"
        );
    }

    #[test]
    fn closed_form_matches_the_sum() {
        for scales in 1..=6 {
            let sum = total_macs(512, 13, 13, scales) as f64;
            let closed = total_macs_closed_form(512, 13, 13, scales);
            assert!((sum - closed).abs() / sum < 1e-12, "scales={scales}: {sum} vs {closed}");
        }
    }

    #[test]
    fn asymmetric_filter_lengths_are_supported() {
        // The F2 bank has a 13-tap low-pass and an 11-tap high-pass.
        let total = total_macs(512, 13, 11, 6);
        assert!(total < total_macs(512, 13, 13, 6));
        assert_eq!(macs_for_scale(64, 13, 11, 1), 64 * 64 * 24);
    }

    #[test]
    fn deeper_decompositions_add_less_than_a_third() {
        let one = total_macs(512, 13, 13, 1) as f64;
        let six = total_macs(512, 13, 13, 6) as f64;
        assert!(six / one < 4.0 / 3.0 + 1e-9);
        assert!(six / one > 1.3);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn too_deep_decompositions_panic() {
        let _ = macs_for_scale(16, 13, 13, 5);
    }
}
