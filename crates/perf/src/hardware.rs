//! Hardware throughput model: cycles → seconds → images/s → speedup.
//!
//! The conclusions of the paper: running at 33 MHz the architecture computes
//! 3.5 images/s (512×512, 12-bit) and is therefore ~154× faster than the
//! 42 s / image desktop PC. The cycle count comes from the architecture
//! simulator (`lwc-arch`); this module turns it into those headline numbers.

use crate::software::SoftwareModel;
use std::fmt;

/// Clock frequency the paper targets (Hz).
pub const PAPER_CLOCK_HZ: f64 = 33.0e6;

/// Images per second the paper reports for the 512×512, 12-bit workload.
pub const PAPER_IMAGES_PER_SECOND: f64 = 3.5;

/// Speedup over the desktop PC the paper reports.
pub const PAPER_SPEEDUP: f64 = 154.0;

/// The dedicated datapath modelled as a clock frequency; cycle counts are
/// supplied by the architecture simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareModel {
    /// Clock frequency in Hz.
    pub clock_hz: f64,
}

impl HardwareModel {
    /// The paper's 33 MHz target.
    #[must_use]
    pub fn paper_default() -> Self {
        Self { clock_hz: PAPER_CLOCK_HZ }
    }

    /// Execution time of `cycles` clock cycles, in seconds.
    #[must_use]
    pub fn seconds_for_cycles(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }

    /// Images per second when one image takes `cycles_per_image` cycles.
    #[must_use]
    pub fn images_per_second(&self, cycles_per_image: u64) -> f64 {
        self.clock_hz / cycles_per_image as f64
    }

    /// Speedup of the hardware over a software model for the same image
    /// (software seconds divided by hardware seconds).
    #[must_use]
    pub fn speedup_over(
        &self,
        cycles_per_image: u64,
        software: &SoftwareModel,
        software_macs: u64,
    ) -> f64 {
        software.seconds_for(software_macs) / self.seconds_for_cycles(cycles_per_image)
    }
}

impl fmt::Display for HardwareModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dedicated datapath @ {:.1} MHz", self.clock_hz / 1.0e6)
    }
}

/// Headline performance figures for one workload, in the shape the paper's
/// conclusions report them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputReport {
    /// Cycles the architecture needs for one image.
    pub cycles_per_image: u64,
    /// Seconds per image at the configured clock.
    pub seconds_per_image: f64,
    /// Images per second at the configured clock.
    pub images_per_second: f64,
    /// Seconds the software baseline needs for the same image.
    pub software_seconds: f64,
    /// Speedup of the hardware over the software baseline.
    pub speedup: f64,
}

impl ThroughputReport {
    /// Builds the report for one image transform.
    #[must_use]
    pub fn new(
        hardware: &HardwareModel,
        cycles_per_image: u64,
        software: &SoftwareModel,
        software_macs: u64,
    ) -> Self {
        let seconds_per_image = hardware.seconds_for_cycles(cycles_per_image);
        let software_seconds = software.seconds_for(software_macs);
        Self {
            cycles_per_image,
            seconds_per_image,
            images_per_second: 1.0 / seconds_per_image,
            software_seconds,
            speedup: software_seconds / seconds_per_image,
        }
    }
}

impl fmt::Display for ThroughputReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles/image, {:.3} s/image ({:.2} images/s), software {:.1} s, speedup {:.0}x",
            self.cycles_per_image,
            self.seconds_per_image,
            self.images_per_second,
            self.software_seconds,
            self.speedup
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macs;

    #[test]
    fn paper_constants_are_consistent_with_each_other() {
        // 42 s per image in software and 3.5 images/s in hardware give a
        // speedup of 147; the paper rounds its own numbers to 154. Both land
        // in the same ballpark — treat ±10 % as agreement.
        let implied = 42.0 * PAPER_IMAGES_PER_SECOND;
        assert!((implied - PAPER_SPEEDUP).abs() / PAPER_SPEEDUP < 0.1);
    }

    #[test]
    fn one_mac_per_cycle_reproduces_the_headline_throughput() {
        // The architecture performs one MAC per cycle at ~99 % utilization,
        // so cycles/image ≈ total MACs. At 33 MHz that is ~3.6 images/s —
        // the paper's 3.5 images/s.
        let hw = HardwareModel::paper_default();
        let cycles = macs::paper_reference_macs();
        let images_per_second = hw.images_per_second(cycles);
        assert!(
            (images_per_second - PAPER_IMAGES_PER_SECOND).abs() < 0.3,
            "{images_per_second} images/s"
        );
    }

    #[test]
    fn speedup_over_the_pentium_matches_the_paper() {
        let hw = HardwareModel::paper_default();
        let sw = SoftwareModel::pentium_133();
        let cycles = macs::paper_reference_macs();
        let report = ThroughputReport::new(&hw, cycles, &sw, macs::paper_reference_macs());
        assert!(
            (report.speedup - PAPER_SPEEDUP).abs() / PAPER_SPEEDUP < 0.15,
            "speedup {:.1}",
            report.speedup
        );
        assert!(report.seconds_per_image < 0.4);
        assert!(report.software_seconds > 40.0);
    }

    #[test]
    fn faster_clocks_scale_throughput_linearly() {
        let hw33 = HardwareModel { clock_hz: 33.0e6 };
        let hw66 = HardwareModel { clock_hz: 66.0e6 };
        let cycles = 1_000_000;
        assert!(
            (hw66.images_per_second(cycles) / hw33.images_per_second(cycles) - 2.0).abs() < 1e-12
        );
    }

    #[test]
    fn displays_are_informative() {
        assert!(HardwareModel::paper_default().to_string().contains("33.0 MHz"));
        let report = ThroughputReport::new(
            &HardwareModel::paper_default(),
            9_000_000,
            &SoftwareModel::pentium_133(),
            9_000_000,
        );
        assert!(report.to_string().contains("images/s"));
    }
}
