//! # lwc-perf — arithmetic complexity and performance models
//!
//! Section 2 of the paper counts the multiply–accumulate (MAC) operations of
//! the forward DWT (Eq. 1 and Eq. 2), observes that a 133 MHz Pentium needs
//! 42 s for a 512×512, 6-scale, 13-tap transform, and the conclusions claim
//! the proposed 33 MHz architecture delivers 3.5 images/s — roughly **154×**
//! faster. This crate provides those models:
//!
//! * [`macs`] — the per-scale and total MAC counts of Eq. (1)/(2), plus an
//!   exact operation count obtained by instrumenting the transform,
//! * [`software`] — a software execution-time model calibrated on the paper's
//!   Pentium figure, together with a measurement helper that times the actual
//!   Rust implementation on the host,
//! * [`hardware`] — cycles → seconds → images/s for the dedicated datapath,
//!   and the speedup relative to the software model.
//!
//! ```
//! use lwc_perf::macs;
//!
//! // Eq. (2) with the paper's parameters: N = 512, L = 13, S = 6.
//! let total = macs::total_macs(512, 13, 13, 6);
//! assert!((total as f64 - 8.99e6).abs() / 8.99e6 < 0.02);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hardware;
pub mod macs;
pub mod software;

#[cfg(test)]
mod crate_tests {
    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::software::SoftwareModel>();
        assert_send_sync::<crate::hardware::HardwareModel>();
    }
}
