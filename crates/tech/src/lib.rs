//! # lwc-tech — 0.7 µm CMOS area and timing model
//!
//! The paper derives its silicon-area comparison (Table III, the 11.2 mm²
//! conclusion) and its multiplier trade-off (Table V) from cells generated
//! with the **ES2 ECPD07 megacell compiler** for a 0.7 µm CMOS process. That
//! proprietary tool is not available, so this crate substitutes an analytic
//! model **calibrated on the numbers the paper itself publishes**:
//!
//! * the compiled 32×32 multiplier: 2.92 mm², 50.88 ns access time,
//! * the custom two-stage pipelined Wallace-tree multiplier: 8.03 mm²,
//!   23.45 ns,
//! * RAM/register area per bit fitted so that the proposed architecture's
//!   datapath (one pipelined multiplier + `N/2 + 32` words of 32 bits +
//!   coefficient storage) lands at the published 11.2 mm².
//!
//! All the downstream comparison needs is a *consistent* cost per multiplier
//! and per stored bit; calibrating on the paper's own cell figures preserves
//! the ranking and the order-of-magnitude area gap that constitute Table III
//! (see DESIGN.md, substitutions table).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod memory;
mod multiplier;
mod process;

pub use memory::MemoryModel;
pub use multiplier::{MultiplierDesign, MultiplierModel, TABLE5_PAPER};
pub use process::Process;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Process>();
        assert_send_sync::<MultiplierModel>();
        assert_send_sync::<MemoryModel>();
    }
}
