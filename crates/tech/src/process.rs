//! Process description.

use std::fmt;

/// A CMOS process node, the container for the calibrated cell models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Process {
    /// Human-readable name.
    pub name: &'static str,
    /// Drawn feature size in micrometres.
    pub feature_um: f64,
    /// Shortest clock period the paper's datapath targets on this process,
    /// in nanoseconds (25 ns in the paper, run at a 30 ns / 33 MHz system
    /// clock).
    pub target_clock_ns: f64,
}

impl Process {
    /// The ES2 ECPD07-like 0.7 µm process the paper uses.
    #[must_use]
    pub fn es2_ecpd07() -> Self {
        Self { name: "ES2 ECPD07-class 0.7 um CMOS", feature_um: 0.7, target_clock_ns: 25.0 }
    }

    /// System clock frequency in Hz implied by a 30 ns cycle (the paper's
    /// 33 MHz figure).
    #[must_use]
    pub fn system_clock_hz(&self) -> f64 {
        33.0e6
    }
}

impl fmt::Display for Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} um)", self.name, self.feature_um)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_process_parameters() {
        let p = Process::es2_ecpd07();
        assert_eq!(p.feature_um, 0.7);
        assert_eq!(p.target_clock_ns, 25.0);
        assert_eq!(p.system_clock_hz(), 33.0e6);
        assert!(p.to_string().contains("0.7"));
    }
}
