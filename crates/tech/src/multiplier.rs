//! Multiplier area/delay model — Table V of the paper.

use std::fmt;

/// The two 32×32 multiplier implementations the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MultiplierDesign {
    /// The multiplier produced by the ES2 megacell compiler: small but too
    /// slow for a 25 ns cycle.
    Compiled,
    /// The custom two-stage pipelined Wallace-tree multiplier: larger, but
    /// its per-stage delay fits the 25 ns clock.
    PipelinedWallace,
}

impl fmt::Display for MultiplierDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiplierDesign::Compiled => f.write_str("ES2 compiled"),
            MultiplierDesign::PipelinedWallace => f.write_str("2-stage pipelined Wallace tree"),
        }
    }
}

/// One row of Table V: a 32×32 multiplier implementation with its access time
/// and cell area under worst-case industrial conditions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiplierModel {
    /// Which implementation this row describes.
    pub design: MultiplierDesign,
    /// Operand width in bits (32 in the paper).
    pub width_bits: u32,
    /// Access (propagation) time in nanoseconds.
    pub access_time_ns: f64,
    /// Cell area in mm².
    pub area_mm2: f64,
    /// Pipeline depth (1 for the combinational compiled cell).
    pub pipeline_stages: u32,
}

/// Table V exactly as printed: the compiled and the pipelined 32×32
/// multiplier.
pub const TABLE5_PAPER: [MultiplierModel; 2] = [
    MultiplierModel {
        design: MultiplierDesign::Compiled,
        width_bits: 32,
        access_time_ns: 50.88,
        area_mm2: 2.92,
        pipeline_stages: 1,
    },
    MultiplierModel {
        design: MultiplierDesign::PipelinedWallace,
        width_bits: 32,
        access_time_ns: 23.45,
        area_mm2: 8.03,
        pipeline_stages: 2,
    },
];

impl MultiplierModel {
    /// The paper's row for `design`.
    #[must_use]
    pub fn paper(design: MultiplierDesign) -> Self {
        match design {
            MultiplierDesign::Compiled => TABLE5_PAPER[0],
            MultiplierDesign::PipelinedWallace => TABLE5_PAPER[1],
        }
    }

    /// Scales the model to a different operand width, using the usual
    /// first-order rules: array area grows quadratically with the width,
    /// carry/compression delay grows logarithmically.
    ///
    /// # Panics
    ///
    /// Panics if `width_bits` is zero.
    #[must_use]
    pub fn scaled_to_width(&self, width_bits: u32) -> Self {
        assert!(width_bits > 0, "multiplier width must be positive");
        let ratio = width_bits as f64 / self.width_bits as f64;
        let delay_ratio = ((width_bits as f64).log2() / (self.width_bits as f64).log2()).max(0.1);
        Self {
            design: self.design,
            width_bits,
            access_time_ns: self.access_time_ns * delay_ratio,
            area_mm2: self.area_mm2 * ratio * ratio,
            pipeline_stages: self.pipeline_stages,
        }
    }

    /// Whether the multiplier can issue one operation per `clock_ns`
    /// nanoseconds (each pipeline stage must fit the clock period).
    #[must_use]
    pub fn meets_clock(&self, clock_ns: f64) -> bool {
        self.access_time_ns / f64::from(self.pipeline_stages) <= clock_ns + 1e-9
            && (self.pipeline_stages == 1 || self.access_time_ns <= 2.0 * clock_ns)
    }

    /// Highest sustained operating frequency in Hz (one result per cycle once
    /// the pipeline is full).
    #[must_use]
    pub fn max_frequency_hz(&self) -> f64 {
        1.0e9 / (self.access_time_ns / f64::from(self.pipeline_stages))
    }
}

impl fmt::Display for MultiplierModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}x{}: {:.2} ns, {:.2} mm2",
            self.design, self.width_bits, self.width_bits, self.access_time_ns, self.area_mm2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_rows_match_the_paper() {
        let compiled = MultiplierModel::paper(MultiplierDesign::Compiled);
        assert_eq!(compiled.access_time_ns, 50.88);
        assert_eq!(compiled.area_mm2, 2.92);
        let pipelined = MultiplierModel::paper(MultiplierDesign::PipelinedWallace);
        assert_eq!(pipelined.access_time_ns, 23.45);
        assert_eq!(pipelined.area_mm2, 8.03);
        assert_eq!(pipelined.pipeline_stages, 2);
    }

    #[test]
    fn only_the_pipelined_design_meets_the_25ns_clock() {
        // Section 4.2: the compiled multiplier is "too slow for our
        // purposes"; the pipelined one allows a 25 ns clock period.
        let clock_ns = 25.0;
        assert!(!MultiplierModel::paper(MultiplierDesign::Compiled).meets_clock(clock_ns));
        assert!(MultiplierModel::paper(MultiplierDesign::PipelinedWallace).meets_clock(clock_ns));
    }

    #[test]
    fn pipelined_design_pays_area_for_speed() {
        let compiled = MultiplierModel::paper(MultiplierDesign::Compiled);
        let pipelined = MultiplierModel::paper(MultiplierDesign::PipelinedWallace);
        assert!(pipelined.area_mm2 > 2.0 * compiled.area_mm2);
        assert!(pipelined.max_frequency_hz() > compiled.max_frequency_hz());
        assert!(pipelined.max_frequency_hz() >= 33.0e6);
    }

    #[test]
    fn width_scaling_is_monotonic() {
        let base = MultiplierModel::paper(MultiplierDesign::Compiled);
        let narrow = base.scaled_to_width(16);
        let wide = base.scaled_to_width(64);
        assert!(narrow.area_mm2 < base.area_mm2);
        assert!(wide.area_mm2 > base.area_mm2);
        assert!(narrow.access_time_ns < base.access_time_ns);
        assert!(wide.access_time_ns > base.access_time_ns);
        assert!((narrow.area_mm2 - base.area_mm2 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn displays_are_informative() {
        let s = MultiplierModel::paper(MultiplierDesign::PipelinedWallace).to_string();
        assert!(s.contains("Wallace"));
        assert!(s.contains("8.03"));
    }
}
