//! On-chip memory (RAM/register file) area model.

use std::fmt;

/// Area model for on-chip storage, expressed as silicon area per stored bit.
///
/// The paper generates its RAM blocks with the ES2 megacell compiler and only
/// publishes aggregate numbers. The calibration constructor fits the
/// per-bit cost so that the *proposed* datapath — one 8.03 mm² pipelined
/// multiplier plus `N/2 + 32` words of 32 bits and a 13-word coefficient
/// store — reproduces the paper's 11.2 mm² total for N = 512. The same
/// per-bit cost is then applied to every architecture in Table III, which is
/// all the comparison requires (see the substitution table in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Area of one stored bit in mm².
    pub area_per_bit_mm2: f64,
}

/// The paper's published total area of the proposed datapath (mm²).
pub const PAPER_PROPOSED_AREA_MM2: f64 = 11.2;

impl MemoryModel {
    /// Calibrates the per-bit area on the paper's 11.2 mm² proposed-datapath
    /// figure (see the type documentation).
    #[must_use]
    pub fn calibrated_es2() -> Self {
        let multiplier_area = crate::TABLE5_PAPER[1].area_mm2;
        let n: f64 = 512.0;
        let datapath_bits = (n / 2.0 + 32.0) * 32.0 + 13.0 * 32.0;
        Self { area_per_bit_mm2: (PAPER_PROPOSED_AREA_MM2 - multiplier_area) / datapath_bits }
    }

    /// Builds a model with an explicit per-bit area (useful for sensitivity
    /// sweeps).
    #[must_use]
    pub fn with_area_per_bit(area_per_bit_mm2: f64) -> Self {
        Self { area_per_bit_mm2 }
    }

    /// Area of `bits` stored bits, in mm².
    #[must_use]
    pub fn area_for_bits(&self, bits: u64) -> f64 {
        bits as f64 * self.area_per_bit_mm2
    }

    /// Area of `words` words of `word_bits` bits each, in mm².
    #[must_use]
    pub fn area_for_words(&self, words: u64, word_bits: u32) -> f64 {
        self.area_for_bits(words * u64::from(word_bits))
    }
}

impl fmt::Display for MemoryModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2e} mm2/bit (ES2-calibrated)", self.area_per_bit_mm2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_the_proposed_architecture_area() {
        let mem = MemoryModel::calibrated_es2();
        let multiplier = crate::TABLE5_PAPER[1].area_mm2;
        let storage = mem.area_for_words(512 / 2 + 32, 32) + mem.area_for_words(13, 32);
        let total = multiplier + storage;
        assert!((total - PAPER_PROPOSED_AREA_MM2).abs() < 1e-9, "calibrated total {total} mm2");
    }

    #[test]
    fn per_bit_area_is_physically_plausible_for_0_7um() {
        // A compiled SRAM bit cell plus overhead in 0.7 µm lands in the
        // hundreds of µm² range.
        let mem = MemoryModel::calibrated_es2();
        assert!(
            mem.area_per_bit_mm2 > 1.0e-4 && mem.area_per_bit_mm2 < 1.0e-3,
            "{} mm2/bit",
            mem.area_per_bit_mm2
        );
    }

    #[test]
    fn areas_scale_linearly() {
        let mem = MemoryModel::with_area_per_bit(2.0e-4);
        assert!((mem.area_for_bits(1000) - 0.2).abs() < 1e-12);
        assert!((mem.area_for_words(100, 32) - mem.area_for_bits(3200)).abs() < 1e-12);
    }

    #[test]
    fn display_reports_calibration() {
        assert!(MemoryModel::calibrated_es2().to_string().contains("mm2/bit"));
    }
}
