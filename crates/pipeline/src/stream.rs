//! Order-preserving worker-pool plumbing shared by the streaming APIs.

use crate::PipelineError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

/// Sentinel for "the feeder has not finished counting the source yet".
const UNKNOWN: usize = usize::MAX;

/// How many in-flight items the feeder may run ahead of the workers, per
/// worker. Bounds peak memory of the streaming APIs.
const FEED_AHEAD: usize = 2;

/// An iterator over pipeline results, restored to input order.
///
/// Produced by [`crate::BatchCompressor::compress_iter`] and
/// [`crate::BatchCompressor::decompress_iter`]. Items come out in exactly the
/// order their inputs went in, even though the worker pool completes them out
/// of order; a small reorder buffer holds early finishers.
///
/// Dropping the stream early shuts the pool down: workers fail to send their
/// next result and exit, and the feeder fails to hand out further work.
#[derive(Debug)]
pub struct OrderedStream<T> {
    results: mpsc::Receiver<(usize, Result<T, PipelineError>)>,
    pending: BTreeMap<usize, Result<T, PipelineError>>,
    next: usize,
    /// Total item count, published by the feeder once the source is drained
    /// ([`UNKNOWN`] until then). Lets the stream tell a clean end from a
    /// trailing worker death.
    total: Arc<AtomicUsize>,
}

impl<T> Iterator for OrderedStream<T> {
    type Item = Result<T, PipelineError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(ready) = self.pending.remove(&self.next) {
                self.next += 1;
                return Some(ready);
            }
            match self.results.recv() {
                Ok((index, result)) => {
                    self.pending.insert(index, result);
                }
                // All workers are gone; anything not in the buffer will never
                // arrive. A missing index means a worker died (e.g. the job
                // panicked) without sending its result: surface that as an
                // error in the gap's position rather than silently dropping
                // the item or misaligning every later one.
                Err(mpsc::RecvError) => {
                    let end = match self.pending.first_key_value() {
                        Some((&first, _)) => first,
                        None => {
                            let total = self.total.load(Ordering::Acquire);
                            if total == UNKNOWN || self.next >= total {
                                return None;
                            }
                            total
                        }
                    };
                    if end != self.next {
                        let error = PipelineError::Config(format!(
                            "pipeline worker died; results {}..{end} were lost",
                            self.next
                        ));
                        self.next = end;
                        return Some(Err(error));
                    }
                    self.next += 1;
                    return self.pending.remove(&end);
                }
            }
        }
    }
}

/// Spawns a feeder thread plus `workers` worker threads applying `job` to
/// every item of `source`, and returns the order-preserving result stream.
pub(crate) fn spawn_ordered<In, Out, Job>(
    workers: usize,
    source: impl Iterator<Item = In> + Send + 'static,
    job: Job,
) -> OrderedStream<Out>
where
    In: Send + 'static,
    Out: Send + 'static,
    Job: Fn(In) -> Result<Out, PipelineError> + Send + Sync + 'static,
{
    let workers = workers.max(1);
    let (feed_tx, feed_rx) = mpsc::sync_channel::<(usize, In)>(workers * FEED_AHEAD);
    let (result_tx, result_rx) = mpsc::channel();
    let total = Arc::new(AtomicUsize::new(UNKNOWN));

    let fed_total = Arc::clone(&total);
    // The feeder holds a clone of the result sender so the result channel
    // cannot disconnect before the feeder has exited — which guarantees the
    // consumer never observes RecvError without the published count.
    let feeder_result_tx = result_tx.clone();
    thread::spawn(move || {
        let mut count = 0;
        for item in source.enumerate() {
            if feed_tx.send(item).is_err() {
                // Every worker has exited: either the stream was dropped
                // (nobody is reading) or every worker died. Publish what was
                // actually handed out so a still-alive consumer can tell the
                // fed-but-lost items from a clean end.
                break;
            }
            count += 1;
        }
        fed_total.store(count, Ordering::Release);
        drop(feeder_result_tx);
    });

    let feed_rx = Arc::new(Mutex::new(feed_rx));
    let job = Arc::new(job);
    for _ in 0..workers {
        let feed_rx = Arc::clone(&feed_rx);
        let result_tx = result_tx.clone();
        let job = Arc::clone(&job);
        thread::spawn(move || loop {
            // Hold the lock only for the receive, never during the job.
            let received = match feed_rx.lock() {
                Ok(rx) => rx.recv(),
                Err(_) => return,
            };
            match received {
                Ok((index, input)) => {
                    if result_tx.send((index, job(input))).is_err() {
                        return;
                    }
                }
                Err(mpsc::RecvError) => return,
            }
        });
    }

    OrderedStream { results: result_rx, pending: BTreeMap::new(), next: 0, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        // Jitter completion times so later items often finish first.
        let stream = spawn_ordered(4, 0..64usize, |n| {
            std::thread::sleep(std::time::Duration::from_micros(((64 - n) % 7) as u64 * 50));
            Ok(n * n)
        });
        let squares: Vec<usize> = stream.map(|r| r.unwrap()).collect();
        assert_eq!(squares, (0..64usize).map(|n| n * n).collect::<Vec<_>>());
    }

    #[test]
    fn errors_are_delivered_in_position() {
        let stream = spawn_ordered(3, 0..10usize, |n| {
            if n == 5 {
                Err(PipelineError::Config("boom".into()))
            } else {
                Ok(n)
            }
        });
        let results: Vec<Result<usize, PipelineError>> = stream.collect();
        assert_eq!(results.len(), 10);
        assert!(results[5].is_err());
        assert!(results.iter().enumerate().all(|(i, r)| i == 5 || matches!(r, Ok(v) if *v == i)));
    }

    #[test]
    fn a_dead_worker_surfaces_an_error_instead_of_misaligning() {
        // Item 3's job panics, killing its worker without a result being
        // sent; the stream must report an error at position 3 and keep every
        // later item in its right slot.
        let stream = spawn_ordered(2, 0..6usize, |n| {
            assert_ne!(n, 3, "injected worker death");
            Ok(n * 10)
        });
        let results: Vec<Result<usize, PipelineError>> = stream.collect();
        assert_eq!(results.len(), 6);
        for (i, result) in results.iter().enumerate() {
            if i == 3 {
                assert!(matches!(result, Err(PipelineError::Config(_))), "{result:?}");
            } else {
                assert!(matches!(result, Ok(v) if *v == i * 10), "{i}: {result:?}");
            }
        }
    }

    #[test]
    fn a_death_on_the_last_item_is_reported_not_truncated() {
        // The sole worker dies on the final item; without the feeder's total
        // count the stream would just end one item short.
        let stream = spawn_ordered(1, 0..6usize, |n| {
            assert_ne!(n, 5, "injected worker death");
            Ok(n)
        });
        let results: Vec<Result<usize, PipelineError>> = stream.collect();
        assert_eq!(results.len(), 6);
        assert!(results[..5].iter().enumerate().all(|(i, r)| matches!(r, Ok(v) if *v == i)));
        assert!(matches!(&results[5], Err(PipelineError::Config(_))));
    }

    #[test]
    fn dropping_the_stream_early_does_not_hang() {
        let stream = spawn_ordered(2, 0..1_000_000usize, Ok);
        let first: Vec<usize> = stream.take(3).map(|r| r.unwrap()).collect();
        assert_eq!(first, vec![0, 1, 2]);
        // The pool shuts down on its own; nothing to join, nothing leaks the
        // full million items.
    }
}
