//! Tile-parallel driver for the paper-exact fixed-point DWT.
//!
//! [`TiledCompressor`](crate::TiledCompressor) shards the *lifting codec*
//! path by tiles; this module does the same for the **paper-exact**
//! fixed-point datapath. A [`TiledFixedDwt2d`] cuts the frame into a
//! [`TileGrid`] of regions, transforms every region independently through
//! [`FixedDwt2d::forward_view`] on the worker pool (the hardware's
//! region-parallel trade of area for throughput — one MAC datapath per
//! concurrent tile), and reassembles the inverse through
//! [`FixedDwt2d::inverse_into`] windows. Each tile's coefficients are
//! **bit-identical** to running the monolithic transform on that region —
//! the per-tile arithmetic *is* the monolithic transform, only the driver
//! changes — so the result never depends on the worker count, and a grid
//! that degenerates to one tile reproduces [`FixedDwt2d::forward`] exactly.

use crate::parcodec::run_indexed;
use crate::report::TiledDwtReport;
use crate::PipelineError;
use lwc_dwt::{Decomposition, Dwt2d, DwtError, FixedDwt2d};
use lwc_filters::FilterBank;
use lwc_image::{Image, TileGrid};
use std::thread;
use std::time::Instant;

/// Tile-parallel fixed-point 2-D DWT for single large frames.
///
/// The frame is sharded by a [`TileGrid`]; every tile is transformed with the
/// unmodified [`FixedDwt2d`] region APIs, so the per-tile coefficient words
/// are bit-identical to the monolithic transform of that region regardless of
/// the worker count, and the full round trip stays lossless by construction.
/// Because the fixed-point pyramid halves dimensions exactly, every tile of
/// the grid (including ragged right/bottom tiles) must be decomposable to the
/// configured depth; [`TiledFixedDwt2d::grid`] checks this up front and
/// returns a typed error instead of failing mid-transform.
///
/// ```
/// use lwc_filters::{FilterBank, FilterId};
/// use lwc_image::synth;
/// use lwc_pipeline::TiledFixedDwt2d;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let bank = FilterBank::table1(FilterId::F1);
/// let engine = TiledFixedDwt2d::new(&bank, 3, 64, 2)?;
/// let frame = synth::ct_phantom(256, 192, 12, 1);
/// let tiles = engine.forward(&frame)?;
/// assert_eq!(tiles.grid().tile_count(), 12);
/// let back = engine.inverse(&tiles)?;
/// assert!(lwc_image::stats::bit_exact(&frame, &back)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TiledFixedDwt2d {
    inner: FixedDwt2d,
    tile_width: usize,
    tile_height: usize,
    workers: usize,
}

impl TiledFixedDwt2d {
    /// Builds the driver with the paper's default word lengths, a square
    /// nominal tile and the given worker count. `workers == 0` selects the
    /// machine's available parallelism.
    ///
    /// # Errors
    ///
    /// Returns an error if the word-length plan cannot be built or the tile
    /// size is zero.
    pub fn new(
        bank: &FilterBank,
        scales: u32,
        tile_size: usize,
        workers: usize,
    ) -> Result<Self, PipelineError> {
        Self::with_transform(
            FixedDwt2d::paper_default(bank, scales)?,
            tile_size,
            tile_size,
            workers,
        )
    }

    /// Wraps an existing sequential transform with an explicit (possibly
    /// non-square) tile shape. `workers == 0` selects the machine's available
    /// parallelism.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Config`] if a tile dimension is zero.
    pub fn with_transform(
        inner: FixedDwt2d,
        tile_width: usize,
        tile_height: usize,
        workers: usize,
    ) -> Result<Self, PipelineError> {
        if tile_width == 0 || tile_height == 0 {
            return Err(PipelineError::Config("tile dimensions must be nonzero".into()));
        }
        let workers = if workers == 0 {
            thread::available_parallelism().map(usize::from).unwrap_or(1)
        } else {
            workers
        };
        Ok(Self { inner, tile_width, tile_height, workers })
    }

    /// The sequential transform every tile runs through unmodified.
    #[must_use]
    pub fn inner(&self) -> &FixedDwt2d {
        &self.inner
    }

    /// The decomposition depth.
    #[must_use]
    pub fn scales(&self) -> u32 {
        self.inner.scales()
    }

    /// Nominal tile width.
    #[must_use]
    pub fn tile_width(&self) -> usize {
        self.tile_width
    }

    /// Nominal tile height.
    #[must_use]
    pub fn tile_height(&self) -> usize {
        self.tile_height
    }

    /// Worker threads used per frame.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The tile grid this driver would use for a `width × height` frame,
    /// after checking that **every** tile shape that occurs in the grid
    /// (nominal, ragged right, ragged bottom, ragged corner) supports the
    /// configured decomposition depth.
    ///
    /// # Errors
    ///
    /// * [`PipelineError::Config`] for zero frame dimensions.
    /// * [`PipelineError::Dwt`] with [`DwtError::NotDecomposable`] naming the
    ///   offending tile shape if any tile cannot be decomposed.
    pub fn grid(&self, width: usize, height: usize) -> Result<TileGrid, PipelineError> {
        let grid = TileGrid::new(width, height, self.tile_width, self.tile_height)
            .map_err(|e| PipelineError::Config(format!("invalid tile grid: {e}")))?;
        let last_w = width - (grid.tiles_x() - 1) * grid.tile_width();
        let last_h = height - (grid.tiles_y() - 1) * grid.tile_height();
        for tw in [grid.tile_width(), last_w] {
            for th in [grid.tile_height(), last_h] {
                Dwt2d::check_decomposable(tw, th, self.scales()).map_err(PipelineError::from)?;
            }
        }
        Ok(grid)
    }

    /// Forward transform: the frame's tiles to per-tile raw coefficient
    /// words, fanned across the worker pool.
    ///
    /// The output is deterministic for a given tile shape — tiles are
    /// independent and returned in row-major grid order, so the worker count
    /// never changes a word. A single-tile grid yields exactly
    /// [`FixedDwt2d::forward`] of the whole frame.
    ///
    /// # Errors
    ///
    /// See [`TiledFixedDwt2d::grid`] and [`FixedDwt2d::forward_view`].
    pub fn forward(&self, frame: &Image) -> Result<TiledDecomposition, PipelineError> {
        Ok(self.forward_with_report(frame)?.0)
    }

    /// Forward transform plus tile-level throughput accounting.
    ///
    /// # Errors
    ///
    /// See [`TiledFixedDwt2d::forward`].
    pub fn forward_with_report(
        &self,
        frame: &Image,
    ) -> Result<(TiledDecomposition, TiledDwtReport), PipelineError> {
        let start = Instant::now();
        let grid = self.grid(frame.width(), frame.height())?;
        let inner = &self.inner;
        let tiles = run_indexed(self.workers, grid.tile_count(), |index| {
            let view = frame.view_rect(grid.rect(index)).map_err(DwtError::from)?;
            inner.forward_view(&view)
        })?;
        let report = TiledDwtReport {
            tiles: grid.tile_count(),
            samples: frame.pixel_count(),
            workers: self.workers.min(grid.tile_count()),
            wall: start.elapsed(),
        };
        Ok((TiledDecomposition { grid, bit_depth: frame.bit_depth(), tiles }, report))
    }

    /// Inverse transform: scatters every tile's reconstruction back into a
    /// frame. Tiles are synthesized on the worker pool; with one worker the
    /// pixels are written straight into the frame windows through
    /// [`FixedDwt2d::inverse_into`] (no per-tile image is materialized).
    /// Either path produces identical pixels.
    ///
    /// # Errors
    ///
    /// Everything [`FixedDwt2d::inverse`] reports, plus
    /// [`PipelineError::Config`] if the decomposition's tiles disagree with
    /// its grid.
    pub fn inverse(&self, tiles: &TiledDecomposition) -> Result<Image, PipelineError> {
        let grid = tiles.grid;
        if tiles.tiles.len() != grid.tile_count() {
            return Err(PipelineError::Config(format!(
                "tiled decomposition carries {} tiles but its grid has {}",
                tiles.tiles.len(),
                grid.tile_count()
            )));
        }
        let mut frame = Image::zeros(grid.image_width(), grid.image_height(), tiles.bit_depth)
            .map_err(|e| PipelineError::Dwt(e.into()))?;
        if self.workers.min(grid.tile_count()) == 1 {
            for (index, tile) in tiles.tiles.iter().enumerate() {
                let mut window = frame.view_rect_mut(grid.rect(index)).map_err(DwtError::from)?;
                self.inner.inverse_into(tile, &mut window)?;
            }
            return Ok(frame);
        }
        let inner = &self.inner;
        let decoded = run_indexed(self.workers, grid.tile_count(), |index| {
            inner.inverse(&tiles.tiles[index])
        })?;
        for (index, tile) in decoded.iter().enumerate() {
            frame
                .view_rect_mut(grid.rect(index))
                .and_then(|mut window| window.copy_from_image(tile))
                .map_err(|e| PipelineError::Dwt(e.into()))?;
        }
        Ok(frame)
    }

    /// Convenience helper: forward followed by inverse.
    ///
    /// # Errors
    ///
    /// See [`TiledFixedDwt2d::forward`] and [`TiledFixedDwt2d::inverse`].
    pub fn roundtrip(&self, frame: &Image) -> Result<Image, PipelineError> {
        let tiles = self.forward(frame)?;
        self.inverse(&tiles)
    }
}

/// The per-tile coefficients of one tile-parallel forward transform: a
/// [`TileGrid`] plus one [`Decomposition`] per tile in row-major grid order.
///
/// Each entry is exactly what [`FixedDwt2d::forward_view`] produces for that
/// tile's region — the container adds geometry, not arithmetic — so
/// downstream consumers (entropy coding, subband statistics, the
/// architecture model) can treat every tile as an ordinary monolithic
/// decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct TiledDecomposition {
    grid: TileGrid,
    bit_depth: u32,
    tiles: Vec<Decomposition<i64>>,
}

impl TiledDecomposition {
    /// The grid the frame was sharded by.
    #[must_use]
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Bit depth of the source frame's pixels.
    #[must_use]
    pub fn bit_depth(&self) -> u32 {
        self.bit_depth
    }

    /// Frame width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.grid.image_width()
    }

    /// Frame height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.grid.image_height()
    }

    /// The per-tile decompositions in row-major grid order.
    #[must_use]
    pub fn tiles(&self) -> &[Decomposition<i64>] {
        &self.tiles
    }

    /// One tile's decomposition (row-major `index`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn tile(&self, index: usize) -> &Decomposition<i64> {
        &self.tiles[index]
    }

    /// Consumes the container, yielding the per-tile decompositions.
    #[must_use]
    pub fn into_tiles(self) -> Vec<Decomposition<i64>> {
        self.tiles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_filters::FilterId;
    use lwc_image::{stats, synth};

    #[test]
    fn tiles_are_bit_identical_to_the_monolithic_transform_per_region() {
        let bank = FilterBank::table1(FilterId::F2);
        let engine = TiledFixedDwt2d::new(&bank, 3, 32, 3).unwrap();
        let frame = synth::ct_phantom(96, 64, 12, 5);
        let tiles = engine.forward(&frame).unwrap();
        let grid = engine.grid(96, 64).unwrap();
        for index in 0..grid.tile_count() {
            let crop = frame.crop(grid.rect(index)).unwrap();
            let monolithic = engine.inner().forward(&crop).unwrap();
            assert_eq!(tiles.tile(index), &monolithic, "tile {index}");
        }
    }

    #[test]
    fn single_tile_grid_reproduces_the_monolithic_transform_exactly() {
        let bank = FilterBank::table1(FilterId::F4);
        let engine = TiledFixedDwt2d::new(&bank, 4, 1 << 12, 2).unwrap();
        let frame = synth::mr_slice(64, 64, 12, 9);
        let tiles = engine.forward(&frame).unwrap();
        assert!(tiles.grid().is_single());
        assert_eq!(tiles.tiles().len(), 1);
        assert_eq!(tiles.tile(0), &engine.inner().forward(&frame).unwrap());
    }

    #[test]
    fn output_is_independent_of_the_worker_count() {
        let bank = FilterBank::table1(FilterId::F1);
        let frame = synth::random_image(128, 96, 12, 3);
        let reference = TiledFixedDwt2d::new(&bank, 2, 32, 1).unwrap().forward(&frame).unwrap();
        for workers in [2, 3, 8] {
            let engine = TiledFixedDwt2d::new(&bank, 2, 32, workers).unwrap();
            assert_eq!(engine.forward(&frame).unwrap(), reference, "{workers} workers");
        }
    }

    #[test]
    fn roundtrip_is_lossless_for_all_banks() {
        for id in FilterId::ALL {
            let bank = FilterBank::table1(id);
            let engine = TiledFixedDwt2d::new(&bank, 3, 32, 2).unwrap();
            let frame = synth::ct_phantom(64, 96, 12, id.index() as u64);
            let back = engine.roundtrip(&frame).unwrap();
            assert!(stats::bit_exact(&frame, &back).unwrap(), "{id}");
        }
    }

    #[test]
    fn sequential_and_parallel_inverse_agree() {
        let bank = FilterBank::table1(FilterId::F3);
        let frame = synth::mr_slice(96, 96, 12, 11);
        let one = TiledFixedDwt2d::new(&bank, 2, 32, 1).unwrap();
        let many = TiledFixedDwt2d::new(&bank, 2, 32, 4).unwrap();
        let tiles = one.forward(&frame).unwrap();
        let a = one.inverse(&tiles).unwrap();
        let b = many.inverse(&tiles).unwrap();
        assert_eq!(a.samples(), b.samples());
        assert!(stats::bit_exact(&frame, &a).unwrap());
    }

    #[test]
    fn undecomposable_tile_shapes_are_rejected_up_front() {
        let bank = FilterBank::table1(FilterId::F1);
        // 3 scales demand tile sides divisible by 8; a 100-pixel frame over
        // 48-pixel tiles leaves a ragged 4-pixel edge that cannot halve
        // three times.
        let engine = TiledFixedDwt2d::new(&bank, 3, 48, 2).unwrap();
        assert!(matches!(
            engine.grid(100, 96),
            Err(PipelineError::Dwt(DwtError::NotDecomposable { .. }))
        ));
        assert!(engine.forward(&synth::flat(100, 96, 12, 0)).is_err());
        // The same frame with aligned tiles is fine.
        let aligned = TiledFixedDwt2d::new(&bank, 3, 32, 2).unwrap();
        assert!(aligned.grid(96, 96).is_ok());
    }

    #[test]
    fn inverse_rejects_inconsistent_containers() {
        let bank = FilterBank::table1(FilterId::F1);
        let engine = TiledFixedDwt2d::new(&bank, 2, 32, 2).unwrap();
        let frame = synth::ct_phantom(64, 64, 12, 1);
        let mut tiles = engine.forward(&frame).unwrap();
        tiles.tiles.pop();
        assert!(matches!(engine.inverse(&tiles), Err(PipelineError::Config(_))));
        // A transform with a different filter refuses the tiles.
        let other = TiledFixedDwt2d::new(&FilterBank::table1(FilterId::F5), 2, 32, 2).unwrap();
        let tiles = engine.forward(&frame).unwrap();
        assert!(other.inverse(&tiles).is_err());
    }

    #[test]
    fn zero_workers_selects_available_parallelism_and_report_counts_tiles() {
        let bank = FilterBank::table1(FilterId::F6);
        let engine = TiledFixedDwt2d::new(&bank, 2, 16, 0).unwrap();
        assert!(engine.workers() >= 1);
        let frame = synth::ct_phantom(48, 48, 12, 2);
        let (tiles, report) = engine.forward_with_report(&frame).unwrap();
        assert_eq!(report.tiles, 9);
        assert_eq!(tiles.width(), 48);
        assert_eq!(tiles.bit_depth(), 12);
        assert!(report.megasamples_per_second() > 0.0);
        assert_eq!(report.samples, 48 * 48);
    }

    #[test]
    fn invalid_tile_shapes_are_rejected() {
        let bank = FilterBank::table1(FilterId::F1);
        assert!(TiledFixedDwt2d::new(&bank, 2, 0, 1).is_err());
        let inner = FixedDwt2d::paper_default(&bank, 2).unwrap();
        assert!(TiledFixedDwt2d::with_transform(inner, 32, 0, 1).is_err());
    }
}
