//! Row-streaming lossless encoder over the line-based fused DWT.
//!
//! [`LineCompressor`] pairs [`lwc_lifting::LineDwt53`] — the one-pass
//! multi-scale transform with an `O(width x levels)` coefficient working set
//! — with one incremental [`lwc_coder::StreamingSubbandEncoder`] per subband:
//! coefficient rows flow from the cascade straight into the per-band Rice
//! coders, and [`RowEncoder::finish`] splices the finished bands (in
//! [`lwc_coder::subband_order`]) behind the `LWC1` header at bit level. The
//! block-adaptive code is strictly sequential per band, so the spliced stream
//! is **byte-identical** to [`LosslessCodec::compress`] — the pull-style
//! counterpart is [`crate::TiledCompressor::decompress_row_bands`], giving
//! bounded-memory encode *and* decode end to end.
//!
//! The encode path never allocates a frame-sized coefficient buffer: peak
//! coefficient state is the cascade's line rings plus at most one partial
//! Rice block per band (asserted by the streaming smoke tests and the
//! `reproduce dwt-line` artifact).

use crate::{Codec, CodecCapabilities, PipelineError};
use lwc_coder::bitio::BitWriter;
use lwc_coder::{subband_order, LosslessCodec, StreamHeader, StreamingSubbandEncoder};
use lwc_image::{Image, ImageView};
use lwc_lifting::{CoeffRow, LineDwt53};

/// Lossless `LWC1` codec whose forward transform is the line-based fused
/// [`LineDwt53`] instead of the multi-pass [`lwc_lifting::Lifting53`].
///
/// Output bytes are identical to [`LosslessCodec::compress`] for every image
/// (pinned by tests); the difference is *how* they are produced — one
/// streaming pass over the input rows, which is both faster at deep
/// decompositions (one memory pass instead of one per scale) and the entry
/// point for compressing frames that never fit in RAM via
/// [`LineCompressor::begin`] / [`RowEncoder::push_row`].
///
/// ```
/// use lwc_coder::LosslessCodec;
/// use lwc_image::synth;
/// use lwc_pipeline::LineCompressor;
///
/// # fn main() -> Result<(), lwc_pipeline::PipelineError> {
/// let image = synth::ct_phantom(96, 64, 12, 1);
/// let line = LineCompressor::new(4)?;
/// let bytes = line.compress(&image)?;
/// assert_eq!(bytes, LosslessCodec::new(4)?.compress(&image)?); // same stream
/// assert_eq!(line.decompress(&bytes)?.samples(), image.samples());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCompressor {
    codec: LosslessCodec,
}

impl LineCompressor {
    /// Creates an engine with the given decomposition depth.
    ///
    /// # Errors
    ///
    /// Returns an error if `scales` is zero.
    pub fn new(scales: u32) -> Result<Self, PipelineError> {
        Ok(Self::with_codec(LosslessCodec::new(scales)?))
    }

    /// Wraps an existing codec configuration. The fused line transform has
    /// no quantization stage, so any near-lossless bound on `codec` is
    /// stripped: the engine always emits lossless streams (callers that want
    /// near-lossless tiles go through [`crate::TiledCompressor`], which
    /// bypasses the line path when its codec carries a bound).
    #[must_use]
    pub fn with_codec(codec: LosslessCodec) -> Self {
        let codec = LosslessCodec::new(codec.scales()).expect("scales validated by construction");
        Self { codec }
    }

    /// The codec configuration (shared header/stream layout and decode path).
    #[must_use]
    pub fn codec(&self) -> &LosslessCodec {
        &self.codec
    }

    /// Decomposition depth.
    #[must_use]
    pub fn scales(&self) -> u32 {
        self.codec.scales()
    }

    /// Starts a streaming encode session for a `width x height` frame whose
    /// rows will be pushed top to bottom — the push-style counterpart of the
    /// pull-style [`crate::TiledCompressor::decompress_row_bands`].
    ///
    /// # Errors
    ///
    /// Returns an error if the shape does not fit the `LWC1` header fields or
    /// a dimension is zero.
    pub fn begin(
        &self,
        width: usize,
        height: usize,
        bit_depth: u32,
    ) -> Result<RowEncoder, PipelineError> {
        let header = self.codec.header_for_dims(width, height, bit_depth)?;
        let scales = self.scales();
        let dwt = LineDwt53::new(width, height, scales)?;
        let encoders =
            (0..3 * scales as usize + 1).map(|_| StreamingSubbandEncoder::new()).collect();
        Ok(RowEncoder { header, scales, dwt, encoders })
    }

    /// Compresses a frame supplied as an iterator of rows (top to bottom,
    /// each exactly `width` samples) without ever holding the frame or its
    /// coefficients in memory.
    ///
    /// # Errors
    ///
    /// See [`LineCompressor::begin`].
    ///
    /// # Panics
    ///
    /// Panics (like [`RowEncoder::push_row`]) if a row has the wrong length
    /// or the iterator yields a number of rows different from `height`.
    pub fn compress_rows<'a, I>(
        &self,
        width: usize,
        height: usize,
        bit_depth: u32,
        rows: I,
    ) -> Result<Vec<u8>, PipelineError>
    where
        I: IntoIterator<Item = &'a [i32]>,
    {
        let mut encoder = self.begin(width, height, bit_depth)?;
        for row in rows {
            encoder.push_row(row);
        }
        Ok(encoder.finish())
    }

    /// Compresses an in-memory image through the streaming path; bytes are
    /// identical to [`LosslessCodec::compress`].
    ///
    /// # Errors
    ///
    /// See [`LineCompressor::begin`].
    pub fn compress(&self, image: &Image) -> Result<Vec<u8>, PipelineError> {
        self.compress_view(&image.view())
    }

    /// Compresses a borrowed (possibly strided) window of a larger frame —
    /// the per-tile entry point used by
    /// [`crate::TiledCompressor::with_line_transform`].
    ///
    /// # Errors
    ///
    /// See [`LineCompressor::begin`].
    pub fn compress_view(&self, view: &ImageView<'_>) -> Result<Vec<u8>, PipelineError> {
        self.compress_rows(
            view.width(),
            view.height(),
            view.bit_depth(),
            (0..view.height()).map(|y| view.row(y)),
        )
    }

    /// Reconstructs the image; the stream is plain `LWC1`, decoded by the
    /// shared sequential path.
    ///
    /// # Errors
    ///
    /// See [`LosslessCodec::decompress`].
    pub fn decompress(&self, bytes: &[u8]) -> Result<Image, PipelineError> {
        Ok(self.codec.decompress(bytes)?)
    }
}

/// An in-progress streaming encode: push pixel rows with
/// [`RowEncoder::push_row`], collect the `LWC1` stream with
/// [`RowEncoder::finish`].
#[derive(Debug)]
pub struct RowEncoder {
    header: StreamHeader,
    scales: u32,
    dwt: LineDwt53,
    /// One incremental Rice encoder per subband, indexed by the band's
    /// position in [`subband_order`].
    encoders: Vec<StreamingSubbandEncoder>,
}

impl RowEncoder {
    /// Position of `(scale, band)` in [`subband_order`]: the deepest
    /// approximation first, then detail triples from the deepest scale down.
    fn slot(scales: u32, scale: u32, band: usize) -> usize {
        if band == 0 {
            0
        } else {
            1 + 3 * (scales - scale) as usize + (band - 1)
        }
    }

    /// Frame width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.header.width
    }

    /// Frame height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.header.height
    }

    /// Rows pushed so far.
    #[must_use]
    pub fn rows_pushed(&self) -> usize {
        self.dwt.rows_pushed()
    }

    /// Coefficient samples currently buffered: the transform's line rings
    /// plus the partial Rice block pending in each band encoder. Bounded by
    /// `O(width x levels)` — the streaming smoke tests assert it never
    /// approaches the frame's pixel count. (The accumulating *compressed*
    /// bits are excluded: they are the output, not working state.)
    #[must_use]
    pub fn working_set_samples(&self) -> usize {
        self.dwt.working_set_samples()
            + self.encoders.iter().map(StreamingSubbandEncoder::buffered_samples).sum::<usize>()
    }

    /// Pushes the next pixel row (top to bottom); every coefficient row the
    /// cascade releases is Rice-coded immediately.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the frame width or more than
    /// `height` rows are pushed.
    pub fn push_row(&mut self, row: &[i32]) {
        let scales = self.scales;
        let encoders = &mut self.encoders;
        self.dwt.push_row(row, &mut |c: CoeffRow<'_>| {
            encoders[Self::slot(scales, c.scale, c.band)].push(c.samples);
        });
    }

    /// Flushes the cascade's boundary tails and splices the per-band
    /// bitstreams behind the header into the final `LWC1` stream —
    /// byte-identical to [`LosslessCodec::compress`] of the same frame.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `height` rows were pushed.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        let scales = self.scales;
        let encoders = &mut self.encoders;
        self.dwt.finish(&mut |c: CoeffRow<'_>| {
            encoders[Self::slot(scales, c.scale, c.band)].push(c.samples);
        });
        let mut writer = BitWriter::new();
        self.header.write(&mut writer);
        let mut encoders = self.encoders.into_iter();
        for _ in subband_order(scales) {
            let (bytes, bits) = encoders.next().expect("one encoder per subband").finish();
            writer.append(&bytes, bits);
        }
        writer.into_bytes()
    }
}

impl Codec for LineCompressor {
    fn name(&self) -> &'static str {
        "line"
    }

    fn capabilities(&self) -> CodecCapabilities {
        CodecCapabilities {
            containers: "LWC1",
            tiled: false,
            streaming_decode: false,
            fixed_point: false,
            near_lossless: false,
        }
    }

    fn compress(&self, image: &Image) -> Result<Vec<u8>, PipelineError> {
        LineCompressor::compress(self, image)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Image, PipelineError> {
        LineCompressor::decompress(self, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_image::{stats, synth};

    #[test]
    fn streamed_bytes_are_identical_to_the_sequential_codec() {
        for (w, h) in [(1usize, 1usize), (5, 4), (37, 53), (64, 64), (101, 63), (64, 37)] {
            for scales in [1u32, 3, 5] {
                let image = synth::random_image(w, h, 12, (w * h) as u64 + u64::from(scales));
                let line = LineCompressor::new(scales).unwrap();
                let sequential = LosslessCodec::new(scales).unwrap();
                assert_eq!(
                    line.compress(&image).unwrap(),
                    sequential.compress(&image).unwrap(),
                    "{w}x{h} at {scales} scales"
                );
            }
        }
    }

    #[test]
    fn push_style_session_roundtrips_and_stays_bounded() {
        let (w, h) = (96usize, 256usize);
        let image = synth::ct_phantom(w, h, 12, 7);
        let line = LineCompressor::new(4).unwrap();
        let mut encoder = line.begin(w, h, 12).unwrap();
        let mut peak = 0usize;
        for y in 0..h {
            encoder.push_row(image.view().row(y));
            peak = peak.max(encoder.working_set_samples());
        }
        let bytes = encoder.finish();
        assert!(peak < w * h / 4, "peak coefficient working set {peak} vs {} pixels", w * h);
        let back = line.decompress(&bytes).unwrap();
        assert!(stats::bit_exact(&image, &back).unwrap());
    }

    #[test]
    fn trait_dispatch_matches_the_concrete_engine() {
        let image = synth::mr_slice(64, 48, 12, 3);
        let line = LineCompressor::new(3).unwrap();
        assert_eq!(
            Codec::compress(&line, &image).unwrap(),
            LineCompressor::compress(&line, &image).unwrap()
        );
        assert_eq!(line.name(), "line");
        assert!(!line.capabilities().tiled);
    }

    #[test]
    fn invalid_shapes_are_rejected() {
        let line = LineCompressor::new(3).unwrap();
        assert!(line.begin(0, 4, 12).is_err());
        assert!(line.begin(1 << 20, 4, 12).is_err());
        assert!(line.begin(4, 4, 0).is_err());
    }
}
