//! Brick-parallel volumetric compression: the 3-D engine.
//!
//! Medical studies are mostly *stacks* of correlated slices. This module
//! lifts the tile-sharded 2-D engine one dimension: an
//! [`lwc_image::ImageStack`] is partitioned by a [`BrickGrid`] into bricks
//! (a tile footprint times a run of slices), every brick runs a separable
//! 3-D DWT — the reversible 5/3 kernels of `lwc-lifting` along z
//! ([`lwc_lifting::forward_z`]) composed with the ordinary 2-D transform per
//! resulting coefficient plane — and the per-plane streams are wrapped in
//! the versioned `LWCV` container ([`lwc_coder::volume`]) behind the same
//! 48-bit offset directory as `LWCT`. That buys, in one move:
//!
//! * **inter-slice decorrelation** — adjacent CT/MRI slices are nearly
//!   identical, so the z detail planes are close to zero and Rice-code
//!   tightly; `z_scales = 0` switches the z transform off and the per-plane
//!   substreams become byte-identical to the 2-D tiled path's,
//! * **brick parallelism** — one volume request fans into
//!   `bricks_z x tiles` independent encode/decode jobs with worker-count
//!   independent bytes (the same [`run_indexed`] discipline as every other
//!   engine),
//! * **bounded-memory decode** — [`VolumeCompressor::decompress_slabs`]
//!   walks the directory one brick layer at a time, the volumetric mirror of
//!   `decompress_row_bands`, sound because z transforms never cross brick
//!   boundaries.

use crate::parcodec::run_indexed;
use crate::report::TiledReport;
use crate::PipelineError;
use lwc_coder::volume::{split_brick_payload, write_brick_payload, write_volume_container};
use lwc_coder::{plane_delta_for_volume, CoderError, LosslessCodec, VolumeHeader, VolumeStream};
use lwc_image::{BrickGrid, BrickRect, Image, ImageStack, ImageView};
use lwc_lifting::{forward_z, inverse_z};
use std::thread;
use std::time::Instant;

/// Default nominal brick depth in slices: deep enough that two z scales have
/// material to work with, shallow enough that a brick (tile footprint x
/// depth, i32) stays cache-friendly and slab-streaming memory stays low.
pub const DEFAULT_BRICK_DEPTH: usize = 8;

/// Brick-parallel lossless codec for volumes (stacks of slices).
///
/// Streams are deterministic for a given brick shape — the worker count
/// never changes a byte — and every brick decodes independently through the
/// container directory.
///
/// ```
/// use lwc_image::synth;
/// use lwc_pipeline::VolumeCompressor;
///
/// # fn main() -> Result<(), lwc_pipeline::PipelineError> {
/// let engine = VolumeCompressor::new(3, 1, 32, 4, 0)?;
/// let volume = synth::ct_volume(70, 50, 11, 12, 1); // ragged bricks all round
/// let bytes = engine.compress_stack(&volume)?;
/// let back = engine.decompress_stack(&bytes)?;
/// assert_eq!(volume.samples(), back.samples());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct VolumeCompressor {
    /// The user-facing codec; its `delta` is the per-voxel bound the volume
    /// container advertises.
    codec: LosslessCodec,
    /// The codec actually applied per coefficient plane: its delta is
    /// [`plane_delta_for_volume`] of the volume bound, shrunk so the z-axis
    /// synthesis stages cannot amplify the per-plane error past the volume
    /// bound. Identical to `codec` when `delta == 0` or `z_scales == 0`.
    plane_codec: LosslessCodec,
    z_scales: u32,
    tile_width: usize,
    tile_height: usize,
    brick_depth: usize,
    workers: usize,
}

impl VolumeCompressor {
    /// Creates an engine with the given 2-D decomposition depth, z-axis
    /// decomposition depth (0 disables inter-slice decorrelation), square
    /// tile side, brick depth in slices and worker count. `workers == 0`
    /// selects the machine's available parallelism.
    ///
    /// # Errors
    ///
    /// Returns an error if `scales` is zero or a brick dimension is out of
    /// range.
    pub fn new(
        scales: u32,
        z_scales: u32,
        tile_size: usize,
        brick_depth: usize,
        workers: usize,
    ) -> Result<Self, PipelineError> {
        Self::with_codec(
            LosslessCodec::new(scales)?,
            z_scales,
            tile_size,
            tile_size,
            brick_depth,
            workers,
        )
    }

    /// Wraps an existing per-plane codec with an explicit (possibly
    /// non-square) brick shape. `workers == 0` selects the machine's
    /// available parallelism.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Config`] if a brick dimension is zero, a
    /// tile dimension does not fit the per-plane stream format's 20-bit
    /// fields, or `z_scales` does not fit the container's 4-bit field.
    pub fn with_codec(
        codec: LosslessCodec,
        z_scales: u32,
        tile_width: usize,
        tile_height: usize,
        brick_depth: usize,
        workers: usize,
    ) -> Result<Self, PipelineError> {
        if tile_width == 0 || tile_height == 0 || brick_depth == 0 {
            return Err(PipelineError::Config("brick dimensions must be nonzero".into()));
        }
        if tile_width >= (1 << 20) || tile_height >= (1 << 20) {
            return Err(PipelineError::Config(format!(
                "tile dimensions {tile_width}x{tile_height} exceed the per-plane stream format's \
                 20-bit fields"
            )));
        }
        if z_scales >= (1 << 4) {
            return Err(PipelineError::Config(format!(
                "{z_scales} z scales exceed the container format's 4-bit field"
            )));
        }
        let workers = if workers == 0 {
            thread::available_parallelism().map(usize::from).unwrap_or(1)
        } else {
            workers
        };
        let plane_codec = LosslessCodec::near_lossless(
            codec.scales(),
            plane_delta_for_volume(codec.delta(), z_scales),
        )?;
        Ok(Self { codec, plane_codec, z_scales, tile_width, tile_height, brick_depth, workers })
    }

    /// The per-plane 2-D codec.
    #[must_use]
    pub fn codec(&self) -> &LosslessCodec {
        &self.codec
    }

    /// z-axis decomposition depth (0 = per-slice 2-D coding).
    #[must_use]
    pub fn z_scales(&self) -> u32 {
        self.z_scales
    }

    /// Nominal tile width.
    #[must_use]
    pub fn tile_width(&self) -> usize {
        self.tile_width
    }

    /// Nominal tile height.
    #[must_use]
    pub fn tile_height(&self) -> usize {
        self.tile_height
    }

    /// Nominal brick depth in slices.
    #[must_use]
    pub fn brick_depth(&self) -> usize {
        self.brick_depth
    }

    /// Worker threads used per volume.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The brick grid this engine would use for a `width x height x depth`
    /// volume.
    ///
    /// # Errors
    ///
    /// Returns an error for zero volume dimensions.
    pub fn grid(
        &self,
        width: usize,
        height: usize,
        depth: usize,
    ) -> Result<BrickGrid, PipelineError> {
        BrickGrid::new(width, height, depth, self.tile_width, self.tile_height, self.brick_depth)
            .map_err(|e| PipelineError::Config(format!("invalid brick grid: {e}")))
    }

    /// Compresses a volume, fanning the bricks across the worker pool. The
    /// bytes depend only on the volume and the brick shape, never on the
    /// worker count.
    ///
    /// # Errors
    ///
    /// Returns the first per-brick codec error, if any.
    pub fn compress_stack(&self, stack: &ImageStack) -> Result<Vec<u8>, PipelineError> {
        Ok(self.compress_stack_with_report(stack)?.0)
    }

    /// Compresses and reports brick-level throughput (the report's `tiles`
    /// field counts bricks).
    ///
    /// # Errors
    ///
    /// See [`VolumeCompressor::compress_stack`].
    pub fn compress_stack_with_report(
        &self,
        stack: &ImageStack,
    ) -> Result<(Vec<u8>, TiledReport), PipelineError> {
        let start = Instant::now();
        let grid = self.grid(stack.width(), stack.height(), stack.depth())?;
        let payloads = run_indexed(self.workers, grid.brick_count(), |index| {
            self.encode_brick(stack, &grid, index)
        })?;
        let bytes = self.assemble_container(&grid, stack.bit_depth(), &payloads)?;
        let report = TiledReport {
            tiles: grid.brick_count(),
            raw_bytes: (stack.voxel_count() * stack.bit_depth() as usize).div_ceil(8),
            compressed_bytes: bytes.len(),
            workers: self.workers.min(grid.brick_count()),
            wall: start.elapsed(),
        };
        Ok((bytes, report))
    }

    /// Compresses one brick (plane-major `index` of `grid`) into its
    /// standalone payload — the unit a scheduler can fan across workers.
    /// Byte-identical to the payload [`VolumeCompressor::compress_stack`]
    /// places in the container's `index` directory slot, by construction:
    /// `compress_stack` itself is built on this.
    ///
    /// The brick is gathered plane-major, z-lifted in place
    /// ([`lwc_lifting::forward_z`]; a no-op at `z_scales = 0`), and every
    /// resulting coefficient plane is 2-D coded as one `LWC1` stream —
    /// negative z coefficients ride through the same subband coder pixels
    /// do, which handles any `i32`.
    ///
    /// # Errors
    ///
    /// Returns the brick's codec error; `grid` must describe `stack` (an
    /// out-of-bounds box surfaces as a view error).
    pub fn encode_brick(
        &self,
        stack: &ImageStack,
        grid: &BrickGrid,
        index: usize,
    ) -> Result<Vec<u8>, PipelineError> {
        let rect = grid.rect(index);
        let mut samples = stack.view_brick(rect).map_err(CoderError::from)?.to_samples();
        let plane_len = rect.plane.pixel_count();
        forward_z(&mut samples, plane_len, rect.depth, self.z_scales).map_err(CoderError::from)?;
        let planes = samples
            .chunks_exact(plane_len)
            .map(|plane| {
                let view = ImageView::from_raw(
                    plane,
                    rect.plane.width,
                    rect.plane.height,
                    rect.plane.width,
                    stack.bit_depth(),
                )
                .map_err(CoderError::from)?;
                Ok(self.plane_codec.compress_view(&view)?)
            })
            .collect::<Result<Vec<_>, PipelineError>>()?;
        Ok(write_brick_payload(&planes))
    }

    /// Assembles per-brick payloads (plane-major `grid` order, one per
    /// brick, as produced by [`VolumeCompressor::encode_brick`]) into the
    /// `LWCV` container [`VolumeCompressor::compress_stack`] writes. Callers
    /// fanning bricks out themselves — the server's volume op — finish with
    /// this.
    ///
    /// # Errors
    ///
    /// Returns a container error if the payload count disagrees with the
    /// grid or an offset overflows the directory format.
    pub fn assemble_container(
        &self,
        grid: &BrickGrid,
        bit_depth: u32,
        payloads: &[Vec<u8>],
    ) -> Result<Vec<u8>, PipelineError> {
        let header = VolumeHeader {
            width: grid.plane().image_width(),
            height: grid.plane().image_height(),
            depth: grid.image_depth(),
            bit_depth,
            scales: self.codec.scales(),
            z_scales: self.z_scales,
            tile_width: grid.plane().tile_width(),
            tile_height: grid.plane().tile_height(),
            brick_depth: grid.brick_depth(),
            delta: self.codec.delta(),
        };
        Ok(write_volume_container(&header, payloads)?)
    }

    /// Reconstructs the volume from an `LWCV` container — voxel-exact for
    /// lossless streams, within the per-voxel bound `δ` the container header
    /// declares for near-lossless ones (each plane's stream header is
    /// cross-checked against the bound the container implies).
    ///
    /// Bricks are decoded in bounded batches (a few per worker) and
    /// scattered into the volume as each batch completes. Every
    /// reconstructed sample is range-validated against the container's bit
    /// depth after the inverse z transform — corrupt brick payloads that
    /// decode structurally but produce out-of-range voxels are rejected.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed streams, mismatched configuration, or
    /// bricks that disagree with the container's grid geometry.
    pub fn decompress_stack(&self, bytes: &[u8]) -> Result<ImageStack, PipelineError> {
        let stream = VolumeStream::parse(bytes)?;
        let header = *stream.header();
        self.ensure_scales(&header)?;
        let grid = stream.grid()?;
        let mut volume = vec![0i32; header.width * header.height * header.depth];
        let batch = (self.workers * 4).max(4);
        let mut index = 0;
        while index < grid.brick_count() {
            let count = batch.min(grid.brick_count() - index);
            let bricks = self.decode_bricks(&stream, &grid, index, count)?;
            for (offset, brick) in bricks.iter().enumerate() {
                let rect = grid.rect(index + offset);
                scatter_brick(&mut volume, header.width, header.height, rect, brick);
            }
            index += count;
        }
        Ok(ImageStack::from_samples(
            header.width,
            header.height,
            header.depth,
            header.bit_depth,
            volume,
        )
        .map_err(CoderError::from)?)
    }

    /// Streaming decode: yields the volume one brick-layer **slab** at a
    /// time (front to back), decoding each slab's bricks on the worker
    /// pool. Peak memory is bounded by one slab — `width x height x
    /// brick_depth` voxels plus one batch of decoded bricks — regardless of
    /// the volume's slice count; sound because the z transform never crosses
    /// a brick boundary. The volumetric mirror of
    /// [`crate::TiledCompressor::decompress_row_bands`].
    ///
    /// # Errors
    ///
    /// Returns an error if the container header or directory is malformed;
    /// per-slab decode errors surface through the iterator's items.
    pub fn decompress_slabs<'a>(&self, bytes: &'a [u8]) -> Result<VolumeSlabs<'a>, PipelineError> {
        let stream = VolumeStream::parse(bytes)?;
        self.ensure_scales(stream.header())?;
        let grid = stream.grid()?;
        Ok(VolumeSlabs { engine: *self, stream, grid, next_layer: 0 })
    }

    /// Decodes the minimal set of bricks covering the box `rect` and crops
    /// the box out — region-of-interest access over the container directory,
    /// decoding nothing outside the covering bricks. The bricks fan across
    /// the worker pool.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed streams or a box that does not fit
    /// the volume.
    pub fn decompress_region(
        &self,
        bytes: &[u8],
        rect: BrickRect,
    ) -> Result<ImageStack, PipelineError> {
        let stream = VolumeStream::parse(bytes)?;
        let header = *stream.header();
        self.ensure_scales(&header)?;
        let grid = stream.grid()?;
        let indices = grid.covering_indices(rect).ok_or_else(|| {
            CoderError::MalformedStream(format!(
                "region ({}, {}, {}) {}x{}x{} does not fit the {}x{}x{} volume",
                rect.plane.x,
                rect.plane.y,
                rect.z,
                rect.plane.width,
                rect.plane.height,
                rect.depth,
                header.width,
                header.height,
                header.depth
            ))
        })?;
        let bricks = run_indexed(self.workers, indices.len(), |i| {
            self.decode_brick(&stream, &grid, indices[i])
        })?;
        let mut region = vec![0i32; rect.voxel_count()];
        for (&index, brick) in indices.iter().zip(&bricks) {
            let brick_rect = grid.rect(index);
            scatter_region(&mut region, rect, brick_rect, brick);
        }
        Ok(ImageStack::from_samples(
            rect.plane.width,
            rect.plane.height,
            rect.depth,
            header.bit_depth,
            region,
        )
        .map_err(CoderError::from)?)
    }

    /// Decodes brick `index` (plane-major directory order) as a 2-D image —
    /// the random-access unit behind [`crate::Codec::decompress_tile`] for
    /// volumetric streams. Only single-slice bricks (`brick_depth == 1`, or
    /// a ragged back layer one slice deep) reduce to an image; deeper bricks
    /// are a typed error directing callers to
    /// [`VolumeCompressor::decompress_region`].
    ///
    /// # Errors
    ///
    /// Returns an error for malformed streams, an out-of-range index, or a
    /// brick spanning more than one slice.
    pub fn decompress_brick_image(
        &self,
        bytes: &[u8],
        index: usize,
    ) -> Result<Image, PipelineError> {
        let stream = VolumeStream::parse(bytes)?;
        self.ensure_scales(stream.header())?;
        let grid = stream.grid()?;
        if index >= grid.brick_count() {
            return Err(CoderError::MalformedStream(format!(
                "brick index {index} out of range: the directory holds {} bricks",
                grid.brick_count()
            ))
            .into());
        }
        let rect = grid.rect(index);
        if rect.depth != 1 {
            return Err(CoderError::UnsupportedFormat(format!(
                "brick {index} spans {} slices and cannot reduce to a 2-D image; use \
                 decompress_region",
                rect.depth
            ))
            .into());
        }
        let samples = self.decode_brick(&stream, &grid, index)?;
        Ok(Image::from_samples(
            rect.plane.width,
            rect.plane.height,
            stream.header().bit_depth,
            samples,
        )
        .map_err(CoderError::from)?)
    }

    fn ensure_scales(&self, header: &VolumeHeader) -> Result<(), PipelineError> {
        if header.scales != self.codec.scales() {
            return Err(CoderError::UnsupportedFormat(format!(
                "volume stream uses {} scales but the codec is configured for {}",
                header.scales,
                self.codec.scales()
            ))
            .into());
        }
        Ok(())
    }

    /// Decodes bricks `first..first + count` (plane-major) on the worker
    /// pool, returning each brick's plane-major raw samples (inverse z
    /// applied, range validation deferred to the caller's
    /// [`ImageStack::from_samples`]).
    fn decode_bricks(
        &self,
        stream: &VolumeStream<'_>,
        grid: &BrickGrid,
        first: usize,
        count: usize,
    ) -> Result<Vec<Vec<i32>>, PipelineError> {
        run_indexed(self.workers, count, |offset| self.decode_brick(stream, grid, first + offset))
    }

    /// Decodes one brick of a parsed stream to its plane-major raw samples —
    /// the per-brick unit an external scheduler (the server's volume ops)
    /// fans across workers, paired with [`scatter_region`] to place the
    /// result. Range validation is deferred: feed the assembled buffer
    /// through [`ImageStack::from_samples`].
    ///
    /// # Errors
    ///
    /// Returns the brick's codec error; see
    /// [`VolumeCompressor::decompress_stack`].
    pub fn decode_brick_samples(
        &self,
        stream: &VolumeStream<'_>,
        grid: &BrickGrid,
        index: usize,
    ) -> Result<Vec<i32>, PipelineError> {
        Ok(self.decode_brick(stream, grid, index)?)
    }

    /// Decodes one brick: splits the payload's plane table, 2-D decodes
    /// every coefficient plane through the raw (range-unchecked) path, then
    /// inverts the z transform with the **container's** `z_scales`. Each
    /// plane's stream header must carry the per-plane quantizer delta the
    /// container's volume bound implies; near-lossless voxels are clamped to
    /// the container's sample range after the inverse z transform (clamping
    /// only moves a reconstruction toward the original, so the bound holds).
    fn decode_brick(
        &self,
        stream: &VolumeStream<'_>,
        grid: &BrickGrid,
        index: usize,
    ) -> Result<Vec<i32>, CoderError> {
        let header = stream.header();
        let expected_delta = plane_delta_for_volume(header.delta, header.z_scales);
        let rect = grid.rect(index);
        let plane_len = rect.plane.pixel_count();
        let planes = split_brick_payload(stream.brick_bytes(index), rect.depth)?;
        let mut samples = Vec::with_capacity(plane_len * rect.depth);
        for (z, plane_bytes) in planes.iter().enumerate() {
            let (plane_header, plane) = self.codec.decompress_raw(plane_bytes)?;
            if plane_header.delta != expected_delta {
                return Err(CoderError::MalformedStream(format!(
                    "brick {index} plane {z} carries quantizer delta {} but the container's \
                     volume bound {} implies {}",
                    plane_header.delta, header.delta, expected_delta
                )));
            }
            if plane_header.width != rect.plane.width || plane_header.height != rect.plane.height {
                return Err(CoderError::MalformedStream(format!(
                    "brick {index} plane {z} decodes to {}x{} but the grid places a {}x{} brick \
                     there",
                    plane_header.width, plane_header.height, rect.plane.width, rect.plane.height
                )));
            }
            if plane_header.bit_depth != header.bit_depth {
                return Err(CoderError::MalformedStream(format!(
                    "brick {index} plane {z} carries {}-bit samples but the container header says \
                     {}-bit",
                    plane_header.bit_depth, header.bit_depth
                )));
            }
            samples.extend_from_slice(&plane);
        }
        inverse_z(&mut samples, plane_len, rect.depth, header.z_scales)?;
        if header.delta != 0 {
            // i64 keeps a forged bit depth from overflowing the shift before
            // the range validation downstream rejects it.
            let max = ((1i64 << header.bit_depth) - 1).min(i64::from(i32::MAX)) as i32;
            for sample in &mut samples {
                *sample = (*sample).clamp(0, max);
            }
        }
        Ok(samples)
    }
}

/// Scatters a plane-major brick buffer into the slice-major volume buffer.
fn scatter_brick(volume: &mut [i32], width: usize, height: usize, rect: BrickRect, brick: &[i32]) {
    let plane_len = rect.plane.pixel_count();
    for z in 0..rect.depth {
        for y in 0..rect.plane.height {
            let src = z * plane_len + y * rect.plane.width;
            let dst = ((rect.z + z) * height + rect.plane.y + y) * width + rect.plane.x;
            volume[dst..dst + rect.plane.width]
                .copy_from_slice(&brick[src..src + rect.plane.width]);
        }
    }
}

/// Scatters the intersection of a decoded brick (plane-major `samples`, from
/// [`VolumeCompressor::decode_brick_samples`]) with a requested region into
/// the region's slice-major buffer (both boxes in volume coordinates;
/// disjoint boxes are a no-op).
pub fn scatter_region(region: &mut [i32], want: BrickRect, brick: BrickRect, samples: &[i32]) {
    let x0 = want.plane.x.max(brick.plane.x);
    let x1 = want.plane.right().min(brick.plane.right());
    let y0 = want.plane.y.max(brick.plane.y);
    let y1 = want.plane.bottom().min(brick.plane.bottom());
    let z0 = want.z.max(brick.z);
    let z1 = want.back().min(brick.back());
    if x0 >= x1 || y0 >= y1 || z0 >= z1 {
        return;
    }
    let plane_len = brick.plane.pixel_count();
    for z in z0..z1 {
        for y in y0..y1 {
            let src = (z - brick.z) * plane_len
                + (y - brick.plane.y) * brick.plane.width
                + (x0 - brick.plane.x);
            let dst = ((z - want.z) * want.plane.height + (y - want.plane.y)) * want.plane.width
                + (x0 - want.plane.x);
            region[dst..dst + (x1 - x0)].copy_from_slice(&samples[src..src + (x1 - x0)]);
        }
    }
}

/// One brick-layer slab of a streamed volumetric decode; see
/// [`VolumeCompressor::decompress_slabs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolumeSlab {
    /// First slice of the volume this slab covers.
    pub z: usize,
    /// The decoded slab (full width x height, one brick layer of slices).
    pub stack: ImageStack,
}

/// Iterator over the slabs of a compressed volume, yielded front to back.
pub struct VolumeSlabs<'a> {
    engine: VolumeCompressor,
    stream: VolumeStream<'a>,
    grid: BrickGrid,
    next_layer: usize,
}

impl Iterator for VolumeSlabs<'_> {
    type Item = Result<VolumeSlab, PipelineError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_layer >= self.grid.bricks_z() {
            return None;
        }
        let bz = self.next_layer;
        self.next_layer += 1;
        let header = *self.stream.header();
        let per_layer = self.grid.plane().tile_count();
        let (z, slab_depth) = self.grid.z_extent(bz);
        let result = (|| {
            let bricks =
                self.engine.decode_bricks(&self.stream, &self.grid, bz * per_layer, per_layer)?;
            let mut slab = vec![0i32; header.width * header.height * slab_depth];
            for (offset, brick) in bricks.iter().enumerate() {
                let mut rect = self.grid.rect(bz * per_layer + offset);
                rect.z = 0; // slab-local coordinates
                scatter_brick(&mut slab, header.width, header.height, rect, brick);
            }
            let stack = ImageStack::from_samples(
                header.width,
                header.height,
                slab_depth,
                header.bit_depth,
                slab,
            )
            .map_err(CoderError::from)?;
            Ok(VolumeSlab { z, stack })
        })();
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_coder::is_volume;
    use lwc_image::{synth, TileRect};

    #[test]
    fn multi_brick_roundtrip_is_lossless() {
        let engine = VolumeCompressor::new(3, 2, 32, 4, 3).unwrap();
        for volume in [
            synth::ct_volume(70, 50, 11, 12, 1), // ragged everywhere
            synth::ct_volume(64, 64, 8, 12, 2),  // exact grid
            synth::ct_volume(33, 97, 3, 8, 3),   // odd dims, shallow stack
        ] {
            let bytes = engine.compress_stack(&volume).unwrap();
            assert!(is_volume(&bytes));
            let back = engine.decompress_stack(&bytes).unwrap();
            assert_eq!(volume, back);
        }
    }

    #[test]
    fn per_brick_encode_plus_assembly_matches_compress() {
        let engine = VolumeCompressor::new(3, 1, 32, 4, 2).unwrap();
        let volume = synth::ct_volume(70, 50, 7, 12, 4);
        let reference = engine.compress_stack(&volume).unwrap();
        let grid = engine.grid(70, 50, 7).unwrap();
        let payloads: Vec<Vec<u8>> = (0..grid.brick_count())
            .map(|i| engine.encode_brick(&volume, &grid, i).unwrap())
            .collect();
        let assembled = engine.assemble_container(&grid, volume.bit_depth(), &payloads).unwrap();
        assert_eq!(assembled, reference);
    }

    #[test]
    fn streams_do_not_depend_on_the_worker_count() {
        let volume = synth::ct_volume(70, 50, 9, 12, 5);
        let reference =
            VolumeCompressor::new(3, 2, 32, 4, 1).unwrap().compress_stack(&volume).unwrap();
        for workers in [2, 3, 8] {
            let engine = VolumeCompressor::new(3, 2, 32, 4, workers).unwrap();
            assert_eq!(engine.compress_stack(&volume).unwrap(), reference, "{workers} workers");
        }
    }

    #[test]
    fn zero_z_scales_plane_substreams_match_the_2d_codec() {
        // With z_scales = 0 the z transform is the identity, so every plane
        // substream must be byte-identical to the 2-D codec's stream for the
        // same tile of the same slice — the property pinning the volumetric
        // datapath to the tiled one.
        let engine = VolumeCompressor::new(3, 0, 32, 4, 2).unwrap();
        let volume = synth::ct_volume(70, 50, 6, 12, 6);
        let grid = engine.grid(70, 50, 6).unwrap();
        for index in [0usize, 3, grid.brick_count() - 1] {
            let rect = grid.rect(index);
            let payload = engine.encode_brick(&volume, &grid, index).unwrap();
            let planes = split_brick_payload(&payload, rect.depth).unwrap();
            for (z, plane) in planes.iter().enumerate() {
                let slice = volume.slice(rect.z + z).unwrap();
                let tile = slice.subview(rect.plane).unwrap();
                let reference = engine.codec().compress_view(&tile).unwrap();
                assert_eq!(plane, &reference.as_slice(), "brick {index} plane {z}");
            }
        }
    }

    #[test]
    fn slab_streaming_decode_reassembles_the_volume() {
        let engine = VolumeCompressor::new(3, 2, 32, 4, 2).unwrap();
        let volume = synth::ct_volume(70, 50, 11, 12, 7);
        let bytes = engine.compress_stack(&volume).unwrap();
        let mut next_z = 0;
        let mut slabs = 0;
        for slab in engine.decompress_slabs(&bytes).unwrap() {
            let slab = slab.unwrap();
            assert_eq!(slab.z, next_z, "slabs arrive front to back");
            for z in 0..slab.stack.depth() {
                assert_eq!(
                    slab.stack.slice_image(z).unwrap(),
                    volume.slice_image(next_z + z).unwrap(),
                    "slice {}",
                    next_z + z
                );
            }
            next_z += slab.stack.depth();
            slabs += 1;
        }
        assert_eq!(slabs, 11usize.div_ceil(4));
        assert_eq!(next_z, 11);
    }

    #[test]
    fn regions_decode_only_their_covering_bricks() {
        let engine = VolumeCompressor::new(3, 1, 32, 4, 2).unwrap();
        let volume = synth::ct_volume(70, 50, 9, 12, 8);
        let bytes = engine.compress_stack(&volume).unwrap();
        for rect in [
            BrickRect { plane: TileRect { x: 10, y: 12, width: 30, height: 20 }, z: 2, depth: 5 },
            BrickRect { plane: TileRect { x: 0, y: 0, width: 70, height: 50 }, z: 0, depth: 9 },
            BrickRect { plane: TileRect { x: 69, y: 49, width: 1, height: 1 }, z: 8, depth: 1 },
        ] {
            let region = engine.decompress_region(&bytes, rect).unwrap();
            for z in 0..rect.depth {
                for y in 0..rect.plane.height {
                    for x in 0..rect.plane.width {
                        assert_eq!(
                            region.get(x, y, z),
                            volume.get(rect.plane.x + x, rect.plane.y + y, rect.z + z)
                        );
                    }
                }
            }
        }
        // Out-of-bounds regions are typed errors.
        let bad =
            BrickRect { plane: TileRect { x: 60, y: 0, width: 20, height: 8 }, z: 0, depth: 1 };
        assert!(engine.decompress_region(&bytes, bad).is_err());
        let empty =
            BrickRect { plane: TileRect { x: 0, y: 0, width: 0, height: 1 }, z: 0, depth: 1 };
        assert!(engine.decompress_region(&bytes, empty).is_err());
    }

    #[test]
    fn near_lossless_roundtrips_stay_within_the_volume_bound() {
        let volume = synth::ct_volume(70, 50, 9, 12, 14);
        for z_scales in [0u32, 1, 2] {
            for delta in [1u8, 2, 4, 8] {
                let codec = LosslessCodec::near_lossless(3, delta).unwrap();
                let engine = VolumeCompressor::with_codec(codec, z_scales, 32, 32, 4, 2).unwrap();
                let bytes = engine.compress_stack(&volume).unwrap();
                let back = engine.decompress_stack(&bytes).unwrap();
                let mut worst = 0i64;
                for (a, b) in volume.samples().iter().zip(back.samples()) {
                    worst = worst.max((i64::from(*a) - i64::from(*b)).abs());
                }
                assert!(
                    worst <= i64::from(delta),
                    "z_scales {z_scales} delta {delta}: max error {worst}"
                );
            }
        }
    }

    #[test]
    fn zero_delta_engines_are_byte_identical_to_lossless_ones() {
        let volume = synth::ct_volume(48, 40, 6, 12, 15);
        let lossless = VolumeCompressor::new(3, 1, 32, 4, 2).unwrap();
        let near = VolumeCompressor::with_codec(
            LosslessCodec::near_lossless(3, 0).unwrap(),
            1,
            32,
            32,
            4,
            2,
        )
        .unwrap();
        assert_eq!(
            lossless.compress_stack(&volume).unwrap(),
            near.compress_stack(&volume).unwrap()
        );
    }

    #[test]
    fn planes_with_mismatched_quantizer_deltas_are_rejected() {
        // Lossless brick payloads behind a header that claims a volume bound
        // implying a nonzero per-plane delta: the cross-check must refuse the
        // forgery before trusting any plane. z_scales = 0 keeps the implied
        // per-plane delta equal to the volume bound.
        let engine = VolumeCompressor::new(3, 0, 32, 4, 2).unwrap();
        let volume = synth::ct_volume(48, 40, 5, 12, 16);
        let grid = engine.grid(48, 40, 5).unwrap();
        let payloads: Vec<Vec<u8>> = (0..grid.brick_count())
            .map(|i| engine.encode_brick(&volume, &grid, i).unwrap())
            .collect();
        let header = VolumeHeader {
            width: 48,
            height: 40,
            depth: 5,
            bit_depth: 12,
            scales: 3,
            z_scales: 0,
            tile_width: grid.plane().tile_width(),
            tile_height: grid.plane().tile_height(),
            brick_depth: grid.brick_depth(),
            delta: 2,
        };
        let forged = write_volume_container(&header, &payloads).unwrap();
        match engine.decompress_stack(&forged) {
            Err(PipelineError::Coder(CoderError::MalformedStream(msg))) => {
                assert!(msg.contains("quantizer delta"), "{msg}");
            }
            other => panic!("expected MalformedStream, got {other:?}"),
        }
    }

    #[test]
    fn three_d_beats_per_slice_2d_on_correlated_stacks() {
        // The reason this subsystem exists: inter-slice redundancy that
        // per-slice coding cannot touch.
        let volume = synth::ct_volume(64, 64, 16, 12, 9);
        let flat = VolumeCompressor::new(4, 0, 64, 8, 2).unwrap();
        let deep = VolumeCompressor::new(4, 3, 64, 8, 2).unwrap();
        let flat_bytes = flat.compress_stack(&volume).unwrap().len();
        let deep_bytes = deep.compress_stack(&volume).unwrap().len();
        assert!(
            deep_bytes < flat_bytes,
            "3-D coding must beat per-slice 2-D on a correlated stack: {deep_bytes} vs {flat_bytes}"
        );
    }

    #[test]
    fn corrupt_containers_are_rejected() {
        let engine = VolumeCompressor::new(3, 1, 32, 4, 2).unwrap();
        let volume = synth::ct_volume(48, 40, 5, 12, 3);
        let bytes = engine.compress_stack(&volume).unwrap();
        for len in [2, 31, 32, bytes.len() / 2, bytes.len() - 1] {
            assert!(engine.decompress_stack(&bytes[..len]).is_err(), "prefix of {len} bytes");
        }
        // Corrupting the first plane substream's magic inside brick 0's
        // payload must fail that brick's decode. (The payload starts with a
        // u32 length per plane; the substream header follows the table.)
        let stream = VolumeStream::parse(&bytes).unwrap();
        let brick0 = stream.brick_bytes(0);
        let grid = engine.grid(48, 40, 5).unwrap();
        let table_bytes = 4 * grid.rect(0).depth;
        let offset = brick0.as_ptr() as usize - bytes.as_ptr() as usize + table_bytes;
        let mut flipped = bytes.clone();
        flipped[offset] ^= 0x40;
        assert!(engine.decompress_stack(&flipped).is_err());
        // Mismatched 2-D codec depth.
        let other = VolumeCompressor::new(4, 1, 32, 4, 2).unwrap();
        assert!(other.decompress_stack(&bytes).is_err());
        // A different z_scales configuration still decodes: the container
        // header, not the engine, carries the z decomposition.
        let other_z = VolumeCompressor::new(3, 3, 32, 4, 2).unwrap();
        assert_eq!(other_z.decompress_stack(&bytes).unwrap(), volume);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(VolumeCompressor::new(0, 1, 32, 4, 1).is_err());
        assert!(VolumeCompressor::new(3, 16, 32, 4, 1).is_err());
        assert!(VolumeCompressor::new(3, 1, 0, 4, 1).is_err());
        assert!(VolumeCompressor::new(3, 1, 32, 0, 1).is_err());
        let codec = LosslessCodec::new(3).unwrap();
        assert!(VolumeCompressor::with_codec(codec, 1, 1 << 20, 32, 4, 1).is_err());
    }

    #[test]
    fn zero_workers_selects_available_parallelism_and_report_counts_bricks() {
        let engine = VolumeCompressor::new(2, 1, 16, 2, 0).unwrap();
        assert!(engine.workers() >= 1);
        let volume = synth::ct_volume(48, 48, 4, 12, 2);
        let (_bytes, report) = engine.compress_stack_with_report(&volume).unwrap();
        assert_eq!(report.tiles, 9 * 2);
        assert!(report.ratio() > 0.0);
    }
}
