//! Inter-image parallelism: the batch Rice-codec engine.

use crate::report::BatchReport;
use crate::stream::{spawn_ordered, OrderedStream};
use crate::{Codec, PipelineError, TiledCompressor, TiledFixedCompressor};
use lwc_coder::LosslessCodec;
use lwc_image::Image;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;
use std::time::Instant;

/// Fans batches of images across worker threads, each running the
/// end-to-end lossless Rice codec.
///
/// The engine never re-orders or re-encodes anything: every image is
/// compressed by the very same [`LosslessCodec`] a sequential caller would
/// use, so each output stream is **byte-identical** to
/// [`LosslessCodec::compress`] and results always come back in input order.
///
/// ```
/// use lwc_image::synth;
/// use lwc_pipeline::BatchCompressor;
///
/// # fn main() -> Result<(), lwc_pipeline::PipelineError> {
/// let engine = BatchCompressor::new(4, 2)?;
/// let batch: Vec<_> = (0..4).map(|s| synth::ct_phantom(64, 64, 12, s)).collect();
/// let (streams, report) = engine.compress_batch(&batch)?;
/// assert_eq!(streams.len(), 4);
/// assert!(report.megabytes_per_second() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchCompressor {
    codec: LosslessCodec,
    workers: usize,
}

impl BatchCompressor {
    /// Creates an engine with the given decomposition depth and worker
    /// count. `workers == 0` selects the machine's available parallelism.
    ///
    /// # Errors
    ///
    /// Returns an error if `scales` is zero.
    pub fn new(scales: u32, workers: usize) -> Result<Self, PipelineError> {
        Ok(Self::with_codec(LosslessCodec::new(scales)?, workers))
    }

    /// Wraps an existing codec. `workers == 0` selects the machine's
    /// available parallelism.
    #[must_use]
    pub fn with_codec(codec: LosslessCodec, workers: usize) -> Self {
        let workers = if workers == 0 {
            thread::available_parallelism().map(usize::from).unwrap_or(1)
        } else {
            workers
        };
        Self { codec, workers }
    }

    /// The codec every worker runs.
    #[must_use]
    pub fn codec(&self) -> &LosslessCodec {
        &self.codec
    }

    /// Number of worker threads used for batches.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The per-subband parallel codec sharing this engine's codec and worker
    /// budget — the low-latency path for a single image, where the batch
    /// fan-out has nothing to parallelize over.
    #[must_use]
    pub fn single_image_codec(&self) -> crate::ParallelCodec {
        crate::ParallelCodec::with_codec(self.codec, self.workers)
    }

    /// The line-based fused engine sharing this engine's codec — the
    /// streaming path that runs the whole multi-scale transform in one pass
    /// over the rows ([`crate::LineCompressor`]) with an `O(width x levels)`
    /// coefficient working set, producing streams byte-identical to the
    /// sequential codec.
    #[must_use]
    pub fn line_based(&self) -> crate::LineCompressor {
        crate::LineCompressor::with_codec(self.codec)
    }

    /// The tile-parallel engine sharing this engine's codec and worker
    /// budget — the scaling path for images too large to transform (or even
    /// address, past the legacy format's 2^20-pixel sides) as one block.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PipelineError::Config`] for an invalid tile shape.
    pub fn tiled(
        &self,
        tile_width: usize,
        tile_height: usize,
    ) -> Result<TiledCompressor, PipelineError> {
        TiledCompressor::with_codec(self.codec, tile_width, tile_height, self.workers)
    }

    /// The tile-parallel **fixed-point DWT** driver sharing this engine's
    /// worker budget — the paper-exact datapath's answer to
    /// [`BatchCompressor::tiled`], for workloads that need the raw Table II
    /// coefficient words of a frame too large to transform monolithically.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PipelineError::Config`] for an invalid tile shape.
    pub fn tiled_dwt(
        &self,
        transform: lwc_dwt::FixedDwt2d,
        tile_width: usize,
        tile_height: usize,
    ) -> Result<crate::TiledFixedDwt2d, PipelineError> {
        crate::TiledFixedDwt2d::with_transform(transform, tile_width, tile_height, self.workers)
    }

    /// The complete paper-exact codec sharing this engine's depth and worker
    /// budget: the tile-parallel fixed-point DWT feeding the fixed-word Rice
    /// coder into `LWCF` containers.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid tile shape or an unbuildable
    /// word-length plan.
    pub fn tiled_fixed(
        &self,
        bank: &lwc_filters::FilterBank,
        tile_size: usize,
    ) -> Result<TiledFixedCompressor, PipelineError> {
        TiledFixedCompressor::new(bank, self.codec.scales(), tile_size, self.workers)
    }

    /// Compresses one image with per-subband parallelism (byte-identical to
    /// [`lwc_coder::LosslessCodec::compress`]).
    ///
    /// **Note**: this spelling is superseded by the [`Codec`] trait — it is
    /// now literally `Codec::compress` on
    /// [`BatchCompressor::single_image_codec`], and new call sites should
    /// dispatch through the trait.
    ///
    /// # Errors
    ///
    /// Returns an error if the image cannot be decomposed to the configured
    /// depth.
    pub fn compress_one(&self, image: &Image) -> Result<Vec<u8>, PipelineError> {
        Codec::compress(&self.single_image_codec(), image)
    }

    /// Decompresses one stream with per-subband parallelism.
    ///
    /// **Note**: superseded by [`Codec::decompress`] on
    /// [`BatchCompressor::single_image_codec`], same as
    /// [`BatchCompressor::compress_one`].
    ///
    /// # Errors
    ///
    /// Returns an error for malformed streams or mismatched configuration.
    pub fn decompress_one(&self, bytes: &[u8]) -> Result<Image, PipelineError> {
        Codec::decompress(&self.single_image_codec(), bytes)
    }

    /// Compresses a whole batch, returning the per-image streams (in input
    /// order) and the wall-clock throughput of the run.
    ///
    /// # Errors
    ///
    /// Returns the first per-image codec error, if any.
    pub fn compress_batch(
        &self,
        images: &[Image],
    ) -> Result<(Vec<Vec<u8>>, BatchReport), PipelineError> {
        let raw_bytes: usize =
            images.iter().map(|i| (i.pixel_count() * i.bit_depth() as usize).div_ceil(8)).sum();
        let start = Instant::now();
        let streams = self.run_indexed(images, |image| Ok(self.codec.compress(image)?))?;
        let wall = start.elapsed();
        let compressed_bytes = streams.iter().map(Vec::len).sum();
        let report = BatchReport {
            images: images.len(),
            raw_bytes,
            compressed_bytes,
            workers: self.workers.min(images.len().max(1)),
            wall,
        };
        Ok((streams, report))
    }

    /// Decompresses a whole batch of streams, returning the images in input
    /// order and the wall-clock throughput (rated against the *decoded* raw
    /// volume).
    ///
    /// # Errors
    ///
    /// Returns the first per-stream codec error, if any.
    pub fn decompress_batch(
        &self,
        streams: &[Vec<u8>],
    ) -> Result<(Vec<Image>, BatchReport), PipelineError> {
        let start = Instant::now();
        let images = self.run_indexed(streams, |bytes| Ok(self.codec.decompress(bytes)?))?;
        let wall = start.elapsed();
        let raw_bytes =
            images.iter().map(|i| (i.pixel_count() * i.bit_depth() as usize).div_ceil(8)).sum();
        let report = BatchReport {
            images: images.len(),
            raw_bytes,
            compressed_bytes: streams.iter().map(Vec::len).sum(),
            workers: self.workers.min(streams.len().max(1)),
            wall,
        };
        Ok((images, report))
    }

    /// Streaming compression: images are pulled from `images` as worker
    /// capacity frees up and compressed streams are yielded in input order.
    /// Peak memory is bounded by the worker count, not the batch length.
    pub fn compress_iter<I>(&self, images: I) -> OrderedStream<Vec<u8>>
    where
        I: IntoIterator<Item = Image>,
        I::IntoIter: Send + 'static,
    {
        let codec = self.codec;
        spawn_ordered(self.workers, images.into_iter(), move |image| Ok(codec.compress(&image)?))
    }

    /// Streaming decompression, the inverse of
    /// [`BatchCompressor::compress_iter`].
    pub fn decompress_iter<I>(&self, streams: I) -> OrderedStream<Image>
    where
        I: IntoIterator<Item = Vec<u8>>,
        I::IntoIter: Send + 'static,
    {
        let codec = self.codec;
        spawn_ordered(self.workers, streams.into_iter(), move |bytes| Ok(codec.decompress(&bytes)?))
    }

    /// Applies `job` to every element of `inputs` on the worker pool and
    /// collects the outputs in input order.
    fn run_indexed<In, Out, Job>(&self, inputs: &[In], job: Job) -> Result<Vec<Out>, PipelineError>
    where
        In: Sync,
        Out: Send,
        Job: Fn(&In) -> Result<Out, PipelineError> + Sync,
    {
        let workers = self.workers.min(inputs.len()).max(1);
        if workers == 1 {
            return inputs.iter().map(job).collect();
        }
        let cursor = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let mut collected: Vec<Vec<(usize, Out)>> = Vec::new();
        let outcome: Result<Vec<Vec<(usize, Out)>>, PipelineError> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            // Once any worker has errored the batch is doomed:
                            // stop pulling work instead of compressing the
                            // whole remainder just to throw it away.
                            if failed.load(Ordering::Relaxed) {
                                return Ok(local);
                            }
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(input) = inputs.get(index) else {
                                return Ok(local);
                            };
                            match job(input) {
                                Ok(output) => local.push((index, output)),
                                Err(error) => {
                                    failed.store(true, Ordering::Relaxed);
                                    return Err(error);
                                }
                            }
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("batch worker panicked")).collect()
        });
        collected.extend(outcome?);

        let mut slots: Vec<Option<Out>> = (0..inputs.len()).map(|_| None).collect();
        for (index, output) in collected.into_iter().flatten() {
            slots[index] = Some(output);
        }
        // Every slot is filled unless a worker errored, and errors returned
        // above. (A worker that observed an error stops early, but then the
        // `?` has already propagated it.)
        slots
            .into_iter()
            .map(|slot| {
                slot.ok_or_else(|| {
                    PipelineError::Config("batch worker abandoned an input slot".into())
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_image::{stats, synth};

    fn batch(n: usize, size: usize) -> Vec<Image> {
        (0..n)
            .map(|s| match s % 3 {
                0 => synth::ct_phantom(size, size, 12, s as u64),
                1 => synth::mr_slice(size, size, 12, s as u64),
                _ => synth::random_image(size, size, 12, s as u64),
            })
            .collect()
    }

    #[test]
    fn batch_streams_match_the_sequential_codec_exactly() {
        let engine = BatchCompressor::new(4, 3).unwrap();
        let images = batch(7, 64);
        let (streams, report) = engine.compress_batch(&images).unwrap();
        assert_eq!(report.images, 7);
        for (image, stream) in images.iter().zip(&streams) {
            assert_eq!(stream, &engine.codec().compress(image).unwrap());
        }
        let (decoded, _) = engine.decompress_batch(&streams).unwrap();
        for (image, back) in images.iter().zip(&decoded) {
            assert!(stats::bit_exact(image, back).unwrap());
        }
    }

    #[test]
    fn streaming_api_preserves_order_and_content() {
        let engine = BatchCompressor::new(3, 2).unwrap();
        let images = batch(9, 32);
        let sequential: Vec<Vec<u8>> =
            images.iter().map(|i| engine.codec().compress(i).unwrap()).collect();
        let streamed: Vec<Vec<u8>> =
            engine.compress_iter(images.clone()).map(|r| r.unwrap()).collect();
        assert_eq!(streamed, sequential);

        let roundtripped: Vec<Image> =
            engine.decompress_iter(streamed).map(|r| r.unwrap()).collect();
        for (image, back) in images.iter().zip(&roundtripped) {
            assert!(stats::bit_exact(image, back).unwrap());
        }
    }

    #[test]
    fn zero_workers_selects_available_parallelism() {
        let engine = BatchCompressor::new(2, 0).unwrap();
        assert!(engine.workers() >= 1);
    }

    #[test]
    fn errors_propagate_from_workers() {
        let engine = BatchCompressor::new(5, 2).unwrap();
        // A corrupt stream in the middle of an otherwise fine batch must
        // surface as an error, not as a wrong image.
        let images = batch(4, 64);
        let (mut streams, _) = engine.compress_batch(&images).unwrap();
        let half = streams[2].len() / 2;
        streams[2].truncate(half);
        assert!(engine.decompress_batch(&streams).is_err());
    }

    #[test]
    fn small_images_now_decompose_at_any_depth() {
        // The ragged pyramid removed the old even-dimensions restriction:
        // 16x16 over 5 scales is valid and lossless.
        let engine = BatchCompressor::new(5, 2).unwrap();
        let images = vec![synth::flat(16, 16, 12, 1), synth::random_image(15, 9, 12, 2)];
        let (streams, _) = engine.compress_batch(&images).unwrap();
        let (decoded, _) = engine.decompress_batch(&streams).unwrap();
        for (image, back) in images.iter().zip(&decoded) {
            assert!(stats::bit_exact(image, back).unwrap());
        }
    }

    #[test]
    fn tiled_engine_shares_codec_and_workers() {
        let engine = BatchCompressor::new(3, 2).unwrap();
        let tiled = engine.tiled(32, 32).unwrap();
        assert_eq!(tiled.workers(), engine.workers());
        assert_eq!(tiled.codec().scales(), engine.codec().scales());
        let image = synth::ct_phantom(80, 80, 12, 11);
        let bytes = tiled.compress(&image).unwrap();
        assert!(stats::bit_exact(&image, &tiled.decompress(&bytes).unwrap()).unwrap());
        assert!(engine.tiled(0, 4).is_err());
    }

    #[test]
    fn tiled_fixed_engine_shares_depth_and_workers() {
        let engine = BatchCompressor::new(3, 2).unwrap();
        let bank = lwc_filters::FilterBank::table1(lwc_filters::FilterId::F1);
        let fixed = engine.tiled_fixed(&bank, 32).unwrap();
        assert_eq!(fixed.workers(), engine.workers());
        assert_eq!(fixed.scales(), engine.codec().scales());
        let image = synth::ct_phantom(64, 64, 12, 13);
        let bytes = fixed.compress(&image).unwrap();
        assert!(stats::bit_exact(&image, &fixed.decompress(&bytes).unwrap()).unwrap());
    }

    #[test]
    fn single_image_path_matches_the_sequential_codec() {
        let engine = BatchCompressor::new(4, 2).unwrap();
        let image = synth::ct_phantom(64, 64, 12, 31);
        let stream = engine.compress_one(&image).unwrap();
        assert_eq!(stream, engine.codec().compress(&image).unwrap());
        let back = engine.decompress_one(&stream).unwrap();
        assert!(stats::bit_exact(&image, &back).unwrap());
        assert_eq!(engine.single_image_codec().workers(), engine.workers());
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = BatchCompressor::new(3, 2).unwrap();
        let (streams, report) = engine.compress_batch(&[]).unwrap();
        assert!(streams.is_empty());
        assert_eq!(report.images, 0);
    }
}
