//! Intra-image parallelism for arbitrarily large images: the tile-sharded
//! compression engine.
//!
//! [`BatchCompressor`](crate::BatchCompressor) fans *images* across workers
//! and [`ParallelCodec`](crate::ParallelCodec) fans the *subbands* of one
//! image; this module fans the **tiles** of one image. Each tile of a
//! [`TileGrid`] is an independent [`LosslessCodec`] stream (transformed with
//! the same boundary extension the whole-image transform uses, just over the
//! tile), wrapped in the versioned [`lwc_coder::tiled`] container with a
//! per-tile byte-offset directory. That buys three things at once:
//!
//! * **scale** — the legacy stream format caps dimensions at 2^20 - 1 and the
//!   monolithic transform keeps the whole frame plus intermediates hot; tiles
//!   bound the working set per worker to one tile regardless of image size,
//! * **intra-image parallelism** — one 16k x 16k plate becomes thousands of
//!   independent encode/decode jobs for the worker pool,
//! * **bounded-memory decode** — [`TiledCompressor::decompress_row_bands`]
//!   walks the directory one tile-row at a time, so a consumer can stream a
//!   huge image top to bottom without ever materializing all of it.

use crate::parcodec::run_indexed;
use crate::report::TiledReport;
use crate::{ParallelCodec, PipelineError};
use lwc_coder::bitio::BitReader;
use lwc_coder::tiled::{is_tiled, write_container, TiledHeader, TiledStream};
use lwc_coder::{CoderError, LosslessCodec, StreamHeader};
use lwc_image::{Image, TileGrid, TileRect};
use std::thread;
use std::time::Instant;

/// Default nominal tile side: big enough to amortize per-tile headers and
/// keep deep decompositions meaningful, small enough that a tile (i32
/// samples plus codec scratch) stays comfortably inside L2.
pub const DEFAULT_TILE_SIZE: usize = 256;

/// Tile-parallel lossless codec for single large images.
///
/// Streams are deterministic for a given tile size — the worker count never
/// changes a byte — and a grid that degenerates to one tile emits the legacy
/// single-image stream unchanged, so `TiledCompressor` with a tile at least
/// as large as the image is **byte-identical** to [`LosslessCodec::compress`].
/// Decoding sniffs the container magic and accepts both formats.
///
/// ```
/// use lwc_image::synth;
/// use lwc_pipeline::TiledCompressor;
///
/// # fn main() -> Result<(), lwc_pipeline::PipelineError> {
/// let engine = TiledCompressor::new(4, 64, 0)?;
/// let image = synth::ct_phantom(200, 150, 12, 1); // ragged 64-pixel grid
/// let bytes = engine.compress(&image)?;
/// let back = engine.decompress(&bytes)?;
/// assert_eq!(image.samples(), back.samples());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TiledCompressor {
    codec: LosslessCodec,
    tile_width: usize,
    tile_height: usize,
    workers: usize,
    line_transform: bool,
}

impl TiledCompressor {
    /// Creates an engine with the given decomposition depth, square tile
    /// side and worker count. `workers == 0` selects the machine's available
    /// parallelism.
    ///
    /// # Errors
    ///
    /// Returns an error if `scales` is zero or the tile size is out of range.
    pub fn new(scales: u32, tile_size: usize, workers: usize) -> Result<Self, PipelineError> {
        Self::with_codec(LosslessCodec::new(scales)?, tile_size, tile_size, workers)
    }

    /// Wraps an existing codec with an explicit (possibly non-square) tile
    /// shape. `workers == 0` selects the machine's available parallelism.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Config`] if a tile dimension is zero or does
    /// not fit the per-tile stream format's 20-bit fields.
    pub fn with_codec(
        codec: LosslessCodec,
        tile_width: usize,
        tile_height: usize,
        workers: usize,
    ) -> Result<Self, PipelineError> {
        if tile_width == 0 || tile_height == 0 {
            return Err(PipelineError::Config("tile dimensions must be nonzero".into()));
        }
        if tile_width >= (1 << 20) || tile_height >= (1 << 20) {
            return Err(PipelineError::Config(format!(
                "tile dimensions {tile_width}x{tile_height} exceed the per-tile stream format's \
                 20-bit fields"
            )));
        }
        let workers = if workers == 0 {
            thread::available_parallelism().map(usize::from).unwrap_or(1)
        } else {
            workers
        };
        Ok(Self { codec, tile_width, tile_height, workers, line_transform: false })
    }

    /// Switches the per-tile forward transform to the line-based fused
    /// engine ([`crate::LineCompressor`]): each tile is compressed in one
    /// streaming pass instead of one pass per scale. Output bytes are
    /// unchanged — the fused transform is bit-identical — so this is purely
    /// a locality/throughput knob.
    #[must_use]
    pub fn with_line_transform(mut self) -> Self {
        self.line_transform = true;
        self
    }

    /// Whether tiles run the line-based fused transform.
    #[must_use]
    pub fn line_transform(&self) -> bool {
        self.line_transform
    }

    /// The per-tile codec.
    #[must_use]
    pub fn codec(&self) -> &LosslessCodec {
        &self.codec
    }

    /// Nominal tile width.
    #[must_use]
    pub fn tile_width(&self) -> usize {
        self.tile_width
    }

    /// Nominal tile height.
    #[must_use]
    pub fn tile_height(&self) -> usize {
        self.tile_height
    }

    /// Worker threads used per image.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The tile grid this engine would use for a `width x height` image.
    ///
    /// # Errors
    ///
    /// Returns an error for zero image dimensions.
    pub fn grid(&self, width: usize, height: usize) -> Result<TileGrid, PipelineError> {
        TileGrid::new(width, height, self.tile_width, self.tile_height)
            .map_err(|e| PipelineError::Config(format!("invalid tile grid: {e}")))
    }

    /// Compresses `image`, fanning the tiles across the worker pool.
    ///
    /// Single-tile grids produce the legacy stream byte-identically; larger
    /// grids produce the tiled container. Either way the bytes depend only on
    /// the image and the tile shape, never on the worker count.
    ///
    /// # Errors
    ///
    /// Returns the first per-tile codec error, if any.
    pub fn compress(&self, image: &Image) -> Result<Vec<u8>, PipelineError> {
        Ok(self.compress_with_report(image)?.0)
    }

    /// Compresses and reports tile-level throughput.
    ///
    /// # Errors
    ///
    /// See [`TiledCompressor::compress`].
    pub fn compress_with_report(
        &self,
        image: &Image,
    ) -> Result<(Vec<u8>, TiledReport), PipelineError> {
        let start = Instant::now();
        let grid = self.grid(image.width(), image.height())?;
        let bytes = if grid.is_single() {
            // Byte-identical legacy fast path: one tile covering the image is
            // exactly the whole-image codec (tile dimensions fit the legacy
            // 20-bit fields by construction). The fused line transform is
            // lossless-only, so near-lossless configurations fall back to the
            // plain codec (which produces the same bytes for delta = 0).
            if self.line_transform && self.codec.delta() == 0 {
                crate::LineCompressor::with_codec(self.codec).compress(image)?
            } else {
                self.codec.compress(image)?
            }
        } else {
            let header = TiledHeader {
                width: image.width(),
                height: image.height(),
                bit_depth: image.bit_depth(),
                scales: self.codec.scales(),
                tile_width: grid.tile_width(),
                tile_height: grid.tile_height(),
                delta: self.codec.delta(),
            };
            let payloads = run_indexed(self.workers, grid.tile_count(), |index| {
                self.encode_tile(image, &grid, index)
            })?;
            write_container(&header, &payloads)?
        };
        let report = TiledReport {
            tiles: grid.tile_count(),
            raw_bytes: (image.pixel_count() * image.bit_depth() as usize).div_ceil(8),
            compressed_bytes: bytes.len(),
            workers: self.workers.min(grid.tile_count()),
            wall: start.elapsed(),
        };
        Ok((bytes, report))
    }

    /// Compresses one tile of `image` (row-major `index` of `grid`) into
    /// its standalone per-tile stream — the unit a scheduler can fan across
    /// workers. Byte-identical to the payload
    /// [`TiledCompressor::compress`] places in the container's `index`
    /// directory slot, by construction: `compress` itself is built on this.
    ///
    /// # Errors
    ///
    /// Returns the tile's codec error; `grid` must describe `image` (an
    /// out-of-bounds rectangle surfaces as a view error).
    pub fn encode_tile(
        &self,
        image: &Image,
        grid: &TileGrid,
        index: usize,
    ) -> Result<Vec<u8>, PipelineError> {
        let view = image.view_rect(grid.rect(index)).map_err(CoderError::from)?;
        if self.line_transform && self.codec.delta() == 0 {
            crate::LineCompressor::with_codec(self.codec).compress_view(&view)
        } else {
            Ok(self.codec.compress_view(&view)?)
        }
    }

    /// Assembles per-tile payloads (row-major `grid` order, one per tile,
    /// as produced by [`TiledCompressor::encode_tile`]) into the `LWCT`
    /// container [`TiledCompressor::compress`] writes for a multi-tile
    /// grid. Callers fanning tiles out themselves finish with this; note
    /// that for a single-tile grid `compress` emits the legacy stream
    /// instead of a container, so fan-out only applies to multi-tile grids.
    ///
    /// # Errors
    ///
    /// Returns a container error if the payload count disagrees with the
    /// grid or an offset overflows the directory format.
    pub fn assemble_container(
        &self,
        grid: &TileGrid,
        bit_depth: u32,
        payloads: &[Vec<u8>],
    ) -> Result<Vec<u8>, PipelineError> {
        let header = TiledHeader {
            width: grid.image_width(),
            height: grid.image_height(),
            bit_depth,
            scales: self.codec.scales(),
            tile_width: grid.tile_width(),
            tile_height: grid.tile_height(),
            delta: self.codec.delta(),
        };
        Ok(write_container(&header, payloads)?)
    }

    /// Reconstructs the image from a tiled container **or** a legacy
    /// single-image stream (the magic is sniffed). Lossless streams
    /// reconstruct pixel-exactly; near-lossless streams reconstruct within
    /// the per-pixel bound `δ` their headers declare (each tile's stream
    /// header is cross-checked against the container's quantizer delta).
    ///
    /// Tiles are decoded in bounded batches (a few per worker) and scattered
    /// into the frame as each batch completes, so peak memory stays at the
    /// output frame plus one batch of tiles — not two copies of the image.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed streams, mismatched configuration, or
    /// tiles that disagree with the container's grid geometry.
    pub fn decompress(&self, bytes: &[u8]) -> Result<Image, PipelineError> {
        if !is_tiled(bytes) {
            // Legacy stream: reuse the per-subband parallel decoder.
            return ParallelCodec::with_codec(self.codec, self.workers).decompress(bytes);
        }
        let stream = TiledStream::parse(bytes)?;
        let header = *stream.header();
        self.ensure_scales(&header)?;
        let grid = stream.grid()?;
        let mut frame = Image::zeros(header.width, header.height, header.bit_depth)
            .map_err(CoderError::from)?;
        // Enough tiles per batch to keep every worker busy, few enough that
        // the decoded-but-not-yet-scattered set stays small.
        let batch = (self.workers * 4).max(4);
        let mut index = 0;
        while index < grid.tile_count() {
            let count = batch.min(grid.tile_count() - index);
            let tiles = self.decode_tiles(&stream, &grid, index, count)?;
            for (offset, tile) in tiles.iter().enumerate() {
                let rect = grid.rect(index + offset);
                frame
                    .view_rect_mut(rect)
                    .and_then(|mut window| window.copy_from_image(tile))
                    .map_err(CoderError::from)?;
            }
            index += count;
        }
        Ok(frame)
    }

    /// Random tile access: decodes exactly one tile (row-major `index`) of a
    /// tiled container without touching any other tile — the directory's
    /// 48-bit byte offsets make this a slice-and-decode, not a scan. A
    /// legacy single-image stream counts as one tile (index 0 yields the
    /// whole image), so callers can treat every stream uniformly.
    ///
    /// This is the code path behind the server's `decompress-tile` op and
    /// the natural seed for region-of-interest decode.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed streams, mismatched configuration, or
    /// an `index` outside the container's tile grid.
    pub fn decompress_tile(&self, bytes: &[u8], index: usize) -> Result<Image, PipelineError> {
        if !is_tiled(bytes) {
            if index != 0 {
                return Err(CoderError::MalformedStream(format!(
                    "tile index {index} out of range: a legacy stream is a single tile"
                ))
                .into());
            }
            return ParallelCodec::with_codec(self.codec, self.workers).decompress(bytes);
        }
        self.decompress_parsed_tile(&TiledStream::parse(bytes)?, index)
    }

    /// [`TiledCompressor::decompress_tile`] over an already-parsed container
    /// — the path for callers that hold a [`TiledStream`] (e.g. a server
    /// that parsed it once to learn the tile count) and must not pay for a
    /// second directory parse per tile.
    ///
    /// # Errors
    ///
    /// See [`TiledCompressor::decompress_tile`].
    pub fn decompress_parsed_tile(
        &self,
        stream: &TiledStream<'_>,
        index: usize,
    ) -> Result<Image, PipelineError> {
        self.ensure_scales(stream.header())?;
        let grid = stream.grid()?;
        if index >= grid.tile_count() {
            return Err(CoderError::MalformedStream(format!(
                "tile index {index} out of range: the container has {} tiles",
                grid.tile_count()
            ))
            .into());
        }
        let mut tiles = self.decode_tiles(stream, &grid, index, 1)?;
        Ok(tiles.pop().expect("decode_tiles returns exactly one tile"))
    }

    /// Random tile access by coordinate: decodes the tile containing pixel
    /// `(x, y)`, returning the tile's rectangle in image coordinates along
    /// with its pixels (via [`TileGrid::tile_index_at`]). For a legacy
    /// stream the whole image is the one tile.
    ///
    /// # Errors
    ///
    /// See [`TiledCompressor::decompress_tile`]; additionally errors if
    /// `(x, y)` lies outside the image.
    pub fn decompress_tile_at(
        &self,
        bytes: &[u8],
        x: usize,
        y: usize,
    ) -> Result<(TileRect, Image), PipelineError> {
        let locate = |grid: &TileGrid| {
            grid.tile_index_at(x, y).ok_or_else(|| {
                CoderError::MalformedStream(format!(
                    "pixel ({x}, {y}) lies outside the {}x{} image",
                    grid.image_width(),
                    grid.image_height()
                ))
            })
        };
        if is_tiled(bytes) {
            let stream = TiledStream::parse(bytes)?;
            let grid = stream.grid()?;
            let index = locate(&grid)?;
            Ok((grid.rect(index), self.decompress_parsed_tile(&stream, index)?))
        } else {
            let header = StreamHeader::read(&mut BitReader::new(bytes))?;
            let grid = TileGrid::single(header.width, header.height).map_err(CoderError::from)?;
            let index = locate(&grid)?;
            Ok((grid.rect(index), self.decompress_tile(bytes, index)?))
        }
    }

    /// Streaming decode: yields the image one tile-row **band** at a time
    /// (top to bottom), decoding each band's tiles on the worker pool. Peak
    /// memory is bounded by one band — the decoded tiles of one tile-row
    /// plus the `image_width x tile_height` band image they assemble into —
    /// plus the compressed bytes, regardless of the image height. Legacy
    /// streams yield a single band covering the whole image.
    ///
    /// # Errors
    ///
    /// Returns an error if the container header or directory is malformed;
    /// per-band decode errors surface through the iterator's items.
    pub fn decompress_row_bands<'a>(&self, bytes: &'a [u8]) -> Result<RowBands<'a>, PipelineError> {
        if !is_tiled(bytes) {
            return Ok(RowBands { engine: *self, source: RowBandSource::Legacy(Some(bytes)) });
        }
        let stream = TiledStream::parse(bytes)?;
        self.ensure_scales(stream.header())?;
        let grid = stream.grid()?;
        Ok(RowBands { engine: *self, source: RowBandSource::Tiled { stream, grid, next_row: 0 } })
    }

    fn ensure_scales(&self, header: &TiledHeader) -> Result<(), PipelineError> {
        if header.scales != self.codec.scales() {
            return Err(CoderError::UnsupportedFormat(format!(
                "tiled stream uses {} scales but the codec is configured for {}",
                header.scales,
                self.codec.scales()
            ))
            .into());
        }
        Ok(())
    }

    /// Decodes tiles `first..first + count` (row-major) on the worker pool,
    /// validating each decoded tile against its grid rectangle.
    fn decode_tiles(
        &self,
        stream: &TiledStream<'_>,
        grid: &TileGrid,
        first: usize,
        count: usize,
    ) -> Result<Vec<Image>, PipelineError> {
        let header = *stream.header();
        let codec = self.codec;
        run_indexed(self.workers, count, |offset| {
            let index = first + offset;
            let rect = grid.rect(index);
            let tile_bytes = stream.tile_bytes(index);
            let tile_header = StreamHeader::read(&mut BitReader::new(tile_bytes))?;
            if tile_header.delta != header.delta {
                return Err(CoderError::MalformedStream(format!(
                    "tile {index} carries quantizer delta {} but the container header says {}",
                    tile_header.delta, header.delta
                )));
            }
            let tile = codec.decompress(tile_bytes)?;
            if tile.width() != rect.width || tile.height() != rect.height {
                return Err(CoderError::MalformedStream(format!(
                    "tile {index} decodes to {}x{} but the grid places a {}x{} tile there",
                    tile.width(),
                    tile.height(),
                    rect.width,
                    rect.height
                )));
            }
            if tile.bit_depth() != header.bit_depth {
                return Err(CoderError::MalformedStream(format!(
                    "tile {index} carries {}-bit pixels but the container header says {}-bit",
                    tile.bit_depth(),
                    header.bit_depth
                )));
            }
            Ok(tile)
        })
    }
}

/// One horizontal band of a streamed tiled decode; see
/// [`TiledCompressor::decompress_row_bands`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowBand {
    /// Row of the full image where this band starts.
    pub y: usize,
    /// The decoded band (full image width, one tile-row tall).
    pub image: Image,
}

enum RowBandSource<'a> {
    /// A legacy stream decodes as one full-image band (taken on first `next`).
    Legacy(Option<&'a [u8]>),
    Tiled {
        stream: TiledStream<'a>,
        grid: TileGrid,
        next_row: usize,
    },
}

/// Iterator over the row bands of a compressed stream, yielded top to bottom.
pub struct RowBands<'a> {
    engine: TiledCompressor,
    source: RowBandSource<'a>,
}

impl RowBands<'_> {
    fn next_tiled_band(&mut self) -> Option<Result<RowBand, PipelineError>> {
        let RowBandSource::Tiled { stream, grid, next_row } = &mut self.source else {
            unreachable!("only called for tiled sources");
        };
        if *next_row >= grid.tiles_y() {
            return None;
        }
        let ty = *next_row;
        *next_row += 1;
        let tiles_x = grid.tiles_x();
        let band_rect = grid.rect_at(0, ty);
        let result = (|| {
            let tiles = self.engine.decode_tiles(stream, grid, ty * tiles_x, tiles_x)?;
            let mut band =
                Image::zeros(grid.image_width(), band_rect.height, stream.header().bit_depth)
                    .map_err(CoderError::from)?;
            for (tx, tile) in tiles.iter().enumerate() {
                let mut rect = grid.rect_at(tx, ty);
                rect.y = 0; // band-local coordinates
                band.view_rect_mut(rect)
                    .and_then(|mut window| window.copy_from_image(tile))
                    .map_err(CoderError::from)?;
            }
            Ok(RowBand { y: band_rect.y, image: band })
        })();
        Some(result)
    }
}

impl Iterator for RowBands<'_> {
    type Item = Result<RowBand, PipelineError>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.source {
            RowBandSource::Legacy(bytes) => {
                let bytes = bytes.take()?;
                Some(self.engine.decompress(bytes).map(|image| RowBand { y: 0, image }))
            }
            RowBandSource::Tiled { .. } => self.next_tiled_band(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_coder::tiled::TILED_HEADER_BYTES;
    use lwc_image::{stats, synth};

    #[test]
    fn multi_tile_roundtrip_is_lossless() {
        let engine = TiledCompressor::new(3, 32, 3).unwrap();
        for image in [
            synth::ct_phantom(100, 60, 12, 1),  // ragged both edges
            synth::random_image(64, 64, 12, 2), // exact grid
            synth::mr_slice(33, 97, 12, 3),     // ragged, odd dims
        ] {
            let bytes = engine.compress(&image).unwrap();
            let back = engine.decompress(&bytes).unwrap();
            assert!(stats::bit_exact(&image, &back).unwrap());
        }
    }

    #[test]
    fn line_transform_produces_identical_containers() {
        // The fused transform is bit-identical, so the opt-in must not change
        // a single byte — multi-tile container or single-tile legacy stream.
        let engine = TiledCompressor::new(3, 32, 3).unwrap();
        let fused = engine.with_line_transform();
        assert!(fused.line_transform() && !engine.line_transform());
        for image in [
            synth::ct_phantom(100, 60, 12, 21), // multi-tile, ragged edges
            synth::mr_slice(24, 24, 12, 22),    // single-tile legacy path
        ] {
            assert_eq!(engine.compress(&image).unwrap(), fused.compress(&image).unwrap());
        }
    }

    #[test]
    fn per_tile_encode_plus_assembly_matches_compress() {
        // The scheduler's fan-out path must reproduce `compress` exactly —
        // tile payloads encoded one by one, container assembled at the end.
        for engine in
            [TiledCompressor::new(3, 32, 2).unwrap(), TiledCompressor::new(3, 32, 1).unwrap()]
        {
            let image = synth::ct_phantom(100, 60, 12, 6);
            let reference = engine.compress(&image).unwrap();
            let grid = engine.grid(100, 60).unwrap();
            let payloads: Vec<Vec<u8>> = (0..grid.tile_count())
                .map(|i| engine.encode_tile(&image, &grid, i).unwrap())
                .collect();
            let assembled = engine.assemble_container(&grid, image.bit_depth(), &payloads).unwrap();
            assert_eq!(assembled, reference);
        }
    }

    #[test]
    fn single_tile_grid_is_byte_identical_to_the_legacy_codec() {
        let engine = TiledCompressor::new(4, 256, 2).unwrap();
        let image = synth::ct_phantom(96, 64, 12, 7);
        let tiled = engine.compress(&image).unwrap();
        let legacy = engine.codec().compress(&image).unwrap();
        assert_eq!(tiled, legacy);
        assert!(!is_tiled(&tiled));
        // And the engine decodes plain legacy streams.
        let back = engine.decompress(&legacy).unwrap();
        assert!(stats::bit_exact(&image, &back).unwrap());
    }

    #[test]
    fn streams_do_not_depend_on_the_worker_count() {
        let image = synth::ct_phantom(150, 110, 12, 5);
        let reference = TiledCompressor::new(3, 48, 1).unwrap().compress(&image).unwrap();
        for workers in [2, 3, 8] {
            let engine = TiledCompressor::new(3, 48, workers).unwrap();
            assert_eq!(engine.compress(&image).unwrap(), reference, "{workers} workers");
        }
    }

    #[test]
    fn row_band_streaming_decode_reassembles_the_image() {
        let engine = TiledCompressor::new(3, 32, 2).unwrap();
        let image = synth::mr_slice(100, 83, 12, 9);
        let bytes = engine.compress(&image).unwrap();
        let mut rebuilt = Image::zeros(100, 83, 12).unwrap();
        let mut bands = 0;
        let mut next_y = 0;
        for band in engine.decompress_row_bands(&bytes).unwrap() {
            let band = band.unwrap();
            assert_eq!(band.y, next_y, "bands arrive top to bottom");
            assert_eq!(band.image.width(), 100);
            next_y += band.image.height();
            let rect = lwc_image::TileRect {
                x: 0,
                y: band.y,
                width: band.image.width(),
                height: band.image.height(),
            };
            rebuilt.view_rect_mut(rect).unwrap().copy_from_image(&band.image).unwrap();
            bands += 1;
        }
        assert_eq!(bands, 83usize.div_ceil(32));
        assert_eq!(next_y, 83);
        assert!(stats::bit_exact(&image, &rebuilt).unwrap());
    }

    #[test]
    fn legacy_streams_stream_as_one_band() {
        let engine = TiledCompressor::new(3, 256, 2).unwrap();
        let image = synth::ct_phantom(64, 64, 12, 0);
        let bytes = engine.codec().compress(&image).unwrap();
        let bands: Vec<RowBand> =
            engine.decompress_row_bands(&bytes).unwrap().map(|b| b.unwrap()).collect();
        assert_eq!(bands.len(), 1);
        assert_eq!(bands[0].y, 0);
        assert!(stats::bit_exact(&image, &bands[0].image).unwrap());
    }

    #[test]
    fn single_tiles_decode_independently_and_match_their_crops() {
        let engine = TiledCompressor::new(3, 32, 2).unwrap();
        let image = synth::ct_phantom(100, 60, 12, 6);
        let bytes = engine.compress(&image).unwrap();
        let grid = engine.grid(100, 60).unwrap();
        for index in 0..grid.tile_count() {
            let tile = engine.decompress_tile(&bytes, index).unwrap();
            let expected = image.crop(grid.rect(index)).unwrap();
            assert!(stats::bit_exact(&expected, &tile).unwrap(), "tile {index}");
        }
        // Out-of-range indices are typed errors, not panics.
        assert!(engine.decompress_tile(&bytes, grid.tile_count()).is_err());
        // By-coordinate lookup agrees with the row-major index.
        let (rect, tile) = engine.decompress_tile_at(&bytes, 99, 59).unwrap();
        assert_eq!(rect, grid.rect(grid.tile_count() - 1));
        assert!(stats::bit_exact(&image.crop(rect).unwrap(), &tile).unwrap());
        assert!(engine.decompress_tile_at(&bytes, 100, 0).is_err(), "x out of bounds");
    }

    #[test]
    fn legacy_streams_are_a_single_tile() {
        let engine = TiledCompressor::new(3, 256, 2).unwrap();
        let image = synth::mr_slice(64, 48, 12, 8);
        let legacy = engine.codec().compress(&image).unwrap();
        let tile = engine.decompress_tile(&legacy, 0).unwrap();
        assert!(stats::bit_exact(&image, &tile).unwrap());
        assert!(engine.decompress_tile(&legacy, 1).is_err());
        let (rect, whole) = engine.decompress_tile_at(&legacy, 63, 47).unwrap();
        assert_eq!((rect.width, rect.height), (64, 48));
        assert!(stats::bit_exact(&image, &whole).unwrap());
    }

    #[test]
    fn sniffing_short_buffers_returns_typed_errors() {
        // Regression: every 0..8-byte prefix of both container formats (and
        // raw garbage) must surface as Err from the magic-sniffing entry
        // points, never a panic or slice failure.
        let engine = TiledCompressor::new(3, 32, 2).unwrap();
        let image = synth::ct_phantom(70, 50, 12, 2);
        let tiled = engine.compress(&image).unwrap();
        let legacy = engine.codec().compress(&image).unwrap();
        for stream in [&tiled, &legacy, &vec![0xA5u8; 8]] {
            for len in 0..=8.min(stream.len()) {
                let prefix = &stream[..len];
                assert!(engine.decompress(prefix).is_err(), "decompress, prefix {len}");
                assert!(engine.decompress_tile(prefix, 0).is_err(), "tile, prefix {len}");
                assert!(engine.decompress_tile_at(prefix, 0, 0).is_err(), "at, prefix {len}");
                // The row-band iterator may defer the failure to the first
                // item (legacy sniff) — either way it must be an Err.
                match engine.decompress_row_bands(prefix) {
                    Err(_) => {}
                    Ok(mut bands) => {
                        assert!(matches!(bands.next(), Some(Err(_))), "bands, prefix {len}");
                    }
                }
            }
        }
    }

    #[test]
    fn corrupt_containers_are_rejected() {
        let engine = TiledCompressor::new(3, 32, 2).unwrap();
        let image = synth::ct_phantom(100, 60, 12, 4);
        let bytes = engine.compress(&image).unwrap();
        // Truncations at every structural boundary.
        for len in [2, TILED_HEADER_BYTES, bytes.len() / 2, bytes.len() - 1] {
            assert!(engine.decompress(&bytes[..len]).is_err(), "prefix of {len} bytes");
        }
        // A flipped payload byte corrupts exactly one tile.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(engine.decompress(&flipped).is_err());
        // Mismatched codec depth.
        let other = TiledCompressor::new(4, 32, 2).unwrap();
        assert!(other.decompress(&bytes).is_err());
    }

    #[test]
    fn near_lossless_roundtrips_stay_within_the_bound() {
        let image = synth::ct_phantom(100, 60, 12, 11);
        for delta in [1u8, 2, 4, 8] {
            let codec = LosslessCodec::near_lossless(3, delta).unwrap();
            let engine = TiledCompressor::with_codec(codec, 32, 32, 2).unwrap();
            let bytes = engine.compress(&image).unwrap();
            assert!(is_tiled(&bytes));
            assert!(engine.decompress_row_bands(&bytes).is_ok());
            let back = engine.decompress(&bytes).unwrap();
            let err = stats::max_abs_diff(&image, &back).unwrap();
            assert!(err <= i32::from(delta), "delta {delta}: max error {err}");
            // Tile access and band streaming honor the bound too.
            let tile = engine.decompress_tile(&bytes, 0).unwrap();
            let rect = engine.grid(100, 60).unwrap().rect(0);
            let crop = image.crop(rect).unwrap();
            assert!(stats::max_abs_diff(&crop, &tile).unwrap() <= i32::from(delta));
        }
    }

    #[test]
    fn zero_delta_engines_are_byte_identical_to_lossless_ones() {
        let image = synth::mr_slice(100, 60, 12, 12);
        let lossless = TiledCompressor::new(3, 32, 2).unwrap();
        let near =
            TiledCompressor::with_codec(LosslessCodec::near_lossless(3, 0).unwrap(), 32, 32, 2)
                .unwrap();
        assert_eq!(lossless.compress(&image).unwrap(), near.compress(&image).unwrap());
    }

    #[test]
    fn tiles_with_mismatched_quantizer_deltas_are_rejected() {
        // A container whose header claims delta = 2 but whose tiles were
        // coded losslessly is a forgery: the per-tile cross-check must catch
        // it before any tile is trusted.
        let engine = TiledCompressor::new(3, 32, 2).unwrap();
        let image = synth::ct_phantom(100, 60, 12, 13);
        let grid = engine.grid(100, 60).unwrap();
        let payloads: Vec<Vec<u8>> =
            (0..grid.tile_count()).map(|i| engine.encode_tile(&image, &grid, i).unwrap()).collect();
        let header = TiledHeader {
            width: 100,
            height: 60,
            bit_depth: 12,
            scales: 3,
            tile_width: grid.tile_width(),
            tile_height: grid.tile_height(),
            delta: 2,
        };
        let forged = write_container(&header, &payloads).unwrap();
        match engine.decompress(&forged) {
            Err(PipelineError::Coder(CoderError::MalformedStream(msg))) => {
                assert!(msg.contains("quantizer delta"), "{msg}");
            }
            other => panic!("expected MalformedStream, got {other:?}"),
        }
    }

    #[test]
    fn invalid_tile_shapes_are_rejected() {
        assert!(TiledCompressor::new(3, 0, 1).is_err());
        let codec = LosslessCodec::new(3).unwrap();
        assert!(TiledCompressor::with_codec(codec, 1 << 20, 32, 1).is_err());
        assert!(TiledCompressor::with_codec(codec, 32, 0, 1).is_err());
    }

    #[test]
    fn zero_workers_selects_available_parallelism_and_report_counts_tiles() {
        let engine = TiledCompressor::new(2, 16, 0).unwrap();
        assert!(engine.workers() >= 1);
        let image = synth::ct_phantom(48, 48, 12, 2);
        let (_bytes, report) = engine.compress_with_report(&image).unwrap();
        assert_eq!(report.tiles, 9);
        assert!(report.tiles_per_second() > 0.0);
        assert!(report.ratio() > 0.0);
    }
}
