//! The unified compression-engine interface: the [`Codec`] trait.
//!
//! The workspace has grown four engines — [`LosslessCodec`] (sequential,
//! `LWC1`), [`ParallelCodec`] (per-subband parallel, `LWC1`),
//! [`TiledCompressor`] (tile-parallel lifting, `LWC1`/`LWCT`) and
//! [`TiledFixedCompressor`] (tile-parallel paper-exact fixed point, `LWCF`)
//! — that all answer the same two questions: bytes from an image, an image
//! from bytes. [`Codec`] names that contract once, so call sites (the batch
//! engine, the server's op dispatch, the reproduction binary) hold a
//! `&dyn Codec` and never enumerate engines; the 3-D brick engine
//! ([`VolumeCompressor`], `LWCV`) and the near-lossless mode (`LWCQ`, a
//! quantizer bound threaded through the lifting engines) slotted in exactly
//! that way.
//!
//! The trait is **object safe** and deliberately small: two required
//! methods plus capability reporting. Random tile access and bounded-memory
//! row-band streaming have default implementations that treat the whole
//! image as one tile / one band, which is exactly right for the
//! whole-image engines; the tiled engines override them with their real
//! directory-driven paths. Every implementation routes through the same
//! inherent methods it always had, so trait dispatch is byte-identical to
//! concrete calls — a property the test suite pins down.

use crate::{
    ParallelCodec, PipelineError, RowBand, TiledCompressor, TiledFixedCompressor, VolumeCompressor,
};
use lwc_coder::{CompressionReport, LosslessCodec};
use lwc_image::{Image, ImageStack};

/// What a [`Codec`] implementation can do beyond plain
/// compress/decompress — capability flags a generic caller can branch on
/// instead of downcasting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecCapabilities {
    /// The container formats the engine reads/writes (e.g. `"LWC1/LWCT"`).
    pub containers: &'static str,
    /// `true` if streams may hold more than one independently decodable
    /// tile, making [`Codec::decompress_tile`] genuine random access.
    pub tiled: bool,
    /// `true` if [`Codec::decompress_row_bands`] streams with memory
    /// bounded by one band instead of materializing the frame.
    pub streaming_decode: bool,
    /// `true` if the engine runs the paper-exact fixed-point datapath
    /// (Table I banks at Table II word lengths) rather than the reversible
    /// lifting transform.
    pub fixed_point: bool,
    /// `true` if the engine accepts a near-lossless configuration
    /// ([`LosslessCodec::near_lossless`]): detail-band quantization under a
    /// per-pixel bound `δ`, with `δ = 0` byte-identical to the lossless
    /// streams.
    pub near_lossless: bool,
}

/// A lossless — or bounded-error near-lossless — image compression engine.
///
/// The contract every implementation honors:
///
/// * `decompress(compress(image))` is pixel-exact for every supported image
///   when the engine is configured losslessly; an engine configured with a
///   near-lossless bound `δ` (see [`CodecCapabilities::near_lossless`])
///   reconstructs every pixel within `δ` of the original instead,
/// * streams depend only on the image and the engine's configuration, never
///   on worker counts or scheduling,
/// * malformed input to `decompress*` surfaces as a typed
///   [`PipelineError`], never a panic.
///
/// ```
/// use lwc_image::synth;
/// use lwc_pipeline::{Codec, TiledCompressor};
///
/// # fn main() -> Result<(), lwc_pipeline::PipelineError> {
/// let engine: Box<dyn Codec> = Box::new(TiledCompressor::new(3, 64, 2)?);
/// let image = synth::ct_phantom(128, 96, 12, 1);
/// let bytes = engine.compress(&image)?;
/// assert_eq!(engine.decompress(&bytes)?.samples(), image.samples());
/// # Ok(())
/// # }
/// ```
pub trait Codec: Send + Sync {
    /// Short human-readable engine name (for logs and reports).
    fn name(&self) -> &'static str;

    /// What the engine can do; see [`CodecCapabilities`].
    fn capabilities(&self) -> CodecCapabilities;

    /// Compresses `image` into the engine's container format.
    ///
    /// # Errors
    ///
    /// Returns an error if the image cannot be handled by the engine's
    /// configuration (e.g. undecomposable geometry).
    fn compress(&self, image: &Image) -> Result<Vec<u8>, PipelineError>;

    /// Reconstructs the image — pixel-exact for lossless streams, within the
    /// stream's declared bound `δ` for near-lossless ones.
    ///
    /// # Errors
    ///
    /// Returns a typed error for malformed streams or streams the engine's
    /// configuration cannot read.
    fn decompress(&self, bytes: &[u8]) -> Result<Image, PipelineError>;

    /// Compresses and reports size accounting. The default computes the
    /// report from the stream; engines with richer internal accounting may
    /// override.
    ///
    /// # Errors
    ///
    /// See [`Codec::compress`].
    fn compress_with_report(
        &self,
        image: &Image,
    ) -> Result<(Vec<u8>, CompressionReport), PipelineError> {
        let bytes = self.compress(image)?;
        let pixels = image.pixel_count().max(1);
        let report = CompressionReport {
            raw_bytes: (image.pixel_count() * image.bit_depth() as usize).div_ceil(8),
            compressed_bytes: bytes.len(),
            bits_per_pixel: bytes.len() as f64 * 8.0 / pixels as f64,
        };
        Ok((bytes, report))
    }

    /// Compress followed by decompress — the losslessness probe.
    ///
    /// # Errors
    ///
    /// See [`Codec::compress`] and [`Codec::decompress`].
    fn roundtrip(&self, image: &Image) -> Result<Image, PipelineError> {
        let bytes = self.compress(image)?;
        self.decompress(&bytes)
    }

    /// Decodes one tile (row-major `index`) of the stream. For engines
    /// without tiled containers the whole image is the single tile `0`; the
    /// tiled engines override this with directory-driven random access.
    ///
    /// # Errors
    ///
    /// See [`Codec::decompress`]; additionally errors for an out-of-range
    /// `index`.
    fn decompress_tile(&self, bytes: &[u8], index: usize) -> Result<Image, PipelineError> {
        if index != 0 {
            return Err(PipelineError::from(lwc_coder::CoderError::MalformedStream(format!(
                "tile index {index} out of range: a {} stream is a single tile",
                self.name()
            ))));
        }
        self.decompress(bytes)
    }

    /// Streaming decode: yields the image as horizontal [`RowBand`]s, top
    /// to bottom. The default yields one band covering the whole image;
    /// tiled engines override it with genuinely bounded-memory decode
    /// (see [`CodecCapabilities::streaming_decode`]).
    ///
    /// # Errors
    ///
    /// Malformed containers may error here or through the iterator's items.
    fn decompress_row_bands<'a>(
        &'a self,
        bytes: &'a [u8],
    ) -> Result<Box<dyn Iterator<Item = Result<RowBand, PipelineError>> + 'a>, PipelineError> {
        let image = self.decompress(bytes)?;
        Ok(Box::new(std::iter::once(Ok(RowBand { y: 0, image }))))
    }
}

impl Codec for LosslessCodec {
    fn name(&self) -> &'static str {
        "lossless"
    }

    fn capabilities(&self) -> CodecCapabilities {
        CodecCapabilities {
            containers: "LWC1/LWCQ",
            tiled: false,
            streaming_decode: false,
            fixed_point: false,
            near_lossless: true,
        }
    }

    fn compress(&self, image: &Image) -> Result<Vec<u8>, PipelineError> {
        Ok(LosslessCodec::compress(self, image)?)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Image, PipelineError> {
        Ok(LosslessCodec::decompress(self, bytes)?)
    }
}

impl Codec for ParallelCodec {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn capabilities(&self) -> CodecCapabilities {
        CodecCapabilities {
            containers: "LWC1/LWCQ",
            tiled: false,
            streaming_decode: false,
            fixed_point: false,
            near_lossless: true,
        }
    }

    fn compress(&self, image: &Image) -> Result<Vec<u8>, PipelineError> {
        ParallelCodec::compress(self, image)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Image, PipelineError> {
        ParallelCodec::decompress(self, bytes)
    }
}

impl Codec for TiledCompressor {
    fn name(&self) -> &'static str {
        "tiled"
    }

    fn capabilities(&self) -> CodecCapabilities {
        CodecCapabilities {
            containers: "LWC1/LWCQ/LWCT",
            tiled: true,
            streaming_decode: true,
            fixed_point: false,
            near_lossless: true,
        }
    }

    fn compress(&self, image: &Image) -> Result<Vec<u8>, PipelineError> {
        TiledCompressor::compress(self, image)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Image, PipelineError> {
        TiledCompressor::decompress(self, bytes)
    }

    fn decompress_tile(&self, bytes: &[u8], index: usize) -> Result<Image, PipelineError> {
        TiledCompressor::decompress_tile(self, bytes, index)
    }

    fn decompress_row_bands<'a>(
        &'a self,
        bytes: &'a [u8],
    ) -> Result<Box<dyn Iterator<Item = Result<RowBand, PipelineError>> + 'a>, PipelineError> {
        Ok(Box::new(TiledCompressor::decompress_row_bands(self, bytes)?))
    }
}

impl Codec for TiledFixedCompressor {
    fn name(&self) -> &'static str {
        "tiled-fixed"
    }

    fn capabilities(&self) -> CodecCapabilities {
        CodecCapabilities {
            containers: "LWCF",
            tiled: true,
            streaming_decode: true,
            fixed_point: true,
            near_lossless: false,
        }
    }

    fn compress(&self, image: &Image) -> Result<Vec<u8>, PipelineError> {
        TiledFixedCompressor::compress(self, image)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Image, PipelineError> {
        TiledFixedCompressor::decompress(self, bytes)
    }

    fn decompress_tile(&self, bytes: &[u8], index: usize) -> Result<Image, PipelineError> {
        TiledFixedCompressor::decompress_tile(self, bytes, index)
    }

    fn decompress_row_bands<'a>(
        &'a self,
        bytes: &'a [u8],
    ) -> Result<Box<dyn Iterator<Item = Result<RowBand, PipelineError>> + 'a>, PipelineError> {
        Ok(Box::new(TiledFixedCompressor::decompress_row_bands(self, bytes)?))
    }
}

impl Codec for VolumeCompressor {
    fn name(&self) -> &'static str {
        "volume"
    }

    fn capabilities(&self) -> CodecCapabilities {
        CodecCapabilities {
            containers: "LWCV",
            // Streams hold independently decodable bricks; for single-slice
            // volumes `decompress_tile` is genuine directory-driven random
            // access. The bounded-memory streaming path is the volumetric
            // `decompress_slabs`, not the 2-D row-band iterator, so
            // `streaming_decode` stays false at this trait's granularity.
            tiled: true,
            streaming_decode: false,
            fixed_point: false,
            near_lossless: true,
        }
    }

    fn compress(&self, image: &Image) -> Result<Vec<u8>, PipelineError> {
        let stack = ImageStack::from_slices(std::slice::from_ref(image))
            .map_err(lwc_coder::CoderError::from)?;
        self.compress_stack(&stack)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Image, PipelineError> {
        let stack = self.decompress_stack(bytes)?;
        if stack.depth() != 1 {
            return Err(PipelineError::from(lwc_coder::CoderError::UnsupportedFormat(format!(
                "stream holds a {}-slice volume, not an image; use decompress_stack",
                stack.depth()
            ))));
        }
        Ok(stack.slice_image(0).map_err(lwc_coder::CoderError::from)?)
    }

    fn decompress_tile(&self, bytes: &[u8], index: usize) -> Result<Image, PipelineError> {
        VolumeCompressor::decompress_brick_image(self, bytes, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_filters::{FilterBank, FilterId};
    use lwc_image::{stats, synth};

    fn engines() -> Vec<Box<dyn Codec>> {
        vec![
            Box::new(LosslessCodec::new(3).unwrap()),
            Box::new(crate::LineCompressor::new(3).unwrap()),
            Box::new(ParallelCodec::new(3, 2).unwrap()),
            Box::new(TiledCompressor::new(3, 32, 2).unwrap()),
            Box::new(TiledCompressor::new(3, 32, 2).unwrap().with_line_transform()),
            Box::new(
                TiledFixedCompressor::new(&FilterBank::table1(FilterId::F1), 3, 32, 2).unwrap(),
            ),
            Box::new(VolumeCompressor::new(3, 1, 32, 8, 2).unwrap()),
        ]
    }

    #[test]
    fn every_engine_roundtrips_through_the_trait() {
        let image = synth::ct_phantom(96, 64, 12, 3);
        for engine in engines() {
            let back = engine.roundtrip(&image).unwrap();
            assert!(stats::bit_exact(&image, &back).unwrap(), "{}", engine.name());
        }
    }

    #[test]
    fn trait_dispatch_is_byte_identical_to_concrete_calls() {
        let image = synth::mr_slice(96, 64, 12, 5);
        let tiled = TiledCompressor::new(3, 32, 2).unwrap();
        assert_eq!(
            Codec::compress(&tiled, &image).unwrap(),
            TiledCompressor::compress(&tiled, &image).unwrap()
        );
        let fixed = TiledFixedCompressor::new(&FilterBank::table1(FilterId::F2), 3, 32, 2).unwrap();
        assert_eq!(
            Codec::compress(&fixed, &image).unwrap(),
            TiledFixedCompressor::compress(&fixed, &image).unwrap()
        );
    }

    #[test]
    fn capabilities_describe_the_engines() {
        let caps: Vec<CodecCapabilities> = engines().iter().map(|e| e.capabilities()).collect();
        assert!(!caps[0].tiled && !caps[0].fixed_point && caps[0].near_lossless);
        // The line-based fused engine is lossless-only: it has no
        // quantization stage.
        assert!(!caps[1].tiled && !caps[1].fixed_point && !caps[1].near_lossless);
        assert!(caps[2].near_lossless);
        assert!(caps[3].tiled && caps[3].streaming_decode && caps[3].near_lossless);
        assert!(caps[5].fixed_point && !caps[5].near_lossless);
        assert_eq!(caps[5].containers, "LWCF");
        assert!(caps[6].tiled && !caps[6].fixed_point && caps[6].near_lossless);
        assert_eq!(caps[6].containers, "LWCV");
    }

    #[test]
    fn near_lossless_engines_honor_the_bound_through_the_trait() {
        let image = synth::ct_phantom(96, 64, 12, 13);
        let codec = LosslessCodec::near_lossless(3, 2).unwrap();
        let engines: Vec<Box<dyn Codec>> = vec![
            Box::new(codec),
            Box::new(ParallelCodec::with_codec(codec, 2)),
            Box::new(TiledCompressor::with_codec(codec, 32, 32, 2).unwrap()),
            Box::new(VolumeCompressor::with_codec(codec, 1, 32, 32, 8, 2).unwrap()),
        ];
        for engine in engines {
            assert!(engine.capabilities().near_lossless, "{}", engine.name());
            let back = engine.roundtrip(&image).unwrap();
            let err = stats::max_abs_diff(&image, &back).unwrap();
            assert!(err <= 2, "{}: max error {err}", engine.name());
        }
    }

    #[test]
    fn default_tile_access_treats_the_image_as_tile_zero() {
        let image = synth::ct_phantom(64, 64, 12, 7);
        let engine: Box<dyn Codec> = Box::new(LosslessCodec::new(3).unwrap());
        let bytes = engine.compress(&image).unwrap();
        let tile = engine.decompress_tile(&bytes, 0).unwrap();
        assert!(stats::bit_exact(&image, &tile).unwrap());
        assert!(engine.decompress_tile(&bytes, 1).is_err());
    }

    #[test]
    fn default_row_bands_yield_one_band() {
        let image = synth::ct_phantom(64, 48, 12, 9);
        let engine: Box<dyn Codec> = Box::new(ParallelCodec::new(3, 2).unwrap());
        let bytes = engine.compress(&image).unwrap();
        let bands: Vec<RowBand> =
            engine.decompress_row_bands(&bytes).unwrap().map(|b| b.unwrap()).collect();
        assert_eq!(bands.len(), 1);
        assert_eq!(bands[0].y, 0);
        assert!(stats::bit_exact(&image, &bands[0].image).unwrap());
    }

    #[test]
    fn reports_agree_on_sizes() {
        let image = synth::ct_phantom(64, 64, 12, 11);
        for engine in engines() {
            let (bytes, report) = engine.compress_with_report(&image).unwrap();
            assert_eq!(report.compressed_bytes, bytes.len(), "{}", engine.name());
            assert_eq!(report.raw_bytes, (64 * 64 * 12usize).div_ceil(8));
            if engine.capabilities().fixed_point {
                // The paper-exact datapath must carry every Table II
                // fractional bit to stay lossless, so its streams *expand*
                // (near-random fraction entropy) — the honest reproduction
                // result, quantified in `reproduce conclusions`.
                assert!(report.ratio() > 0.0, "{}", engine.name());
            } else {
                assert!(report.ratio() > 1.0, "{}", engine.name());
            }
        }
    }
}
