//! Error type of the batch pipeline.

use lwc_coder::CoderError;
use lwc_dwt::DwtError;
use lwc_lifting::LiftingError;
use std::fmt;

/// Errors surfaced by the batch compression engine.
#[derive(Debug)]
pub enum PipelineError {
    /// The underlying Rice codec failed on one image of the batch.
    Coder(CoderError),
    /// The underlying fixed-point transform failed.
    Dwt(DwtError),
    /// The underlying lifting transform failed.
    Lifting(LiftingError),
    /// The pipeline itself was misconfigured (e.g. zero workers requested on
    /// a platform that cannot report its parallelism).
    Config(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Coder(e) => write!(f, "codec error: {e}"),
            Self::Dwt(e) => write!(f, "transform error: {e}"),
            Self::Lifting(e) => write!(f, "lifting transform error: {e}"),
            Self::Config(msg) => write!(f, "pipeline configuration error: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Coder(e) => Some(e),
            Self::Dwt(e) => Some(e),
            Self::Lifting(e) => Some(e),
            Self::Config(_) => None,
        }
    }
}

impl From<CoderError> for PipelineError {
    fn from(e: CoderError) -> Self {
        Self::Coder(e)
    }
}

impl From<DwtError> for PipelineError {
    fn from(e: DwtError) -> Self {
        Self::Dwt(e)
    }
}

impl From<LiftingError> for PipelineError {
    fn from(e: LiftingError) -> Self {
        Self::Lifting(e)
    }
}
