//! Intra-image parallelism: per-subband parallel Rice coding.
//!
//! A `scales`-deep decomposition has `3 * scales + 1` subbands and each is
//! entropy-coded independently — the subband boundary is a natural
//! parallelism seam the sequential [`LosslessCodec`] leaves unused. The
//! [`ParallelCodec`] encodes every subband on a worker pool into its own
//! [`BitWriter`] and splices the fragments, at arbitrary bit offsets, into
//! **exactly** the bytes the sequential codec writes; on the way back a
//! [`SubbandDirectory`] of bit offsets lets the subbands decode concurrently.

use crate::PipelineError;
use lwc_coder::bitio::{BitReader, BitWriter};
use lwc_coder::{subband_order, CoderError, LosslessCodec, StreamHeader};
use lwc_image::Image;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Bit offsets of every subband payload inside one compressed stream, in
/// [`subband_order`] order.
///
/// The directory is side information — the stream format itself is unchanged
/// and carries no offsets. It comes either for free from a parallel encode
/// ([`ParallelCodec::compress_with_directory`]) or from a single sequential
/// scan of an existing stream ([`SubbandDirectory::scan`]), which only walks
/// the unary/remainder structure without reconstructing any value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubbandDirectory {
    header: StreamHeader,
    /// Start bit of each subband payload; `offsets[0] == header.bits()`
    /// (the serialized header size — [`StreamHeader::BITS`] for lossless
    /// streams, 8 more for near-lossless ones).
    offsets: Vec<u64>,
}

impl SubbandDirectory {
    /// The stream header the directory was built from.
    #[must_use]
    pub fn header(&self) -> &StreamHeader {
        &self.header
    }

    /// Start bit offsets of the subband payloads, in [`subband_order`] order.
    #[must_use]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Builds a directory by scanning a sequential stream once.
    ///
    /// # Errors
    ///
    /// Returns an error if the header is invalid, the stream is truncated,
    /// or it was coded with a different number of scales than `codec` uses.
    pub fn scan(codec: &LosslessCodec, bytes: &[u8]) -> Result<Self, CoderError> {
        let mut reader = BitReader::new(bytes);
        let header = StreamHeader::read(&mut reader)?;
        header.ensure_scales(codec.scales())?;
        header.ensure_plausible_length(bytes.len())?;
        let subbands = codec.subband_codec();
        let mut offsets = Vec::with_capacity(3 * header.scales as usize + 1);
        for (scale, band) in subband_order(header.scales) {
            offsets.push(reader.bits_read());
            subbands.skip_subband(&mut reader, header.band_len(scale, band))?;
        }
        Ok(Self { header, offsets })
    }
}

/// Per-subband parallel Rice codec for a single image.
///
/// Streams are **byte-identical** to [`LosslessCodec::compress`]: the workers
/// produce one bitstream fragment per subband and a bit-level splice
/// concatenates them in the sequential layout. Decoding runs the subbands
/// concurrently from a [`SubbandDirectory`].
///
/// ```
/// use lwc_image::synth;
/// use lwc_pipeline::ParallelCodec;
///
/// # fn main() -> Result<(), lwc_pipeline::PipelineError> {
/// let codec = ParallelCodec::new(4, 2)?;
/// let image = synth::ct_phantom(64, 64, 12, 1);
/// let bytes = codec.compress(&image)?;
/// let back = codec.decompress(&bytes)?;
/// assert_eq!(image.samples(), back.samples());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ParallelCodec {
    codec: LosslessCodec,
    workers: usize,
}

impl ParallelCodec {
    /// Creates a codec with the given decomposition depth and worker count.
    /// `workers == 0` selects the machine's available parallelism.
    ///
    /// # Errors
    ///
    /// Returns an error if `scales` is zero.
    pub fn new(scales: u32, workers: usize) -> Result<Self, PipelineError> {
        Ok(Self::with_codec(LosslessCodec::new(scales)?, workers))
    }

    /// Wraps an existing sequential codec. `workers == 0` selects the
    /// machine's available parallelism.
    #[must_use]
    pub fn with_codec(codec: LosslessCodec, workers: usize) -> Self {
        let workers = if workers == 0 {
            thread::available_parallelism().map(usize::from).unwrap_or(1)
        } else {
            workers
        };
        Self { codec, workers }
    }

    /// The sequential codec whose streams this one reproduces.
    #[must_use]
    pub fn codec(&self) -> &LosslessCodec {
        &self.codec
    }

    /// Worker threads used per image.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Compresses `image`, producing exactly the bytes of
    /// [`LosslessCodec::compress`].
    ///
    /// # Errors
    ///
    /// Returns an error if the image cannot be decomposed to the configured
    /// depth.
    pub fn compress(&self, image: &Image) -> Result<Vec<u8>, PipelineError> {
        Ok(self.compress_with_directory(image)?.0)
    }

    /// Compresses `image` and also returns the [`SubbandDirectory`] the
    /// encode discovered for free (each worker knows its fragment's length),
    /// enabling a fully parallel [`ParallelCodec::decompress_with_directory`]
    /// without a scan.
    ///
    /// # Errors
    ///
    /// See [`ParallelCodec::compress`].
    pub fn compress_with_directory(
        &self,
        image: &Image,
    ) -> Result<(Vec<u8>, SubbandDirectory), PipelineError> {
        let header = self.codec.header_for(image)?;
        let coeffs = self.codec.transform().forward(image).map_err(CoderError::from)?;
        let order: Vec<(u32, usize)> = subband_order(self.codec.scales()).collect();

        // Extract and encode every subband on the worker pool (the container
        // is read-only, so each worker gathers its own subband rather than
        // paying for a serial extraction pass up front). A near-lossless
        // codec quantizes per band exactly like the sequential encoder, so
        // byte-identity holds at every delta.
        let subbands = *self.codec.subband_codec();
        let schedule = self.codec.schedule();
        let fragments: Vec<(Vec<u8>, u64)> = run_indexed(self.workers, order.len(), |i| {
            let (scale, band) = order[i];
            let mut samples = coeffs.subband(scale, band);
            lwc_coder::quant::quantize(&mut samples, schedule.allowance(scale, band));
            let mut writer = BitWriter::new();
            subbands.encode_subband(&mut writer, &samples);
            let bits = writer.bit_len();
            Ok::<_, CoderError>((writer.into_bytes(), bits))
        })?;

        // Splice the fragments into the sequential layout.
        let mut writer = BitWriter::new();
        header.write(&mut writer);
        let mut offsets = Vec::with_capacity(fragments.len());
        for (bytes, bits) in &fragments {
            offsets.push(writer.bit_len());
            writer.append(bytes, *bits);
        }
        Ok((writer.into_bytes(), SubbandDirectory { header, offsets }))
    }

    /// Decompresses a stream produced by this codec or by
    /// [`LosslessCodec::compress`].
    ///
    /// A sequential scan first recovers the subband directory (cheap relative
    /// to a full decode: no value is reconstructed), then the subbands decode
    /// concurrently.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed streams or mismatched configuration.
    pub fn decompress(&self, bytes: &[u8]) -> Result<Image, PipelineError> {
        let directory = SubbandDirectory::scan(&self.codec, bytes)?;
        self.decompress_with_directory(bytes, &directory)
    }

    /// Decompresses with a known [`SubbandDirectory`], skipping the scan —
    /// the fully parallel decode path.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed streams, mismatched configuration, or
    /// a directory that does not match the stream.
    pub fn decompress_with_directory(
        &self,
        bytes: &[u8],
        directory: &SubbandDirectory,
    ) -> Result<Image, PipelineError> {
        let header = directory.header;
        header.ensure_scales(self.codec.scales())?;
        header.ensure_plausible_length(bytes.len())?;
        // The directory is side information: make sure it actually describes
        // this stream before decoding at its offsets.
        let stream_header = StreamHeader::read(&mut BitReader::new(bytes))?;
        if stream_header != header {
            return Err(CoderError::MalformedStream(format!(
                "directory was built for a {}x{} stream at {} scales, but the stream header says \
                 {}x{} at {}",
                header.width,
                header.height,
                header.scales,
                stream_header.width,
                stream_header.height,
                stream_header.scales
            ))
            .into());
        }
        let order: Vec<(u32, usize)> = subband_order(header.scales).collect();
        if directory.offsets.len() != order.len() {
            return Err(CoderError::MalformedStream(format!(
                "directory holds {} subbands but the stream layout has {}",
                directory.offsets.len(),
                order.len()
            ))
            .into());
        }
        let subbands = *self.codec.subband_codec();
        let decoded: Vec<Vec<i32>> = run_indexed(self.workers, order.len(), |i| {
            let mut reader = BitReader::new(bytes);
            reader.skip_bits(directory.offsets[i])?;
            let (scale, band) = order[i];
            let samples = subbands.decode_subband(&mut reader, header.band_len(scale, band))?;
            // Each subband must end exactly where the directory says the
            // next one starts — Rice data is self-delimiting at any bit
            // offset, so without this check a directory from a different
            // same-geometry stream would decode plausible garbage.
            if let Some(&next) = directory.offsets.get(i + 1) {
                if reader.bits_read() != next {
                    return Err(CoderError::MalformedStream(format!(
                        "subband {i} ended at bit {} but the directory places the next at {next}",
                        reader.bits_read()
                    )));
                }
            }
            Ok(samples)
        })?;
        Ok(self.codec.reassemble(&header, &decoded)?)
    }
}

/// Runs `job(0..count)` across `workers` scoped threads with dynamic work
/// stealing and returns the outputs in index order. Shared with the
/// tile-parallel engines in [`crate::TiledCompressor`] and
/// [`crate::TiledFixedDwt2d`] (whose jobs fail with different error types,
/// hence the generic `E`).
pub(crate) fn run_indexed<Out, Err, Job>(
    workers: usize,
    count: usize,
    job: Job,
) -> Result<Vec<Out>, PipelineError>
where
    Out: Send,
    Err: Into<PipelineError> + Send,
    Job: Fn(usize) -> Result<Out, Err> + Sync,
{
    let workers = workers.min(count).max(1);
    if workers == 1 {
        return (0..count).map(|i| job(i).map_err(Into::into)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Out>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let failure: Mutex<Option<Err>> = Mutex::new(None);
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    return;
                }
                match job(index) {
                    Ok(output) => *slots[index].lock().expect("slot poisoned") = Some(output),
                    Err(error) => {
                        failure.lock().expect("failure poisoned").get_or_insert(error);
                        // Drain the remaining work: the run is doomed.
                        cursor.store(count, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });
    if let Some(error) = failure.into_inner().expect("failure poisoned") {
        return Err(error.into());
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("slot poisoned").ok_or_else(|| {
                PipelineError::Config("parallel worker abandoned a work item".into())
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_image::{stats, synth};

    fn phantom(kind: usize, size: usize, seed: u64) -> Image {
        match kind % 3 {
            0 => synth::ct_phantom(size, size, 12, seed),
            1 => synth::mr_slice(size, size, 12, seed),
            _ => synth::random_image(size, size, 12, seed),
        }
    }

    #[test]
    fn streams_are_byte_identical_to_the_sequential_codec() {
        for scales in 1..=5u32 {
            let sequential = LosslessCodec::new(scales).unwrap();
            for workers in [1, 2, 4] {
                let parallel = ParallelCodec::with_codec(sequential, workers);
                for kind in 0..3 {
                    let image = phantom(kind, 64, 7 * scales as u64 + kind as u64);
                    let expected = sequential.compress(&image).unwrap();
                    let actual = parallel.compress(&image).unwrap();
                    assert_eq!(actual, expected, "kind {kind}, {scales} scales, {workers} workers");
                }
            }
        }
    }

    #[test]
    fn roundtrip_with_and_without_directory() {
        let codec = ParallelCodec::new(4, 3).unwrap();
        let image = phantom(0, 128, 5);
        let (bytes, directory) = codec.compress_with_directory(&image).unwrap();
        let via_scan = codec.decompress(&bytes).unwrap();
        let via_directory = codec.decompress_with_directory(&bytes, &directory).unwrap();
        assert!(stats::bit_exact(&image, &via_scan).unwrap());
        assert!(stats::bit_exact(&image, &via_directory).unwrap());
    }

    #[test]
    fn scan_recovers_the_encode_directory() {
        let codec = ParallelCodec::new(3, 2).unwrap();
        let image = phantom(1, 64, 9);
        let (bytes, from_encode) = codec.compress_with_directory(&image).unwrap();
        let scanned = SubbandDirectory::scan(codec.codec(), &bytes).unwrap();
        assert_eq!(scanned, from_encode);
        assert_eq!(scanned.offsets()[0], StreamHeader::BITS);
    }

    #[test]
    fn parallel_decoder_reads_sequential_streams() {
        let sequential = LosslessCodec::new(3).unwrap();
        let parallel = ParallelCodec::with_codec(sequential, 4);
        let image = phantom(2, 64, 11);
        let bytes = sequential.compress(&image).unwrap();
        let back = parallel.decompress(&bytes).unwrap();
        assert!(stats::bit_exact(&image, &back).unwrap());
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let codec = ParallelCodec::new(3, 2).unwrap();
        let image = phantom(0, 32, 3);
        let mut bytes = codec.compress(&image).unwrap();
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(codec.decompress(&bad).is_err());
        bytes.truncate(bytes.len() / 2);
        assert!(codec.decompress(&bytes).is_err());
    }

    #[test]
    fn mismatched_directory_is_rejected() {
        let three = ParallelCodec::new(3, 2).unwrap();
        let four = ParallelCodec::new(4, 2).unwrap();
        let image = phantom(0, 64, 4);
        let (bytes, directory) = three.compress_with_directory(&image).unwrap();
        assert!(four.decompress_with_directory(&bytes, &directory).is_err());
        assert!(four.decompress(&bytes).is_err());
    }

    #[test]
    fn directory_from_another_stream_is_rejected() {
        let codec = ParallelCodec::new(3, 2).unwrap();
        let (small_bytes, _) = codec.compress_with_directory(&phantom(0, 64, 5)).unwrap();
        let (_, large_directory) =
            codec.compress_with_directory(&synth::ct_phantom(128, 128, 12, 6)).unwrap();
        // Same scale count, different geometry: the stream header check must
        // refuse to decode at the foreign directory's offsets.
        assert!(codec.decompress_with_directory(&small_bytes, &large_directory).is_err());
    }

    #[test]
    fn same_geometry_directory_swap_is_rejected_not_silently_decoded() {
        // Two streams with identical headers but different payloads: pairing
        // one stream with the other's directory must error (via the
        // subband-boundary consistency check), never return a wrong image.
        let codec = ParallelCodec::new(3, 2).unwrap();
        let (bytes_a, dir_a) = codec.compress_with_directory(&phantom(0, 64, 21)).unwrap();
        let (bytes_b, dir_b) = codec.compress_with_directory(&phantom(0, 64, 22)).unwrap();
        assert_ne!(dir_a, dir_b, "payloads should differ enough to shift offsets");
        assert!(codec.decompress_with_directory(&bytes_a, &dir_b).is_err());
        assert!(codec.decompress_with_directory(&bytes_b, &dir_a).is_err());
    }

    #[test]
    fn zero_workers_selects_available_parallelism() {
        let codec = ParallelCodec::new(2, 0).unwrap();
        assert!(codec.workers() >= 1);
    }

    #[test]
    fn rectangular_images_roundtrip() {
        let codec = ParallelCodec::new(3, 2).unwrap();
        let image = synth::mr_slice(96, 48, 12, 13);
        let sequential = codec.codec().compress(&image).unwrap();
        assert_eq!(codec.compress(&image).unwrap(), sequential);
        let back = codec.decompress(&sequential).unwrap();
        assert!(stats::bit_exact(&image, &back).unwrap());
    }
}
