//! End-to-end compression on the **paper-exact fixed-point** datapath: the
//! tile-parallel `LWCF` engine.
//!
//! [`TiledCompressor`](crate::TiledCompressor) pairs the lifting transform
//! with the Rice coder; this module closes the same loop for the datapath the
//! paper actually builds. A [`TiledFixedCompressor`] drives a
//! [`TiledFixedDwt2d`] (tiles transformed bit-identically to the monolithic
//! [`FixedDwt2d`]), Rice-codes every tile's `i64` transform words with
//! [`FixedSubbandCodec`], and wraps the payloads in the versioned `LWCF`
//! container ([`lwc_coder::fixedtiled`]).
//!
//! The stream is deterministic for a given tile shape — the worker count
//! never changes a byte. Multi-tile grids parallelize per **tile** (payloads
//! are byte-aligned and concatenated by the shared directory writer);
//! single-tile grids parallelize per **subband**, splicing the fragments at
//! bit level into the exact sequential payload, the same machinery
//! [`ParallelCodec`](crate::ParallelCodec) uses on the lifting path.

use crate::parcodec::run_indexed;
use crate::report::TiledReport;
use crate::{PipelineError, TiledFixedDwt2d};
use lwc_coder::bitio::{BitReader, BitWriter};
use lwc_coder::fixedtiled::{write_fixed_container, FixedHeader, FixedStream};
use lwc_coder::{subband_order, CoderError, FixedSubbandCodec};
use lwc_dwt::{Decomposition, DwtError, FixedDwt2d, Subband};
use lwc_filters::{FilterBank, FilterId};
use lwc_image::{Image, TileGrid, TileRect};
use std::time::Instant;

/// The subband named by a [`subband_order`] band index.
fn band_of(index: usize) -> Subband {
    match index {
        0 => Subband::Approx,
        _ => Subband::DETAILS[index - 1],
    }
}

/// Tile-parallel lossless codec over the paper-exact fixed-point DWT.
///
/// Every stream is an `LWCF` container (there is no legacy fixed format, so
/// even a single-tile grid is wrapped); decode is pixel-exact by the paper's
/// central losslessness claim, validated end to end here.
///
/// ```
/// use lwc_filters::{FilterBank, FilterId};
/// use lwc_image::synth;
/// use lwc_pipeline::TiledFixedCompressor;
///
/// # fn main() -> Result<(), lwc_pipeline::PipelineError> {
/// let bank = FilterBank::table1(FilterId::F1);
/// let engine = TiledFixedCompressor::new(&bank, 3, 64, 2)?;
/// let image = synth::ct_phantom(256, 192, 12, 1);
/// let bytes = engine.compress(&image)?;
/// let back = engine.decompress(&bytes)?;
/// assert_eq!(image.samples(), back.samples());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TiledFixedCompressor {
    dwt: TiledFixedDwt2d,
    codec: FixedSubbandCodec,
}

impl TiledFixedCompressor {
    /// Creates an engine over the given Table I bank with the paper's default
    /// word lengths, a square nominal tile and the given worker count.
    /// `workers == 0` selects the machine's available parallelism.
    ///
    /// # Errors
    ///
    /// Returns an error if the word-length plan cannot be built or the tile
    /// size is zero.
    pub fn new(
        bank: &FilterBank,
        scales: u32,
        tile_size: usize,
        workers: usize,
    ) -> Result<Self, PipelineError> {
        Ok(Self {
            dwt: TiledFixedDwt2d::new(bank, scales, tile_size, workers)?,
            codec: FixedSubbandCodec::new(),
        })
    }

    /// Wraps an existing tile-parallel transform.
    #[must_use]
    pub fn with_dwt(dwt: TiledFixedDwt2d) -> Self {
        Self { dwt, codec: FixedSubbandCodec::new() }
    }

    /// Builds the engine an `LWCF` stream's header calls for: the stored
    /// Table I bank at the stored depth and tile shape, with the paper's
    /// default word lengths (the only plan version 1 pairs with).
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown filter index or an unbuildable plan.
    pub fn for_stream(header: &FixedHeader, workers: usize) -> Result<Self, PipelineError> {
        let id = *FilterId::ALL.get(header.filter as usize).ok_or_else(|| {
            PipelineError::from(CoderError::UnsupportedFormat(format!(
                "filter index {} is not a Table I bank",
                header.filter
            )))
        })?;
        let bank = FilterBank::table1(id);
        let inner = FixedDwt2d::paper_default(&bank, header.scales)?;
        Ok(Self::with_dwt(TiledFixedDwt2d::with_transform(
            inner,
            header.tile_width,
            header.tile_height,
            workers,
        )?))
    }

    /// The tile-parallel transform driving the engine.
    #[must_use]
    pub fn dwt(&self) -> &TiledFixedDwt2d {
        &self.dwt
    }

    /// The decomposition depth.
    #[must_use]
    pub fn scales(&self) -> u32 {
        self.dwt.scales()
    }

    /// The Table I filter bank of the transform.
    #[must_use]
    pub fn filter_id(&self) -> FilterId {
        self.dwt.inner().bank().id()
    }

    /// Worker threads used per image.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.dwt.workers()
    }

    /// The tile grid this engine would use for a `width x height` image
    /// (every occurring tile shape checked for decomposability).
    ///
    /// # Errors
    ///
    /// See [`TiledFixedDwt2d::grid`].
    pub fn grid(&self, width: usize, height: usize) -> Result<TileGrid, PipelineError> {
        self.dwt.grid(width, height)
    }

    /// The `LWCF` header this engine would write for an image of the given
    /// geometry.
    fn header_for(&self, grid: &TileGrid, bit_depth: u32) -> FixedHeader {
        FixedHeader {
            width: grid.image_width(),
            height: grid.image_height(),
            bit_depth,
            scales: self.scales(),
            filter: self.filter_id().index() as u8,
            tile_width: grid.tile_width(),
            tile_height: grid.tile_height(),
        }
    }

    /// Compresses `image` into an `LWCF` container, fanning the tiles (or,
    /// for a single-tile grid, the subbands of the one tile) across the
    /// worker pool. The bytes depend only on the image and the tile shape,
    /// never on the worker count.
    ///
    /// # Errors
    ///
    /// Returns the first transform or coder error, if any; notably
    /// [`PipelineError::Dwt`] if a tile shape of the grid cannot be
    /// decomposed to the configured depth.
    pub fn compress(&self, image: &Image) -> Result<Vec<u8>, PipelineError> {
        Ok(self.compress_with_report(image)?.0)
    }

    /// Compresses and reports tile-level throughput.
    ///
    /// # Errors
    ///
    /// See [`TiledFixedCompressor::compress`].
    pub fn compress_with_report(
        &self,
        image: &Image,
    ) -> Result<(Vec<u8>, TiledReport), PipelineError> {
        let start = Instant::now();
        let grid = self.grid(image.width(), image.height())?;
        let header = self.header_for(&grid, image.bit_depth());
        let payloads = if grid.is_single() {
            // One tile cannot be fanned out by tiles; splice its subbands
            // instead (bit-exact to the sequential payload by construction).
            vec![self.encode_tile_spliced(&self.dwt.inner().forward(image)?)?]
        } else {
            run_indexed(self.workers(), grid.tile_count(), |index| {
                self.encode_tile(image, &grid, index)
            })?
        };
        let bytes = write_fixed_container(&header, &payloads)?;
        let report = TiledReport {
            tiles: grid.tile_count(),
            raw_bytes: (image.pixel_count() * image.bit_depth() as usize).div_ceil(8),
            compressed_bytes: bytes.len(),
            workers: self.workers().min(grid.tile_count()),
            wall: start.elapsed(),
        };
        Ok((bytes, report))
    }

    /// Compresses one tile of `image` (row-major `index` of `grid`) into
    /// its standalone `LWCF` tile payload — the unit a scheduler can fan
    /// across workers. Byte-identical to the payload
    /// [`TiledFixedCompressor::compress`] places at that directory slot
    /// (for a single-tile grid this is the subband-spliced whole-image
    /// payload; `compress` is built on this either way).
    ///
    /// # Errors
    ///
    /// Returns the tile's transform error; `grid` must describe `image`.
    pub fn encode_tile(
        &self,
        image: &Image,
        grid: &TileGrid,
        index: usize,
    ) -> Result<Vec<u8>, PipelineError> {
        if grid.is_single() {
            return self.encode_tile_spliced(&self.dwt.inner().forward(image)?);
        }
        let view = image.view_rect(grid.rect(index)).map_err(DwtError::from)?;
        let tile = self.dwt.inner().forward_view(&view)?;
        Ok(encode_tile_payload(self.codec, &tile))
    }

    /// Assembles per-tile payloads (row-major `grid` order, as produced by
    /// [`TiledFixedCompressor::encode_tile`]) into the `LWCF` container
    /// [`TiledFixedCompressor::compress`] writes.
    ///
    /// # Errors
    ///
    /// Returns a container error if the payload count disagrees with the
    /// grid or an offset overflows the directory format.
    pub fn assemble_container(
        &self,
        grid: &TileGrid,
        bit_depth: u32,
        payloads: &[Vec<u8>],
    ) -> Result<Vec<u8>, PipelineError> {
        Ok(write_fixed_container(&self.header_for(grid, bit_depth), payloads)?)
    }

    /// Per-subband parallel encode of one tile: the `3 * scales + 1`
    /// subbands are coded as independent fragments on the worker pool and
    /// spliced at bit level into the exact sequential payload.
    fn encode_tile_spliced(&self, tile: &Decomposition<i64>) -> Result<Vec<u8>, PipelineError> {
        let codec = self.codec;
        let order: Vec<(u32, usize)> = subband_order(self.scales()).collect();
        let fragments = run_indexed(self.workers(), order.len(), |i| {
            let (scale, band) = order[i];
            let words = tile.subband(scale, band_of(band));
            let mut writer = BitWriter::new();
            let bits = codec.encode_subband(&mut writer, &words);
            Ok::<_, PipelineError>((writer.into_bytes(), bits))
        })?;
        let mut writer = BitWriter::new();
        for (bytes, bits) in &fragments {
            writer.append(bytes, *bits);
        }
        Ok(writer.into_bytes())
    }

    /// Reconstructs the image from an `LWCF` container. The result is
    /// pixel-exact. Tiles are decoded in bounded batches (a few per worker)
    /// and scattered into the frame as each batch completes, so peak memory
    /// stays at the output frame plus one batch of tiles.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed streams or containers whose filter or
    /// depth disagree with this engine's transform.
    pub fn decompress(&self, bytes: &[u8]) -> Result<Image, PipelineError> {
        let stream = FixedStream::parse(bytes)?;
        let header = *stream.header();
        self.ensure_compatible(&header)?;
        let grid = stream.grid()?;
        let mut frame = Image::zeros(header.width, header.height, header.bit_depth)
            .map_err(CoderError::from)?;
        let batch = (self.workers() * 4).max(4);
        let mut index = 0;
        while index < grid.tile_count() {
            let count = batch.min(grid.tile_count() - index);
            let tiles = self.decode_tiles(&stream, &grid, index, count)?;
            for (offset, tile) in tiles.iter().enumerate() {
                let rect = grid.rect(index + offset);
                frame
                    .view_rect_mut(rect)
                    .and_then(|mut window| window.copy_from_image(tile))
                    .map_err(CoderError::from)?;
            }
            index += count;
        }
        Ok(frame)
    }

    /// Random tile access: decodes exactly one tile (row-major `index`)
    /// without touching any other tile, via the container's 48-bit offset
    /// directory.
    ///
    /// # Errors
    ///
    /// See [`TiledFixedCompressor::decompress`]; additionally errors for an
    /// `index` outside the container's grid.
    pub fn decompress_tile(&self, bytes: &[u8], index: usize) -> Result<Image, PipelineError> {
        self.decompress_parsed_tile(&FixedStream::parse(bytes)?, index)
    }

    /// [`TiledFixedCompressor::decompress_tile`] over an already-parsed
    /// container — for callers that must not pay a second directory parse
    /// per tile.
    ///
    /// # Errors
    ///
    /// See [`TiledFixedCompressor::decompress_tile`].
    pub fn decompress_parsed_tile(
        &self,
        stream: &FixedStream<'_>,
        index: usize,
    ) -> Result<Image, PipelineError> {
        self.ensure_compatible(stream.header())?;
        let grid = stream.grid()?;
        if index >= grid.tile_count() {
            return Err(CoderError::MalformedStream(format!(
                "tile index {index} out of range: the container has {} tiles",
                grid.tile_count()
            ))
            .into());
        }
        let mut tiles = self.decode_tiles(stream, &grid, index, 1)?;
        Ok(tiles.pop().expect("decode_tiles returns exactly one tile"))
    }

    /// Random tile access by coordinate: decodes the tile containing pixel
    /// `(x, y)`, returning the tile's rectangle in image coordinates along
    /// with its pixels.
    ///
    /// # Errors
    ///
    /// See [`TiledFixedCompressor::decompress_tile`]; additionally errors if
    /// `(x, y)` lies outside the image.
    pub fn decompress_tile_at(
        &self,
        bytes: &[u8],
        x: usize,
        y: usize,
    ) -> Result<(TileRect, Image), PipelineError> {
        let stream = FixedStream::parse(bytes)?;
        let grid = stream.grid()?;
        let index = grid.tile_index_at(x, y).ok_or_else(|| {
            CoderError::MalformedStream(format!(
                "pixel ({x}, {y}) lies outside the {}x{} image",
                grid.image_width(),
                grid.image_height()
            ))
        })?;
        Ok((grid.rect(index), self.decompress_parsed_tile(&stream, index)?))
    }

    /// Streaming decode: yields the image one tile-row **band** at a time
    /// (top to bottom), decoding each band's tiles on the worker pool. Peak
    /// memory is bounded by one band plus the compressed bytes, regardless
    /// of the image height.
    ///
    /// # Errors
    ///
    /// Returns an error if the container header or directory is malformed;
    /// per-band decode errors surface through the iterator's items.
    pub fn decompress_row_bands<'a>(
        &self,
        bytes: &'a [u8],
    ) -> Result<FixedRowBands<'a>, PipelineError> {
        let stream = FixedStream::parse(bytes)?;
        self.ensure_compatible(stream.header())?;
        let grid = stream.grid()?;
        Ok(FixedRowBands { engine: self.clone(), stream, grid, next_row: 0 })
    }

    fn ensure_compatible(&self, header: &FixedHeader) -> Result<(), PipelineError> {
        if header.scales != self.scales() {
            return Err(CoderError::UnsupportedFormat(format!(
                "fixed stream uses {} scales but the engine is configured for {}",
                header.scales,
                self.scales()
            ))
            .into());
        }
        if header.filter as usize != self.filter_id().index() {
            return Err(CoderError::UnsupportedFormat(format!(
                "fixed stream uses filter index {} but the engine runs {}",
                header.filter,
                self.filter_id()
            ))
            .into());
        }
        Ok(())
    }

    /// Decodes tiles `first..first + count` (row-major) on the worker pool.
    fn decode_tiles(
        &self,
        stream: &FixedStream<'_>,
        grid: &TileGrid,
        first: usize,
        count: usize,
    ) -> Result<Vec<Image>, PipelineError> {
        let header = *stream.header();
        let codec = self.codec;
        let inner = self.dwt.inner();
        run_indexed(self.workers(), count, |offset| {
            let index = first + offset;
            let rect = grid.rect(index);
            let tile = decode_tile_payload(codec, stream.tile_bytes(index), &rect, &header)?;
            Ok::<_, PipelineError>(inner.inverse(&tile)?)
        })
    }
}

/// Sequential per-tile encode: subbands in [`subband_order`], one
/// concatenated fixed-subband stream. The spliced per-subband parallel path
/// reproduces these bytes exactly.
fn encode_tile_payload(codec: FixedSubbandCodec, tile: &Decomposition<i64>) -> Vec<u8> {
    let mut writer = BitWriter::new();
    for (scale, band) in subband_order(tile.scales()) {
        codec.encode_subband(&mut writer, &tile.subband(scale, band_of(band)));
    }
    writer.into_bytes()
}

/// Decodes one tile payload back into the tile's Mallat-layout word
/// container, validating exact consumption of the payload.
fn decode_tile_payload(
    codec: FixedSubbandCodec,
    payload: &[u8],
    rect: &TileRect,
    header: &FixedHeader,
) -> Result<Decomposition<i64>, PipelineError> {
    let id = *FilterId::ALL.get(header.filter as usize).ok_or_else(|| {
        CoderError::UnsupportedFormat(format!(
            "filter index {} is not a Table I bank",
            header.filter
        ))
    })?;
    let mut tile = Decomposition::from_raw(
        vec![0i64; rect.width * rect.height],
        rect.width,
        rect.height,
        header.scales,
        id,
        header.bit_depth,
    );
    let mut reader = BitReader::new(payload);
    for (scale, band) in subband_order(header.scales) {
        let sb = tile.subband_rect(scale, band_of(band));
        let words = codec.decode_subband(&mut reader, sb.len())?;
        let width = tile.width();
        let data = tile.data_mut();
        for (row, chunk) in words.chunks_exact(sb.width).enumerate() {
            let start = (sb.y + row) * width + sb.x;
            data[start..start + sb.width].copy_from_slice(chunk);
        }
    }
    // Anything beyond byte-alignment padding is corruption, not slack.
    if payload.len() as u64 * 8 - reader.bits_read() >= 8 {
        return Err(CoderError::MalformedStream(format!(
            "tile payload has {} trailing bytes after its last subband",
            (payload.len() as u64 * 8 - reader.bits_read()) / 8
        ))
        .into());
    }
    Ok(tile)
}

/// One horizontal band of a streamed `LWCF` decode; see
/// [`TiledFixedCompressor::decompress_row_bands`].
pub struct FixedRowBands<'a> {
    engine: TiledFixedCompressor,
    stream: FixedStream<'a>,
    grid: TileGrid,
    next_row: usize,
}

impl Iterator for FixedRowBands<'_> {
    type Item = Result<crate::RowBand, PipelineError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_row >= self.grid.tiles_y() {
            return None;
        }
        let ty = self.next_row;
        self.next_row += 1;
        let tiles_x = self.grid.tiles_x();
        let band_rect = self.grid.rect_at(0, ty);
        let result = (|| {
            let tiles =
                self.engine.decode_tiles(&self.stream, &self.grid, ty * tiles_x, tiles_x)?;
            let mut band = Image::zeros(
                self.grid.image_width(),
                band_rect.height,
                self.stream.header().bit_depth,
            )
            .map_err(CoderError::from)?;
            for (tx, tile) in tiles.iter().enumerate() {
                let mut rect = self.grid.rect_at(tx, ty);
                rect.y = 0; // band-local coordinates
                band.view_rect_mut(rect)
                    .and_then(|mut window| window.copy_from_image(tile))
                    .map_err(CoderError::from)?;
            }
            Ok(crate::RowBand { y: band_rect.y, image: band })
        })();
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwc_coder::fixedtiled::{is_fixed, FIXED_HEADER_BYTES};
    use lwc_image::{stats, synth};

    fn engine(scales: u32, tile: usize, workers: usize) -> TiledFixedCompressor {
        let bank = FilterBank::table1(FilterId::F1);
        TiledFixedCompressor::new(&bank, scales, tile, workers).unwrap()
    }

    #[test]
    fn multi_tile_roundtrip_is_lossless() {
        let engine = engine(3, 32, 3);
        for image in [
            synth::ct_phantom(96, 64, 12, 1),   // exact grid
            synth::random_image(64, 64, 12, 2), // single-column grid
            synth::mr_slice(32, 96, 12, 3),
        ] {
            let bytes = engine.compress(&image).unwrap();
            assert!(is_fixed(&bytes));
            let back = engine.decompress(&bytes).unwrap();
            assert!(stats::bit_exact(&image, &back).unwrap());
        }
    }

    #[test]
    fn per_tile_encode_plus_assembly_matches_compress() {
        // The scheduler's fan-out path must reproduce `compress` exactly.
        let engine = engine(3, 32, 2);
        let image = synth::ct_phantom(96, 64, 12, 4);
        let reference = engine.compress(&image).unwrap();
        let grid = engine.grid(96, 64).unwrap();
        let payloads: Vec<Vec<u8>> =
            (0..grid.tile_count()).map(|i| engine.encode_tile(&image, &grid, i).unwrap()).collect();
        let assembled = engine.assemble_container(&grid, image.bit_depth(), &payloads).unwrap();
        assert_eq!(assembled, reference);
    }

    #[test]
    fn every_bank_roundtrips() {
        for id in FilterId::ALL {
            let bank = FilterBank::table1(id);
            let engine = TiledFixedCompressor::new(&bank, 3, 32, 2).unwrap();
            let image = synth::ct_phantom(64, 96, 12, id.index() as u64);
            let back = engine.decompress(&engine.compress(&image).unwrap()).unwrap();
            assert!(stats::bit_exact(&image, &back).unwrap(), "{id}");
        }
    }

    #[test]
    fn streams_do_not_depend_on_the_worker_count() {
        let image = synth::ct_phantom(128, 96, 12, 5);
        let reference = engine(3, 32, 1).compress(&image).unwrap();
        for workers in [2, 3, 8] {
            assert_eq!(engine(3, 32, workers).compress(&image).unwrap(), reference);
        }
        // Single-tile grids splice per subband; still worker-independent.
        let single_ref = engine(3, 256, 1).compress(&image).unwrap();
        for workers in [2, 3, 8] {
            assert_eq!(engine(3, 256, workers).compress(&image).unwrap(), single_ref);
        }
    }

    #[test]
    fn single_tile_splice_matches_the_sequential_payload() {
        let image = synth::mr_slice(64, 64, 12, 7);
        let eng = engine(3, 64, 4);
        let spliced = eng.compress(&image).unwrap();
        // Hand-build the sequential container.
        let tile = eng.dwt().inner().forward(&image).unwrap();
        let payload = encode_tile_payload(FixedSubbandCodec::new(), &tile);
        let grid = eng.grid(64, 64).unwrap();
        let header = eng.header_for(&grid, image.bit_depth());
        let sequential = write_fixed_container(&header, &[payload]).unwrap();
        assert_eq!(spliced, sequential);
    }

    #[test]
    fn for_stream_rebuilds_a_compatible_engine() {
        let writer =
            TiledFixedCompressor::new(&FilterBank::table1(FilterId::F3), 2, 32, 2).unwrap();
        let image = synth::ct_phantom(64, 64, 12, 9);
        let bytes = writer.compress(&image).unwrap();
        let header = *FixedStream::parse(&bytes).unwrap().header();
        let reader = TiledFixedCompressor::for_stream(&header, 2).unwrap();
        assert_eq!(reader.filter_id(), FilterId::F3);
        let back = reader.decompress(&bytes).unwrap();
        assert!(stats::bit_exact(&image, &back).unwrap());
    }

    #[test]
    fn single_tiles_decode_independently_and_match_their_crops() {
        let eng = engine(2, 32, 2);
        let image = synth::ct_phantom(96, 64, 12, 6);
        let bytes = eng.compress(&image).unwrap();
        let grid = eng.grid(96, 64).unwrap();
        for index in 0..grid.tile_count() {
            let tile = eng.decompress_tile(&bytes, index).unwrap();
            let expected = image.crop(grid.rect(index)).unwrap();
            assert!(stats::bit_exact(&expected, &tile).unwrap(), "tile {index}");
        }
        assert!(eng.decompress_tile(&bytes, grid.tile_count()).is_err());
        let (rect, tile) = eng.decompress_tile_at(&bytes, 95, 63).unwrap();
        assert_eq!(rect, grid.rect(grid.tile_count() - 1));
        assert!(stats::bit_exact(&image.crop(rect).unwrap(), &tile).unwrap());
        assert!(eng.decompress_tile_at(&bytes, 96, 0).is_err(), "x out of bounds");
    }

    #[test]
    fn row_band_streaming_decode_reassembles_the_image() {
        let eng = engine(2, 32, 2);
        let image = synth::mr_slice(96, 64, 12, 9);
        let bytes = eng.compress(&image).unwrap();
        let mut rebuilt = Image::zeros(96, 64, 12).unwrap();
        let mut next_y = 0;
        for band in eng.decompress_row_bands(&bytes).unwrap() {
            let band = band.unwrap();
            assert_eq!(band.y, next_y, "bands arrive top to bottom");
            assert_eq!(band.image.width(), 96);
            next_y += band.image.height();
            let rect = TileRect { x: 0, y: band.y, width: 96, height: band.image.height() };
            rebuilt.view_rect_mut(rect).unwrap().copy_from_image(&band.image).unwrap();
        }
        assert_eq!(next_y, 64);
        assert!(stats::bit_exact(&image, &rebuilt).unwrap());
    }

    #[test]
    fn undecomposable_geometry_is_rejected_up_front() {
        // 3 scales demand tile sides divisible by 8; 100 is not.
        let eng = engine(3, 32, 2);
        assert!(eng.compress(&synth::flat(100, 96, 12, 0)).is_err());
    }

    #[test]
    fn mismatched_engines_refuse_the_stream() {
        let image = synth::ct_phantom(64, 64, 12, 4);
        let bytes = engine(3, 32, 2).compress(&image).unwrap();
        assert!(engine(2, 32, 2).decompress(&bytes).is_err(), "wrong depth");
        let other = TiledFixedCompressor::new(&FilterBank::table1(FilterId::F5), 3, 32, 2).unwrap();
        assert!(other.decompress(&bytes).is_err(), "wrong filter");
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let eng = engine(2, 32, 2);
        let image = synth::ct_phantom(96, 64, 12, 8);
        let bytes = eng.compress(&image).unwrap();
        for len in [0, 3, FIXED_HEADER_BYTES, bytes.len() / 2, bytes.len() - 1] {
            assert!(eng.decompress(&bytes[..len]).is_err(), "prefix of {len} bytes");
        }
        // Trailing garbage after the last payload fails the directory's
        // exact-end check.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0; 4]);
        assert!(eng.decompress(&padded).is_err());
        // A flipped byte inside a payload can never silently reproduce the
        // original image: it either breaks the stream structure (Err) or
        // changes decoded words.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        match eng.decompress(&flipped) {
            Err(_) => {}
            Ok(img) => assert!(!stats::bit_exact(&image, &img).unwrap()),
        }
    }

    #[test]
    fn zero_workers_selects_available_parallelism_and_report_counts_tiles() {
        let eng = engine(2, 16, 0);
        assert!(eng.workers() >= 1);
        let image = synth::ct_phantom(48, 48, 12, 2);
        let (_bytes, report) = eng.compress_with_report(&image).unwrap();
        assert_eq!(report.tiles, 9);
        assert!(report.ratio() > 0.0);
    }
}
