//! # lwc-pipeline — multithreaded batch compression engine
//!
//! The paper's architecture earns its throughput from pipelining: the row and
//! column passes of the 2-D DWT overlap in hardware, and one image follows
//! the next through the datapath with no dead cycles. This crate is the
//! software analogue of that organisation, layered on the bit-exact models of
//! the rest of the workspace:
//!
//! * [`ParallelFixedDwt2d`] — *intra-image* parallelism: the rows (and the
//!   column gathers) of every scale of the fixed-point 2-D DWT are fanned
//!   across `std::thread` workers. The arithmetic per row/column is untouched,
//!   so the result is bit-identical to [`lwc_dwt::FixedDwt2d`].
//! * [`BatchCompressor`] — *inter-image* parallelism: a batch of images is
//!   fanned across worker threads, each running the end-to-end Rice codec
//!   ([`lwc_coder::LosslessCodec`]). Streams are byte-identical to the
//!   sequential codec and come back in input order.
//! * [`ParallelCodec`] — *intra-image* parallelism on the entropy-coding
//!   side: the `3 * scales + 1` subbands of one image are Rice-coded on the
//!   worker pool and the fragments are spliced at bit level into the exact
//!   sequential stream; a [`SubbandDirectory`] of bit offsets drives the
//!   concurrent decode. This is the low-latency path when a single image is
//!   in flight, where [`BatchCompressor`] has nothing to fan out.
//! * [`TiledCompressor`] — *intra-image* parallelism at the **tile** level:
//!   the image is sharded by a [`lwc_image::TileGrid`] into independently
//!   coded tiles wrapped in the versioned `LWCT` container
//!   ([`lwc_coder::tiled`]), lifting the whole-image size limit, fanning one
//!   large image across the pool, and enabling bounded-memory row-band
//!   streaming decode ([`TiledCompressor::decompress_row_bands`]).
//! * [`TiledFixedDwt2d`] — the same tile sharding applied to the
//!   **paper-exact fixed-point** datapath: regions transform concurrently
//!   through the unmodified [`lwc_dwt::FixedDwt2d`] region APIs, so every
//!   tile's coefficients are bit-identical to the monolithic transform of
//!   that region and independent of the worker count.
//! * [`BatchCompressor::compress_iter`] / [`BatchCompressor::decompress_iter`]
//!   — the streaming form: images flow through a bounded channel into the
//!   worker pool and compressed streams come out in order, so an arbitrarily
//!   long study never has to be resident in memory at once.
//! * [`TiledFixedCompressor`] — the **complete paper-exact codec**: the
//!   tile-parallel fixed-point DWT feeding the fixed-word Rice coder
//!   ([`lwc_coder::FixedSubbandCodec`]), wrapped in the versioned `LWCF`
//!   container. This is the end-to-end realization of the paper's
//!   architecture — Table I banks at Table II word lengths with an entropy
//!   back end — rather than the engineering-preferred lifting path.
//! * [`LineCompressor`] — the **line-based fused** encode path: the whole
//!   multi-scale 5/3 transform runs in one streaming pass over the input
//!   rows ([`lwc_lifting::LineDwt53`]) and coefficients are Rice-coded the
//!   moment the cascade releases them, giving an `O(width x levels)`
//!   coefficient working set and a push-style row API
//!   ([`LineCompressor::begin`] / [`RowEncoder`]) that pairs with
//!   [`TiledCompressor::decompress_row_bands`] for bounded-memory encode
//!   *and* decode. Output bytes are identical to the sequential codec.
//! * [`VolumeCompressor`] — the **volumetric** engine: an
//!   [`lwc_image::ImageStack`] is sharded by a [`lwc_image::BrickGrid`] into
//!   bricks, each brick runs a separable 3-D DWT (the reversible 5/3 kernel
//!   along z composed with the 2-D transform per coefficient plane) and the
//!   per-plane streams ride in the versioned `LWCV` container
//!   ([`lwc_coder::volume`]). Bricks encode and decode brick-parallel with
//!   worker-count-independent bytes, decode can stream one brick layer at a
//!   time ([`VolumeCompressor::decompress_slabs`]), and at `z_scales = 0`
//!   every plane substream is byte-identical to the 2-D tiled path.
//! * [`Codec`] — the unified engine interface: every compressor above
//!   implements one object-safe trait (compress / decompress / tile access /
//!   row-band streaming, with capability reporting), so the batch engine,
//!   the server and the reproduction binary dispatch over `&dyn Codec`
//!   instead of enumerating engines.
//! * **Near-lossless mode** — the lifting engines ([`ParallelCodec`],
//!   [`TiledCompressor`], [`VolumeCompressor`], [`BatchCompressor`]) accept
//!   an [`lwc_coder::LosslessCodec::near_lossless`] configuration: detail
//!   subbands are uniformly quantized under a deterministic schedule derived
//!   from a per-pixel error bound `δ` ([`lwc_coder::QuantSchedule`]), the
//!   bound is enforced end to end (`max|orig − recon| ≤ δ`, with the z-axis
//!   synthesis gain accounted for in the volumetric path via
//!   [`lwc_coder::plane_delta_for_volume`]), and `δ = 0` is byte-identical
//!   to the lossless streams.
//! * [`BatchReport`] — wall-clock throughput of a batch run (MB/s, images/s,
//!   compression ratio).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod batch;
mod codec;
mod error;
mod line;
mod parcodec;
mod pardwt;
mod report;
mod stream;
mod tiled;
mod tileddwt;
mod tiledfixed;
mod volume;

pub use batch::BatchCompressor;
pub use codec::{Codec, CodecCapabilities};
pub use error::PipelineError;
pub use line::{LineCompressor, RowEncoder};
pub use parcodec::{ParallelCodec, SubbandDirectory};
pub use pardwt::ParallelFixedDwt2d;
pub use report::{BatchReport, TiledDwtReport, TiledReport};
pub use stream::OrderedStream;
pub use tiled::{RowBand, RowBands, TiledCompressor, DEFAULT_TILE_SIZE};
pub use tileddwt::{TiledDecomposition, TiledFixedDwt2d};
pub use tiledfixed::{FixedRowBands, TiledFixedCompressor};
pub use volume::{scatter_region, VolumeCompressor, VolumeSlab, VolumeSlabs, DEFAULT_BRICK_DEPTH};
